// Tests for the sharded serving subsystem: ShardRouter key routing +
// recovery, ShardGroup epoch-consistent pinned snapshots (reads keep
// serving the pinned epochs while commits and log purges land underneath),
// scatter-gather range/top-k, per-tenant read-QPS and epoch-scheduling
// quotas, and concurrent readers vs. commit/purge (run under the TSan job).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "common/codec.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "serving/admission.h"
#include "serving/shard_group.h"
#include "serving/shard_router.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

ShardRouterOptions PageRankShards(int num_shards, int partitions = 2) {
  ShardRouterOptions options;
  options.num_shards = num_shards;
  options.workers_per_shard = 2;
  options.pipeline.spec = pagerank::MakeIterSpec("pr", partitions, 100, 1e-9);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.engine.mrbg_auto_off_ratio = 2;
  options.pipeline.log.segment_bytes = 8 << 10;  // small: exercise rotation
  return options;
}

/// Per-shard from-scratch references over the final graph, for exactness
/// checks (each shard refreshes only its own subgraph).
std::vector<std::vector<KV>> ShardReferences(const ShardRouter& router,
                                             const std::vector<KV>& graph) {
  std::vector<std::vector<KV>> parts(router.num_shards());
  for (const auto& kv : graph) parts[router.ShardOf(kv.key)].push_back(kv);
  std::vector<std::vector<KV>> refs;
  refs.reserve(parts.size());
  for (const auto& part : parts) {
    refs.push_back(pagerank::Reference(part, 100, 1e-9));
  }
  return refs;
}

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_serving";
    ASSERT_TRUE(ResetDir(root_).ok());
  }
  std::string root_;
};

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

TEST_F(ServingTest, RoutingIsStableAndCoversAllShards) {
  auto router = ShardRouter::Open(root_, "pr", PageRankShards(4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 400; ++i) {
    std::string key = PaddedNum(i);
    int s = (*router)->ShardOf(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, (*router)->ShardOf(key));  // stable
    ++hits[s];
  }
  for (int s = 0; s < 4; ++s) EXPECT_GT(hits[s], 0) << "empty shard " << s;
}

TEST_F(ServingTest, ShardedBootstrapServesEveryKeyFromItsShard) {
  GraphGenOptions gen;
  gen.num_vertices = 200;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE((*router)->bootstrapped());

  // Every key is served, by its own shard, matching that shard's committed
  // snapshot exactly.
  for (const auto& kv : graph) {
    auto served = (*router)->Lookup(kv.key);
    ASSERT_TRUE(served.ok()) << kv.key;
    auto direct = (*router)->shard((*router)->ShardOf(kv.key))->Lookup(kv.key);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*served, *direct);
  }
  EXPECT_TRUE((*router)->Lookup("no-such-key").status().IsNotFound());
  // All shards committed their epoch 0.
  for (uint64_t e : (*router)->CommittedEpochs()) EXPECT_EQ(e, 0u);
}

TEST_F(ServingTest, DeltasRouteToTheRightShardAndConvergePerShard) {
  GraphGenOptions gen;
  gen.num_vertices = 160;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  for (int round = 1; round <= 2; ++round) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.08;
    dopt.seed = 40 + round;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    ASSERT_TRUE(
        (*router)
            ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
            .ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    EXPECT_EQ((*router)->TotalPending(), 0u);
  }

  // Exactly-once per shard: each shard's served ranks match a from-scratch
  // run over its final subgraph.
  auto refs = ShardReferences(**router, graph);
  for (int s = 0; s < 4; ++s) {
    auto served = (*router)->shard(s)->ServingSnapshot();
    EXPECT_LT(pagerank::MeanError(served, refs[s]), 1e-3) << "shard " << s;
  }
}

TEST_F(ServingTest, RouterRecoversAllShardsWithResetFalse) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  std::map<std::string, std::string> before;
  {
    auto router = ShardRouter::Open(root_, "pr", PageRankShards(4));
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    dopt.seed = 7;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    ASSERT_TRUE(
        (*router)
            ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
            .ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    for (const auto& kv : graph) {
      auto v = (*router)->Lookup(kv.key);
      ASSERT_TRUE(v.ok());
      before[kv.key] = *v;
    }
  }
  // "Process restart": re-attach every shard cluster and recover.
  ShardRouterOptions options = PageRankShards(4);
  options.reset = false;
  auto reopened = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_TRUE((*reopened)->bootstrapped());
  for (const auto& [key, value] : before) {
    auto v = (*reopened)->Lookup(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value);
  }
  // And it keeps ingesting.
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.05;
  dopt.seed = 8;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*reopened)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  ASSERT_TRUE((*reopened)->DrainAll().ok());
}

// ---------------------------------------------------------------------------
// ShardGroup: epoch-consistent pinned snapshots
// ---------------------------------------------------------------------------

TEST_F(ServingTest, PinnedSnapshotSurvivesCommitAndPurge) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ShardGroup group(router->get());

  auto pinned = group.PinSnapshot();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->epochs(), std::vector<uint64_t>(4, 0));
  // Record what the pinned view serves, and which epoch dirs back it.
  std::map<std::string, std::string> pinned_values;
  for (const auto& kv : graph) {
    auto v = pinned->Get(kv.key);
    ASSERT_TRUE(v.ok());
    pinned_values[kv.key] = *v;
  }

  // Commits + purges land underneath the pin on every shard.
  std::vector<uint64_t> purge_before;
  for (int s = 0; s < 4; ++s) {
    purge_before.push_back((*router)->shard(s)->log()->purge_watermark());
  }
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.3;
  dopt.seed = 11;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*router)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  ASSERT_TRUE((*router)->DrainAll().ok());
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ((*router)->shard(s)->committed_epoch(), 1u);
    // purge_log_on_commit really retired the drained records underneath.
    EXPECT_GT((*router)->shard(s)->log()->purge_watermark(), purge_before[s]);
  }

  // The in-flight pinned snapshot still serves epoch 0, bit for bit, and
  // its epoch dirs are still on disk (refcount held them out of GC).
  EXPECT_EQ(pinned->epochs(), std::vector<uint64_t>(4, 0));
  for (const auto& [key, value] : pinned_values) {
    auto v = pinned->Get(key);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, value) << key;
  }

  // A fresh pin sees the new consistent cut.
  auto fresh = group.PinSnapshot();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epochs(), std::vector<uint64_t>(4, 1));
  bool changed = false;
  for (const auto& [key, value] : pinned_values) {
    auto v = fresh->Get(key);
    if (v.ok() && *v != value) changed = true;
  }
  EXPECT_TRUE(changed) << "the delta epoch changed no served value";
}

TEST_F(ServingTest, PinnedEpochDirStaysOnDiskWhilePinned) {
  GraphGenOptions gen;
  gen.num_vertices = 80;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  Pipeline* shard0 = (*router)->shard(0);
  EpochPin pin = shard0->PinServing();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.epoch(), 0u);
  ASSERT_TRUE(FileExists(JoinPath(pin.dir(), "MANIFEST")));

  auto run_epoch = [&](int seed) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.2;
    dopt.seed = seed;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    ASSERT_TRUE(
        (*router)
            ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
            .ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
  };
  run_epoch(31);
  run_epoch(32);

  // Two commits later the pinned epoch-0 dir is still there...
  EXPECT_TRUE(FileExists(JoinPath(pin.dir(), "MANIFEST")));
  std::string dir = pin.dir();
  pin = EpochPin();  // release
  run_epoch(33);
  // ...and the commit after the release collects it.
  EXPECT_FALSE(FileExists(JoinPath(dir, "MANIFEST")));
}

TEST_F(ServingTest, MultiGetRangeAndTopKAnswerFromThePinnedCut) {
  GraphGenOptions gen;
  gen.num_vertices = 150;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE((*router)->DrainAll().ok());
  ShardGroup group(router->get());

  auto snap = group.PinSnapshot();
  ASSERT_TRUE(snap.ok());

  // The union of all shards' committed snapshots = expected answers.
  std::vector<KV> all;
  for (int s = 0; s < 4; ++s) {
    auto part = (*router)->shard(s)->ServingSnapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());

  // Full-range scan matches, in key order.
  auto scanned = snap->Range("", "");
  ASSERT_EQ(scanned.size(), all.size());
  EXPECT_TRUE(std::equal(all.begin(), all.end(), scanned.begin()));

  // Bounded range + limit.
  std::string lo = all[all.size() / 4].key, hi = all[3 * all.size() / 4].key;
  std::vector<KV> expect_range;
  for (const auto& kv : all) {
    if (kv.key >= lo && kv.key < hi) expect_range.push_back(kv);
  }
  auto ranged = snap->Range(lo, hi);
  ASSERT_EQ(ranged.size(), expect_range.size());
  EXPECT_TRUE(std::equal(expect_range.begin(), expect_range.end(),
                         ranged.begin()));
  auto limited = snap->Range(lo, hi, 5);
  ASSERT_EQ(limited.size(), std::min<size_t>(5, expect_range.size()));
  EXPECT_TRUE(std::equal(limited.begin(), limited.end(), expect_range.begin()));

  // MultiGet: every key answered from its shard's pinned epoch.
  std::vector<std::string> keys;
  for (size_t i = 0; i < all.size(); i += 7) keys.push_back(all[i].key);
  keys.push_back("no-such-key");
  auto got = snap->MultiGet(keys);
  ASSERT_EQ(got.size(), keys.size());
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << keys[i];
  }
  EXPECT_TRUE(got.back().status().IsNotFound());

  // TopK by rank matches a global sort (score desc, key asc).
  auto rank_of = [](const KV& kv) {
    auto v = ParseDouble(kv.value);
    return v.ok() ? *v : 0.0;
  };
  std::vector<KV> by_rank = all;
  std::sort(by_rank.begin(), by_rank.end(), [&](const KV& a, const KV& b) {
    double ra = rank_of(a), rb = rank_of(b);
    if (ra != rb) return ra > rb;
    return a.key < b.key;
  });
  auto top = snap->TopK(10, rank_of);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].key, by_rank[i].key) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Concurrent readers vs. commit + purge (TSan target)
// ---------------------------------------------------------------------------

TEST_F(ServingTest, ConcurrentPinnedReadersNeverObserveHalfCommittedEpochs) {
  GraphGenOptions gen;
  gen.num_vertices = 60;
  gen.avg_degree = 3;
  auto graph = GenGraph(gen);

  ShardRouterOptions options = PageRankShards(4, /*partitions=*/1);
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ShardGroup group(router->get());

  const std::string probe = graph.front().key;
  const int probe_shard = (*router)->ShardOf(probe);

  // The writer records, per committed epoch of the probe's shard, the value
  // the probe served right after that commit (the writer is the only
  // epoch driver, so this map is the ground truth per epoch id).
  std::mutex truth_mu;
  std::map<uint64_t, std::string> truth;
  {
    auto v = (*router)->Lookup(probe);
    ASSERT_TRUE(v.ok());
    std::lock_guard<std::mutex> lock(truth_mu);
    truth[0] = *v;
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  auto fail = [&](const std::string& msg) {
    ADD_FAILURE() << msg;
    failures.fetch_add(1);
    stop.store(true);
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<uint64_t> last_epochs;
      while (!stop.load()) {
        auto snap = group.PinSnapshot();
        if (!snap.ok()) {
          fail("pin failed: " + snap.status().ToString());
          return;
        }
        // Version vectors move forward only.
        if (!last_epochs.empty()) {
          for (size_t s = 0; s < last_epochs.size(); ++s) {
            if (snap->epochs()[s] < last_epochs[s]) {
              fail("epoch went backwards");
              return;
            }
          }
        }
        last_epochs = snap->epochs();
        // Repeated reads through one snapshot agree (frozen view) and
        // match the ground truth for the pinned epoch id — a pin that
        // paired the new epoch id with the old store (or a torn commit)
        // would diverge here.
        auto v1 = snap->Get(probe);
        auto v2 = snap->Get(probe);
        if (!v1.ok() || !v2.ok() || *v1 != *v2) {
          fail("unstable read through a pinned snapshot");
          return;
        }
        uint64_t e = snap->epochs()[probe_shard];
        {
          std::lock_guard<std::mutex> lock(truth_mu);
          auto it = truth.find(e);
          if (it != truth.end() && it->second != *v1) {
            fail("pinned epoch " + std::to_string(e) +
                 " served a value from another epoch");
            return;
          }
        }
        // Scatter-gather against the frozen cut must be internally
        // consistent too.
        auto top = snap->TopK(3, [](const KV& kv) {
          auto v = ParseDouble(kv.value);
          return v.ok() ? *v : 0.0;
        });
        if (top.empty()) {
          fail("empty TopK on a bootstrapped group");
          return;
        }
      }
    });
  }

  // Writer: stream deltas and drive epochs (commit + purge) underneath.
  for (int epoch = 0; epoch < 5 && !stop.load(); ++epoch) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.25;
    dopt.seed = 60 + epoch;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    ASSERT_TRUE(
        (*router)
            ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
            .ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    auto v = (*router)->shard(probe_shard)->Lookup(probe);
    ASSERT_TRUE(v.ok());
    std::lock_guard<std::mutex> lock(truth_mu);
    truth[(*router)->shard(probe_shard)->committed_epoch()] = *v;
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// AdmissionController: multi-tenant quotas
// ---------------------------------------------------------------------------

TEST(AdmissionTest, ReadTokenBucketAdmitsBurstThenRejects) {
  MetricsRegistry metrics;
  AdmissionController admission(&metrics, "adm_test1");
  TenantQuota quota;
  quota.read_rate = 0.001;  // effectively no refill within the test
  quota.read_burst = 3;
  admission.SetQuota("tenant-a", quota);

  EXPECT_TRUE(admission.AdmitRead("tenant-a"));
  EXPECT_TRUE(admission.AdmitRead("tenant-a"));
  EXPECT_TRUE(admission.AdmitRead("tenant-a"));
  EXPECT_FALSE(admission.AdmitRead("tenant-a"));
  EXPECT_FALSE(admission.AdmitRead("tenant-a"));

  auto stats = admission.tenant_stats("tenant-a");
  EXPECT_EQ(stats.reads_admitted, 3u);
  EXPECT_EQ(stats.reads_rejected, 2u);

  // An unquoted tenant is never rejected.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(admission.AdmitRead("tenant-b"));
  EXPECT_EQ(admission.tenant_stats("tenant-b").reads_rejected, 0u);
}

TEST(AdmissionTest, ZeroRateIsAHardDenyNotAOneRequestBurst) {
  MetricsRegistry metrics;
  AdmissionController admission(&metrics, "adm_zero");
  TenantQuota blocked;
  blocked.read_rate = 0;   // "block this tenant"
  blocked.epoch_rate = 0;  // and never schedule its refreshes
  admission.SetQuota("banned", blocked);

  // The burst default (max(rate, 1) = 1) plus the start-full bucket used
  // to admit exactly one request; rate == 0 must deny from the first.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(admission.AdmitRead("banned")) << "request " << i;
    EXPECT_FALSE(admission.AdmitEpoch("banned")) << "epoch " << i;
  }
  auto stats = admission.tenant_stats("banned");
  EXPECT_EQ(stats.reads_admitted, 0u);
  EXPECT_EQ(stats.reads_rejected, 5u);
  EXPECT_EQ(stats.epochs_admitted, 0u);
  EXPECT_EQ(stats.epochs_deferred, 5u);
}

TEST(AdmissionTest, ReadBucketRefillsAtRate) {
  MetricsRegistry metrics;
  AdmissionController admission(&metrics, "adm_test2");
  TenantQuota quota;
  quota.read_rate = 1000;  // 1 token/ms
  quota.read_burst = 2;
  admission.SetQuota("t", quota);
  EXPECT_TRUE(admission.AdmitRead("t"));
  EXPECT_TRUE(admission.AdmitRead("t"));
  // Drained. A generous sleep refills well past one token.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(admission.AdmitRead("t"));
}

TEST_F(ServingTest, ThrottledTenantDoesNotAffectAnotherTenantsReads) {
  GraphGenOptions gen;
  gen.num_vertices = 80;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  AdmissionController admission(&metrics, "adm_serving");
  TenantQuota limited;
  limited.read_rate = 0.001;
  limited.read_burst = 2;
  admission.SetQuota("tenant-a", limited);

  ShardRouterOptions options = PageRankShards(4);
  options.metrics = &metrics;
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ShardGroupOptions gopts;
  gopts.admission = &admission;
  ShardGroup group(router->get(), gopts);

  const std::string probe = graph.front().key;
  // Tenant A burns its burst, then is bounced at the edge...
  ASSERT_TRUE(group.Get("tenant-a", probe).ok());
  ASSERT_TRUE(group.Get("tenant-a", probe).ok());
  auto rejected = group.Get("tenant-a", probe);
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_TRUE(group.PinSnapshot("tenant-a").status().IsResourceExhausted());

  // ...while tenant B's reads all keep succeeding, unaffected.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(group.Get("tenant-b", probe).ok());
    ASSERT_TRUE(group.PinSnapshot("tenant-b").ok());
  }
  EXPECT_GE(admission.tenant_stats("tenant-a").reads_rejected, 2u);
  EXPECT_EQ(admission.tenant_stats("tenant-b").reads_rejected, 0u);
}

TEST_F(ServingTest, EpochQuotaDefersOneTenantsBacklogNotTheOthers) {
  GraphGenOptions gen;
  gen.num_vertices = 60;
  gen.avg_degree = 3;
  auto graph_a = GenGraph(gen);
  gen.seed = 99;
  auto graph_b = GenGraph(gen);

  MetricsRegistry metrics;
  AdmissionController admission(&metrics, "adm_epochs");
  // Tenant A: one epoch, then deferred (no refill within the test).
  TenantQuota starved;
  starved.epoch_rate = 0.001;
  starved.epoch_burst = 1;
  admission.SetQuota("tenant-a", starved);

  auto make = [&](const std::string& name, const std::string& tenant,
                  const std::string& subroot) {
    ShardRouterOptions options = PageRankShards(2, /*partitions=*/1);
    options.metrics = &metrics;
    options.tenant = tenant;
    options.admission = &admission;
    options.pipeline.min_batch = 1;
    options.manager.poll_interval_ms = 2;
    return ShardRouter::Open(JoinPath(root_, subroot), name, options);
  };
  auto router_a = make("pr_a", "tenant-a", "a");
  auto router_b = make("pr_b", "tenant-b", "b");
  ASSERT_TRUE(router_a.ok()) << router_a.status().ToString();
  ASSERT_TRUE(router_b.ok()) << router_b.status().ToString();
  ASSERT_TRUE((*router_a)->Bootstrap(graph_a, UnitState(graph_a)).ok());
  ASSERT_TRUE((*router_b)->Bootstrap(graph_b, UnitState(graph_b)).ok());

  // Both tenants build a multi-epoch backlog, then the background
  // schedulers compete under the quota.
  auto feed = [&](ShardRouter* router, std::vector<KV>* graph, int seed) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.2;
    dopt.seed = seed;
    auto delta = GenGraphDelta(gen, dopt, graph);
    ASSERT_TRUE(
        router->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
            .ok());
  };
  (*router_a)->Start();
  (*router_b)->Start();
  for (int i = 0; i < 4; ++i) {
    feed(router_a->get(), &graph_a, 200 + i);
    feed(router_b->get(), &graph_b, 300 + i);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  // Tenant B drains fully despite A's standing backlog.
  for (int i = 0; i < 200 && (*router_b)->TotalPending() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  (*router_a)->Stop();
  (*router_b)->Stop();

  EXPECT_EQ((*router_b)->TotalPending(), 0u);
  EXPECT_GT((*router_a)->TotalPending(), 0u)
      << "tenant-a's backlog should still be deferred";
  EXPECT_GT(admission.tenant_stats("tenant-a").epochs_deferred, 0u);
  EXPECT_EQ(admission.tenant_stats("tenant-b").epochs_deferred, 0u);
  // The deferrals surfaced through the per-shard manager counters too.
  int64_t deferred = 0;
  for (int s = 0; s < 2; ++s) {
    deferred += static_cast<int64_t>((*router_a)->manager(s)->stats().epochs_deferred);
  }
  EXPECT_GT(deferred, 0);
  // An explicit drain bypasses the gate (operator override), so the
  // backlog is still fully recoverable.
  ASSERT_TRUE((*router_a)->DrainAll().ok());
  EXPECT_EQ((*router_a)->TotalPending(), 0u);
}

// ---------------------------------------------------------------------------
// Router counters: successes only
// ---------------------------------------------------------------------------

TEST_F(ServingTest, RouterCountersCountOnlySuccessfulAppendsAndLookups) {
  GraphGenOptions gen;
  gen.num_vertices = 40;
  gen.avg_degree = 3;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  ShardRouterOptions options = PageRankShards(1);
  options.metrics = &metrics;
  // A tiny segment plus a simulated crash at the first rotation: appends
  // start failing mid-test, exactly the case the counters used to
  // overcount.
  options.pipeline.log.segment_bytes = 256;
  options.pipeline.log.crash_hook = [](const std::string& stage) {
    return stage == "rotate";
  };
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  auto deltas_routed = [&] {
    return metrics.Get("serving.pr.router.deltas_routed")->value();
  };
  auto lookups_routed = [&] {
    return metrics.Get("serving.pr.router.lookups_routed")->value();
  };

  // A lookup the shard cannot answer (not bootstrapped) was not served.
  EXPECT_FALSE((*router)->Lookup(graph[0].key).ok());
  EXPECT_EQ(lookups_routed(), 0);

  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  // Served lookups count — including a definitive NotFound.
  ASSERT_TRUE((*router)->Lookup(graph[0].key).ok());
  EXPECT_TRUE((*router)->Lookup("no-such-key").status().IsNotFound());
  EXPECT_EQ(lookups_routed(), 2);

  int64_t successes = 0;
  bool saw_failure = false;
  for (int i = 0; i < 50; ++i) {
    DeltaKV d{DeltaOp::kInsert, graph[i % graph.size()].key,
              "0000000001 0000000002"};
    auto seq = (*router)->Append(d);
    if (seq.ok()) {
      ASSERT_FALSE(saw_failure) << "log must stay failed once crashed";
      ++successes;
    } else {
      saw_failure = true;
    }
  }
  ASSERT_TRUE(saw_failure) << "the rotation crash hook never fired";
  ASSERT_GT(successes, 0);
  EXPECT_EQ(deltas_routed(), successes);

  // A batch into the crashed log routes nothing and counts nothing.
  std::vector<DeltaKV> batch(
      5, DeltaKV{DeltaOp::kInsert, graph[0].key, "0000000001"});
  EXPECT_FALSE((*router)->AppendBatch(batch).ok());
  EXPECT_EQ(deltas_routed(), successes);
}

// ---------------------------------------------------------------------------
// Range: one k-way merge across many shards
// ---------------------------------------------------------------------------

TEST_F(ServingTest, RangeMergesManyShardsWithEarlyStopAtLimit) {
  GraphGenOptions gen;
  gen.num_vertices = 300;
  gen.avg_degree = 3;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(8, 1));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ShardGroup group(router->get());
  auto snap = group.PinSnapshot();
  ASSERT_TRUE(snap.ok());

  std::vector<KV> all;
  for (int s = 0; s < 8; ++s) {
    auto part = (*router)->shard(s)->ServingSnapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());

  auto full = snap->Range("", "");
  ASSERT_EQ(full.size(), all.size());
  EXPECT_TRUE(std::equal(all.begin(), all.end(), full.begin()));

  // Early stop: the first `limit` records in key order, across 8 shards.
  for (size_t limit : {size_t{1}, size_t{7}, size_t{100}, all.size() + 10}) {
    auto limited = snap->Range("", "", limit);
    size_t want = std::min(limit, all.size());
    ASSERT_EQ(limited.size(), want) << "limit " << limit;
    EXPECT_TRUE(std::equal(limited.begin(), limited.end(), all.begin()))
        << "limit " << limit;
  }
  EXPECT_TRUE(snap->Range("", "", 0).empty());

  // Bounded ranges still merge correctly.
  std::string lo = all[all.size() / 3].key, hi = all[2 * all.size() / 3].key;
  std::vector<KV> expect;
  for (const auto& kv : all) {
    if (kv.key >= lo && kv.key < hi) expect.push_back(kv);
  }
  auto bounded = snap->Range(lo, hi);
  ASSERT_EQ(bounded.size(), expect.size());
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), bounded.begin()));
  auto bounded_limited = snap->Range(lo, hi, 9);
  ASSERT_EQ(bounded_limited.size(), std::min<size_t>(9, expect.size()));
  EXPECT_TRUE(std::equal(bounded_limited.begin(), bounded_limited.end(),
                         expect.begin()));
}

// ---------------------------------------------------------------------------
// Metrics surfacing
// ---------------------------------------------------------------------------

TEST_F(ServingTest, PerShardCountersSurfaceThroughTheRegistry) {
  GraphGenOptions gen;
  gen.num_vertices = 80;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  MetricsRegistry metrics;
  ShardRouterOptions options = PageRankShards(4);
  options.metrics = &metrics;
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());
  ShardGroup group(router->get());

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.2;
  dopt.seed = 5;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  size_t delta_count = delta.size();
  ASSERT_TRUE(
      (*router)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  ASSERT_TRUE((*router)->DrainAll().ok());
  auto snap = group.PinSnapshot();
  ASSERT_TRUE(snap.ok());
  for (const auto& kv : graph) ASSERT_TRUE(snap->Get(kv.key).ok());

  // Every shard committed exactly one delta epoch; the replayed-record
  // counters sum to the routed batch.
  int64_t epochs = 0;
  for (int s = 0; s < 4; ++s) {
    std::string prefix = "serving.pr.shard" + std::to_string(s);
    EXPECT_EQ(metrics.Get(prefix + ".epochs_committed")->value(), 1)
        << prefix;
    EXPECT_GT(metrics.Get(prefix + ".snapshot_reads")->value(), 0) << prefix;
    epochs += metrics.Get(prefix + ".epochs_committed")->value();
  }
  EXPECT_EQ(epochs, 4);
  EXPECT_GT(metrics.SumPrefixed("serving.pr."), 0);
  int64_t replayed = 0;
  for (int s = 0; s < 4; ++s) {
    replayed += metrics
                    .Get("serving.pr.shard" + std::to_string(s) +
                         ".deltas_applied")
                    ->value();
  }
  EXPECT_EQ(replayed, static_cast<int64_t>(delta_count));
  EXPECT_EQ(metrics.Get("serving.pr.router.deltas_routed")->value(),
            static_cast<int64_t>(delta_count));
  EXPECT_EQ(metrics.Get("serving.pr.snapshots_pinned")->value(), 1);
}

}  // namespace
}  // namespace i2mr
