// App-level unit tests: codecs, reference implementations, APriori
// end-to-end (pass 1 + accumulator counting pass + incremental refresh).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/apriori.h"
#include "apps/gimv.h"
#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "apps/wordcount.h"
#include "common/codec.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"
#include "data/text_gen.h"

namespace i2mr {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = ::testing::TempDir() + "/i2mr_apps"; }
  std::string root_;
};

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

TEST(AppCodecTest, KmeansCentroidsRoundTrip) {
  std::vector<std::vector<double>> centroids = {{1.5, -2.0}, {0.0, 3.25}};
  auto enc = kmeans::EncodeCentroids(centroids);
  auto dec = kmeans::DecodeCentroids(enc);
  ASSERT_EQ(dec.size(), 2u);
  EXPECT_DOUBLE_EQ(dec[0][0], 1.5);
  EXPECT_DOUBLE_EQ(dec[1][1], 3.25);
}

TEST(AppCodecTest, PairKeyIsOrderInvariant) {
  EXPECT_EQ(apriori::PairKey("b", "a"), "a|b");
  EXPECT_EQ(apriori::PairKey("a", "b"), "a|b");
}

TEST(AppCodecTest, TokenizeHandlesRepeatedSpaces) {
  auto toks = wordcount::Tokenize("a  b c ");
  EXPECT_EQ(toks, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(wordcount::Tokenize("").empty());
}

TEST(AppCodecTest, MixedValueSplitsAtLastBar) {
  std::string mixed = pagerank::MixedValue("1 2 3", 0.5);
  size_t bar = mixed.rfind('|');
  EXPECT_EQ(mixed.substr(0, bar), "1 2 3");
  EXPECT_DOUBLE_EQ(*ParseDouble(mixed.substr(bar + 1)), 0.5);
}

// ---------------------------------------------------------------------------
// Reference sanity
// ---------------------------------------------------------------------------

TEST(AppReferenceTest, PageRankRanksSumToVertexCount) {
  GraphGenOptions gen;
  gen.num_vertices = 200;
  auto graph = GenGraph(gen);
  auto ranks = pagerank::Reference(graph, 100, 1e-10);
  // For a graph without dangling rank leakage the sum is |V| (paper
  // footnote 2: scores are |N| times larger). Dangling vertices leak, so
  // allow slack below, but the total must stay in the right regime.
  double sum = 0;
  for (const auto& kv : ranks) sum += *ParseDouble(kv.value);
  EXPECT_GT(sum, ranks.size() * 0.15);
  EXPECT_LE(sum, ranks.size() * 1.5);
}

TEST(AppReferenceTest, SsspSourceIsZeroAndTriangleInequalityHolds) {
  GraphGenOptions gen;
  gen.num_vertices = 80;
  gen.weighted = true;
  auto graph = GenGraph(gen);
  std::string source = PaddedNum(0);
  auto dist = sssp::Reference(graph, source);
  std::map<std::string, double> d;
  for (const auto& kv : dist) d[kv.key] = *ParseDouble(kv.value);
  EXPECT_DOUBLE_EQ(d[source], 0.0);
  for (const auto& kv : graph) {
    if (d[kv.key] >= sssp::kInf) continue;
    for (const auto& [j, w] : ParseWeightedAdjacency(kv.value)) {
      EXPECT_LE(d[j], d[kv.key] + w + 1e-9);
    }
  }
}

TEST(AppReferenceTest, KmeansReferenceReducesInertia) {
  PointsGenOptions gen;
  gen.num_points = 200;
  gen.dims = 2;
  gen.num_clusters = 3;
  auto points = GenPoints(gen);
  auto init = kmeans::DecodeCentroids(kmeans::InitialState(points, 3)[0].value);
  auto final_centroids = kmeans::Reference(points, init, 20, 1e-8);

  auto inertia = [&](const std::vector<std::vector<double>>& cs) {
    double total = 0;
    for (const auto& kv : points) {
      auto p = ParseVector(kv.value);
      double best = 1e300;
      for (const auto& c : cs) {
        double s = 0;
        for (size_t i = 0; i < p.size(); ++i) s += (p[i] - c[i]) * (p[i] - c[i]);
        best = std::min(best, s);
      }
      total += best;
    }
    return total;
  };
  EXPECT_LT(inertia(final_centroids), inertia(init));
}

TEST(AppReferenceTest, GimvConvergesToFixpoint) {
  MatrixGenOptions gen;
  gen.num_blocks = 3;
  gen.block_size = 5;
  gen.density = 0.3;
  auto blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);
  auto a = gimv::Reference(blocks, vec, gen.block_size, 0.15, 200, 1e-12);
  auto b = gimv::Reference(blocks, vec, gen.block_size, 0.15, 201, 1e-12);
  EXPECT_LT(gimv::MaxDelta(a, b), 1e-9);
}

// ---------------------------------------------------------------------------
// APriori end-to-end
// ---------------------------------------------------------------------------

TEST_F(AppsTest, AprioriPassOneFindsFrequentWords) {
  LocalCluster cluster(root_, 3);
  std::vector<KV> docs = {
      {"d0", "hot cold hot"},
      {"d1", "hot warm"},
      {"d2", "cold hot warm"},
      {"d3", "rare"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 2).ok());
  auto frequent = apriori::FrequentWords(&cluster, "docs", 2);
  ASSERT_TRUE(frequent.ok()) << frequent.status().ToString();
  EXPECT_TRUE(frequent->count("hot") > 0);
  EXPECT_TRUE(frequent->count("cold") > 0);
  EXPECT_TRUE(frequent->count("warm") > 0);
  EXPECT_EQ(frequent->count("rare"), 0u);
}

TEST_F(AppsTest, AprioriCountsPairsAndRefreshesIncrementally) {
  LocalCluster cluster(root_, 3);
  TextGenOptions gen;
  gen.num_docs = 300;
  gen.vocab_size = 40;
  gen.words_per_doc = 6;
  auto docs = GenDocs(gen);
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 3).ok());

  auto frequent = apriori::FrequentWords(&cluster, "docs", 20);
  ASSERT_TRUE(frequent.ok());
  ASSERT_GT(frequent->size(), 3u);

  IncrementalOneStepJob job(&cluster,
                            apriori::MakeSpec("apriori", 3, *frequent));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  auto check = [&](const std::vector<KV>& all_docs) {
    auto want = apriori::Reference(all_docs, *frequent);
    auto got = job.Results();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), want.size());
    for (const auto& kv : *got) {
      EXPECT_EQ(*ParseNum(kv.value), want[kv.key]) << kv.key;
    }
  };
  check(docs);

  // Incremental refresh: 7.9%-style insertion-only delta (new tweets).
  auto delta = GenDocsDelta(gen, 0.08, 99, &docs);
  ASSERT_FALSE(delta.empty());
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("delta", delta, 2).ok());
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("delta"));
  ASSERT_TRUE(incr.ok());
  EXPECT_EQ(incr->map_instances, static_cast<int64_t>(delta.size()));
  check(docs);
}

}  // namespace
}  // namespace i2mr
