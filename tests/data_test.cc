// Tests for the synthetic dataset generators: determinism, structural
// properties (power-law skew, delta fractions), codec round-trips.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/codec.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"
#include "data/text_gen.h"

namespace i2mr {
namespace {

// ---------------------------------------------------------------------------
// Graph generator
// ---------------------------------------------------------------------------

TEST(GraphGenTest, DeterministicBySeed) {
  GraphGenOptions gen;
  gen.num_vertices = 100;
  auto a = GenGraph(gen);
  auto b = GenGraph(gen);
  EXPECT_EQ(a, b);
  gen.seed = 43;
  auto c = GenGraph(gen);
  EXPECT_NE(a, c);
}

TEST(GraphGenTest, EveryVertexPresentAndDegreeNearAverage) {
  GraphGenOptions gen;
  gen.num_vertices = 500;
  gen.avg_degree = 8;
  auto graph = GenGraph(gen);
  ASSERT_EQ(graph.size(), 500u);
  int64_t edges = 0;
  for (const auto& kv : graph) {
    edges += static_cast<int64_t>(ParseAdjacency(kv.value).size());
  }
  double avg = static_cast<double>(edges) / 500.0;
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 10.0);
}

TEST(GraphGenTest, InDegreeIsSkewed) {
  GraphGenOptions gen;
  gen.num_vertices = 500;
  gen.avg_degree = 10;
  gen.dest_skew = 1.0;
  auto graph = GenGraph(gen);
  std::map<std::string, int> in_degree;
  for (const auto& kv : graph) {
    for (const auto& j : ParseAdjacency(kv.value)) in_degree[j]++;
  }
  // The most popular page has far more in-links than the median.
  int max_deg = 0;
  int64_t total = 0;
  for (const auto& [_, d] : in_degree) {
    max_deg = std::max(max_deg, d);
    total += d;
  }
  double mean = static_cast<double>(total) / in_degree.size();
  EXPECT_GT(max_deg, mean * 8);
}

TEST(GraphGenTest, WeightedEdgesPositive) {
  GraphGenOptions gen;
  gen.num_vertices = 50;
  gen.weighted = true;
  auto graph = GenGraph(gen);
  for (const auto& kv : graph) {
    for (const auto& [j, w] : ParseWeightedAdjacency(kv.value)) {
      (void)j;
      EXPECT_GT(w, 0.0);
    }
  }
}

TEST(GraphGenTest, DeltaUpdatesMatchFractionAndApplyToGraph) {
  GraphGenOptions gen;
  gen.num_vertices = 200;
  auto graph = GenGraph(gen);
  auto original = graph;

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  // 10% of 200 = 20 updates, each a delete+insert pair.
  EXPECT_EQ(delta.size(), 40u);
  EXPECT_EQ(graph.size(), original.size());

  // Applying the delta manually to the original reproduces `graph`.
  std::map<std::string, std::string> snapshot;
  for (const auto& kv : original) snapshot[kv.key] = kv.value;
  for (const auto& d : delta) {
    if (d.op == DeltaOp::kDelete) {
      ASSERT_EQ(snapshot[d.key], d.value) << "delete of unknown value";
      snapshot.erase(d.key);
    } else {
      snapshot[d.key] = d.value;
    }
  }
  std::map<std::string, std::string> got;
  for (const auto& kv : graph) got[kv.key] = kv.value;
  EXPECT_EQ(snapshot, got);
}

TEST(GraphGenTest, DeltaInsertAndDeleteChangeVertexCount) {
  GraphGenOptions gen;
  gen.num_vertices = 100;
  auto graph = GenGraph(gen);
  GraphDeltaOptions dopt;
  dopt.insert_fraction = 0.1;
  dopt.delete_fraction = 0.05;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  EXPECT_EQ(graph.size(), 100u + 10u - 5u);
  // Inserted vertices get fresh ids beyond the original space.
  std::set<std::string> originals;
  for (uint64_t v = 0; v < 100; ++v) originals.insert(PaddedNum(v));
  int inserts = 0;
  for (const auto& d : delta) {
    if (d.op == DeltaOp::kInsert && originals.count(d.key) == 0) ++inserts;
  }
  EXPECT_EQ(inserts, 10);
}

TEST(GraphGenTest, AdjacencyCodecsRoundTrip) {
  std::vector<std::string> dests = {"0000000001", "0000000042"};
  EXPECT_EQ(ParseAdjacency(JoinAdjacency(dests)), dests);
  EXPECT_TRUE(ParseAdjacency("").empty());

  std::vector<std::pair<std::string, double>> edges = {{"007", 1.5},
                                                       {"042", 0.25}};
  auto round = ParseWeightedAdjacency(JoinWeightedAdjacency(edges));
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[0].first, "007");
  EXPECT_DOUBLE_EQ(round[1].second, 0.25);
}

// ---------------------------------------------------------------------------
// Points / matrix / text generators
// ---------------------------------------------------------------------------

TEST(PointsGenTest, DimensionsAndDeterminism) {
  PointsGenOptions gen;
  gen.num_points = 100;
  gen.dims = 5;
  auto a = GenPoints(gen);
  auto b = GenPoints(gen);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 100u);
  for (const auto& kv : a) {
    EXPECT_EQ(ParseVector(kv.value).size(), 5u);
  }
}

TEST(PointsGenTest, DeltaGrowsPointSet) {
  PointsGenOptions gen;
  gen.num_points = 100;
  auto points = GenPoints(gen);
  auto delta = GenPointsDelta(gen, 0.1, 0.2, 7, &points);
  EXPECT_EQ(points.size(), 120u);
  int inserts = 0, deletes = 0;
  for (const auto& d : delta) {
    if (d.op == DeltaOp::kInsert) ++inserts;
    else ++deletes;
  }
  EXPECT_EQ(deletes, 10);   // 10 updates = 10 deletes...
  EXPECT_EQ(inserts, 30);   // ... + 10 re-inserts + 20 new points
}

TEST(PointsGenTest, VectorCodecRoundTrip) {
  std::vector<double> v = {1.0, -2.5, 3.14159, 0.0};
  EXPECT_EQ(ParseVector(JoinVector(v)), v);
}

TEST(MatrixGenTest, ColumnsNormalizedBelowScale) {
  MatrixGenOptions gen;
  gen.num_blocks = 3;
  gen.block_size = 8;
  gen.density = 0.3;
  auto blocks = GenBlockMatrix(gen);
  ASSERT_FALSE(blocks.empty());
  int n = gen.num_blocks * gen.block_size;
  std::vector<double> col_sums(n, 0.0);
  for (const auto& kv : blocks) {
    auto [r, c] = ParseBlockKey(kv.key);
    (void)r;
    for (const auto& t : ParseBlock(kv.value)) {
      col_sums[c * gen.block_size + t.j] += t.val;
    }
  }
  for (double s : col_sums) {
    EXPECT_LE(s, gen.column_scale + 1e-9);
  }
}

TEST(MatrixGenTest, BlockKeyRoundTrip) {
  auto [r, c] = ParseBlockKey(BlockKey(3, 17));
  EXPECT_EQ(r, 3);
  EXPECT_EQ(c, 17);
}

TEST(MatrixGenTest, TripleCodecRoundTrip) {
  std::vector<MatrixTriple> triples = {{0, 1, 0.5}, {7, 3, 1.25}};
  auto round = ParseBlock(JoinBlock(triples));
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[1].i, 7);
  EXPECT_DOUBLE_EQ(round[1].val, 1.25);
}

TEST(MatrixGenTest, DeltaRewritesBlocks) {
  MatrixGenOptions gen;
  gen.num_blocks = 4;
  gen.block_size = 8;
  auto blocks = GenBlockMatrix(gen);
  auto before = blocks;
  auto delta = GenMatrixDelta(gen, 0.25, 3, &blocks);
  EXPECT_FALSE(delta.empty());
  EXPECT_EQ(blocks.size(), before.size());
  EXPECT_NE(blocks, before);
}

TEST(TextGenTest, DocsHaveRequestedShape) {
  TextGenOptions gen;
  gen.num_docs = 50;
  gen.words_per_doc = 7;
  auto docs = GenDocs(gen);
  ASSERT_EQ(docs.size(), 50u);
  for (const auto& kv : docs) {
    int words = 1;
    for (char c : kv.value) {
      if (c == ' ') ++words;
    }
    EXPECT_EQ(words, 7);
  }
}

TEST(TextGenTest, DeltaIsInsertOnlyWithFreshIds) {
  TextGenOptions gen;
  gen.num_docs = 100;
  auto docs = GenDocs(gen);
  auto delta = GenDocsDelta(gen, 0.079, 5, &docs);
  EXPECT_EQ(delta.size(), 7u);  // floor(0.079 * 100)
  for (const auto& d : delta) {
    EXPECT_EQ(d.op, DeltaOp::kInsert);
    EXPECT_GE(*ParseNum(d.key), 100u);
  }
  EXPECT_EQ(docs.size(), 107u);
}

TEST(TextGenTest, ZipfVocabularyIsSkewed) {
  TextGenOptions gen;
  gen.num_docs = 500;
  gen.vocab_size = 100;
  auto docs = GenDocs(gen);
  std::map<std::string, int> counts;
  for (const auto& kv : docs) {
    size_t i = 0;
    const std::string& s = kv.value;
    while (i < s.size()) {
      size_t j = s.find(' ', i);
      if (j == std::string::npos) j = s.size();
      counts[s.substr(i, j - i)]++;
      i = j + 1;
    }
  }
  EXPECT_GT(counts["w0"], counts["w50"] * 5);
}

}  // namespace
}  // namespace i2mr
