// Tests for the MRBG-Store: chunk codec, index persistence, append/batch
// behaviour, the four read modes, merge semantics, and compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/codec.h"
#include "io/env.h"
#include "mrbg/chunk.h"
#include "mrbg/chunk_index.h"
#include "mrbg/mrbg_store.h"

namespace i2mr {
namespace {

Chunk MakeChunk(const std::string& key, int n_entries, uint64_t mk_base = 100,
                const std::string& v_prefix = "v") {
  Chunk c;
  c.key = key;
  for (int i = 0; i < n_entries; ++i) {
    c.entries.push_back(ChunkEntry{mk_base + i, v_prefix + std::to_string(i)});
  }
  return c;
}

// ---------------------------------------------------------------------------
// Chunk codec
// ---------------------------------------------------------------------------

TEST(ChunkCodecTest, RoundTrip) {
  Chunk c = MakeChunk("vertex42", 3);
  std::string buf;
  uint32_t len = EncodeChunk(c, &buf);
  EXPECT_EQ(len, buf.size());
  EXPECT_EQ(len, EncodedChunkLength(c));
  Chunk out;
  ASSERT_TRUE(DecodeChunk(buf, &out).ok());
  EXPECT_EQ(out.key, c.key);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[1].mk, 101u);
  EXPECT_EQ(out.entries[1].v2, "v1");
}

TEST(ChunkCodecTest, EmptyChunk) {
  Chunk c;
  c.key = "k";
  std::string buf;
  EncodeChunk(c, &buf);
  Chunk out;
  ASSERT_TRUE(DecodeChunk(buf, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(ChunkCodecTest, DetectsCorruption) {
  Chunk c = MakeChunk("k", 2);
  std::string buf;
  EncodeChunk(c, &buf);
  std::string bad = buf;
  bad[10] ^= 0x40;  // flip a payload bit
  Chunk out;
  EXPECT_TRUE(DecodeChunk(bad, &out).IsCorruption());
  // Bad magic.
  std::string bad2 = buf;
  bad2[0] = 'X';
  EXPECT_TRUE(DecodeChunk(bad2, &out).IsCorruption());
  // Truncated.
  EXPECT_TRUE(
      DecodeChunk(std::string_view(buf.data(), buf.size() - 1), &out)
          .IsCorruption());
}

TEST(ChunkCodecTest, BackToBackChunksDecodeAtBoundaries) {
  Chunk a = MakeChunk("a", 2), b = MakeChunk("b", 1);
  std::string buf;
  uint32_t la = EncodeChunk(a, &buf);
  uint32_t lb = EncodeChunk(b, &buf);
  Chunk out;
  ASSERT_TRUE(DecodeChunk(std::string_view(buf.data(), la), &out).ok());
  EXPECT_EQ(out.key, "a");
  ASSERT_TRUE(DecodeChunk(std::string_view(buf.data() + la, lb), &out).ok());
  EXPECT_EQ(out.key, "b");
}

// ---------------------------------------------------------------------------
// ApplyDeltaToChunk
// ---------------------------------------------------------------------------

TEST(ApplyDeltaTest, InsertNewEdges) {
  Chunk c = MakeChunk("k", 1);
  ApplyDeltaToChunk({{"k", 777, "new", false}}, &c);
  ASSERT_EQ(c.entries.size(), 2u);
  EXPECT_EQ(c.entries[1].mk, 777u);
}

TEST(ApplyDeltaTest, DeleteExistingEdge) {
  Chunk c = MakeChunk("k", 3);  // mks 100,101,102
  ApplyDeltaToChunk({{"k", 101, "", true}}, &c);
  ASSERT_EQ(c.entries.size(), 2u);
  EXPECT_EQ(c.entries[0].mk, 100u);
  EXPECT_EQ(c.entries[1].mk, 102u);
}

TEST(ApplyDeltaTest, UpdateIsDeleteThenInsert) {
  // Paper §3.3: a modification arrives as <k,mk,'-'> followed by
  // <k,mk,new-value>.
  Chunk c = MakeChunk("k", 2);
  ApplyDeltaToChunk({{"k", 100, "", true}, {"k", 100, "updated", false}}, &c);
  ASSERT_EQ(c.entries.size(), 2u);
  bool found = false;
  for (const auto& e : c.entries) {
    if (e.mk == 100) {
      EXPECT_EQ(e.v2, "updated");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ApplyDeltaTest, UpsertWithoutPriorDelete) {
  Chunk c = MakeChunk("k", 1);  // mk 100
  ApplyDeltaToChunk({{"k", 100, "replaced", false}}, &c);
  ASSERT_EQ(c.entries.size(), 1u);
  EXPECT_EQ(c.entries[0].v2, "replaced");
}

TEST(ApplyDeltaTest, DeleteAllLeavesEmpty) {
  Chunk c = MakeChunk("k", 2);
  ApplyDeltaToChunk({{"k", 100, "", true}, {"k", 101, "", true}}, &c);
  EXPECT_TRUE(c.empty());
}

TEST(ApplyDeltaTest, DeleteOfMissingMkIsNoop) {
  Chunk c = MakeChunk("k", 1);
  ApplyDeltaToChunk({{"k", 999, "", true}}, &c);
  EXPECT_EQ(c.entries.size(), 1u);
}

// ---------------------------------------------------------------------------
// ChunkIndex
// ---------------------------------------------------------------------------

TEST(ChunkIndexTest, PutLookupErase) {
  ChunkIndex idx;
  EXPECT_EQ(idx.Lookup("a"), nullptr);
  idx.Put("a", {10, 20, 0});
  ASSERT_NE(idx.Lookup("a"), nullptr);
  EXPECT_EQ(idx.Lookup("a")->offset, 10u);
  idx.Put("a", {30, 40, 1});  // overwrite points at latest version
  EXPECT_EQ(idx.Lookup("a")->offset, 30u);
  EXPECT_EQ(idx.Lookup("a")->batch, 1u);
  idx.Erase("a");
  EXPECT_EQ(idx.Lookup("a"), nullptr);
}

TEST(ChunkIndexTest, SaveLoadRoundTrip) {
  std::string dir = ::testing::TempDir() + "/i2mr_idx_test";
  ASSERT_TRUE(ResetDir(dir).ok());
  ChunkIndex idx;
  idx.Put("a", {1, 2, 0});
  idx.Put("b", {3, 4, 1});
  idx.AddBatch({0, 100});
  idx.AddBatch({100, 250});
  ASSERT_TRUE(idx.Save(JoinPath(dir, "idx")).ok());

  ChunkIndex loaded;
  ASSERT_TRUE(loaded.Load(JoinPath(dir, "idx")).ok());
  EXPECT_EQ(loaded.size(), 2u);
  ASSERT_NE(loaded.Lookup("b"), nullptr);
  EXPECT_EQ(*loaded.Lookup("b"), (ChunkLocation{3, 4, 1}));
  ASSERT_EQ(loaded.batches().size(), 2u);
  EXPECT_EQ(loaded.batches()[1].start, 100u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ChunkIndexTest, LoadRejectsGarbage) {
  std::string dir = ::testing::TempDir() + "/i2mr_idx_bad";
  ASSERT_TRUE(ResetDir(dir).ok());
  ASSERT_TRUE(WriteStringToFile(JoinPath(dir, "idx"), "garbage!").ok());
  ChunkIndex idx;
  EXPECT_FALSE(idx.Load(JoinPath(dir, "idx")).ok());
  ASSERT_TRUE(RemoveAll(dir).ok());
}

// ---------------------------------------------------------------------------
// MRBGStore
// ---------------------------------------------------------------------------

class MRBGStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/i2mr_store_test";
    ASSERT_TRUE(ResetDir(dir_).ok());
  }
  void TearDown() override { RemoveAll(dir_).ok(); }

  std::unique_ptr<MRBGStore> OpenStore(MRBGStoreOptions opts = {}) {
    auto s = MRBGStore::Open(JoinPath(dir_, "store"), opts);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return std::move(s.value());
  }

  std::string dir_;
};

TEST_F(MRBGStoreTest, AppendQueryRoundTrip) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 2)).ok());
  ASSERT_TRUE(store->AppendChunk(MakeChunk("b", 3)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->PrepareQueries({"a", "b"}).ok());
  auto a = store->Query("a");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->entries.size(), 2u);
  auto b = store->Query("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->entries.size(), 3u);
  EXPECT_EQ(store->num_chunks(), 2u);
  EXPECT_EQ(store->num_batches(), 1u);
}

TEST_F(MRBGStoreTest, QueryMissingKeyIsNotFound) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 1)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->PrepareQueries({"zz"}).ok());
  EXPECT_TRUE(store->Query("zz").status().IsNotFound());
}

TEST_F(MRBGStoreTest, QueryFromAppendBufferBeforeFlush) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 2)).ok());
  // Not flushed yet: chunk is served from the append buffer.
  ASSERT_TRUE(store->PrepareQueries({"a"}).ok());
  auto a = store->Query("a");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a->entries.size(), 2u);
  EXPECT_EQ(store->stats().io_reads, 0u);
}

TEST_F(MRBGStoreTest, PersistsAcrossReopen) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->AppendChunk(MakeChunk("k1", 2)).ok());
    ASSERT_TRUE(store->AppendChunk(MakeChunk("k2", 1)).ok());
    ASSERT_TRUE(store->FinishBatch().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->num_chunks(), 2u);
  ASSERT_TRUE(store->PrepareQueries({"k1", "k2"}).ok());
  auto k1 = store->Query("k1");
  ASSERT_TRUE(k1.ok());
  EXPECT_EQ(k1->entries.size(), 2u);
}

TEST_F(MRBGStoreTest, CloseWithoutFinishBatchStillDurable) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->AppendChunk(MakeChunk("k1", 2)).ok());
    ASSERT_TRUE(store->Close().ok());  // implicit FinishBatch
  }
  auto store = OpenStore();
  EXPECT_EQ(store->num_chunks(), 1u);
  EXPECT_EQ(store->num_batches(), 1u);
}

TEST_F(MRBGStoreTest, LatestVersionWins) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 1, 100, "old")).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 2, 200, "new")).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  EXPECT_EQ(store->num_batches(), 2u);
  ASSERT_TRUE(store->PrepareQueries({"a"}).ok());
  auto a = store->Query("a");
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->entries.size(), 2u);
  EXPECT_EQ(a->entries[0].v2, "new0");
}

TEST_F(MRBGStoreTest, RemoveChunkHidesKey) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 1)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->RemoveChunk("a").ok());
  EXPECT_FALSE(store->Contains("a"));
  ASSERT_TRUE(store->PrepareQueries({"a"}).ok());
  EXPECT_TRUE(store->Query("a").status().IsNotFound());
  EXPECT_EQ(store->stats().chunks_removed, 1u);
}

TEST_F(MRBGStoreTest, MergeGroupInsertDeleteUpdate) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("j", 3)).ok());  // mks 100..102
  ASSERT_TRUE(store->FinishBatch().ok());

  ASSERT_TRUE(store->PrepareQueries({"j", "new"}).ok());
  Chunk merged;
  // Delete mk=100, update mk=101, insert mk=500.
  ASSERT_TRUE(store
                  ->MergeGroup("j",
                               {{"j", 100, "", true},
                                {"j", 101, "upd", false},
                                {"j", 500, "ins", false}},
                               &merged)
                  .ok());
  ASSERT_EQ(merged.entries.size(), 3u);
  std::map<uint64_t, std::string> by_mk;
  for (const auto& e : merged.entries) by_mk[e.mk] = e.v2;
  EXPECT_EQ(by_mk.count(100u), 0u);
  EXPECT_EQ(by_mk[101], "upd");
  EXPECT_EQ(by_mk[500], "ins");

  // Merge for a brand-new key creates its chunk.
  ASSERT_TRUE(store->MergeGroup("new", {{"new", 1, "x", false}}, &merged).ok());
  EXPECT_EQ(merged.entries.size(), 1u);
  ASSERT_TRUE(store->FinishBatch().ok());

  // Both persisted; latest version of "j" visible.
  ASSERT_TRUE(store->PrepareQueries({"j", "new"}).ok());
  auto j = store->Query("j");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->entries.size(), 3u);
  EXPECT_TRUE(store->Query("new").ok());
}

TEST_F(MRBGStoreTest, MergeToEmptyRemovesChunk) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("j", 1)).ok());  // mk 100
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->PrepareQueries({"j"}).ok());
  Chunk merged;
  ASSERT_TRUE(store->MergeGroup("j", {{"j", 100, "", true}}, &merged).ok());
  EXPECT_TRUE(merged.empty());
  EXPECT_FALSE(store->Contains("j"));
}

TEST_F(MRBGStoreTest, ForEachChunkVisitsKeyOrder) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("b", 1)).ok());
  ASSERT_TRUE(store->AppendChunk(MakeChunk("c", 1)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 1)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  std::vector<std::string> keys;
  ASSERT_TRUE(store
                  ->ForEachChunk([&](const Chunk& c) {
                    keys.push_back(c.key);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(MRBGStoreTest, CompactDropsGarbageAndKeepsLiveChunks) {
  auto store = OpenStore();
  for (int round = 0; round < 5; ++round) {
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(store
                      ->AppendChunk(MakeChunk(PaddedNum(k), 3, 100,
                                              "r" + std::to_string(round)))
                      .ok());
    }
    ASSERT_TRUE(store->FinishBatch().ok());
  }
  ASSERT_TRUE(store->RemoveChunk(PaddedNum(7)).ok());
  uint64_t before = store->file_bytes();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->file_bytes(), before);
  EXPECT_EQ(store->num_batches(), 1u);
  EXPECT_EQ(store->num_chunks(), 19u);
  ASSERT_TRUE(store->PrepareQueries({PaddedNum(3)}).ok());
  auto c = store->Query(PaddedNum(3));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->entries[0].v2, "r40");  // latest round survived

  // Store still writable after compaction.
  ASSERT_TRUE(store->AppendChunk(MakeChunk("zzz", 1)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->PrepareQueries({"zzz"}).ok());
  EXPECT_TRUE(store->Query("zzz").ok());
}

// All four read modes must return identical data; they differ only in I/O
// pattern.
class ReadModeTest : public MRBGStoreTest,
                     public ::testing::WithParamInterface<ReadMode> {};

TEST_P(ReadModeTest, AllModesReturnSameChunks) {
  MRBGStoreOptions opts;
  opts.read_mode = GetParam();
  opts.fixed_window_bytes = 256;  // small enough to span a few chunks only
  opts.gap_threshold_bytes = 64;
  opts.read_cache_bytes = 1024;
  auto store = OpenStore(opts);

  // Two batches with interleaved key coverage, as produced by two merge
  // epochs (§5.2 Fig. 7 setup).
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(store->AppendChunk(MakeChunk(PaddedNum(k), 2, 10, "b1_")).ok());
  }
  ASSERT_TRUE(store->FinishBatch().ok());
  for (int k = 0; k < 50; k += 2) {
    ASSERT_TRUE(store->AppendChunk(MakeChunk(PaddedNum(k), 2, 10, "b2_")).ok());
  }
  ASSERT_TRUE(store->FinishBatch().ok());

  std::vector<std::string> keys;
  for (int k = 0; k < 50; k += 3) keys.push_back(PaddedNum(k));
  ASSERT_TRUE(store->PrepareQueries(keys).ok());
  for (int k = 0; k < 50; k += 3) {
    auto c = store->Query(PaddedNum(k));
    ASSERT_TRUE(c.ok()) << "mode=" << ReadModeName(GetParam()) << " k=" << k;
    ASSERT_EQ(c->entries.size(), 2u);
    // Even keys were overwritten in batch 2.
    EXPECT_EQ(c->entries[0].v2, (k % 2 == 0 ? "b2_0" : "b1_0"));
  }
  EXPECT_GT(store->stats().queries, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ReadModeTest,
                         ::testing::Values(ReadMode::kIndexOnly,
                                           ReadMode::kSingleFixedWindow,
                                           ReadMode::kMultiFixedWindow,
                                           ReadMode::kMultiDynamicWindow),
                         [](const auto& info) {
                           std::string name = ReadModeName(info.param);
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST_F(MRBGStoreTest, DynamicWindowBatchesAdjacentQueries) {
  // With sorted queries over densely packed chunks, the dynamic window
  // should need far fewer I/O reads than index-only.
  auto run = [&](ReadMode mode, const std::string& subdir) {
    MRBGStoreOptions opts;
    opts.read_mode = mode;
    auto s = MRBGStore::Open(JoinPath(dir_, subdir), opts);
    EXPECT_TRUE(s.ok());
    auto& store = s.value();
    for (int k = 0; k < 200; ++k) {
      EXPECT_TRUE(store->AppendChunk(MakeChunk(PaddedNum(k), 4)).ok());
    }
    EXPECT_TRUE(store->FinishBatch().ok());
    std::vector<std::string> keys;
    for (int k = 0; k < 200; ++k) keys.push_back(PaddedNum(k));
    EXPECT_TRUE(store->PrepareQueries(keys).ok());
    for (int k = 0; k < 200; ++k) {
      EXPECT_TRUE(store->Query(PaddedNum(k)).ok());
    }
    return store->stats();
  };
  auto dyn = run(ReadMode::kMultiDynamicWindow, "dyn");
  auto idx = run(ReadMode::kIndexOnly, "idx");
  EXPECT_EQ(idx.io_reads, 200u);
  EXPECT_LT(dyn.io_reads, idx.io_reads / 4);
  EXPECT_GT(dyn.cache_hits, 0u);
}

TEST_F(MRBGStoreTest, SingleWindowThrashesAcrossBatchesDynamicDoesNot) {
  // Alternating queries across two batches: a single window reloads
  // constantly, multi windows do not (§5.2 motivation, Table 4).
  auto run = [&](ReadMode mode, const std::string& subdir) {
    MRBGStoreOptions opts;
    opts.read_mode = mode;
    opts.fixed_window_bytes = 4096;
    auto s = MRBGStore::Open(JoinPath(dir_, subdir), opts);
    EXPECT_TRUE(s.ok());
    auto& store = s.value();
    // Batch 1: odd keys; batch 2: even keys -> query order alternates
    // between batches.
    for (int k = 1; k < 100; k += 2) {
      EXPECT_TRUE(store->AppendChunk(MakeChunk(PaddedNum(k), 4)).ok());
    }
    EXPECT_TRUE(store->FinishBatch().ok());
    for (int k = 0; k < 100; k += 2) {
      EXPECT_TRUE(store->AppendChunk(MakeChunk(PaddedNum(k), 4)).ok());
    }
    EXPECT_TRUE(store->FinishBatch().ok());
    std::vector<std::string> keys;
    for (int k = 0; k < 100; ++k) keys.push_back(PaddedNum(k));
    EXPECT_TRUE(store->PrepareQueries(keys).ok());
    for (int k = 0; k < 100; ++k) {
      EXPECT_TRUE(store->Query(PaddedNum(k)).ok());
    }
    return store->stats();
  };
  auto single = run(ReadMode::kSingleFixedWindow, "single");
  auto multi = run(ReadMode::kMultiDynamicWindow, "multi");
  EXPECT_LT(multi.io_reads, single.io_reads);
  EXPECT_LT(multi.bytes_read, single.bytes_read);
}

TEST_F(MRBGStoreTest, StatsAccounting) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 1)).ok());
  EXPECT_EQ(store->stats().chunks_appended, 1u);
  EXPECT_GT(store->stats().bytes_appended, 0u);
  store->ResetStats();
  EXPECT_EQ(store->stats().chunks_appended, 0u);
}

TEST_F(MRBGStoreTest, ReloadRestoresStateFromDisk) {
  auto store = OpenStore();
  ASSERT_TRUE(store->AppendChunk(MakeChunk("a", 2)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->Reload().ok());
  EXPECT_EQ(store->num_chunks(), 1u);
  ASSERT_TRUE(store->PrepareQueries({"a"}).ok());
  EXPECT_TRUE(store->Query("a").ok());
}

TEST_F(MRBGStoreTest, LargeValuesSpanAppendBufferFlushes) {
  MRBGStoreOptions opts;
  opts.append_buffer_bytes = 512;  // force frequent flushes
  auto store = OpenStore(opts);
  std::string big(2000, 'x');
  for (int k = 0; k < 10; ++k) {
    Chunk c;
    c.key = PaddedNum(k);
    c.entries.push_back(ChunkEntry{1, big});
    ASSERT_TRUE(store->AppendChunk(c).ok());
  }
  ASSERT_TRUE(store->FinishBatch().ok());
  ASSERT_TRUE(store->PrepareQueries({PaddedNum(5)}).ok());
  auto c = store->Query(PaddedNum(5));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->entries[0].v2, big);
}

// ---------------------------------------------------------------------------
// Log-structured layout
// ---------------------------------------------------------------------------

class LogStructuredStoreTest : public MRBGStoreTest {
 protected:
  /// Tiny segments so a handful of batches forces rotation; waste floor at
  /// zero so compaction thresholds are reachable with test-sized data.
  static MRBGStoreOptions LsOpts(size_t segment_target = 1024) {
    MRBGStoreOptions o;
    o.log_structured = true;
    o.segment_target_bytes = segment_target;
    o.compact_min_wasted_bytes = 0;
    return o;
  }

  /// `rounds` overwrite rounds over `nkeys` keys, one batch per round.
  static void WriteRounds(MRBGStore* store, int rounds, int nkeys) {
    for (int r = 0; r < rounds; ++r) {
      for (int k = 0; k < nkeys; ++k) {
        ASSERT_TRUE(store
                        ->AppendChunk(MakeChunk(PaddedNum(k), 3, 100,
                                                "r" + std::to_string(r) + "_"))
                        .ok());
      }
      ASSERT_TRUE(store->FinishBatch().ok());
    }
  }

  /// Every key must hold its round-`r` value; `gone` keys must be absent.
  static void ExpectRound(MRBGStore* store, int r, int nkeys,
                          const std::vector<int>& gone = {}) {
    std::vector<std::string> keys;
    for (int k = 0; k < nkeys; ++k) keys.push_back(PaddedNum(k));
    ASSERT_TRUE(store->PrepareQueries(keys).ok());
    for (int k = 0; k < nkeys; ++k) {
      bool removed =
          std::find(gone.begin(), gone.end(), k) != gone.end();
      auto c = store->Query(PaddedNum(k));
      if (removed) {
        EXPECT_TRUE(c.status().IsNotFound()) << "k=" << k;
      } else {
        ASSERT_TRUE(c.ok()) << "k=" << k << ": " << c.status().ToString();
        EXPECT_EQ(c->entries[0].v2, "r" + std::to_string(r) + "_0")
            << "k=" << k;
      }
    }
  }
};

TEST_F(LogStructuredStoreTest, PersistsAcrossReopenWithRotation) {
  {
    auto store = OpenStore(LsOpts());
    ASSERT_TRUE(store->log_structured());
    WriteRounds(store.get(), 4, 10);
    EXPECT_GT(store->num_segments(), 1u);  // tiny target forced rotation
    ASSERT_TRUE(store->Close().ok());
  }
  ASSERT_TRUE(FileExists(JoinPath(dir_, "store/MANIFEST")));
  // Reopen without the flag: the on-disk MANIFEST wins.
  auto store = OpenStore();
  EXPECT_TRUE(store->log_structured());
  EXPECT_EQ(store->num_chunks(), 10u);
  ExpectRound(store.get(), 3, 10);
}

TEST_F(LogStructuredStoreTest, TombstoneSurvivesIndexRebuild) {
  {
    auto store = OpenStore(LsOpts());
    WriteRounds(store.get(), 2, 6);
    ASSERT_TRUE(store->RemoveChunk(PaddedNum(2)).ok());
    ASSERT_TRUE(store->FinishBatch().ok());
    EXPECT_GT(store->stats().tombstones_appended, 0u);
    ASSERT_TRUE(store->Close().ok());
  }
  // The index is rebuilt by scanning the segments: the delete must come
  // back as a delete, not resurrect the round-1 version.
  auto store = OpenStore();
  EXPECT_EQ(store->num_chunks(), 5u);
  ExpectRound(store.get(), 1, 6, /*gone=*/{2});
}

TEST_F(LogStructuredStoreTest, LatestVersionWinsAcrossSegments) {
  auto store = OpenStore(LsOpts(512));
  WriteRounds(store.get(), 6, 4);
  ASSERT_GT(store->num_segments(), 2u);
  ExpectRound(store.get(), 5, 4);
  ASSERT_TRUE(store->Close().ok());
  auto reopened = OpenStore();
  ExpectRound(reopened.get(), 5, 4);
}

TEST_F(LogStructuredStoreTest, CompactIfNeededReclaimsWaste) {
  auto store = OpenStore(LsOpts(512));
  WriteRounds(store.get(), 8, 8);
  uint64_t wasted_before = store->wasted_bytes();
  uint64_t bytes_before = store->file_bytes();
  EXPECT_GT(wasted_before, 0u);
  ASSERT_TRUE(store->CompactIfNeeded().ok());
  auto st = store->stats();
  EXPECT_GE(st.compaction_passes, 1u);
  EXPECT_GT(st.compaction_bytes_reclaimed, 0u);
  EXPECT_LT(store->file_bytes(), bytes_before);
  EXPECT_LT(store->wasted_bytes(), wasted_before);
  ExpectRound(store.get(), 7, 8);
  // Still writable, and the result survives a reopen.
  WriteRounds(store.get(), 1, 8);  // round 0 values again
  ASSERT_TRUE(store->Close().ok());
  auto reopened = OpenStore();
  ExpectRound(reopened.get(), 0, 8);
}

TEST_F(LogStructuredStoreTest, FullCompactCollapsesSegments) {
  auto store = OpenStore(LsOpts(512));
  WriteRounds(store.get(), 6, 8);
  ASSERT_TRUE(store->RemoveChunk(PaddedNum(3)).ok());
  size_t segs_before = store->num_segments();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->num_segments(), segs_before);
  EXPECT_EQ(store->num_chunks(), 7u);
  ExpectRound(store.get(), 5, 8, /*gone=*/{3});
}

TEST_F(LogStructuredStoreTest, BackgroundCompactionAtBatchBoundaries) {
  MRBGStoreOptions opts = LsOpts(512);
  opts.background_compaction = true;
  opts.compact_wasted_ratio = 0.1;
  auto store = OpenStore(opts);
  WriteRounds(store.get(), 10, 8);
  store->WaitForCompaction();
  EXPECT_GE(store->stats().compaction_passes, 1u);
  ExpectRound(store.get(), 9, 8);
  ASSERT_TRUE(store->Close().ok());
  auto reopened = OpenStore(opts);
  ExpectRound(reopened.get(), 9, 8);
}

TEST_F(LogStructuredStoreTest, MigratesRawStoreInPlace) {
  {
    auto raw = OpenStore();  // default: raw layout
    ASSERT_FALSE(raw->log_structured());
    WriteRounds(raw.get(), 3, 10);
    // A raw-mode delete lives only in the persisted index; the migration
    // must honour it rather than resurrect the chunk from mrbg.dat.
    ASSERT_TRUE(raw->RemoveChunk(PaddedNum(4)).ok());
    ASSERT_TRUE(raw->Close().ok());
  }
  auto store = OpenStore(LsOpts());
  EXPECT_TRUE(store->log_structured());
  EXPECT_EQ(store->num_chunks(), 9u);
  ExpectRound(store.get(), 2, 10, /*gone=*/{4});
  EXPECT_TRUE(FileExists(JoinPath(dir_, "store/MANIFEST")));
  EXPECT_FALSE(FileExists(JoinPath(dir_, "store/mrbg.dat")));
  EXPECT_FALSE(FileExists(JoinPath(dir_, "store/mrbg.idx")));
}

TEST_F(LogStructuredStoreTest, ReadModesReturnSameChunksAsRaw) {
  for (ReadMode mode :
       {ReadMode::kIndexOnly, ReadMode::kSingleFixedWindow,
        ReadMode::kMultiFixedWindow, ReadMode::kMultiDynamicWindow}) {
    MRBGStoreOptions opts = LsOpts(2048);
    opts.read_mode = mode;
    opts.fixed_window_bytes = 256;
    opts.gap_threshold_bytes = 64;
    opts.read_cache_bytes = 1024;
    std::string sub = std::string("mode_") + ReadModeName(mode);
    auto s = MRBGStore::Open(JoinPath(dir_, sub), opts);
    ASSERT_TRUE(s.ok());
    auto& store = s.value();
    for (int k = 0; k < 50; ++k) {
      ASSERT_TRUE(
          store->AppendChunk(MakeChunk(PaddedNum(k), 2, 10, "b1_")).ok());
    }
    ASSERT_TRUE(store->FinishBatch().ok());
    for (int k = 0; k < 50; k += 2) {
      ASSERT_TRUE(
          store->AppendChunk(MakeChunk(PaddedNum(k), 2, 10, "b2_")).ok());
    }
    ASSERT_TRUE(store->FinishBatch().ok());
    std::vector<std::string> keys;
    for (int k = 0; k < 50; k += 3) keys.push_back(PaddedNum(k));
    ASSERT_TRUE(store->PrepareQueries(keys).ok());
    for (int k = 0; k < 50; k += 3) {
      auto c = store->Query(PaddedNum(k));
      ASSERT_TRUE(c.ok()) << "mode=" << ReadModeName(mode) << " k=" << k;
      ASSERT_EQ(c->entries.size(), 2u);
      EXPECT_EQ(c->entries[0].v2, (k % 2 == 0 ? "b2_0" : "b1_0"))
          << "mode=" << ReadModeName(mode) << " k=" << k;
    }
  }
}

TEST_F(LogStructuredStoreTest, SnapshotIsFrozenAgainstLaterAppends) {
  auto store = OpenStore(LsOpts(512));
  WriteRounds(store.get(), 3, 8);
  std::string snap = JoinPath(dir_, "snap");
  std::vector<std::string> files;
  ASSERT_TRUE(store->SnapshotInto(snap, &files).ok());
  EXPECT_FALSE(files.empty());
  // Keep appending to the source: the snapshot must not see any of it,
  // even though it shares inodes with the source's segments.
  WriteRounds(store.get(), 2, 8);
  ASSERT_TRUE(store->RemoveChunk(PaddedNum(0)).ok());
  ASSERT_TRUE(store->FinishBatch().ok());

  auto snap_store = MRBGStore::Open(snap);
  ASSERT_TRUE(snap_store.ok()) << snap_store.status().ToString();
  EXPECT_TRUE(snap_store.value()->log_structured());
  EXPECT_EQ(snap_store.value()->num_chunks(), 8u);
  ExpectRound(snap_store.value().get(), 2, 8);
  // And the source still serves its latest state.
  ExpectRound(store.get(), 1, 8, /*gone=*/{0});
}

TEST_F(LogStructuredStoreTest, ListStoreFilesCoversBothLayouts) {
  // Nothing durable yet.
  auto empty = MRBGStore::ListStoreFiles(JoinPath(dir_, "nothing"));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  {
    auto store = OpenStore(LsOpts());
    WriteRounds(store.get(), 2, 6);
    ASSERT_TRUE(store->Close().ok());
  }
  auto ls = MRBGStore::ListStoreFiles(JoinPath(dir_, "store"));
  ASSERT_TRUE(ls.ok());
  bool has_manifest = false, has_segment = false;
  for (const auto& f : *ls) {
    if (f.find("MANIFEST") != std::string::npos) has_manifest = true;
    if (f.find("seg-") != std::string::npos) has_segment = true;
  }
  EXPECT_TRUE(has_manifest);
  EXPECT_TRUE(has_segment);

  {
    auto raw = MRBGStore::Open(JoinPath(dir_, "raw"));
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(raw.value()->AppendChunk(MakeChunk("a", 1)).ok());
    ASSERT_TRUE(raw.value()->Close().ok());
  }
  auto rf = MRBGStore::ListStoreFiles(JoinPath(dir_, "raw"));
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf->size(), 2u);  // mrbg.dat + mrbg.idx
}

// Crash injection at each compaction stage: a kill between the segment
// rewrite and the index/manifest swap must recover to the old state or the
// new state, never a torn mixture.
class CompactionCrashTest : public LogStructuredStoreTest,
                            public ::testing::WithParamInterface<const char*> {
};

TEST_P(CompactionCrashTest, RecoversToConsistentState) {
  const std::string stage = GetParam();
  MRBGStoreOptions opts = LsOpts(512);
  int fired = 0;
  opts.compact_crash_hook = [&](const std::string& s) {
    if (s != stage) return false;
    ++fired;
    return true;
  };
  {
    auto store = OpenStore(opts);
    WriteRounds(store.get(), 6, 10);
    ASSERT_TRUE(store->RemoveChunk(PaddedNum(5)).ok());
    ASSERT_TRUE(store->FinishBatch().ok());
    ASSERT_TRUE(store->Compact().ok());  // abandoned at `stage`
    EXPECT_EQ(fired, 1);
    // The crashed store must stop touching disk, like a killed process.
    ASSERT_TRUE(store->Close().ok());
  }
  // Recovery: reopen and verify the full logical state, whichever side of
  // the crash point the on-disk files landed on.
  auto store = OpenStore(LsOpts(512));
  EXPECT_EQ(store->num_chunks(), 9u);
  ExpectRound(store.get(), 5, 10, /*gone=*/{5});
  // And the recovered store compacts + writes normally.
  ASSERT_TRUE(store->Compact().ok());
  WriteRounds(store.get(), 1, 10);
  ExpectRound(store.get(), 0, 10);
}

INSTANTIATE_TEST_SUITE_P(AllStages, CompactionCrashTest,
                         ::testing::Values("rewrite", "rename", "manifest"));

}  // namespace
}  // namespace i2mr
