// Parity suite for the two shuffle exchange paths: the in-memory
// ShuffleExchange must produce byte-identical results to the disk spill
// path — same converged state for the iterative/incremental engines
// (pagerank, kmeans), same refreshed results for the one-step runner
// (wordcount incl. its map-side combiner), same output part-file bytes for
// the plain job runner — including the mixed mode where a tiny exchange
// budget forces per-run spill-over, and the I2MR_FORCE_DISK_SHUFFLE env
// override CI uses to exercise both paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "apps/wordcount.h"
#include "common/codec.h"
#include "core/incr_iter_engine.h"
#include "core/incr_job.h"
#include "data/graph_gen.h"
#include "data/points_gen.h"
#include "data/text_gen.h"
#include "io/env.h"
#include "io/record_file.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

class ShuffleParityTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = ::testing::TempDir() + "/i2mr_parity"; }
  std::string root_;
};

struct ShuffleConfig {
  ShuffleMode mode = ShuffleMode::kInMemory;
  size_t memory_bytes = kDefaultShuffleMemoryBytes;
  const char* tag = "";
};

// The three exchange configurations every app must agree across: pure
// in-memory, pure disk, and in-memory with a budget so small that every
// run overflows into a spill (the spill-over path).
const ShuffleConfig kConfigs[] = {
    {ShuffleMode::kInMemory, kDefaultShuffleMemoryBytes, "mem"},
    {ShuffleMode::kDisk, kDefaultShuffleMemoryBytes, "disk"},
    {ShuffleMode::kInMemory, 64, "spillover"},
};

TEST_F(ShuffleParityTest, PageRankIncrementalRefreshIdenticalAcrossModes) {
  GraphGenOptions gen;
  gen.num_vertices = 300;
  gen.avg_degree = 5;

  std::vector<std::vector<KV>> snapshots;
  for (const auto& config : kConfigs) {
    auto graph = GenGraph(gen);
    LocalCluster cluster(root_ + "/pr_" + config.tag, 4);
    IncrIterOptions options;
    options.filter_threshold = 0.0;
    options.mrbg_auto_off_ratio = 2;
    IterJobSpec spec = pagerank::MakeIterSpec("pr", 4, 60, 1e-8);
    spec.shuffle_mode = config.mode;
    spec.shuffle_memory_bytes = config.memory_bytes;
    IncrementalIterativeEngine engine(&cluster, spec, options);
    ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.08;
    dopt.seed = 7;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    ASSERT_TRUE(engine.RunIncremental(delta).ok());
    auto state = engine.StateSnapshot();
    ASSERT_TRUE(state.ok());
    snapshots.push_back(std::move(*state));
  }
  // Byte-identical refreshed state across all three configurations.
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
}

TEST_F(ShuffleParityTest, KmeansIterationsIdenticalAcrossModes) {
  PointsGenOptions gen;
  gen.num_points = 400;
  gen.dims = 3;

  std::vector<std::vector<KV>> snapshots;
  for (const auto& config : kConfigs) {
    auto points = GenPoints(gen);
    LocalCluster cluster(root_ + "/km_" + config.tag, 4);
    IterJobSpec spec = kmeans::MakeIterSpec("km", 4, 12, 1e-6);
    spec.shuffle_mode = config.mode;
    spec.shuffle_memory_bytes = config.memory_bytes;
    IterativeEngine engine(&cluster, spec);
    ASSERT_TRUE(engine.Prepare(points, kmeans::InitialState(points, 6)).ok());
    ASSERT_TRUE(engine.Run().ok());
    auto state = engine.StateSnapshot();
    ASSERT_TRUE(state.ok());
    snapshots.push_back(std::move(*state));
  }
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
}

TEST_F(ShuffleParityTest, WordCountOneStepRefreshIdenticalAcrossModes) {
  TextGenOptions gen;
  gen.num_docs = 60;

  // Accumulator mode folds map-side with the combiner; MRBG mode preserves
  // fine-grain state. Both must agree with themselves across exchanges.
  for (bool accumulator : {true, false}) {
    std::vector<std::vector<KV>> results;
    for (const auto& config : kConfigs) {
      auto docs = GenDocs(gen);
      std::string tag = std::string(accumulator ? "wc_acc_" : "wc_mrbg_") +
                        config.tag;
      LocalCluster cluster(root_ + "/" + tag, 4);
      IncrJobSpec spec = accumulator ? wordcount::MakeSpec("wc", 4)
                                     : wordcount::MakeMrbgSpec("wc", 4);
      spec.shuffle_mode = config.mode;
      spec.shuffle_memory_bytes = config.memory_bytes;
      IncrementalOneStepJob job(&cluster, spec);
      std::string input = JoinPath(cluster.root(), "docs.dat");
      ASSERT_TRUE(WriteRecords(input, docs).ok());
      ASSERT_TRUE(job.RunInitial({input}).ok());
      // GenDocsDelta is insertion-only, legal for both reduce modes.
      std::vector<DeltaKV> delta = GenDocsDelta(gen, 0.2, 11, &docs);
      std::string dpath = JoinPath(cluster.root(), "delta.dat");
      ASSERT_TRUE(WriteDeltaRecords(dpath, delta).ok());
      ASSERT_TRUE(job.RunIncremental({dpath}).ok());
      auto out = job.Results();
      ASSERT_TRUE(out.ok());
      results.push_back(std::move(*out));
    }
    EXPECT_EQ(results[0], results[1]) << "accumulator=" << accumulator;
    EXPECT_EQ(results[0], results[2]) << "accumulator=" << accumulator;
  }
}

// The plain job runner with a combiner: output part files must be
// byte-for-byte identical between the exchange and the disk spills.
TEST_F(ShuffleParityTest, PlainJobWithCombinerOutputsByteIdentical) {
  std::vector<KV> docs;
  for (int i = 0; i < 50; ++i) {
    docs.push_back(KV{"doc" + std::to_string(i),
                      "the quick fox doc" + std::to_string(i % 7)});
  }

  std::vector<std::vector<std::string>> outputs;  // per config: file bytes
  for (const auto& config : kConfigs) {
    LocalCluster cluster(root_ + "/job_" + std::string(config.tag), 4);
    std::vector<std::string> parts;
    for (int p = 0; p < 3; ++p) {
      std::vector<KV> slice;
      for (size_t i = p; i < docs.size(); i += 3) slice.push_back(docs[i]);
      std::string path =
          JoinPath(cluster.root(), "in" + std::to_string(p) + ".dat");
      ASSERT_TRUE(WriteRecords(path, slice).ok());
      parts.push_back(path);
    }
    JobSpec spec;
    spec.name = "wc";
    spec.input_parts = parts;
    spec.shuffle_mode = config.mode;
    spec.shuffle_memory_bytes = config.memory_bytes;
    spec.mapper = [] {
      return std::make_unique<FnMapper>(
          [](const std::string&, const std::string& text, MapContext* ctx) {
            for (const auto& tok : wordcount::Tokenize(text)) {
              ctx->Emit(tok, "1");
            }
          });
    };
    auto sum = [] {
      return std::make_unique<FnReducer>(
          [](const std::string& k, const std::vector<std::string>& vs,
             ReduceContext* ctx) {
            uint64_t total = 0;
            for (const auto& v : vs) total += std::strtoull(v.c_str(), nullptr, 10);
            ctx->Emit(k, std::to_string(total));
          });
    };
    spec.reducer = sum;
    spec.combiner = sum;
    spec.output_dir = JoinPath(cluster.root(), "out");
    auto result = cluster.RunJob(spec);
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    std::vector<std::string> bytes;
    for (const auto& part : result.output_parts) {
      auto content = ReadFileToString(part);
      ASSERT_TRUE(content.ok());
      bytes.push_back(std::move(*content));
    }
    // Identical shuffle charges regardless of path.
    EXPECT_GT(result.metrics->shuffle_bytes.load(), 0);
    outputs.push_back(std::move(bytes));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

// The same job in both modes must report identical shuffle_bytes: the
// in-memory path charges each run's record-file size, which is exactly the
// spill the disk path would have written.
TEST_F(ShuffleParityTest, ShuffleBytesAccountingIdenticalAcrossModes) {
  std::vector<int64_t> charged;
  for (ShuffleMode mode : {ShuffleMode::kInMemory, ShuffleMode::kDisk}) {
    LocalCluster cluster(
        root_ + (mode == ShuffleMode::kDisk ? "/acct_disk" : "/acct_mem"), 2);
    std::vector<KV> input;
    for (int i = 0; i < 200; ++i) {
      input.push_back(KV{PaddedNum(i % 17), "payload-" + std::to_string(i)});
    }
    std::string path = JoinPath(cluster.root(), "in.dat");
    EXPECT_TRUE(WriteRecords(path, input).ok());
    JobSpec spec;
    spec.name = "acct";
    spec.input_parts = {path};
    spec.shuffle_mode = mode;
    spec.mapper = [] {
      return std::make_unique<FnMapper>(
          [](const std::string& k, const std::string& v, MapContext* ctx) {
            ctx->Emit(k, v);
          });
    };
    spec.reducer = [] {
      return std::make_unique<FnReducer>(
          [](const std::string& k, const std::vector<std::string>& vs,
             ReduceContext* ctx) { ctx->Emit(k, std::to_string(vs.size())); });
    };
    spec.output_dir = JoinPath(cluster.root(), "out");
    auto result = cluster.RunJob(spec);
    ASSERT_TRUE(result.ok());
    charged.push_back(result.metrics->shuffle_bytes.load());
  }
  EXPECT_EQ(charged[0], charged[1]);
}

TEST_F(ShuffleParityTest, ForceDiskEnvOverridesInMemoryRequest) {
  // The suite itself may run under I2MR_FORCE_DISK_SHUFFLE (CI's disk-mode
  // pass): save and restore the ambient value.
  const char* ambient = std::getenv("I2MR_FORCE_DISK_SHUFFLE");
  std::string saved = ambient != nullptr ? ambient : "";

  ::unsetenv("I2MR_FORCE_DISK_SHUFFLE");
  EXPECT_EQ(EffectiveShuffleMode(ShuffleMode::kInMemory),
            ShuffleMode::kInMemory);
  ::setenv("I2MR_FORCE_DISK_SHUFFLE", "1", 1);
  EXPECT_EQ(EffectiveShuffleMode(ShuffleMode::kInMemory), ShuffleMode::kDisk);
  EXPECT_EQ(EffectiveShuffleMode(ShuffleMode::kDisk), ShuffleMode::kDisk);
  ::setenv("I2MR_FORCE_DISK_SHUFFLE", "0", 1);
  EXPECT_EQ(EffectiveShuffleMode(ShuffleMode::kInMemory),
            ShuffleMode::kInMemory);

  if (ambient != nullptr) {
    ::setenv("I2MR_FORCE_DISK_SHUFFLE", saved.c_str(), 1);
  } else {
    ::unsetenv("I2MR_FORCE_DISK_SHUFFLE");
  }
}

}  // namespace
}  // namespace i2mr
