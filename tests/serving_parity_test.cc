// Cross-shard ground-truth parity suite: a sharded computation with the
// CrossShardExchange (cross_shard_exchange = true) must equal the
// *unsharded* pipeline — not merely a per-shard recompute of each shard's
// own subgraph — on graphs with heavy cross-shard edges, through bootstrap
// and several streamed delta epochs, for PageRank, SSSP and ConComp.
// Also: uniform epoch vectors after coordinated commits, and crash
// recovery of the two-phase barrier commit (an incomplete barrier rolls
// back to epoch N-1 everywhere; readers never observe a mixed vector).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/concomp.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/codec.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "serving/shard_group.h"
#include "serving/shard_router.h"

namespace i2mr {
namespace {

std::vector<KV> InitStateFor(const IterJobSpec& spec,
                             const std::vector<KV>& graph) {
  std::vector<KV> state;
  state.reserve(graph.size());
  for (const auto& kv : graph) {
    state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  return state;
}

/// Directed ring i -> i+1 (mod n): with hashed shard assignment, nearly
/// every edge crosses a shard boundary, and every vertex's reduce input
/// comes from another shard — the adversarial case for sharded refresh.
std::vector<KV> RingGraph(int n, bool weighted) {
  std::vector<KV> graph;
  graph.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string dest = PaddedNum((i + 1) % n);
    graph.push_back(KV{PaddedNum(i), weighted ? dest + ":1" : dest});
  }
  return graph;
}

PipelineOptions MakePipelineOptions(IterJobSpec spec) {
  PipelineOptions options;
  options.spec = std::move(spec);
  options.engine.filter_threshold = 0.0;  // exact propagation
  options.engine.mrbg_auto_off_ratio = 2; // keep the incremental path
  return options;
}

ShardRouterOptions CoordinatedOptions(IterJobSpec spec, int shards) {
  ShardRouterOptions options;
  options.num_shards = shards;
  options.workers_per_shard = 2;
  options.cross_shard_exchange = true;
  options.pipeline = MakePipelineOptions(std::move(spec));
  return options;
}

/// The unsharded ground truth: one pipeline over the whole structure.
struct Unsharded {
  std::unique_ptr<LocalCluster> cluster;
  std::unique_ptr<Pipeline> pipeline;
};

Unsharded OpenUnsharded(const std::string& root, IterJobSpec spec) {
  Unsharded u;
  u.cluster = std::make_unique<LocalCluster>(root, 2);
  auto p = Pipeline::Open(u.cluster.get(), "ref",
                          MakePipelineOptions(std::move(spec)));
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  if (p.ok()) u.pipeline = std::move(p.value());
  return u;
}

void DrainUnsharded(Pipeline* pipeline) {
  while (pipeline->pending() > 0) {
    auto stats = pipeline->RunEpoch();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }
}

std::vector<KV> ShardedSnapshot(const ShardRouter& router) {
  std::vector<KV> all;
  for (int s = 0; s < router.num_shards(); ++s) {
    auto part = router.shard(s)->ServingSnapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::map<std::string, std::string> ToMap(const std::vector<KV>& kvs) {
  std::map<std::string, std::string> m;
  for (const auto& kv : kvs) m[kv.key] = kv.value;
  return m;
}

/// Numeric parity: every key present in both, values equal within `tol`
/// (values >= 1e29 are treated as "infinity", SSSP's unreachable marker).
void ExpectNumericParity(const std::vector<KV>& sharded,
                         const std::vector<KV>& unsharded, double tol,
                         const std::string& what) {
  auto got = ToMap(sharded), want = ToMap(unsharded);
  ASSERT_EQ(got.size(), want.size()) << what << ": key sets differ";
  for (const auto& [key, value] : want) {
    auto it = got.find(key);
    ASSERT_TRUE(it != got.end()) << what << ": missing key " << key;
    auto a = ParseDouble(it->second);
    auto b = ParseDouble(value);
    ASSERT_TRUE(a.ok() && b.ok()) << what << ": unparsable value at " << key;
    if (*a >= 1e29 && *b >= 1e29) continue;
    EXPECT_NEAR(*a, *b, tol) << what << ": key " << key;
  }
}

void ExpectExactParity(const std::vector<KV>& sharded,
                       const std::vector<KV>& unsharded,
                       const std::string& what) {
  auto got = ToMap(sharded), want = ToMap(unsharded);
  ASSERT_EQ(got.size(), want.size()) << what << ": key sets differ";
  for (const auto& [key, value] : want) {
    auto it = got.find(key);
    ASSERT_TRUE(it != got.end()) << what << ": missing key " << key;
    EXPECT_EQ(it->second, value) << what << ": key " << key;
  }
}

void ExpectUniformEpochs(const ShardRouter& router, uint64_t epoch,
                         const std::string& what) {
  for (uint64_t e : router.CommittedEpochs()) {
    EXPECT_EQ(e, epoch) << what << ": mixed epoch vector";
  }
}

class ServingParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_serving_parity";
    ASSERT_TRUE(ResetDir(root_).ok());
  }
  std::string root_;
};

// ---------------------------------------------------------------------------
// PageRank: expander + ring, N = 1, 2, 4, bootstrap + streamed epochs
// ---------------------------------------------------------------------------

TEST_F(ServingParityTest, PageRankMatchesUnshardedOnExpander) {
  GraphGenOptions gen;
  gen.num_vertices = 96;
  gen.avg_degree = 5;
  auto graph = GenGraph(gen);
  auto spec = pagerank::MakeIterSpec("pr", 2, 100, 1e-8);
  const auto init = InitStateFor(spec, graph);

  // Shared delta schedule: the same batches stream into every system.
  std::vector<std::vector<DeltaKV>> rounds;
  {
    auto moving = graph;
    for (int r = 0; r < 3; ++r) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = 0.15;
      dopt.seed = 100 + r;
      rounds.push_back(GenGraphDelta(gen, dopt, &moving));
    }
  }

  // Ground truth: the unsharded pipeline, snapshotted after every epoch.
  auto ref = OpenUnsharded(JoinPath(root_, "ref"), spec);
  ASSERT_TRUE(ref.pipeline != nullptr);
  ASSERT_TRUE(ref.pipeline->Bootstrap(graph, init).ok());
  std::vector<std::vector<KV>> want = {ref.pipeline->ServingSnapshot()};
  for (const auto& batch : rounds) {
    ASSERT_TRUE(ref.pipeline->AppendBatch(batch).ok());
    DrainUnsharded(ref.pipeline.get());
    want.push_back(ref.pipeline->ServingSnapshot());
  }

  for (int shards : {1, 2, 4}) {
    std::string what = "pagerank/expander/N=" + std::to_string(shards);
    auto router =
        ShardRouter::Open(JoinPath(root_, "s" + std::to_string(shards)), "pr",
                          CoordinatedOptions(spec, shards));
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
    ExpectUniformEpochs(**router, 0, what);
    ExpectNumericParity(ShardedSnapshot(**router), want[0], 1e-5,
                        what + "/bootstrap");
    for (size_t r = 0; r < rounds.size(); ++r) {
      ASSERT_TRUE((*router)->AppendBatch(rounds[r]).ok());
      ASSERT_TRUE((*router)->DrainAll().ok());
      ExpectUniformEpochs(**router, r + 1, what);
      ExpectNumericParity(ShardedSnapshot(**router), want[r + 1], 1e-5,
                          what + "/epoch" + std::to_string(r + 1));
    }
  }
}

TEST_F(ServingParityTest, PageRankMatchesUnshardedOnRing) {
  // Every reduce input crosses a shard boundary: without the exchange each
  // vertex would keep its bootstrap-local rank forever.
  const int n = 48;
  auto graph = RingGraph(n, /*weighted=*/false);
  GraphGenOptions gen;
  gen.num_vertices = n;
  gen.avg_degree = 2;
  auto spec = pagerank::MakeIterSpec("prring", 2, 100, 1e-8);
  const auto init = InitStateFor(spec, graph);

  auto ref = OpenUnsharded(JoinPath(root_, "ref"), spec);
  ASSERT_TRUE(ref.pipeline != nullptr);
  ASSERT_TRUE(ref.pipeline->Bootstrap(graph, init).ok());

  auto router = ShardRouter::Open(JoinPath(root_, "ring"), "prring",
                                  CoordinatedOptions(spec, 4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
  ExpectNumericParity(ShardedSnapshot(**router),
                      ref.pipeline->ServingSnapshot(), 1e-5,
                      "pagerank/ring/bootstrap");

  auto moving = graph;
  for (int r = 0; r < 2; ++r) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.2;
    dopt.seed = 400 + r;
    auto batch = GenGraphDelta(gen, dopt, &moving);
    ASSERT_TRUE(ref.pipeline->AppendBatch(batch).ok());
    DrainUnsharded(ref.pipeline.get());
    ASSERT_TRUE((*router)->AppendBatch(batch).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    ExpectUniformEpochs(**router, r + 1, "pagerank/ring");
    ExpectNumericParity(ShardedSnapshot(**router),
                        ref.pipeline->ServingSnapshot(), 1e-5,
                        "pagerank/ring/epoch" + std::to_string(r + 1));
  }
}

// ---------------------------------------------------------------------------
// SSSP: distances relax across shard boundaries (ring = worst case)
// ---------------------------------------------------------------------------

TEST_F(ServingParityTest, SsspMatchesUnshardedAcrossShardBoundaries) {
  const int n = 32;
  auto graph = RingGraph(n, /*weighted=*/true);
  const std::string source = PaddedNum(0);
  auto spec = sssp::MakeIterSpec("sp", source, 2, 200);
  const auto init = InitStateFor(spec, graph);

  auto ref = OpenUnsharded(JoinPath(root_, "ref"), spec);
  ASSERT_TRUE(ref.pipeline != nullptr);
  ASSERT_TRUE(ref.pipeline->Bootstrap(graph, init).ok());

  auto router = ShardRouter::Open(JoinPath(root_, "sharded"), "sp",
                                  CoordinatedOptions(spec, 4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
  // On the ring, every distance > 0 depends on a chain of cross-shard
  // relaxations; parity here is impossible without the exchange.
  ExpectNumericParity(ShardedSnapshot(**router),
                      ref.pipeline->ServingSnapshot(), 1e-9,
                      "sssp/ring/bootstrap");

  // Delta epochs: add shortcut edges (distance decreases relax exactly,
  // matching the incremental engine's contract).
  for (int r = 0; r < 2; ++r) {
    std::vector<DeltaKV> batch;
    int from = 3 + 11 * r, to = (from + n / 2) % n;
    const std::string key = PaddedNum(from);
    for (const auto& kv : graph) {
      if (kv.key != key) continue;
      std::string nv = kv.value + " " + PaddedNum(to) + ":0.5";
      batch.push_back(DeltaKV{DeltaOp::kDelete, kv.key, kv.value});
      batch.push_back(DeltaKV{DeltaOp::kInsert, kv.key, nv});
    }
    ASSERT_FALSE(batch.empty());
    for (auto& kv : graph) {
      if (kv.key == key) kv.value = batch.back().value;
    }
    ASSERT_TRUE(ref.pipeline->AppendBatch(batch).ok());
    DrainUnsharded(ref.pipeline.get());
    ASSERT_TRUE((*router)->AppendBatch(batch).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    ExpectUniformEpochs(**router, r + 1, "sssp/ring");
    ExpectNumericParity(ShardedSnapshot(**router),
                        ref.pipeline->ServingSnapshot(), 1e-9,
                        "sssp/ring/epoch" + std::to_string(r + 1));
  }
}

// ---------------------------------------------------------------------------
// ConComp: labels propagate through cross-shard components
// ---------------------------------------------------------------------------

TEST_F(ServingParityTest, ConCompMatchesUnshardedOnSparseComponents) {
  GraphGenOptions gen;
  gen.num_vertices = 96;
  gen.avg_degree = 2;  // sparse: several components spanning shards
  auto graph = concomp::Symmetrize(GenGraph(gen));
  auto spec = concomp::MakeIterSpec("cc", 2, 200);
  const auto init = InitStateFor(spec, graph);

  auto ref = OpenUnsharded(JoinPath(root_, "ref"), spec);
  ASSERT_TRUE(ref.pipeline != nullptr);
  ASSERT_TRUE(ref.pipeline->Bootstrap(graph, init).ok());

  auto router = ShardRouter::Open(JoinPath(root_, "sharded"), "cc",
                                  CoordinatedOptions(spec, 4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
  ExpectExactParity(ShardedSnapshot(**router),
                    ref.pipeline->ServingSnapshot(), "concomp/bootstrap");
  // And the sharded labels are actually right, not just consistently
  // wrong: they match the offline union-find ground truth.
  EXPECT_EQ(concomp::ErrorRate(ShardedSnapshot(**router),
                               concomp::Reference(graph)),
            0.0);

  auto moving = graph;
  for (int r = 0; r < 2; ++r) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    dopt.seed = 500 + r;
    auto batch = GenGraphDelta(gen, dopt, &moving);
    ASSERT_TRUE(ref.pipeline->AppendBatch(batch).ok());
    DrainUnsharded(ref.pipeline.get());
    ASSERT_TRUE((*router)->AppendBatch(batch).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    ExpectUniformEpochs(**router, r + 1, "concomp");
    ExpectExactParity(ShardedSnapshot(**router),
                      ref.pipeline->ServingSnapshot(),
                      "concomp/epoch" + std::to_string(r + 1));
  }
}

// ---------------------------------------------------------------------------
// The MRBG auto-off fallback (full re-computation) folds remote values too
// ---------------------------------------------------------------------------

TEST_F(ServingParityTest, ParityHoldsThroughMrbgAutoOffFallback) {
  GraphGenOptions gen;
  gen.num_vertices = 64;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  auto spec = pagerank::MakeIterSpec("proff", 2, 100, 1e-8);
  const auto init = InitStateFor(spec, graph);

  auto options = CoordinatedOptions(spec, 3);
  options.pipeline.engine.mrbg_auto_off_ratio = 0.0;  // always fall back
  auto ref_cluster = std::make_unique<LocalCluster>(JoinPath(root_, "ref"), 2);
  auto ref_opts = MakePipelineOptions(spec);
  ref_opts.engine.mrbg_auto_off_ratio = 0.0;
  auto ref_pipeline = Pipeline::Open(ref_cluster.get(), "ref", ref_opts);
  ASSERT_TRUE(ref_pipeline.ok()) << ref_pipeline.status().ToString();
  ASSERT_TRUE((*ref_pipeline)->Bootstrap(graph, init).ok());

  auto router = ShardRouter::Open(JoinPath(root_, "sharded"), "proff", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
  ExpectNumericParity(ShardedSnapshot(**router),
                      (*ref_pipeline)->ServingSnapshot(), 1e-5,
                      "autooff/bootstrap");

  auto moving = graph;
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.3;
  dopt.seed = 77;
  auto batch = GenGraphDelta(gen, dopt, &moving);
  ASSERT_TRUE((*ref_pipeline)->AppendBatch(batch).ok());
  DrainUnsharded(ref_pipeline->get());
  ASSERT_TRUE((*router)->AppendBatch(batch).ok());
  ASSERT_TRUE((*router)->DrainAll().ok());
  ExpectNumericParity(ShardedSnapshot(**router),
                      (*ref_pipeline)->ServingSnapshot(), 1e-5,
                      "autooff/epoch1");
}

// ---------------------------------------------------------------------------
// Uniform pinned snapshot vectors
// ---------------------------------------------------------------------------

TEST_F(ServingParityTest, PinnedSnapshotVectorIsUniformAfterCoordination) {
  GraphGenOptions gen;
  gen.num_vertices = 64;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  auto spec = pagerank::MakeIterSpec("pru", 2, 100, 1e-8);
  const auto init = InitStateFor(spec, graph);

  auto router = ShardRouter::Open(JoinPath(root_, "uniform"), "pru",
                                  CoordinatedOptions(spec, 4));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
  ShardGroup group(router->get());

  auto snap = group.PinSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->epochs(), std::vector<uint64_t>(4, 0));

  auto moving = graph;
  for (int r = 0; r < 2; ++r) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.2;
    dopt.seed = 600 + r;
    auto batch = GenGraphDelta(gen, dopt, &moving);
    ASSERT_TRUE((*router)->AppendBatch(batch).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    auto fresh = group.PinSnapshot();
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh->epochs(),
              std::vector<uint64_t>(4, static_cast<uint64_t>(r + 1)))
        << "coordinated commit must advance every shard together";
  }
  // The old pin still serves its uniform cut.
  EXPECT_EQ(snap->epochs(), std::vector<uint64_t>(4, 0));
}

TEST_F(ServingParityTest, ConcurrentPinsStayUniformWhileBarriersFlip) {
  GraphGenOptions gen;
  gen.num_vertices = 60;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  auto spec = pagerank::MakeIterSpec("prc2", 1, 60, 1e-6);
  const auto init = InitStateFor(spec, graph);

  auto options = CoordinatedOptions(spec, 3);
  options.pipeline.min_batch = 1;
  options.manager.poll_interval_ms = 2;
  auto router = ShardRouter::Open(JoinPath(root_, "concurrent"), "prc2",
                                  options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
  ShardGroup group(router->get());

  // Readers pin continuously while the coordinator commits barrier epochs
  // underneath: every pin must be one uniform, monotonically advancing
  // cut — the seqlock retry makes the per-shard CURRENT flips invisible.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load()) {
        auto snap = group.PinSnapshot();
        if (!snap.ok()) {
          ++failures;
          return;
        }
        for (uint64_t e : snap->epochs()) {
          if (e != snap->epochs()[0] || e < last) {
            ++failures;
            return;
          }
        }
        last = snap->epochs()[0];
      }
    });
  }
  (*router)->Start();
  auto moving = graph;
  for (int r = 0; r < 4 && failures.load() == 0; ++r) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.2;
    dopt.seed = 900 + r;
    auto batch = GenGraphDelta(gen, dopt, &moving);
    ASSERT_TRUE((*router)->AppendBatch(batch).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  for (int i = 0; i < 500 && (*router)->TotalPending() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  (*router)->Stop();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*router)->TotalPending(), 0u);
  ExpectUniformEpochs(**router, (*router)->CommittedEpochs()[0],
                      "concurrent pins");
}

// ---------------------------------------------------------------------------
// Barrier crash recovery: an incomplete commit rolls back to N-1 everywhere
// ---------------------------------------------------------------------------

class BarrierRecoveryTest : public ServingParityTest {};

TEST_F(BarrierRecoveryTest, CrashMidBarrierNeverExposesAMixedEpoch) {
  GraphGenOptions gen;
  gen.num_vertices = 60;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  auto spec = pagerank::MakeIterSpec("prc", 2, 100, 1e-8);
  const auto init = InitStateFor(spec, graph);

  // The no-crash twin: what the recovered router must converge to.
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.25;
  dopt.seed = 800;
  auto moving = graph;
  auto batch = GenGraphDelta(gen, dopt, &moving);
  auto twin = ShardRouter::Open(JoinPath(root_, "twin"), "prc",
                                CoordinatedOptions(spec, 3));
  ASSERT_TRUE(twin.ok()) << twin.status().ToString();
  ASSERT_TRUE((*twin)->Bootstrap(graph, init).ok());
  ASSERT_TRUE((*twin)->AppendBatch(batch).ok());
  ASSERT_TRUE((*twin)->DrainAll().ok());
  auto want = ShardedSnapshot(**twin);

  for (const std::string stage : {"staged", "barrier", "mid_flip", "flipped"}) {
    std::string root = JoinPath(root_, "crash_" + stage);
    std::atomic<bool> armed{false};
    std::atomic<bool> fired{false};
    auto options = CoordinatedOptions(spec, 3);
    options.barrier_crash_hook = [&, stage](const std::string& s) {
      if (s != stage || !armed.load()) return false;
      return !fired.exchange(true);
    };
    {
      auto router = ShardRouter::Open(root, "prc", options);
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      ASSERT_TRUE((*router)->Bootstrap(graph, init).ok()) << stage;
      armed.store(true);  // crash the next (delta) barrier, not bootstrap
      ASSERT_TRUE((*router)->AppendBatch(batch).ok());
      auto st = (*router)->DrainAll();
      ASSERT_FALSE(st.ok()) << stage << ": simulated crash must surface";
      // Cross-shard reads on the wreck: before any flip the router still
      // serves the old uniform cut; a crash that left CURRENTs mixed
      // refuses pins instead of serving a mixed vector.
      ShardGroup wreck(router->get());
      auto pinned = wreck.PinSnapshot();
      if (stage == "staged" || stage == "barrier") {
        ASSERT_TRUE(pinned.ok()) << stage;
        EXPECT_EQ(pinned->epochs(), std::vector<uint64_t>(3, 0)) << stage;
      } else {
        EXPECT_EQ(pinned.status().code(), Status::Code::kFailedPrecondition)
            << stage;
        // Point reads refuse too — they would otherwise leak epoch-N
        // values that recovery is about to roll back.
        EXPECT_EQ((*router)->Lookup(graph.front().key).status().code(),
                  Status::Code::kFailedPrecondition)
            << stage;
      }
      // The simulated coordinator is dead; reopen "after the crash".
    }
    auto reopened_options = CoordinatedOptions(spec, 3);
    reopened_options.reset = false;
    auto reopened = ShardRouter::Open(root, "prc", reopened_options);
    ASSERT_TRUE(reopened.ok()) << stage << ": " << reopened.status().ToString();
    // Rolled back to epoch 0 on EVERY shard — no mixed vector, ever.
    ASSERT_TRUE((*reopened)->bootstrapped()) << stage;
    ExpectUniformEpochs(**reopened, 0, "recovery/" + stage);
    // The drained-but-uncommitted deltas are still in the logs…
    EXPECT_GT((*reopened)->TotalPending(), 0u) << stage;
    // …and replay to exactly the no-crash result.
    ASSERT_TRUE((*reopened)->DrainAll().ok()) << stage;
    ExpectUniformEpochs(**reopened, 1, "recovery/" + stage);
    ExpectNumericParity(ShardedSnapshot(**reopened), want, 1e-5,
                        "recovery/" + stage);
  }
}

TEST_F(BarrierRecoveryTest, CrashInsideBootstrapBarrierRollsBackToEmpty) {
  GraphGenOptions gen;
  gen.num_vertices = 48;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  auto spec = pagerank::MakeIterSpec("prb", 2, 100, 1e-8);
  const auto init = InitStateFor(spec, graph);

  std::string root = JoinPath(root_, "bootcrash");
  std::atomic<bool> fired{false};
  auto options = CoordinatedOptions(spec, 3);
  options.barrier_crash_hook = [&](const std::string& s) {
    return s == "mid_flip" && !fired.exchange(true);
  };
  {
    auto router = ShardRouter::Open(root, "prb", options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    auto st = (*router)->Bootstrap(graph, init);
    ASSERT_FALSE(st.ok()) << "simulated bootstrap crash must surface";
  }
  // Recovery: epoch 0 never happened anywhere — all-or-nothing bootstrap.
  auto reopened_options = CoordinatedOptions(spec, 3);
  reopened_options.reset = false;
  auto reopened = ShardRouter::Open(root, "prb", reopened_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE((*reopened)->bootstrapped());
  // A clean re-bootstrap converges to the unsharded result.
  ASSERT_TRUE((*reopened)->Bootstrap(graph, init).ok());
  ExpectUniformEpochs(**reopened, 0, "bootstrap recovery");
  auto ref = OpenUnsharded(JoinPath(root_, "bootref"), spec);
  ASSERT_TRUE(ref.pipeline != nullptr);
  ASSERT_TRUE(ref.pipeline->Bootstrap(graph, init).ok());
  ExpectNumericParity(ShardedSnapshot(**reopened),
                      ref.pipeline->ServingSnapshot(), 1e-5,
                      "bootstrap recovery");
}

}  // namespace
}  // namespace i2mr
