// Tests for the MapReduce substrate: correctness vs a sequential reference,
// partitioning, combiners, metrics, retries/failure injection.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "io/env.h"
#include "io/record_file.h"
#include "mr/cluster.h"
#include "mr/shuffle.h"

namespace i2mr {
namespace {

// Tokenizing word-count mapper.
class WordCountMapper : public Mapper {
 public:
  void Map(const std::string& /*key*/, const std::string& value,
           MapContext* ctx) override {
    std::istringstream in(value);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
  }
};

// Integer-sum reducer.
class SumReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    uint64_t total = 0;
    for (const auto& v : values) total += *ParseNum(v);
    ctx->Emit(key, std::to_string(total));
  }
};

class MrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_mr_test";
  }

  // Runs word count over `lines` with the given cluster config; returns the
  // aggregated counts.
  std::map<std::string, uint64_t> RunWordCount(
      LocalCluster* cluster, const std::vector<std::string>& lines,
      int num_parts, int num_reducers, bool with_combiner,
      JobResult* result_out = nullptr,
      std::function<bool(const TaskId&)> fail_hook = nullptr) {
    std::vector<KV> records;
    for (size_t i = 0; i < lines.size(); ++i) {
      records.push_back({"line" + std::to_string(i), lines[i]});
    }
    EXPECT_TRUE(cluster->dfs()->WriteDataset("wc_in", records, num_parts).ok());

    JobSpec spec;
    spec.name = "wordcount";
    spec.input_parts = *cluster->dfs()->Parts("wc_in");
    spec.mapper = [] { return std::make_unique<WordCountMapper>(); };
    spec.reducer = [] { return std::make_unique<SumReducer>(); };
    if (with_combiner) {
      spec.combiner = [] { return std::make_unique<SumReducer>(); };
    }
    spec.num_reduce_tasks = num_reducers;
    spec.output_dir = JoinPath(cluster->root(), "out/wc");
    spec.fail_hook = std::move(fail_hook);
    JobResult result = cluster->RunJob(spec);
    EXPECT_TRUE(result.ok()) << result.status.ToString();
    if (result_out != nullptr) {
      result_out->status = result.status;
      result_out->metrics = result.metrics;
      result_out->output_parts = result.output_parts;
      result_out->wall_ms = result.wall_ms;
    }

    std::map<std::string, uint64_t> counts;
    for (const auto& part : result.output_parts) {
      if (!FileExists(part)) continue;
      auto recs = ReadRecords(part);
      EXPECT_TRUE(recs.ok());
      for (const auto& kv : *recs) {
        EXPECT_EQ(counts.count(kv.key), 0u) << "key reduced twice: " << kv.key;
        counts[kv.key] = *ParseNum(kv.value);
      }
    }
    return counts;
  }

  static std::map<std::string, uint64_t> ReferenceCounts(
      const std::vector<std::string>& lines) {
    std::map<std::string, uint64_t> counts;
    for (const auto& line : lines) {
      std::istringstream in(line);
      std::string w;
      while (in >> w) counts[w]++;
    }
    return counts;
  }

  std::string root_;
};

TEST_F(MrTest, WordCountMatchesReference) {
  LocalCluster cluster(root_, 4);
  std::vector<std::string> lines = {
      "the quick brown fox", "the lazy dog", "the fox jumps over the dog",
      "quick quick quick"};
  auto got = RunWordCount(&cluster, lines, 2, 3, /*with_combiner=*/false);
  EXPECT_EQ(got, ReferenceCounts(lines));
}

TEST_F(MrTest, CombinerDoesNotChangeResult) {
  std::vector<std::string> lines;
  for (int i = 0; i < 40; ++i) {
    lines.push_back("w" + std::to_string(i % 7) + " w" + std::to_string(i % 3) +
                    " w" + std::to_string(i % 11));
  }
  LocalCluster cluster(root_, 4);
  auto without = RunWordCount(&cluster, lines, 4, 4, false);
  LocalCluster cluster2(root_ + "_2", 4);
  auto with = RunWordCount(&cluster2, lines, 4, 4, true);
  EXPECT_EQ(without, with);
  EXPECT_EQ(without, ReferenceCounts(lines));
}

TEST_F(MrTest, CombinerReducesShuffleVolume) {
  std::vector<std::string> lines(50, "a a a a a a a a b b");
  LocalCluster c1(root_ + "_nc", 2);
  JobResult r1;
  RunWordCount(&c1, lines, 2, 2, false, &r1);
  LocalCluster c2(root_ + "_wc", 2);
  JobResult r2;
  RunWordCount(&c2, lines, 2, 2, true, &r2);
  EXPECT_LT(r2.metrics->shuffle_bytes.load(), r1.metrics->shuffle_bytes.load());
}

TEST_F(MrTest, MetricsCountRecords) {
  LocalCluster cluster(root_, 2);
  std::vector<std::string> lines = {"a b", "c"};
  JobResult result;
  RunWordCount(&cluster, lines, 2, 2, false, &result);
  EXPECT_EQ(result.metrics->map_input_records.load(), 2);
  EXPECT_EQ(result.metrics->map_output_records.load(), 3);
  EXPECT_EQ(result.metrics->reduce_groups.load(), 3);
  EXPECT_EQ(result.metrics->reduce_output_records.load(), 3);
  EXPECT_GT(result.metrics->shuffle_bytes.load(), 0);
}

TEST_F(MrTest, SingleReducerSeesAllKeysSorted) {
  LocalCluster cluster(root_, 2);
  std::vector<KV> records;
  for (int i = 99; i >= 0; --i) records.push_back({PaddedNum(i), "x"});
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", records, 3).ok());

  std::vector<std::string> seen_keys;
  JobSpec spec;
  spec.input_parts = *cluster.dfs()->Parts("in");
  spec.mapper = [] {
    return std::make_unique<FnMapper>(
        [](const std::string& k, const std::string& v, MapContext* ctx) {
          ctx->Emit(k, v);
        });
  };
  spec.reducer = [] {
    return std::make_unique<FnReducer>(
        [](const std::string& k, const std::vector<std::string>&,
           ReduceContext* ctx) { ctx->Emit(k, "seen"); });
  };
  spec.num_reduce_tasks = 1;
  spec.output_dir = JoinPath(cluster.root(), "out/sorted");
  auto result = cluster.RunJob(spec);
  ASSERT_TRUE(result.ok());
  auto out = ReadRecords(result.output_parts[0]);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 100u);
  for (size_t i = 0; i < out->size(); ++i) {
    EXPECT_EQ((*out)[i].key, PaddedNum(static_cast<int>(i)));
  }
}

TEST_F(MrTest, CustomPartitionerRoutesKeys) {
  // Route every key to partition 0; partition 1 must produce no output file
  // contents.
  class ZeroPartitioner : public Partitioner {
   public:
    uint32_t Partition(std::string_view, uint32_t) const override { return 0; }
  };
  LocalCluster cluster(root_, 2);
  std::vector<KV> records = {{"a", "1"}, {"b", "2"}, {"c", "3"}};
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", records, 1).ok());
  JobSpec spec;
  spec.input_parts = *cluster.dfs()->Parts("in");
  spec.mapper = [] {
    return std::make_unique<FnMapper>(
        [](const std::string& k, const std::string& v, MapContext* ctx) {
          ctx->Emit(k, v);
        });
  };
  spec.reducer = [] {
    return std::make_unique<FnReducer>(
        [](const std::string& k, const std::vector<std::string>& vs,
           ReduceContext* ctx) { ctx->Emit(k, vs[0]); });
  };
  spec.partitioner = std::make_shared<ZeroPartitioner>();
  spec.num_reduce_tasks = 2;
  spec.output_dir = JoinPath(cluster.root(), "out/zp");
  auto result = cluster.RunJob(spec);
  ASSERT_TRUE(result.ok());
  auto p0 = ReadRecords(result.output_parts[0]);
  auto p1 = ReadRecords(result.output_parts[1]);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p0->size(), 3u);
  EXPECT_TRUE(p1->empty());
}

TEST_F(MrTest, MapperFlushRunsAtEndOfInput) {
  // Mapper that aggregates locally and emits in Flush (map-side aggregation
  // used by Kmeans / APriori).
  class LocalAggMapper : public Mapper {
   public:
    void Map(const std::string&, const std::string& v, MapContext*) override {
      sum_ += *ParseNum(v);
    }
    void Flush(MapContext* ctx) override {
      ctx->Emit("total", std::to_string(sum_));
    }

   private:
    uint64_t sum_ = 0;
  };
  LocalCluster cluster(root_, 2);
  std::vector<KV> records;
  for (int i = 1; i <= 10; ++i) records.push_back({"k", std::to_string(i)});
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", records, 2).ok());
  JobSpec spec;
  spec.input_parts = *cluster.dfs()->Parts("in");
  spec.mapper = [] { return std::make_unique<LocalAggMapper>(); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };
  spec.num_reduce_tasks = 1;
  spec.output_dir = JoinPath(cluster.root(), "out/agg");
  auto result = cluster.RunJob(spec);
  ASSERT_TRUE(result.ok());
  auto out = ReadRecords(result.output_parts[0]);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].value, "55");
}

TEST_F(MrTest, FailedTasksAreRetriedAndResultIsCorrect) {
  LocalCluster cluster(root_, 4);
  std::vector<std::string> lines = {"x y z", "x x", "z z z z"};
  // Fail the first attempt of map task 1 and reduce task 0.
  auto hook = [](const TaskId& id) {
    return id.attempt == 0 &&
           ((id.kind == TaskId::Kind::kMap && id.index == 1) ||
            (id.kind == TaskId::Kind::kReduce && id.index == 0));
  };
  auto got = RunWordCount(&cluster, lines, 3, 2, false, nullptr, hook);
  EXPECT_EQ(got, ReferenceCounts(lines));
}

TEST_F(MrTest, PermanentTaskFailureFailsJob) {
  LocalCluster cluster(root_, 2);
  std::vector<KV> records = {{"k", "v"}};
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", records, 1).ok());
  JobSpec spec;
  spec.input_parts = *cluster.dfs()->Parts("in");
  spec.mapper = [] {
    return std::make_unique<FnMapper>(
        [](const std::string& k, const std::string& v, MapContext* ctx) {
          ctx->Emit(k, v);
        });
  };
  spec.reducer = [] {
    return std::make_unique<FnReducer>(
        [](const std::string& k, const std::vector<std::string>& vs,
           ReduceContext* ctx) { ctx->Emit(k, vs[0]); });
  };
  spec.num_reduce_tasks = 1;
  spec.output_dir = JoinPath(cluster.root(), "out/fail");
  spec.fail_hook = [](const TaskId&) { return true; };  // always fail
  spec.max_attempts = 2;
  auto result = cluster.RunJob(spec);
  EXPECT_FALSE(result.ok());
}

TEST_F(MrTest, JobValidation) {
  LocalCluster cluster(root_, 1);
  JobSpec spec;  // missing everything
  EXPECT_FALSE(cluster.RunJob(spec).ok());
}

TEST_F(MrTest, CostModelJobStartupAddsWallTime) {
  CostModel cost;
  cost.job_startup_ms = 50;
  LocalCluster cluster(root_, 2, cost);
  std::vector<std::string> lines = {"a"};
  JobResult result;
  RunWordCount(&cluster, lines, 1, 1, false, &result);
  EXPECT_GE(result.wall_ms, 50.0);
}

TEST_F(MrTest, SharedRootInstancesGetDisjointJobDirs) {
  // N shard clusters may live under one root (the serving layer's
  // re-attach path): job scratch dirs must never collide across
  // instances, and a second attacher must not wipe the first one's
  // in-flight job dirs.
  LocalCluster first(root_, 1);
  std::string first_job = first.NewJobDir("job");
  ASSERT_TRUE(WriteStringToFile(JoinPath(first_job, "spill.dat"), "x").ok());

  LocalCluster second(root_, 1, CostModel{}, /*reset=*/false);
  // The re-attach did NOT clear the sibling's live job dir...
  EXPECT_TRUE(FileExists(JoinPath(first_job, "spill.dat")));
  // ...and the same logical job name lands on a different directory.
  std::string second_job = second.NewJobDir("job");
  EXPECT_NE(first_job, second_job);
  // Both instances keep allocating without ever colliding.
  std::set<std::string> dirs = {first_job, second_job};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(dirs.insert(first.NewJobDir("job")).second);
    EXPECT_TRUE(dirs.insert(second.NewJobDir("job")).second);
  }
}

TEST_F(MrTest, FreshReattachAfterAllInstancesGoneClearsStaleJobDirs) {
  std::string stale;
  {
    LocalCluster cluster(root_, 1);
    stale = cluster.NewJobDir("crashed");
    ASSERT_TRUE(WriteStringToFile(JoinPath(stale, "spill.dat"), "x").ok());
  }
  // No live instance on the root: the re-attach clears crashed-run spills
  // (a replayed job must not merge them into its reduce input).
  LocalCluster reattached(root_, 1, CostModel{}, /*reset=*/false);
  EXPECT_FALSE(FileExists(JoinPath(stale, "spill.dat")));
}

// ---------------------------------------------------------------------------
// Shuffle internals
// ---------------------------------------------------------------------------

FlatKVRun MakeRun(const std::vector<KV>& records) {
  FlatKVRun run;
  for (const auto& kv : records) run.Append(kv.key, kv.value);
  return run;
}

TEST(ShuffleTest, SortAndCombineGroups) {
  FlatKVRun run = MakeRun({{"b", "2"}, {"a", "1"}, {"b", "3"}, {"a", "4"}});
  SumReducer combiner;
  ASSERT_TRUE(SortAndCombine(&run, &combiner).ok());
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run.key(0), "a");
  EXPECT_EQ(run.value(0), "5");
  EXPECT_EQ(run.key(1), "b");
  EXPECT_EQ(run.value(1), "5");
}

TEST(ShuffleTest, SortWithoutCombinerKeepsAll) {
  FlatKVRun run = MakeRun({{"b", "2"}, {"a", "1"}, {"b", "3"}});
  ASSERT_TRUE(SortAndCombine(&run, nullptr).ok());
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run.key(0), "a");
  EXPECT_EQ(run.key(1), "b");
  EXPECT_EQ(run.value(1), "2");
}

TEST(ShuffleTest, ConcurrentMapWritersFeedOneExchange) {
  // TSan coverage: many map-side writers publish runs into one exchange
  // concurrently; the merged reduce-side view must contain every record.
  const int kWriters = 8;
  const int kPartitions = 4;
  const int kPerWriter = 500;
  ShuffleExchange exchange(kPartitions, kDefaultShuffleMemoryBytes);
  Partitioner partitioner;
  std::string dir = ::testing::TempDir() + "/i2mr_exchange_tsan";
  ASSERT_TRUE(ResetDir(dir).ok());
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      ShuffleWriter writer(kPartitions, &partitioner,
                           JoinPath(dir, "map-" + std::to_string(w)),
                           &exchange);
      for (int i = 0; i < kPerWriter; ++i) {
        writer.Emit(PaddedNum(i % 97), "w" + std::to_string(w));
      }
      StageMetrics metrics;
      ASSERT_TRUE(writer.Finish(nullptr, &metrics).ok());
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_GT(exchange.bytes_held(), 0u);

  CostModel cost;
  StageMetrics metrics;
  size_t total = 0;
  for (int r = 0; r < kPartitions; ++r) {
    ShuffleReader::Source source;
    source.exchange = &exchange;
    source.partition = r;
    auto reader = ShuffleReader::Open(source, cost, &metrics);
    ASSERT_TRUE(reader.ok());
    total += (*reader)->num_records();
    std::string_view key;
    std::vector<std::string_view> values;
    std::string prev;
    while ((*reader)->NextGroup(&key, &values)) {
      EXPECT_GT(key, prev);  // groups arrive in sorted key order
      prev.assign(key);
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kWriters) * kPerWriter);
  EXPECT_GT(metrics.shuffle_bytes.load(), 0);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ShuffleTest, RetriedWriterReplacesItsEarlierOfferInsteadOfDuplicating) {
  // A map attempt can fail after offering some partitions; the retry
  // re-offers them. Writer-keyed offers must replace (like a retried disk
  // attempt overwriting its part-<r>.dat), never duplicate records.
  ShuffleExchange exchange(1, kDefaultShuffleMemoryBytes);
  FlatKVRun first;
  first.Append("a", "attempt0");
  ASSERT_TRUE(exchange.Offer(0, "map-0", std::move(first)));
  FlatKVRun second;
  second.Append("a", "attempt1");
  ASSERT_TRUE(exchange.Offer(0, "map-0", std::move(second)));
  auto runs = exchange.Borrow(0);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0]->value(0), "attempt1");

  // A different writer still adds a second run.
  FlatKVRun other;
  other.Append("a", "m1");
  ASSERT_TRUE(exchange.Offer(0, "map-1", std::move(other)));
  EXPECT_EQ(exchange.Borrow(0).size(), 2u);

  // If the retry's replacement overflows the budget, the stale run is
  // dropped (the caller spills, and the spill becomes the only source).
  ShuffleExchange tight(1, /*memory_budget_bytes=*/96);
  FlatKVRun small;
  small.Append("k", "v");
  ASSERT_TRUE(tight.Offer(0, "map-0", std::move(small)));
  FlatKVRun big;
  for (int i = 0; i < 64; ++i) big.Append("k", "grew-much-bigger");
  EXPECT_FALSE(tight.Offer(0, "map-0", std::move(big)));
  EXPECT_TRUE(tight.Borrow(0).empty());
  EXPECT_EQ(tight.bytes_held(), 0u);
}

TEST(ShuffleTest, ExchangeBudgetOverflowSpillsToDisk) {
  // A run bigger than the remaining budget is refused by Offer and lands
  // on disk; the reader merges exchange runs and spills transparently.
  const int kPartitions = 2;
  ShuffleExchange exchange(kPartitions, /*memory_budget_bytes=*/256);
  Partitioner partitioner;
  std::string dir = ::testing::TempDir() + "/i2mr_exchange_spill";
  ASSERT_TRUE(ResetDir(dir).ok());

  // First writer fits in the budget; second overflows and must spill.
  StageMetrics metrics;
  ShuffleWriter small(kPartitions, &partitioner, JoinPath(dir, "m0"),
                      &exchange);
  small.Emit("a", "1");
  ASSERT_TRUE(small.Finish(nullptr, &metrics).ok());
  ShuffleWriter big(kPartitions, &partitioner, JoinPath(dir, "m1"),
                    &exchange);
  for (int i = 0; i < 200; ++i) {
    big.Emit("a", "value-" + std::to_string(i));
  }
  ASSERT_TRUE(big.Finish(nullptr, &metrics).ok());

  uint32_t part_a = partitioner.Partition("a", kPartitions);
  char spill[32];
  std::snprintf(spill, sizeof(spill), "part-%05d.dat", part_a);
  EXPECT_TRUE(FileExists(JoinPath(JoinPath(dir, "m1"), spill)));

  CostModel cost;
  ShuffleReader::Source source;
  source.exchange = &exchange;
  source.partition = static_cast<int>(part_a);
  source.spill_files = {JoinPath(JoinPath(dir, "m0"), spill),
                        JoinPath(JoinPath(dir, "m1"), spill)};
  auto reader = ShuffleReader::Open(source, cost, &metrics);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_records(), 201u);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ShuffleTest, ReaderMergesSortedRunsAndGroups) {
  std::string dir = ::testing::TempDir() + "/i2mr_shuffle_test";
  ASSERT_TRUE(ResetDir(dir).ok());
  ASSERT_TRUE(WriteRecords(JoinPath(dir, "r1"),
                           {{"a", "1"}, {"c", "2"}, {"c", "3"}})
                  .ok());
  ASSERT_TRUE(WriteRecords(JoinPath(dir, "r2"), {{"b", "4"}, {"c", "5"}}).ok());
  StageMetrics metrics;
  CostModel cost;
  auto reader = ShuffleReader::Open(
      {JoinPath(dir, "r1"), JoinPath(dir, "r2"), JoinPath(dir, "missing")},
      cost, &metrics);
  ASSERT_TRUE(reader.ok());
  std::string key;
  std::vector<std::string> values;
  ASSERT_TRUE((*reader)->NextGroup(&key, &values));
  EXPECT_EQ(key, "a");
  EXPECT_EQ(values.size(), 1u);
  ASSERT_TRUE((*reader)->NextGroup(&key, &values));
  EXPECT_EQ(key, "b");
  ASSERT_TRUE((*reader)->NextGroup(&key, &values));
  EXPECT_EQ(key, "c");
  EXPECT_EQ(values.size(), 3u);
  EXPECT_FALSE((*reader)->NextGroup(&key, &values));
  EXPECT_GT(metrics.shuffle_bytes.load(), 0);
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace i2mr
