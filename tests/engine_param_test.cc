// Parameterized invariance sweeps: results must not depend on the number
// of partitions / reduce tasks, on query patterns, or on dataset layout.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/gimv.h"
#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "apps/wordcount.h"
#include "common/codec.h"
#include "core/incr_iter_engine.h"
#include "core/incr_job.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"
#include "mrbg/mrbg_store.h"
#include "io/env.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

// ---------------------------------------------------------------------------
// Partition-count invariance for the iterative engine, per dependency type.
// ---------------------------------------------------------------------------

class PartitionSweepTest : public ::testing::TestWithParam<int> {
 protected:
  std::string Root(const std::string& tag) {
    return ::testing::TempDir() + "/i2mr_psweep_" + tag + "_" +
           std::to_string(GetParam());
  }
};

TEST_P(PartitionSweepTest, PageRankInvariantUnderPartitioning) {
  const int n = GetParam();
  GraphGenOptions gen;
  gen.num_vertices = 150;
  auto graph = GenGraph(gen);
  LocalCluster cluster(Root("pr"), 4);
  IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr", n, 60, 1e-8));
  ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
  ASSERT_TRUE(engine.Run().ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = pagerank::Reference(graph, 60, 1e-8);
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-5);
}

TEST_P(PartitionSweepTest, GimvInvariantUnderPartitioning) {
  const int n = GetParam();
  MatrixGenOptions gen;
  gen.num_blocks = 4;
  gen.block_size = 6;
  gen.density = 0.25;
  auto blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);
  LocalCluster cluster(Root("gimv"), 4);
  IterativeEngine engine(
      &cluster, gimv::MakeIterSpec("gimv", n, gen.block_size, 0.15, 60, 1e-10));
  ASSERT_TRUE(engine.Prepare(blocks, vec).ok());
  ASSERT_TRUE(engine.Run().ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = gimv::Reference(blocks, vec, gen.block_size, 0.15, 60, 1e-10);
  EXPECT_LT(gimv::MaxDelta(*state, reference), 1e-6);
}

TEST_P(PartitionSweepTest, KmeansInvariantUnderPartitioning) {
  const int n = GetParam();
  PointsGenOptions gen;
  gen.num_points = 120;
  gen.dims = 2;
  gen.num_clusters = 3;
  auto points = GenPoints(gen);
  auto init = kmeans::InitialState(points, 3);
  LocalCluster cluster(Root("km"), 4);
  IterativeEngine engine(&cluster, kmeans::MakeIterSpec("km", n, 20, 1e-7));
  ASSERT_TRUE(engine.Prepare(points, init).ok());
  ASSERT_TRUE(engine.Run().ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto got = kmeans::DecodeCentroids((*state)[0].value);
  auto want = kmeans::Reference(points, kmeans::DecodeCentroids(init[0].value),
                                20, 1e-7);
  EXPECT_LT(kmeans::MaxCentroidDelta(got, want), 1e-5);
}

TEST_P(PartitionSweepTest, IncrementalRefreshInvariantUnderPartitioning) {
  const int n = GetParam();
  GraphGenOptions gen;
  gen.num_vertices = 120;
  auto graph = GenGraph(gen);
  LocalCluster cluster(Root("incr"), 4);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_incr", n, 80, 1e-8), options);
  ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(engine.RunIncremental(delta).ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = pagerank::Reference(graph, 80, 1e-8);
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Reduce-task-count invariance for the one-step incremental engine.
// ---------------------------------------------------------------------------

class ReducerSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ReducerSweepTest, WordCountResultsInvariant) {
  const int reducers = GetParam();
  std::string root = ::testing::TempDir() + "/i2mr_rsweep_" +
                     std::to_string(reducers);
  LocalCluster cluster(root, 4);
  std::vector<KV> docs;
  for (int i = 0; i < 60; ++i) {
    docs.push_back({PaddedNum(i), "w" + std::to_string(i % 9) + " w" +
                                      std::to_string(i % 4)});
  }
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 3).ok());
  IncrementalOneStepJob job(&cluster, wordcount::MakeSpec("wc", reducers));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  std::vector<DeltaKV> delta = {{DeltaOp::kInsert, PaddedNum(100), "w0 w1 w2"}};
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("d", delta, 1).ok());
  ASSERT_TRUE(job.RunIncremental(*cluster.dfs()->Parts("d")).ok());

  docs.push_back({PaddedNum(100), "w0 w1 w2"});
  auto want = wordcount::Reference(docs);
  auto got = job.Results();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want.size());
  for (const auto& kv : *got) {
    EXPECT_EQ(*ParseNum(kv.value), want[kv.key]) << kv.key;
  }
}

INSTANTIATE_TEST_SUITE_P(Reducers, ReducerSweepTest,
                         ::testing::Values(1, 2, 5, 9));

// ---------------------------------------------------------------------------
// MRBG-Store query-pattern robustness sweeps.
// ---------------------------------------------------------------------------

struct QueryPatternCase {
  const char* name;
  int stride;        // query every stride-th key
  bool with_missing; // interleave keys that were never stored
};

class QueryPatternTest : public ::testing::TestWithParam<QueryPatternCase> {};

TEST_P(QueryPatternTest, AllPatternsReturnCorrectChunks) {
  const auto& param = GetParam();
  std::string dir =
      ::testing::TempDir() + "/i2mr_qpattern_" + std::string(param.name);
  ASSERT_TRUE(ResetDir(dir).ok());
  MRBGStoreOptions options;
  options.gap_threshold_bytes = 128;
  options.read_cache_bytes = 2048;
  auto store = MRBGStore::Open(dir, options);
  ASSERT_TRUE(store.ok());

  const int kKeys = 120;
  for (int batch = 0; batch < 3; ++batch) {
    for (int k = batch; k < kKeys; k += batch + 1) {
      Chunk c;
      c.key = PaddedNum(k);
      c.entries.push_back(
          ChunkEntry{static_cast<uint64_t>(batch), "b" + std::to_string(batch)});
      ASSERT_TRUE((*store)->AppendChunk(c).ok());
    }
    ASSERT_TRUE((*store)->FinishBatch().ok());
  }

  std::vector<std::string> keys;
  for (int k = 0; k < kKeys; k += param.stride) {
    keys.push_back(PaddedNum(k));
    if (param.with_missing) keys.push_back(PaddedNum(10000 + k));  // absent
  }
  ASSERT_TRUE((*store)->PrepareQueries(keys).ok());
  for (const auto& key : keys) {
    auto c = (*store)->Query(key);
    auto num = *ParseNum(key);
    if (num >= 10000) {
      EXPECT_TRUE(c.status().IsNotFound()) << key;
      continue;
    }
    ASSERT_TRUE(c.ok()) << key << ": " << c.status().ToString();
    // The latest batch whose stride covers this key wins.
    int expected_batch = 0;
    for (int b = 2; b >= 0; --b) {
      if (num % (b + 1) == static_cast<uint64_t>(b) % (b + 1) &&
          num >= static_cast<uint64_t>(b)) {
        expected_batch = b;
        break;
      }
    }
    EXPECT_EQ(c->entries[0].v2, "b" + std::to_string(expected_batch)) << key;
  }
  ASSERT_TRUE((*store)->Close().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, QueryPatternTest,
    ::testing::Values(QueryPatternCase{"dense", 1, false},
                      QueryPatternCase{"sparse", 7, false},
                      QueryPatternCase{"dense_missing", 1, true},
                      QueryPatternCase{"sparse_missing", 5, true}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// SSSP sweep over sources: engine == Dijkstra for each.
// ---------------------------------------------------------------------------

class SsspSourceSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SsspSourceSweepTest, MatchesDijkstraFromAnySource) {
  GraphGenOptions gen;
  gen.num_vertices = 80;
  gen.avg_degree = 4;
  gen.weighted = true;
  gen.seed = 21;
  auto graph = GenGraph(gen);
  std::string source = PaddedNum(GetParam());
  std::string root = ::testing::TempDir() + "/i2mr_sssp_src_" +
                     std::to_string(GetParam());
  LocalCluster cluster(root, 3);
  auto spec = sssp::MakeIterSpec("sssp", source, 3);
  std::vector<KV> init_state;
  for (const auto& kv : graph) {
    init_state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  IterativeEngine engine(&cluster, spec);
  ASSERT_TRUE(engine.Prepare(graph, init_state).ok());
  ASSERT_TRUE(engine.Run().ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(sssp::ErrorRate(*state, sssp::Reference(graph, source), 1e-9), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sources, SsspSourceSweepTest,
                         ::testing::Values(0, 7, 33, 79));

}  // namespace
}  // namespace i2mr
