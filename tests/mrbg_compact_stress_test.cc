// Concurrency stress for the log-structured MRBG store: a writer thread
// merging batches, the background compactor rewriting sealed segments, and
// a snapshot thread cutting epoch images — all over the same store. Run
// under TSan/ASan in CI; the assertions here check logical consistency
// (latest version wins, snapshots are self-consistent), the sanitizers
// check the locking.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "io/env.h"
#include "mrbg/chunk.h"
#include "mrbg/mrbg_store.h"

namespace i2mr {
namespace {

Chunk VersionedChunk(int key, int round) {
  Chunk c;
  c.key = PaddedNum(key);
  c.entries.push_back(ChunkEntry{1, "round" + std::to_string(round)});
  c.entries.push_back(ChunkEntry{2, std::string(64, 'x')});  // bulk
  return c;
}

class MrbgCompactStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/i2mr_compact_stress";
    ASSERT_TRUE(ResetDir(dir_).ok());
  }
  void TearDown() override { RemoveAll(dir_).ok(); }
  std::string dir_;
};

TEST_F(MrbgCompactStressTest, WriterVsBackgroundCompactor) {
  MRBGStoreOptions opts;
  opts.log_structured = true;
  opts.background_compaction = true;
  opts.segment_target_bytes = 4 << 10;  // rotate constantly
  opts.compact_min_wasted_bytes = 0;
  opts.compact_wasted_ratio = 0.1;
  opts.compact_max_segments = 3;
  auto s = MRBGStore::Open(JoinPath(dir_, "store"), opts);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto& store = s.value();

  constexpr int kKeys = 32;
  constexpr int kRounds = 60;
  // The writer interleaves appends, deletes and queries exactly like a
  // refresh: every FinishBatch wakes the compactor, which rewrites sealed
  // segments while the next round runs.
  for (int r = 0; r < kRounds; ++r) {
    std::vector<std::string> keys;
    for (int k = 0; k < kKeys; ++k) keys.push_back(PaddedNum(k));
    ASSERT_TRUE(store->PrepareQueries(keys).ok());
    for (int k = 0; k < kKeys; ++k) {
      auto c = store->Query(PaddedNum(k));
      if (r == 0 || k % 7 == r % 7) {
        // First sight or this round's delete-then-reinsert victim.
        if (c.ok() && k % 7 == r % 7 && r % 2 == 1) {
          ASSERT_TRUE(store->RemoveChunk(PaddedNum(k)).ok());
          continue;
        }
      } else {
        ASSERT_TRUE(c.ok() || c.status().IsNotFound())
            << c.status().ToString();
      }
      ASSERT_TRUE(store->AppendChunk(VersionedChunk(k, r)).ok());
    }
    ASSERT_TRUE(store->FinishBatch().ok());
  }
  store->WaitForCompaction();
  EXPECT_GE(store->stats().compaction_passes, 1u);
  // Segment count is bounded by the policy, not by history length.
  EXPECT_LE(store->num_segments(), 8u);

  // Full logical audit after the dust settles.
  ASSERT_TRUE(store->Close().ok());
  auto reopened = MRBGStore::Open(JoinPath(dir_, "store"), opts);
  ASSERT_TRUE(reopened.ok());
  std::vector<std::string> keys;
  for (int k = 0; k < kKeys; ++k) keys.push_back(PaddedNum(k));
  ASSERT_TRUE(reopened.value()->PrepareQueries(keys).ok());
  for (int k = 0; k < kKeys; ++k) {
    auto c = reopened.value()->Query(PaddedNum(k));
    if (!c.ok()) {
      EXPECT_TRUE(c.status().IsNotFound()) << c.status().ToString();
      continue;
    }
    // Whatever round wrote it last, the chunk must be whole.
    ASSERT_EQ(c->entries.size(), 2u);
    EXPECT_EQ(c->entries[0].v2.rfind("round", 0), 0u);
  }
}

TEST_F(MrbgCompactStressTest, SnapshotsStayConsistentUnderCompaction) {
  MRBGStoreOptions opts;
  opts.log_structured = true;
  opts.background_compaction = true;
  opts.segment_target_bytes = 4 << 10;
  opts.compact_min_wasted_bytes = 0;
  opts.compact_wasted_ratio = 0.1;
  auto s = MRBGStore::Open(JoinPath(dir_, "store"), opts);
  ASSERT_TRUE(s.ok());
  auto& store = s.value();

  std::atomic<bool> done{false};
  std::atomic<int> snapshots_taken{0};
  Status snap_status;
  // Epoch-commit simulator: cut hard-link snapshots as fast as possible
  // while the writer and compactor churn the segment set underneath.
  std::thread snapper([&] {
    int i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::string snap = JoinPath(dir_, "snap" + std::to_string(i++));
      Status st = store->SnapshotInto(snap);
      if (!st.ok()) {
        snap_status = st;
        return;
      }
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr int kKeys = 24;
  for (int r = 0; r < 40; ++r) {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(store->AppendChunk(VersionedChunk(k, r)).ok());
    }
    ASSERT_TRUE(store->FinishBatch().ok());
  }
  done.store(true);
  snapper.join();
  ASSERT_TRUE(snap_status.ok()) << snap_status.ToString();
  ASSERT_GT(snapshots_taken.load(), 0);
  store->WaitForCompaction();

  // Every snapshot must open clean and serve whole chunks — compaction
  // unlinking a victim segment must never tear an image that linked it.
  for (int i = 0; i < snapshots_taken.load(); ++i) {
    std::string snap = JoinPath(dir_, "snap" + std::to_string(i));
    auto img = MRBGStore::Open(snap);
    ASSERT_TRUE(img.ok()) << "snapshot " << i << ": "
                          << img.status().ToString();
    std::vector<std::string> keys;
    for (int k = 0; k < kKeys; ++k) keys.push_back(PaddedNum(k));
    ASSERT_TRUE(img.value()->PrepareQueries(keys).ok());
    for (int k = 0; k < kKeys; ++k) {
      auto c = img.value()->Query(PaddedNum(k));
      if (!c.ok()) {
        ASSERT_TRUE(c.status().IsNotFound());
        continue;
      }
      ASSERT_EQ(c->entries.size(), 2u) << "snapshot " << i << " key " << k;
    }
    ASSERT_TRUE(img.value()->Close().ok());
  }
  ASSERT_TRUE(store->Close().ok());
}

}  // namespace
}  // namespace i2mr
