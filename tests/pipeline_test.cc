// Tests for the continuous delta-ingestion pipeline subsystem: DeltaLog
// framing + recovery-by-scan, exactly-once epoch commits (crash between
// drain and commit, crash mid-commit, reopen-and-replay), delta ordering
// incl. delete tombstones, serving-view reads, and multi-pipeline
// concurrency on one shared cluster.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "common/codec.h"
#include "data/graph_gen.h"
#include "data/points_gen.h"
#include "io/env.h"
#include "io/record_file.h"
#include "mr/cluster.h"
#include "pipeline/delta_log.h"
#include "pipeline/pipeline.h"
#include "pipeline/pipeline_manager.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

PipelineOptions PageRankPipeline() {
  PipelineOptions options;
  options.spec = pagerank::MakeIterSpec("pr", 4, 100, 1e-9);
  options.engine.filter_threshold = 0.0;   // exact propagation
  options.engine.mrbg_auto_off_ratio = 2;  // keep the incremental path on
  return options;
}

// ---------------------------------------------------------------------------
// DeltaLog
// ---------------------------------------------------------------------------

class DeltaLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/i2mr_delta_log";
    ASSERT_TRUE(ResetDir(dir_).ok());
  }
  std::string dir_;
};

TEST_F(DeltaLogTest, AppendAssignsIncreasingSeqsAndReopenRecovers) {
  {
    auto log = DeltaLog::Open(dir_);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    auto s1 = (*log)->Append(DeltaKV{DeltaOp::kInsert, "a", "1"});
    auto s2 = (*log)->Append(DeltaKV{DeltaOp::kDelete, "b", "2"});
    auto s3 = (*log)->AppendBatch({{DeltaOp::kInsert, "c", "3"},
                                   {DeltaOp::kInsert, "d", "4"}});
    ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
    EXPECT_EQ(*s1, 1u);
    EXPECT_EQ(*s2, 2u);
    EXPECT_EQ(*s3, 4u);  // last seq of the batch
  }
  auto log = DeltaLog::Open(dir_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->recovery_stats().records, 4u);
  EXPECT_EQ((*log)->recovery_stats().discarded_bytes, 0u);
  EXPECT_EQ((*log)->last_seq(), 4u);

  auto all = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].delta.key, "a");
  EXPECT_EQ(all[1].delta.op, DeltaOp::kDelete);
  EXPECT_EQ(all[3].seq, 4u);

  auto mid = (*log)->ReadRange(1, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].seq, 2u);
  EXPECT_EQ(mid[1].seq, 3u);
}

TEST_F(DeltaLogTest, TornTailIsTruncatedAndAppendsContinue) {
  std::string path;
  {
    auto log = DeltaLog::Open(dir_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "k1", "v1"}).ok());
    ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "k2", "v2"}).ok());
    path = (*log)->path();
  }
  // Crash mid-append: the last frame is half-written.
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteStringToFile(path, data->substr(0, data->size() - 5)).ok());

  auto log = DeltaLog::Open(dir_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->recovery_stats().records, 1u);
  EXPECT_GT((*log)->recovery_stats().discarded_bytes, 0u);
  EXPECT_EQ((*log)->last_seq(), 1u);

  // The log stays usable: the next append lands on a clean boundary and
  // survives another reopen.
  ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "k3", "v3"}).ok());
  ASSERT_TRUE((*log)->Close().ok());
  auto reopened = DeltaLog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  auto all = (*reopened)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1].delta.key, "k3");
}

TEST_F(DeltaLogTest, CorruptedPayloadByteIsDetectedByCrc) {
  std::string path;
  {
    auto log = DeltaLog::Open(dir_);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "aa", "bb"}).ok());
    path = (*log)->path();
  }
  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  std::string flipped = *data;
  flipped[12] ^= 0x40;  // a payload byte
  ASSERT_TRUE(WriteStringToFile(path, flipped).ok());
  auto log = DeltaLog::Open(dir_);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->recovery_stats().records, 0u);
  EXPECT_GT((*log)->recovery_stats().discarded_bytes, 0u);
}

TEST_F(DeltaLogTest, PurgeThroughDropsConsumedPrefix) {
  auto log = DeltaLog::Open(dir_);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*log)->Append(DeltaKV{DeltaOp::kInsert, std::to_string(i), "v"}).ok());
  }
  ASSERT_TRUE((*log)->PurgeThrough(7).ok());
  EXPECT_EQ((*log)->live_records(), 3u);
  EXPECT_EQ((*log)->last_seq(), 10u);  // sequence numbers never reset
  auto rest = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].seq, 8u);
  // New appends continue the sequence, and the purged file reopens cleanly.
  ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "x", "y"}).ok());
  ASSERT_TRUE((*log)->Close().ok());
  auto reopened = DeltaLog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->last_seq(), 11u);
  EXPECT_EQ((*reopened)->live_records(), 4u);
}

TEST_F(DeltaLogTest, AppendBatchIsAllOrNothingOnOversizedRecord) {
  auto log = DeltaLog::Open(dir_);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "a", "1"}).ok());
  // A record whose framed payload would exceed the reader-side bound must
  // reject the whole batch, durably appending none of it.
  std::string huge(kMaxRecordFieldLen + 1, 'x');
  auto st = (*log)->AppendBatch({{DeltaOp::kInsert, "ok1", "v"},
                                 {DeltaOp::kInsert, huge, "v"},
                                 {DeltaOp::kInsert, "ok2", "v"}});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ((*log)->live_records(), 1u);
  EXPECT_EQ((*log)->last_seq(), 1u);
  // Single-record appends enforce the same bound.
  EXPECT_FALSE((*log)->Append(DeltaKV{DeltaOp::kInsert, huge, "v"}).ok());
  EXPECT_EQ((*log)->last_seq(), 1u);
}

// ---------------------------------------------------------------------------
// Segmented log: rotation, purge retirement, archival, boundary crashes
// ---------------------------------------------------------------------------

// ~34-byte frames + a 100-byte threshold → a rotation every 3 records.
DeltaLogOptions SmallSegments(uint64_t segment_bytes = 100) {
  DeltaLogOptions options;
  options.segment_bytes = segment_bytes;
  return options;
}

std::vector<std::string> SegmentFilesIn(const std::string& dir) {
  auto files = ListFiles(dir);
  std::vector<std::string> segs;
  if (!files.ok()) return segs;
  for (const auto& f : *files) {
    if (f.find("/seg-") != std::string::npos &&
        f.compare(f.size() - 4, 4, ".dat") == 0) {
      segs.push_back(f);
    }
  }
  return segs;
}

Status AppendN(DeltaLog* log, int n, int start = 0) {
  for (int i = start; i < start + n; ++i) {
    auto seq = log->Append(DeltaKV{DeltaOp::kInsert, "k" + std::to_string(i), "v"});
    if (!seq.ok()) return seq.status();
  }
  return Status::OK();
}

TEST_F(DeltaLogTest, RotationSealsSegmentsAndRecoveryScansAllInOrder) {
  {
    auto log = DeltaLog::Open(dir_, SmallSegments());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(AppendN(log->get(), 10).ok());
    EXPECT_GE((*log)->segment_files(), 3u);  // rotated at least twice
    ASSERT_TRUE((*log)->Close().ok());
  }
  EXPECT_GE(SegmentFilesIn(dir_).size(), 3u);

  auto log = DeltaLog::Open(dir_, SmallSegments());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->recovery_stats().records, 10u);
  EXPECT_GE((*log)->recovery_stats().segments, 3u);
  EXPECT_EQ((*log)->recovery_stats().discarded_bytes, 0u);
  EXPECT_EQ((*log)->last_seq(), 10u);
  auto all = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i + 1);

  // Torn tail on the *last* (active) segment only: truncated away, every
  // sealed segment's records survive.
  std::string active = (*log)->path();
  ASSERT_TRUE((*log)->Close().ok());
  auto data = ReadFileToString(active);
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(data->empty());  // 10 records at 3/segment leave 1 in active
  ASSERT_TRUE(WriteStringToFile(active, data->substr(0, data->size() - 5)).ok());
  auto torn = DeltaLog::Open(dir_, SmallSegments());
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ((*torn)->recovery_stats().records, 9u);
  EXPECT_GT((*torn)->recovery_stats().discarded_bytes, 0u);
}

TEST_F(DeltaLogTest, CorruptionInsideSealedSegmentFailsOpen) {
  {
    auto log = DeltaLog::Open(dir_, SmallSegments());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(AppendN(log->get(), 10).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  auto segs = SegmentFilesIn(dir_);
  ASSERT_GE(segs.size(), 3u);
  // Damage in a sealed (non-last) segment is not a torn append: silently
  // truncating it would drop acknowledged records the later segments
  // build on, so the open must fail loudly instead.
  auto data = ReadFileToString(segs.front());
  ASSERT_TRUE(data.ok());
  std::string flipped = *data;
  flipped[12] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(segs.front(), flipped).ok());
  auto log = DeltaLog::Open(dir_, SmallSegments());
  EXPECT_FALSE(log.ok());
  EXPECT_TRUE(log.status().IsCorruption());
}

TEST_F(DeltaLogTest, PurgeRetiresWholeSegmentsAndSurvivesReopen) {
  auto log = DeltaLog::Open(dir_, SmallSegments());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(AppendN(log->get(), 10).ok());
  size_t before = SegmentFilesIn(dir_).size();
  ASSERT_GE(before, 3u);

  // seqs 1..6 span the first two sealed segments exactly (3 per segment).
  ASSERT_TRUE((*log)->PurgeThrough(6).ok());
  EXPECT_EQ((*log)->live_records(), 4u);
  EXPECT_EQ((*log)->purge_watermark(), 6u);
  EXPECT_LT(SegmentFilesIn(dir_).size(), before);  // files actually gone
  auto rest = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(rest.size(), 4u);
  EXPECT_EQ(rest.front().seq, 7u);

  // The purge is durable: a reopen must not resurrect consumed records
  // still sitting in a partially consumed segment.
  ASSERT_TRUE((*log)->Close().ok());
  auto reopened = DeltaLog::Open(dir_, SmallSegments());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_records(), 4u);
  EXPECT_EQ((*reopened)->last_seq(), 10u);
  EXPECT_EQ((*reopened)->ReadRange(0, UINT64_MAX).front().seq, 7u);

  // Purging everything retires even the active segment's records; the
  // sequence still never restarts.
  ASSERT_TRUE((*reopened)->PurgeThrough(10).ok());
  EXPECT_EQ((*reopened)->live_records(), 0u);
  auto seq = (*reopened)->Append(DeltaKV{DeltaOp::kInsert, "x", "y"});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 11u);
}

TEST_F(DeltaLogTest, ArchivalMovesConsumedSegmentsInsteadOfUnlinking) {
  DeltaLogOptions options = SmallSegments();
  options.archive_purged = true;
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(AppendN(log->get(), 10).ok());
  ASSERT_TRUE((*log)->PurgeThrough(8).ok());

  auto archived = ListFiles(JoinPath(dir_, "archive"));
  ASSERT_TRUE(archived.ok());
  EXPECT_EQ(archived->size(), 2u);  // segments 1-4 and 5-8, both consumed
  // Archived segments are out of the live log: recovery ignores them.
  ASSERT_TRUE((*log)->Close().ok());
  auto reopened = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->live_records(), 2u);
  EXPECT_EQ((*reopened)->last_seq(), 10u);
}

TEST_F(DeltaLogTest, CompressedArchiveShipsAndReplaysTransparently) {
  DeltaLogOptions options = SmallSegments();
  options.archive_purged = true;
  options.compress_archive = true;
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(AppendN(log->get(), 10).ok());
  ASSERT_TRUE((*log)->PurgeThrough(8).ok());

  // Retired segments were compacted + compressed into .lzd archives.
  auto archived = ListFiles(JoinPath(dir_, "archive"));
  ASSERT_TRUE(archived.ok());
  ASSERT_EQ(archived->size(), 2u);
  for (const auto& f : *archived) {
    EXPECT_EQ(f.compare(f.size() - 4, 4, ".lzd"), 0) << f;
    EXPECT_TRUE(IsDeltaLogSegmentFile(f)) << f;
    EXPECT_GT(DeltaLogSegmentFirstSeq(f), 0u) << f;
  }
  ASSERT_TRUE((*log)->Close().ok());

  // A follower-style replay dir: shipped .lzd archives sitting in the log
  // dir are scanned transparently; a fresh active segment opens past the
  // compressed tail and the sequence continues.
  std::string replay = dir_ + "_replay";
  ASSERT_TRUE(ResetDir(replay).ok());
  for (const auto& f : *archived) {
    ASSERT_TRUE(
        CopyFile(f, JoinPath(replay, f.substr(f.find_last_of('/') + 1))).ok());
  }
  auto follower = DeltaLog::Open(replay, options);
  ASSERT_TRUE(follower.ok()) << follower.status().ToString();
  EXPECT_EQ((*follower)->recovery_stats().records, 8u);
  EXPECT_EQ((*follower)->last_seq(), 8u);
  auto all = (*follower)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), 8u);
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i + 1);
  auto seq = (*follower)->Append(DeltaKV{DeltaOp::kInsert, "x", "y"});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 9u);
  ASSERT_TRUE((*follower)->Close().ok());

  // A corrupted compressed archive is a hard failure, never a silent
  // truncation (only a raw active tail may be torn).
  auto files = ListFiles(replay);
  ASSERT_TRUE(files.ok());
  std::string victim;
  for (const auto& f : *files) {
    if (f.size() > 4 && f.compare(f.size() - 4, 4, ".lzd") == 0) victim = f;
  }
  ASSERT_FALSE(victim.empty());
  auto bytes = ReadFileToString(victim);
  ASSERT_TRUE(bytes.ok());
  std::string mangled = *bytes;
  mangled[mangled.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(victim, mangled).ok());
  EXPECT_FALSE(DeltaLog::Open(replay, options).ok());
}

TEST_F(DeltaLogTest, MmapRecoveryScanMatchesStreamingAndHandlesTornTail) {
  DeltaLogOptions options = SmallSegments();
  options.mmap_scan_bytes = 1;  // force the mmap path for every segment
  {
    auto log = DeltaLog::Open(dir_, options);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(AppendN(log->get(), 10).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->recovery_stats().records, 10u);
  auto all = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i + 1);

  // Torn active tail under the mmap scan: the mapping is released before
  // the truncate, the torn frame is discarded, appends continue.
  std::string active = (*log)->path();
  ASSERT_TRUE((*log)->Close().ok());
  auto data = ReadFileToString(active);
  ASSERT_TRUE(data.ok());
  ASSERT_FALSE(data->empty());
  ASSERT_TRUE(WriteStringToFile(active, data->substr(0, data->size() - 5)).ok());
  auto torn = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(torn.ok()) << torn.status().ToString();
  EXPECT_EQ((*torn)->recovery_stats().records, 9u);
  EXPECT_GT((*torn)->recovery_stats().discarded_bytes, 0u);
  auto seq = (*torn)->Append(DeltaKV{DeltaOp::kInsert, "x", "y"});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 10u);
}

TEST_F(DeltaLogTest, CrashBetweenSealAndNewSegmentLosesNothing) {
  {
    // 90-byte threshold: the third 32-byte frame crosses it.
    DeltaLogOptions options = SmallSegments(90);
    options.crash_hook = [](const std::string& stage) {
      return stage == "rotate";
    };
    auto log = DeltaLog::Open(dir_, options);
    ASSERT_TRUE(log.ok());
    // The third append crosses the threshold; its rotation "dies" after
    // sealing the old active segment, before the new one exists.
    ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "k0", "v"}).ok());
    ASSERT_TRUE((*log)->Append(DeltaKV{DeltaOp::kInsert, "k1", "v"}).ok());
    auto third = (*log)->Append(DeltaKV{DeltaOp::kInsert, "k2", "v"});
    EXPECT_FALSE(third.ok());  // simulated crash (the record IS durable)
    // The "dead process" accepts nothing more.
    EXPECT_FALSE((*log)->Append(DeltaKV{DeltaOp::kInsert, "k3", "v"}).ok());
  }
  // Restart: all three acknowledged records recovered, appends continue.
  auto log = DeltaLog::Open(dir_, SmallSegments());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->recovery_stats().records, 3u);
  EXPECT_EQ((*log)->last_seq(), 3u);
  auto seq = (*log)->Append(DeltaKV{DeltaOp::kInsert, "k3", "v"});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 4u);
}

TEST_F(DeltaLogTest, CrashMidPurgeAfterMarkIsCompletedOnReopen) {
  {
    DeltaLogOptions options = SmallSegments();
    options.crash_hook = [](const std::string& stage) {
      return stage == "purge-marked";
    };
    auto log = DeltaLog::Open(dir_, options);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(AppendN(log->get(), 10).ok());
    // Dies after the PURGE mark is durable, before any segment is
    // unlinked: consumed segment files remain on disk.
    EXPECT_FALSE((*log)->PurgeThrough(6).ok());
    EXPECT_EQ((*log)->purge_watermark(), 6u);
  }
  size_t leftover = SegmentFilesIn(dir_).size();
  ASSERT_GE(leftover, 3u);  // nothing was retired before the "crash"

  // Recovery finishes the interrupted purge: consumed segments retired,
  // consumed records not resurrected, exactly-once replay preserved.
  auto log = DeltaLog::Open(dir_, SmallSegments());
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_LT(SegmentFilesIn(dir_).size(), leftover);
  EXPECT_EQ((*log)->live_records(), 4u);
  EXPECT_EQ((*log)->ReadRange(0, UINT64_MAX).front().seq, 7u);
  auto seq = (*log)->Append(DeltaKV{DeltaOp::kInsert, "x", "y"});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 11u);
}

TEST_F(DeltaLogTest, PowerFailureModeExercisesFsyncPathEndToEnd) {
  DeltaLogOptions options = SmallSegments();
  options.durability = DurabilityMode::kPowerFailure;
  {
    auto log = DeltaLog::Open(dir_, options);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_TRUE(AppendN(log->get(), 7).ok());  // synced appends + rotations
    ASSERT_TRUE((*log)
                    ->AppendBatch({{DeltaOp::kInsert, "b1", "v"},
                                   {DeltaOp::kInsert, "b2", "v"},
                                   {DeltaOp::kInsert, "b3", "v"}})
                    .ok());
    ASSERT_TRUE((*log)->PurgeThrough(6).ok());  // synced PURGE mark
    ASSERT_TRUE((*log)->Close().ok());
  }
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ((*log)->live_records(), 4u);
  EXPECT_EQ((*log)->last_seq(), 10u);
  EXPECT_EQ((*log)->purge_watermark(), 6u);
}

TEST_F(DeltaLogTest, GroupCommitConcurrentSyncedAppendsAllDurable) {
  DeltaLogOptions options;
  options.segment_bytes = 16 << 10;
  options.durability = DurabilityMode::kPowerFailure;
  const int kThreads = 8, kAppendsPerThread = 25;
  {
    auto log = DeltaLog::Open(dir_, options);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kAppendsPerThread; ++i) {
          std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
          auto seq = (*log)->Append(DeltaKV{DeltaOp::kInsert, key, "v"});
          if (!seq.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    const uint64_t total = kThreads * kAppendsPerThread;
    EXPECT_EQ((*log)->last_seq(), total);
    EXPECT_EQ((*log)->live_records(), total);
    // The amortization: concurrent synced appenders share leader fsyncs,
    // so the device saw at most one sync per append (and under contention,
    // far fewer) rather than one per appender per record.
    EXPECT_GT((*log)->sync_count(), 0u);
    EXPECT_LE((*log)->sync_count(), total);
    ASSERT_TRUE((*log)->Close().ok());
  }
  // Every acknowledged append survives reopen, with unique increasing seqs.
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  auto all = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kAppendsPerThread));
  std::set<std::string> keys;
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i + 1);
    keys.insert(all[i].delta.key);
  }
  EXPECT_EQ(keys.size(), all.size());  // no record lost or duplicated
}

TEST_F(DeltaLogTest, GroupCommitKeepsBatchesContiguousAndAtomic) {
  DeltaLogOptions options;
  options.durability = DurabilityMode::kPowerFailure;
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  const int kThreads = 6, kBatches = 10, kBatchSize = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < kBatches; ++b) {
        std::string tag = "t" + std::to_string(t) + "b" + std::to_string(b);
        std::vector<DeltaKV> batch;
        for (int i = 0; i < kBatchSize; ++i) {
          batch.push_back(DeltaKV{DeltaOp::kInsert, tag, std::to_string(i)});
        }
        auto seq = (*log)->AppendBatch(batch);
        if (!seq.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // A group-committed batch occupies a contiguous seq range in order: for
  // every batch tag, its records appear back to back with values 0..3.
  auto all = (*log)->ReadRange(0, UINT64_MAX);
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kBatches * kBatchSize));
  for (size_t i = 0; i < all.size(); i += kBatchSize) {
    for (int j = 1; j < kBatchSize; ++j) {
      EXPECT_EQ(all[i + j].delta.key, all[i].delta.key)
          << "batch torn at seq " << all[i + j].seq;
      EXPECT_EQ(all[i + j].delta.value, std::to_string(j));
    }
  }
}

TEST_F(DeltaLogTest, LegacySingleFileLogIsMigratedToSegments) {
  // A pre-segmentation log.dat (first seq 5: its prefix was purged by the
  // old rewrite-in-place path) must open as a segment, keeping its seqs.
  std::string frames;
  for (uint64_t s = 5; s <= 7; ++s) {
    EncodeLogRecord(s, DeltaKV{DeltaOp::kInsert, "k" + std::to_string(s), "v"},
                    &frames);
  }
  ASSERT_TRUE(WriteStringToFile(JoinPath(dir_, "log.dat"), frames).ok());

  auto log = DeltaLog::Open(dir_);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_FALSE(FileExists(JoinPath(dir_, "log.dat")));
  EXPECT_EQ(SegmentFilesIn(dir_).size(), 1u);
  EXPECT_EQ((*log)->recovery_stats().records, 3u);
  EXPECT_EQ((*log)->last_seq(), 7u);
  auto seq = (*log)->Append(DeltaKV{DeltaOp::kInsert, "k8", "v"});
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 8u);
}

// ---------------------------------------------------------------------------
// Pipeline epochs
// ---------------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = ::testing::TempDir() + "/i2mr_pipeline"; }
  std::string root_;
};

TEST_F(PipelineTest, ThreeDeltaEpochsConvergeToFromScratchPageRank) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 250;
  gen.avg_degree = 5;
  auto graph = GenGraph(gen);

  auto pipeline = Pipeline::Open(&cluster, "pr_epochs", PageRankPipeline());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());
  EXPECT_EQ((*pipeline)->committed_epoch(), 0u);

  for (int epoch = 1; epoch <= 3; ++epoch) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.08;
    dopt.insert_fraction = 0.02;
    dopt.delete_fraction = 0.02;
    dopt.seed = 100 + epoch;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    std::vector<DeltaKV> batch(delta.begin(), delta.end());
    ASSERT_TRUE((*pipeline)->AppendBatch(batch).ok());

    auto stats = (*pipeline)->RunEpoch();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->epoch, static_cast<uint64_t>(epoch));
    EXPECT_EQ(stats->deltas_applied, batch.size());
    EXPECT_EQ((*pipeline)->pending(), 0u);
  }

  // Exactly-once across 3 epochs: the served ranks must match a from-scratch
  // computation over the final graph snapshot.
  auto reference = pagerank::Reference(graph, 100, 1e-9);
  auto served = (*pipeline)->ServingSnapshot();
  EXPECT_LT(pagerank::MeanError(served, reference), 1e-3);

  // Point lookups serve exactly the snapshot's values.
  ASSERT_FALSE(served.empty());
  auto rank = (*pipeline)->Lookup(served.front().key);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, served.front().value);
  EXPECT_TRUE((*pipeline)->Lookup("no-such-vertex").status().IsNotFound());
}

TEST_F(PipelineTest, PinnedServingViewSurvivesCommitAndLogPurge) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  PipelineOptions options = PageRankPipeline();
  options.log.segment_bytes = 4 << 10;  // purge really retires segments
  auto pipeline = Pipeline::Open(&cluster, "pr_pin", options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_FALSE((*pipeline)->PinServing().valid());  // before Bootstrap
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());

  EpochPin pin = (*pipeline)->PinServing();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.epoch(), 0u);
  EXPECT_EQ(pin.watermark(), 0u);
  auto epoch0 = (*pipeline)->ServingSnapshot();
  ASSERT_TRUE(FileExists(JoinPath(pin.dir(), "MANIFEST")));

  // A commit lands and PurgeThrough retires consumed segments while the
  // pin is held.
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.4;
  dopt.seed = 77;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*pipeline)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  auto stats = (*pipeline)->RunEpoch();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ((*pipeline)->committed_epoch(), 1u);
  EXPECT_GT((*pipeline)->log()->purge_watermark(), 0u);

  // The pinned view still serves epoch 0, value for value, and its dir
  // survived the commit's GC.
  for (const auto& kv : epoch0) {
    auto v = pin.Lookup(kv.key);
    ASSERT_TRUE(v.ok()) << kv.key;
    EXPECT_EQ(*v, kv.value);
  }
  EXPECT_TRUE(FileExists(JoinPath(pin.dir(), "MANIFEST")));

  // Current reads moved on; a fresh pin sees the new epoch whole.
  EpochPin fresh = (*pipeline)->PinServing();
  EXPECT_EQ(fresh.epoch(), 1u);
  EXPECT_EQ(fresh.watermark(), (*pipeline)->committed_watermark());

  // Release the old pin: the next commit collects its dir.
  std::string dir0 = pin.dir();
  pin = EpochPin();
  auto delta2 = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*pipeline)
          ->AppendBatch(std::vector<DeltaKV>(delta2.begin(), delta2.end()))
          .ok());
  ASSERT_TRUE((*pipeline)->RunEpoch().ok());
  EXPECT_FALSE(FileExists(JoinPath(dir0, "MANIFEST")));
  // The still-held fresh pin protected ITS dir through that same commit.
  EXPECT_TRUE(FileExists(JoinPath(fresh.dir(), "MANIFEST")));
}

TEST_F(PipelineTest, DeleteTombstonesAndIntraEpochOrdering) {
  LocalCluster cluster(root_, 2);
  // Hand-built graph: 1 -> 2, 2 -> 1, 3 -> 2.
  auto v = [](uint64_t id) { return PaddedNum(id); };
  std::vector<KV> graph = {{v(1), v(2)}, {v(2), v(1)}, {v(3), v(2)}};

  PipelineOptions options = PageRankPipeline();
  options.spec.num_partitions = 2;
  auto pipeline = Pipeline::Open(&cluster, "pr_tomb", options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());

  // Epoch 1: delete vertex 3's record (tombstone) AND update vertex 1's
  // adjacency (delete + insert, order matters) in a single batch.
  std::vector<DeltaKV> batch = {
      {DeltaOp::kDelete, v(3), v(2)},
      {DeltaOp::kDelete, v(1), v(2)},
      {DeltaOp::kInsert, v(1), JoinAdjacency({v(2), v(3)})},
  };
  ASSERT_TRUE((*pipeline)->AppendBatch(batch).ok());
  auto stats = (*pipeline)->RunEpoch();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  std::vector<KV> final_graph = {{v(1), JoinAdjacency({v(2), v(3)})},
                                 {v(2), v(1)}};
  auto reference = pagerank::Reference(final_graph, 100, 1e-9);
  auto served = (*pipeline)->ServingSnapshot();
  EXPECT_LT(pagerank::MeanError(served, reference), 1e-4);

  // The tombstoned record's edges are really gone: vertex 2 no longer
  // receives 3's contribution (its reference rank reflects only 1's edge).
  auto r2 = (*pipeline)->Lookup(v(2));
  ASSERT_TRUE(r2.ok());
  double got = *ParseDouble(*r2);
  double want = 0;
  for (const auto& kv : reference) {
    if (kv.key == v(2)) want = *ParseDouble(kv.value);
  }
  EXPECT_NEAR(got, want, 1e-4);
}

TEST_F(PipelineTest, CrashBetweenDrainAndCommitReplaysExactlyOnce) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 200;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  // Crash after the refresh ran but before anything committed.
  PipelineOptions options = PageRankPipeline();
  options.crash_hook = [](uint64_t, const std::string& stage) {
    return stage == "refresh";
  };
  auto pipeline = Pipeline::Open(&cluster, "pr_crash", options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());
  auto before = (*pipeline)->ServingSnapshot();

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*pipeline)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());

  auto stats = (*pipeline)->RunEpoch();
  EXPECT_FALSE(stats.ok());  // the simulated crash

  // Nothing committed: watermark, epoch and the served results are intact.
  EXPECT_EQ((*pipeline)->committed_epoch(), 0u);
  EXPECT_EQ((*pipeline)->committed_watermark(), 0u);
  EXPECT_EQ((*pipeline)->pending(), delta.size());
  EXPECT_EQ((*pipeline)->ServingSnapshot(), before);

  // "Process restart": drop the Pipeline object, re-open without the crash
  // hook, and run the epoch. The deltas must apply exactly once — a double
  // apply would duplicate the re-inserted records and skew the ranks.
  pipeline->reset();
  auto reopened = Pipeline::Open(&cluster, "pr_crash", PageRankPipeline());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->bootstrapped());
  EXPECT_EQ((*reopened)->committed_epoch(), 0u);
  EXPECT_EQ((*reopened)->pending(), delta.size());

  auto replay = (*reopened)->RunEpoch();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->epoch, 1u);
  EXPECT_EQ(replay->deltas_applied, delta.size());

  auto reference = pagerank::Reference(graph, 100, 1e-9);
  EXPECT_LT(pagerank::MeanError((*reopened)->ServingSnapshot(), reference),
            1e-3);
}

TEST_F(PipelineTest, CrashMidCommitLeavesPreviousEpochCurrent) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 150;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  // Crash after the new epoch dir landed but before CURRENT swung to it.
  PipelineOptions options = PageRankPipeline();
  options.crash_hook = [](uint64_t epoch, const std::string& stage) {
    return epoch == 1 && stage == "commit";
  };
  auto pipeline = Pipeline::Open(&cluster, "pr_mid", options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*pipeline)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  EXPECT_FALSE((*pipeline)->RunEpoch().ok());

  pipeline->reset();
  auto reopened = Pipeline::Open(&cluster, "pr_mid", PageRankPipeline());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The orphaned epoch-1 dir was garbage collected; still on epoch 0.
  EXPECT_EQ((*reopened)->committed_epoch(), 0u);
  EXPECT_EQ((*reopened)->pending(), delta.size());

  auto replay = (*reopened)->RunEpoch();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  auto reference = pagerank::Reference(graph, 100, 1e-9);
  EXPECT_LT(pagerank::MeanError((*reopened)->ServingSnapshot(), reference),
            1e-3);
}

TEST_F(PipelineTest, PowerFailureModeCrashAfterManifestBeforeCurrentRename) {
  // The hardest commit boundary under kPowerFailure: the epoch dir (with
  // its fsync'd MANIFEST) landed durably, but the process dies before the
  // CURRENT rename. CURRENT still names the previous epoch, so recovery
  // must garbage-collect the orphan and replay the same deltas exactly
  // once — the fsync path is exercised end to end on both runs.
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 150;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  PipelineOptions options = PageRankPipeline();
  options.durability = DurabilityMode::kPowerFailure;
  options.log.segment_bytes = 4 << 10;  // exercise rotation under fsync too
  options.crash_hook = [](uint64_t epoch, const std::string& stage) {
    return epoch == 1 && stage == "commit";
  };
  auto pipeline = Pipeline::Open(&cluster, "pr_power", options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*pipeline)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  EXPECT_FALSE((*pipeline)->RunEpoch().ok());

  pipeline->reset();
  PipelineOptions reopened_options = PageRankPipeline();
  reopened_options.durability = DurabilityMode::kPowerFailure;
  reopened_options.log.segment_bytes = 4 << 10;
  auto reopened = Pipeline::Open(&cluster, "pr_power", reopened_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->committed_epoch(), 0u);
  EXPECT_EQ((*reopened)->pending(), delta.size());

  auto replay = (*reopened)->RunEpoch();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->epoch, 1u);
  EXPECT_EQ(replay->deltas_applied, delta.size());
  auto reference = pagerank::Reference(graph, 100, 1e-9);
  EXPECT_LT(pagerank::MeanError((*reopened)->ServingSnapshot(), reference),
            1e-3);
}

TEST_F(PipelineTest, SegmentedLogWithArchivalAcrossEpochsAndRestart) {
  // Epoch commits purge by retiring whole segments into archive/; the
  // hard-linked epoch snapshots stay correct across epochs and a restart.
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  PipelineOptions options = PageRankPipeline();
  options.spec.num_partitions = 2;
  options.log.segment_bytes = 1 << 10;  // many rotations per epoch batch
  options.log.archive_purged = true;

  {
    LocalCluster cluster(root_, 2);
    auto pipeline = Pipeline::Open(&cluster, "pr_seg", options);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());
    for (int epoch = 1; epoch <= 2; ++epoch) {
      GraphDeltaOptions dopt;
      dopt.update_fraction = 0.2;
      dopt.seed = 40 + epoch;
      auto delta = GenGraphDelta(gen, dopt, &graph);
      ASSERT_TRUE(
          (*pipeline)
              ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
              .ok());
      auto stats = (*pipeline)->RunEpoch();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ((*pipeline)->log()->live_records(), 0u);  // purged
    }
    // The consumed segments were archived, not unlinked.
    auto archived = ListFiles(JoinPath((*pipeline)->log()->dir(), "archive"));
    ASSERT_TRUE(archived.ok());
    EXPECT_GT(archived->size(), 0u);
  }
  {
    LocalCluster cluster(root_, 2, CostModel{}, /*reset=*/false);
    auto pipeline = Pipeline::Open(&cluster, "pr_seg", options);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    EXPECT_EQ((*pipeline)->committed_epoch(), 2u);
    auto reference = pagerank::Reference(graph, 100, 1e-9);
    EXPECT_LT(pagerank::MeanError((*pipeline)->ServingSnapshot(), reference),
              1e-3);
  }
}

TEST_F(PipelineTest, SurvivesFullProcessRestartViaClusterReattach) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  std::vector<DeltaKV> delta;
  {
    LocalCluster cluster(root_, 2);
    PipelineOptions options = PageRankPipeline();
    options.spec.num_partitions = 2;
    auto pipeline = Pipeline::Open(&cluster, "pr_restart", options);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    auto d = GenGraphDelta(gen, dopt, &graph);
    delta.assign(d.begin(), d.end());
    ASSERT_TRUE((*pipeline)->AppendBatch(delta).ok());
    // Process dies with one un-consumed batch in the durable log — and a
    // half-finished job's shuffle spills left in the scratch space.
    ASSERT_TRUE(CreateDirs(JoinPath(root_, "jobs/crashed-job/map-00000")).ok());
    ASSERT_TRUE(WriteStringToFile(
                    JoinPath(root_, "jobs/crashed-job/map-00000/part-00000.dat"),
                    "stale spill")
                    .ok());
  }
  {
    // Re-attach (reset=false keeps the durable root) and finish the work.
    LocalCluster cluster(root_, 2, CostModel{}, /*reset=*/false);
    // Durable state survives; crashed-job scratch must not.
    EXPECT_FALSE(FileExists(JoinPath(root_, "jobs/crashed-job/map-00000/part-00000.dat")));
    PipelineOptions options = PageRankPipeline();
    options.spec.num_partitions = 2;
    auto pipeline = Pipeline::Open(&cluster, "pr_restart", options);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    EXPECT_TRUE((*pipeline)->bootstrapped());
    EXPECT_EQ((*pipeline)->pending(), delta.size());
    auto stats = (*pipeline)->RunEpoch();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    auto reference = pagerank::Reference(graph, 100, 1e-9);
    EXPECT_LT(pagerank::MeanError((*pipeline)->ServingSnapshot(), reference),
              1e-3);
  }
}

TEST_F(PipelineTest, InProcessRetryAfterCommitStageFailureSucceeds) {
  // Regression: a commit-stage failure leaves the renamed epoch dir behind;
  // the in-process self-heal (restore + replay) must still be able to
  // commit that epoch instead of tripping over the stale dir forever.
  LocalCluster cluster(root_, 2);
  auto v = [](uint64_t id) { return PaddedNum(id); };
  std::vector<KV> graph = {{v(1), v(2)}, {v(2), v(1)}};

  PipelineOptions options = PageRankPipeline();
  options.spec.num_partitions = 2;
  auto fired = std::make_shared<std::atomic<int>>(0);
  options.crash_hook = [fired](uint64_t epoch, const std::string& stage) {
    return epoch == 1 && stage == "commit" && fired->fetch_add(1) == 0;
  };
  auto pipeline = Pipeline::Open(&cluster, "pr_retry", options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE((*pipeline)->Append({DeltaOp::kInsert, v(3), v(1)}).ok());

  EXPECT_FALSE((*pipeline)->RunEpoch().ok());  // injected mid-commit failure

  auto retry = (*pipeline)->RunEpoch();  // same process, no reopen
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->epoch, 1u);
  EXPECT_EQ(retry->deltas_applied, 1u);
  EXPECT_TRUE((*pipeline)->Lookup(v(3)).ok());
}

TEST_F(PipelineTest, AppendsAfterRestartOfFullyPurgedLogAreNotSkipped) {
  // Regression: once an epoch purges the whole log, a restarted process
  // must not re-issue sequence numbers at or below the committed watermark
  // — those appends would look already-consumed and silently never refresh.
  LocalCluster cluster(root_, 2);
  auto v = [](uint64_t id) { return PaddedNum(id); };
  std::vector<KV> graph = {{v(1), v(2)}, {v(2), v(1)}};
  PipelineOptions options = PageRankPipeline();
  options.spec.num_partitions = 2;

  auto pipeline = Pipeline::Open(&cluster, "pr_purged", options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE((*pipeline)->Append({DeltaOp::kInsert, v(3), v(1)}).ok());
  ASSERT_TRUE((*pipeline)->Append({DeltaOp::kInsert, v(4), v(1)}).ok());
  ASSERT_TRUE((*pipeline)->RunEpoch().ok());  // commits watermark 2, purges
  ASSERT_EQ((*pipeline)->committed_watermark(), 2u);
  ASSERT_EQ((*pipeline)->log()->live_records(), 0u);

  // Restart: the recovered (empty) log must continue the sequence.
  pipeline->reset();
  auto reopened = Pipeline::Open(&cluster, "pr_purged", options);
  ASSERT_TRUE(reopened.ok());
  auto seq = (*reopened)->Append({DeltaOp::kInsert, v(5), v(1)});
  ASSERT_TRUE(seq.ok());
  EXPECT_GT(*seq, 2u);
  EXPECT_EQ((*reopened)->pending(), 1u);
  auto stats = (*reopened)->RunEpoch();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->deltas_applied, 1u);
  EXPECT_TRUE((*reopened)->Lookup(v(5)).ok());  // the new vertex is served
}

TEST_F(PipelineTest, DrainAllRecoversAfterTransientEpochFailure) {
  LocalCluster cluster(root_, 2);
  auto v = [](uint64_t id) { return PaddedNum(id); };
  std::vector<KV> graph = {{v(1), v(2)}, {v(2), v(1)}};

  PipelineManager manager(&cluster);
  PipelineOptions options = PageRankPipeline();
  options.spec.num_partitions = 2;
  auto crashes = std::make_shared<std::atomic<int>>(0);
  options.crash_hook = [crashes](uint64_t epoch, const std::string& stage) {
    // Fail epoch 1's first attempt only.
    return epoch == 1 && stage == "drain" && crashes->fetch_add(1) == 0;
  };
  auto pr = manager.Register("pr_flaky", options);
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE((*pr)->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE(manager.Append("pr_flaky", {DeltaOp::kInsert, v(3), v(1)}).ok());

  // First drain hits the injected failure and reports it.
  EXPECT_FALSE(manager.DrainAll().ok());
  EXPECT_EQ(manager.stats().epoch_failures, 1u);

  // Second drain self-heals (restore + replay) and must NOT re-report the
  // stale error from the first attempt.
  ASSERT_TRUE(manager.DrainAll().ok());
  EXPECT_EQ((*pr)->pending(), 0u);
  EXPECT_EQ((*pr)->committed_epoch(), 1u);
  EXPECT_TRUE((*pr)->Lookup(v(3)).ok());
}

TEST_F(PipelineTest, ManagerDurabilityFloorRaisesPipelineMode) {
  LocalCluster cluster(root_, 2);
  PipelineManagerOptions mopts;
  mopts.durability = DurabilityMode::kPowerFailure;
  PipelineManager manager(&cluster, mopts);
  PipelineOptions options = PageRankPipeline();  // defaults to kProcessCrash
  options.spec.num_partitions = 2;
  auto pr = manager.Register("pr_floor", options);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  EXPECT_EQ((*pr)->options().durability, DurabilityMode::kPowerFailure);
}

TEST_F(PipelineTest, MinBatchAndMaxLagTriggers) {
  LocalCluster cluster(root_, 2);
  auto v = [](uint64_t id) { return PaddedNum(id); };
  std::vector<KV> graph = {{v(1), v(2)}, {v(2), v(1)}};

  PipelineOptions options = PageRankPipeline();
  options.spec.num_partitions = 2;
  options.min_batch = 3;
  auto pipeline = Pipeline::Open(&cluster, "pr_trigger", options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE((*pipeline)->EpochReady());  // not bootstrapped
  ASSERT_TRUE((*pipeline)->Bootstrap(graph, UnitState(graph)).ok());

  ASSERT_TRUE((*pipeline)->Append({DeltaOp::kInsert, v(3), v(1)}).ok());
  EXPECT_FALSE((*pipeline)->EpochReady());  // 1 < min_batch
  ASSERT_TRUE((*pipeline)->Append({DeltaOp::kInsert, v(4), v(1)}).ok());
  ASSERT_TRUE((*pipeline)->Append({DeltaOp::kInsert, v(5), v(1)}).ok());
  EXPECT_TRUE((*pipeline)->EpochReady());  // min_batch reached

  ASSERT_TRUE((*pipeline)->RunEpoch().ok());
  EXPECT_FALSE((*pipeline)->EpochReady());  // drained

  // Lag trigger: one pending delta, tiny max_lag.
  PipelineOptions lag_options = PageRankPipeline();
  lag_options.spec.num_partitions = 2;
  lag_options.min_batch = 1000;
  lag_options.max_lag_ms = 5;
  auto lagged = Pipeline::Open(&cluster, "pr_lag", lag_options);
  ASSERT_TRUE(lagged.ok());
  ASSERT_TRUE((*lagged)->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE((*lagged)->Append({DeltaOp::kInsert, v(3), v(1)}).ok());
  EXPECT_FALSE((*lagged)->EpochReady());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE((*lagged)->EpochReady());
}

// ---------------------------------------------------------------------------
// PipelineManager
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, TwoPipelinesRefreshConcurrentlyOnOneCluster) {
  LocalCluster cluster(root_, 4);
  PipelineManagerOptions mopts;
  mopts.scheduler_threads = 2;
  PipelineManager manager(&cluster, mopts);

  // Pipeline 1: PageRank over an evolving graph.
  GraphGenOptions ggen;
  ggen.num_vertices = 200;
  ggen.avg_degree = 4;
  auto graph = GenGraph(ggen);
  auto pr = manager.Register("pr", PageRankPipeline());
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  ASSERT_TRUE((*pr)->Bootstrap(graph, UnitState(graph)).ok());

  // Pipeline 2: K-Means over evolving points (MRBGraph off, §5.2).
  PointsGenOptions pgen;
  pgen.num_points = 200;
  pgen.dims = 2;
  pgen.num_clusters = 3;
  auto points = GenPoints(pgen);
  PipelineOptions km_options;
  km_options.spec = kmeans::MakeIterSpec("km", 4, 30, 1e-7);
  km_options.engine.maintain_mrbg = false;
  auto km = manager.Register("km", km_options);
  ASSERT_TRUE(km.ok()) << km.status().ToString();
  ASSERT_TRUE((*km)->Bootstrap(points, kmeans::InitialState(points, 3)).ok());

  EXPECT_FALSE(manager.Register("pr", PageRankPipeline()).ok());

  auto prev_centroids = kmeans::DecodeCentroids(
      *(*km)->Lookup(kmeans::kStateKey));

  // Feed both pipelines, then drain them concurrently.
  GraphDeltaOptions gd;
  gd.update_fraction = 0.1;
  auto graph_delta = GenGraphDelta(ggen, gd, &graph);
  ASSERT_TRUE(manager
                  .AppendBatch("pr", std::vector<DeltaKV>(graph_delta.begin(),
                                                          graph_delta.end()))
                  .ok());
  auto points_delta = GenPointsDelta(pgen, 0.1, 0.05, 11, &points);
  ASSERT_TRUE(manager
                  .AppendBatch("km", std::vector<DeltaKV>(points_delta.begin(),
                                                          points_delta.end()))
                  .ok());

  ASSERT_TRUE(manager.DrainAll().ok());
  EXPECT_EQ((*pr)->pending(), 0u);
  EXPECT_EQ((*km)->pending(), 0u);
  EXPECT_EQ(manager.stats().epochs_committed, 2u);
  EXPECT_EQ(manager.stats().deltas_applied,
            graph_delta.size() + points_delta.size());

  // Both refreshed correctly.
  auto pr_ref = pagerank::Reference(graph, 100, 1e-9);
  auto pr_served = manager.view().Snapshot("pr");
  ASSERT_TRUE(pr_served.ok());
  EXPECT_LT(pagerank::MeanError(*pr_served, pr_ref), 1e-3);

  auto km_served = manager.view().Lookup("km", kmeans::kStateKey);
  ASSERT_TRUE(km_served.ok());
  auto km_ref = kmeans::Reference(points, prev_centroids, 30, 1e-7);
  EXPECT_LT(kmeans::MaxCentroidDelta(kmeans::DecodeCentroids(*km_served),
                                     km_ref),
            1e-5);

  EXPECT_FALSE(manager.view().Lookup("nope", "k").ok());
}

TEST_F(PipelineTest, ServingViewAnswersWhileBackgroundEpochsRun) {
  LocalCluster cluster(root_, 4);
  PipelineManagerOptions mopts;
  mopts.poll_interval_ms = 1;
  PipelineManager manager(&cluster, mopts);

  GraphGenOptions gen;
  gen.num_vertices = 150;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  auto pr = manager.Register("pr_bg", PageRankPipeline());
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE((*pr)->Bootstrap(graph, UnitState(graph)).ok());
  const std::string probe = graph.front().key;

  manager.Start();
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  for (const auto& d : delta) {
    ASSERT_TRUE(manager.Append("pr_bg", d).ok());
    // Reads must always be served, whatever the refresh is doing.
    auto r = manager.view().Lookup("pr_bg", probe);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Wait until the background scheduler has consumed everything.
  for (int i = 0; i < 1000 && (*pr)->pending() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  manager.Stop();
  EXPECT_EQ((*pr)->pending(), 0u);
  EXPECT_GE(manager.stats().epochs_committed, 1u);

  auto reference = pagerank::Reference(graph, 100, 1e-9);
  EXPECT_LT(pagerank::MeanError((*pr)->ServingSnapshot(), reference), 1e-3);
}

}  // namespace
}  // namespace i2mr
