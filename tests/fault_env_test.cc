// Tests for the fault-injection layer (io/fault_env) and the graceful
// degradation it drives: spec parsing, trigger semantics (fail-once /
// fail-N-times / every-Nth / after-N), ENOSPC vs EIO error shaping, torn
// writes, injected latency, crash points replacing the legacy crash_hook
// lambdas, the HealthRegistry, and the ENOSPC degradation scenarios —
// delta-log append (pipeline enters degraded read-only mode and
// auto-resumes), segment seal (rotation rolls back and the log stays
// usable), epoch stage (old-or-new, never torn) and MRBG compaction.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "common/health.h"
#include "common/metrics.h"
#include "common/metrics_exporter.h"
#include "common/timer.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/file.h"
#include "mr/cluster.h"
#include "mrbg/mrbg_store.h"
#include "pipeline/delta_log.h"
#include "pipeline/pipeline.h"

namespace i2mr {
namespace {

/// Every test starts and ends with a disarmed injector: a leaked rule
/// would silently fault unrelated tests' I/O.
class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Instance()->Reset();
    ASSERT_FALSE(fault::FaultInjector::Armed());
    dir_ = ::testing::TempDir() + "/i2mr_fault_env";
    ASSERT_TRUE(ResetDir(dir_).ok());
  }
  void TearDown() override { fault::FaultInjector::Instance()->Reset(); }

  std::string dir_;
};

TEST_F(FaultEnvTest, DisarmedChecksAreFreeAndSucceed) {
  EXPECT_FALSE(fault::FaultInjector::Armed());
  EXPECT_TRUE(fault::Check(fault::kAppend, "/any/path").ok());
  EXPECT_TRUE(WriteStringToFile(JoinPath(dir_, "f"), "data").ok());
}

TEST_F(FaultEnvTest, SpecParsesRulesAndRejectsGarbage) {
  auto* inj = fault::FaultInjector::Instance();
  ASSERT_TRUE(inj
                  ->LoadSpec("op=append|sync,path=seg-,kind=enospc,after=3,"
                             "times=1;op=rename,kind=eio,every=5,times=-1")
                  .ok());
  EXPECT_TRUE(fault::FaultInjector::Armed());
  inj->Reset();
  EXPECT_FALSE(inj->LoadSpec("op=notanop,kind=eio").ok());
  EXPECT_FALSE(inj->LoadSpec("kind=notakind").ok());
  EXPECT_FALSE(inj->LoadSpec("nonsense").ok());
  EXPECT_FALSE(fault::FaultInjector::Armed());
}

TEST_F(FaultEnvTest, FailOnceThenRecovered) {
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile;
  rule.path_substr = dir_;
  rule.kind = fault::FaultKind::kEIO;
  rule.times = 1;
  fault::FaultInjector::Instance()->AddRule(rule);

  const std::string path = JoinPath(dir_, "once");
  Status first = WriteStringToFile(path, "x");
  EXPECT_TRUE(first.IsIOError()) << first.ToString();
  EXPECT_TRUE(WriteStringToFile(path, "x").ok());  // rule exhausted
  EXPECT_EQ(fault::FaultInjector::Instance()->injections(), 1u);
}

TEST_F(FaultEnvTest, AfterSkipsAndEveryNthFires) {
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile;
  rule.path_substr = dir_;
  rule.kind = fault::FaultKind::kEIO;
  rule.after = 2;   // skip the first two matching writes
  rule.every = 2;   // then fail every other one
  rule.times = 2;   // at most twice
  fault::FaultInjector::Instance()->AddRule(rule);

  std::vector<bool> ok;
  for (int i = 0; i < 8; ++i) {
    ok.push_back(WriteStringToFile(JoinPath(dir_, "f"), "x").ok());
  }
  // Writes 1,2 skipped (after); eligible writes 3,4,5,6,... fire on the
  // 1st and 3rd eligible (every=2), capped at two firings (times).
  EXPECT_EQ(ok, (std::vector<bool>{true, true, false, true, false, true,
                                   true, true}));
}

TEST_F(FaultEnvTest, EnospcErrorNamesTheConditionAndPath) {
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile;
  rule.path_substr = dir_;
  rule.kind = fault::FaultKind::kENOSPC;
  fault::FaultInjector::Instance()->AddRule(rule);

  Status st = WriteStringToFile(JoinPath(dir_, "full"), "x");
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("no space left"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("full"), std::string::npos);
}

TEST_F(FaultEnvTest, TornWriteLandsAPrefix) {
  fault::FaultRule rule;
  rule.ops = fault::kAppend;
  rule.path_substr = dir_;
  rule.kind = fault::FaultKind::kTorn;
  rule.torn_fraction = 0.5;
  fault::FaultInjector::Instance()->AddRule(rule);

  const std::string path = JoinPath(dir_, "torn");
  auto f = WritableFile::Create(path);
  ASSERT_TRUE(f.ok());
  std::string payload(100, 'a');
  Status st = (*f)->Append(payload);
  EXPECT_TRUE(st.IsIOError());
  ASSERT_TRUE((*f)->Close().ok());

  auto data = ReadFileToString(path);
  ASSERT_TRUE(data.ok());
  EXPECT_GT(data->size(), 0u);                // something landed...
  EXPECT_LT(data->size(), payload.size());    // ...but not everything
}

TEST_F(FaultEnvTest, LatencyRuleStallsButSucceeds) {
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile;
  rule.path_substr = dir_;
  rule.kind = fault::FaultKind::kLatency;
  rule.latency_ms = 30;
  fault::FaultInjector::Instance()->AddRule(rule);

  WallTimer timer;
  EXPECT_TRUE(WriteStringToFile(JoinPath(dir_, "slow"), "x").ok());
  EXPECT_GE(timer.ElapsedMillis(), 25.0);
}

TEST_F(FaultEnvTest, ChaosSpecRoundTripsAndInjects) {
  auto* inj = fault::FaultInjector::Instance();
  fault::ChaosOptions chaos;
  chaos.seed = 42;
  chaos.p_fail = 1.0;  // every op in scope faults
  chaos.path_substr = dir_;
  inj->StartChaos(chaos);
  EXPECT_TRUE(inj->chaos_running());
  std::string spec = inj->ChaosSpec();
  EXPECT_NE(spec.find("chaos"), std::string::npos);
  EXPECT_NE(spec.find("seed=42"), std::string::npos);

  EXPECT_FALSE(WriteStringToFile(JoinPath(dir_, "f"), "x").ok());
  // Out-of-scope paths are untouched.
  const std::string outside = ::testing::TempDir() + "/i2mr_fault_outside";
  EXPECT_TRUE(WriteStringToFile(outside, "x").ok());
  EXPECT_TRUE(RemoveAll(outside).ok());
  EXPECT_GT(inj->injections(), 0u);
  EXPECT_FALSE(inj->EventLog().empty());

  inj->StopChaos();
  EXPECT_FALSE(inj->chaos_running());
  EXPECT_TRUE(WriteStringToFile(JoinPath(dir_, "f"), "x").ok());
}

TEST_F(FaultEnvTest, CrashPointRuleKillsDeltaLogRotationLikeTheLegacyHook) {
  DeltaLogOptions options;
  options.segment_bytes = 256;  // rotate fast
  auto log = DeltaLog::Open(dir_, options);
  ASSERT_TRUE(log.ok());

  fault::FaultRule rule;
  rule.ops = fault::kCrashPoint;
  rule.path_substr = "delta_log/rotate";
  rule.kind = fault::FaultKind::kCrash;
  fault::FaultInjector::Instance()->AddRule(rule);

  // Append until the crash point fires at a rotation boundary; the log
  // then refuses appends until reopened — exactly the legacy crash_hook
  // contract.
  Status st;
  for (int i = 0; i < 64 && st.ok(); ++i) {
    st = (*log)->Append(DeltaKV{DeltaOp::kInsert, "key" + std::to_string(i),
                                std::string(32, 'v')})
             .status();
  }
  ASSERT_FALSE(st.ok()) << "crash point never fired";
  EXPECT_FALSE(
      (*log)->Append(DeltaKV{DeltaOp::kInsert, "more", "v"}).ok());

  fault::FaultInjector::Instance()->Reset();
  auto reopened = DeltaLog::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT((*reopened)->last_seq(), 0u);
  EXPECT_TRUE(
      (*reopened)->Append(DeltaKV{DeltaOp::kInsert, "post", "v"}).ok());
}

// ---------------------------------------------------------------------------
// HealthRegistry
// ---------------------------------------------------------------------------

TEST(HealthRegistryTest, ReportsTransitionsAndMirrorsGauges) {
  MetricsRegistry metrics;
  HealthRegistry health(&metrics);
  EXPECT_TRUE(health.AllHealthy());
  EXPECT_EQ(health.state("pipeline.x"), HealthState::kHealthy);

  health.Report("pipeline.x", HealthState::kDegraded, "disk full");
  EXPECT_FALSE(health.AllHealthy());
  EXPECT_EQ(health.state("pipeline.x"), HealthState::kDegraded);
  EXPECT_EQ(health.reason("pipeline.x"), "disk full");
  EXPECT_EQ(metrics.GetGauge("health.pipeline.x")->value(), 1);

  // Idempotent re-report refreshes the reason without a transition.
  health.Report("pipeline.x", HealthState::kDegraded, "still full");
  auto snap = health.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].transitions, 1u);
  EXPECT_EQ(snap[0].reason, "still full");

  health.Report("pipeline.x", HealthState::kHealthy);
  EXPECT_TRUE(health.AllHealthy());
  EXPECT_EQ(metrics.GetGauge("health.pipeline.x")->value(), 0);
  EXPECT_EQ(health.reason("pipeline.x"), "");

  health.Report("pipeline.x", HealthState::kFailed, "log closed");
  EXPECT_NE(health.ToString().find("failed"), std::string::npos);
  EXPECT_TRUE(health.Remove("pipeline.x"));
  EXPECT_FALSE(health.Remove("pipeline.x"));
  EXPECT_TRUE(health.AllHealthy());
}

// ---------------------------------------------------------------------------
// ENOSPC degradation scenarios
// ---------------------------------------------------------------------------

std::vector<KV> SmallRing(int n) {
  std::vector<KV> graph;
  for (int i = 0; i < n; ++i) {
    graph.push_back(KV{"v" + std::to_string(i),
                       "v" + std::to_string((i + 1) % n)});
  }
  return graph;
}

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

class FaultDegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Instance()->Reset();
    root_ = ::testing::TempDir() + "/i2mr_fault_degrade";
    ASSERT_TRUE(ResetDir(root_).ok());
  }
  void TearDown() override { fault::FaultInjector::Instance()->Reset(); }

  PipelineOptions MakeOptions(HealthRegistry* health) {
    PipelineOptions options;
    options.spec = pagerank::MakeIterSpec("pr", 2, 50, 1e-9);
    options.engine.filter_threshold = 0.0;
    options.engine.mrbg_auto_off_ratio = 2;
    options.health = health;
    options.append_retries = 1;
    options.append_retry_backoff_ms = 0.5;
    options.degraded_probe_interval_ms = 20;
    return options;
  }

  std::string root_;
};

TEST_F(FaultDegradationTest,
       EnospcOnAppendEntersDegradedReadOnlyModeAndAutoResumes) {
  MetricsRegistry metrics;
  HealthRegistry health(&metrics);
  LocalCluster cluster(root_, 2);
  auto p = Pipeline::Open(&cluster, "pr", MakeOptions(&health));
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Pipeline* pipeline = p->get();

  auto graph = SmallRing(8);
  ASSERT_TRUE(pipeline->Bootstrap(graph, UnitState(graph)).ok());
  ASSERT_TRUE(
      pipeline->Append(DeltaKV{DeltaOp::kInsert, "v0", "v1"}).ok());
  EXPECT_FALSE(pipeline->degraded());

  // The disk fills: every delta-log append fails with ENOSPC.
  fault::FaultRule rule;
  rule.ops = fault::kAppend;
  rule.path_substr = root_;
  rule.kind = fault::FaultKind::kENOSPC;
  rule.times = -1;
  fault::FaultInjector::Instance()->AddRule(rule);

  auto failed = pipeline->Append(DeltaKV{DeltaOp::kInsert, "v1", "v2"});
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();
  EXPECT_TRUE(pipeline->degraded());
  EXPECT_NE(pipeline->degraded_reason().find("no space left"),
            std::string::npos);
  EXPECT_EQ(health.state("pipeline.pr"), HealthState::kDegraded);

  // Degraded is read-only, not down: reads keep serving, and appends
  // bounce with Unavailable (except the elected probe) instead of
  // hammering the sick disk.
  EXPECT_TRUE(pipeline->Lookup("v0").ok());
  bool saw_unavailable = false;
  for (int i = 0; i < 5 && !saw_unavailable; ++i) {
    auto bounced = pipeline->Append(DeltaKV{DeltaOp::kInsert, "v2", "v3"});
    if (!bounced.ok() && bounced.status().IsUnavailable()) {
      saw_unavailable = true;
    }
  }
  EXPECT_TRUE(saw_unavailable);

  // Space returns: the next probe write succeeds and the pipeline exits
  // degraded mode on its own.
  fault::FaultInjector::Instance()->Reset();
  Status resumed;
  for (int i = 0; i < 100; ++i) {
    resumed =
        pipeline->Append(DeltaKV{DeltaOp::kInsert, "v1", "v2"}).status();
    if (resumed.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(resumed.ok()) << resumed.ToString();
  EXPECT_FALSE(pipeline->degraded());
  EXPECT_EQ(health.state("pipeline.pr"), HealthState::kHealthy);

  // The backlog drains normally once healthy.
  ASSERT_TRUE(pipeline->RunEpoch().ok());
  EXPECT_EQ(pipeline->pending(), 0u);
}

TEST_F(FaultDegradationTest, EnospcOnSegmentSealRollsBackAndLogStaysUsable) {
  const std::string dir = JoinPath(root_, "log");
  DeltaLogOptions options;
  options.segment_bytes = 256;
  auto log = DeltaLog::Open(dir, options);
  ASSERT_TRUE(log.ok());

  // The new segment's creation fails once at the rotation boundary.
  fault::FaultRule rule;
  rule.ops = fault::kOpenWrite;
  rule.path_substr = "seg-";
  rule.kind = fault::FaultKind::kENOSPC;
  rule.times = 1;
  fault::FaultInjector::Instance()->AddRule(rule);

  // Rotation runs after the batch is durable, so the failed seal is
  // absorbed: every append still succeeds, the un-seal rollback reopens
  // the old active segment, and the next rotation (rule exhausted) seals
  // it normally.
  for (int i = 0; i < 64; ++i) {
    auto seq = (*log)->Append(DeltaKV{DeltaOp::kInsert,
                                      "key" + std::to_string(i),
                                      std::string(32, 'v')});
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  }
  EXPECT_EQ((*log)->last_seq(), 64u);
  EXPECT_EQ(fault::FaultInjector::Instance()->injections(), 1u);
  EXPECT_GT((*log)->segment_files(), 1u);  // later rotations succeeded

  // Reopen: old-or-new state, never torn.
  ASSERT_TRUE((*log)->Close().ok());
  auto reopened = DeltaLog::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->recovery_stats().records, 64u);
  EXPECT_EQ((*reopened)->recovery_stats().discarded_bytes, 0u);
}

TEST_F(FaultDegradationTest, EnospcDuringEpochStageLeavesOldEpochServing) {
  MetricsRegistry metrics;
  HealthRegistry health(&metrics);
  LocalCluster cluster(root_, 2);
  auto p = Pipeline::Open(&cluster, "pr", MakeOptions(&health));
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  Pipeline* pipeline = p->get();

  auto graph = SmallRing(8);
  ASSERT_TRUE(pipeline->Bootstrap(graph, UnitState(graph)).ok());
  const uint64_t epoch0 = pipeline->committed_epoch();
  auto before = pipeline->Lookup("v3");
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(
      pipeline->Append(DeltaKV{DeltaOp::kInsert, "v3", "v5"}).ok());

  // Everything the epoch commit writes under the pipeline's epoch dirs
  // fails: the stage must abort cleanly, leaving epoch0 serving.
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile | fault::kRename | fault::kOpenWrite |
             fault::kLink;
  rule.path_substr = "epoch-";
  rule.kind = fault::FaultKind::kENOSPC;
  rule.times = -1;
  fault::FaultInjector::Instance()->AddRule(rule);

  auto stats = pipeline->RunEpoch();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(pipeline->committed_epoch(), epoch0);
  auto still = pipeline->Lookup("v3");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(*still, *before);  // old state, not torn

  // Space returns: the retried epoch commits the staged change.
  fault::FaultInjector::Instance()->Reset();
  auto retried = pipeline->RunEpoch();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GT(pipeline->committed_epoch(), epoch0);
  EXPECT_EQ(pipeline->pending(), 0u);
}

TEST_F(FaultDegradationTest, EnospcDuringMrbgCompactionKeepsStoreServing) {
  const std::string dir = JoinPath(root_, "mrbg");
  ASSERT_TRUE(CreateDirs(dir).ok());
  auto store = MRBGStore::Open(dir);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 4; ++round) {
    for (int k = 0; k < 16; ++k) {
      Chunk c;
      c.key = "key" + std::to_string(k);
      c.entries.push_back(ChunkEntry{100, "round" + std::to_string(round)});
      ASSERT_TRUE((*store)->AppendChunk(c).ok());
    }
    ASSERT_TRUE((*store)->FinishBatch().ok());
  }

  fault::FaultRule rule;
  rule.ops = fault::kAllIO;
  rule.path_substr = dir;
  rule.kind = fault::FaultKind::kENOSPC;
  rule.times = -1;
  fault::FaultInjector::Instance()->AddRule(rule);

  EXPECT_FALSE((*store)->Compact().ok());

  // The failed rewrite left the pre-compaction files intact.
  fault::FaultInjector::Instance()->Reset();
  ASSERT_TRUE((*store)->PrepareQueries({"key3"}).ok());
  auto c = (*store)->Query("key3");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->entries[0].v2, "round3");  // latest round survived

  // And the retried compaction succeeds.
  ASSERT_TRUE((*store)->Compact().ok());
  auto again = (*store)->Query("key3");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->entries[0].v2, "round3");
  ASSERT_TRUE((*store)->Close().ok());
}

TEST_F(FaultDegradationTest, MetricsExporterToleratesWriteFaults) {
  MetricsRegistry metrics;
  HealthRegistry health(&metrics);
  metrics.Get("some.counter")->Add(3);

  MetricsExporterOptions options;
  options.path = JoinPath(root_, "metrics.prom");
  options.registry = &metrics;
  options.health = &health;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.WriteOnce().ok());
  auto first = ReadFileToString(options.path);
  ASSERT_TRUE(first.ok());

  fault::FaultRule rule;
  rule.ops = fault::kWriteFile | fault::kRename;
  rule.path_substr = options.path;
  rule.kind = fault::FaultKind::kENOSPC;
  rule.times = -1;
  fault::FaultInjector::Instance()->AddRule(rule);

  metrics.Get("some.counter")->Add(1);
  EXPECT_FALSE(exporter.WriteOnce().ok());
  // tmp+rename means the exposition file keeps its last complete contents.
  auto after = ReadFileToString(options.path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *first);

  fault::FaultInjector::Instance()->Reset();
  EXPECT_TRUE(exporter.WriteOnce().ok());
  auto recovered = ReadFileToString(options.path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_NE(*recovered, *first);
}

}  // namespace
}  // namespace i2mr
