// Tests for the general-purpose iterative engine (§4): the four evaluation
// applications converge to their sequential references; dependency-aware
// partitioning invariants hold for all three dependency types.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/gimv.h"
#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/codec.h"
#include "core/iter_engine.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"
#include "io/record_file.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

std::map<std::string, double> ToDoubleMap(const std::vector<KV>& kvs) {
  std::map<std::string, double> out;
  for (const auto& kv : kvs) out[kv.key] = *ParseDouble(kv.value);
  return out;
}

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

class CoreIterTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = ::testing::TempDir() + "/i2mr_core_iter"; }
  std::string root_;
};

TEST_F(CoreIterTest, PageRankTinyGraphMatchesHandComputation) {
  LocalCluster cluster(root_, 2);
  // 0 -> 1, 1 -> 0: symmetric, ranks converge to 1.
  std::vector<KV> graph = {{"0", "1"}, {"1", "0"}};
  IterativeEngine engine(&cluster,
                         pagerank::MakeIterSpec("pr_tiny", 2, 60, 1e-10));
  ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto ranks = ToDoubleMap(*state);
  EXPECT_NEAR(ranks["0"], 1.0, 1e-6);
  EXPECT_NEAR(ranks["1"], 1.0, 1e-6);
}

TEST_F(CoreIterTest, PageRankMatchesReferenceOnPowerLawGraph) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 300;
  gen.avg_degree = 5;
  auto graph = GenGraph(gen);

  IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr", 4, 60, 1e-8));
  ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->size(), 3u);  // took several iterations

  auto reference = pagerank::Reference(graph, 60, 1e-8);
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-5);
}

TEST_F(CoreIterTest, PageRankConvergenceIsMonotonicOverall) {
  LocalCluster cluster(root_, 2);
  GraphGenOptions gen;
  gen.num_vertices = 100;
  auto graph = GenGraph(gen);
  IterativeEngine engine(&cluster, pagerank::MakeIterSpec("prc", 2, 30, 1e-9));
  ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  ASSERT_GT(stats->size(), 4u);
  // Total diff in late iterations is far below early iterations.
  EXPECT_LT(stats->back().total_diff, stats->front().total_diff / 10);
}

TEST_F(CoreIterTest, SsspMatchesDijkstra) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 200;
  gen.avg_degree = 4;
  gen.weighted = true;
  auto graph = GenGraph(gen);
  std::string source = PaddedNum(0);

  auto spec = sssp::MakeIterSpec("sssp", source, 3);
  IterativeEngine engine(&cluster, spec);
  std::vector<KV> init_state;
  for (const auto& kv : graph) {
    init_state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  ASSERT_TRUE(engine.Prepare(graph, init_state).ok());
  ASSERT_TRUE(engine.Run().ok());

  auto reference = sssp::Reference(graph, source);
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(sssp::ErrorRate(*state, reference, 1e-9), 0.0);
}

TEST_F(CoreIterTest, KmeansMatchesLloyd) {
  LocalCluster cluster(root_, 3);
  PointsGenOptions gen;
  gen.num_points = 300;
  gen.dims = 3;
  gen.num_clusters = 4;
  auto points = GenPoints(gen);
  auto init = kmeans::InitialState(points, 4);

  IterativeEngine engine(&cluster, kmeans::MakeIterSpec("km", 3, 25, 1e-6));
  ASSERT_TRUE(engine.Prepare(points, init).ok());
  ASSERT_TRUE(engine.Run().ok());

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->size(), 1u);
  auto got = kmeans::DecodeCentroids((*state)[0].value);
  auto want = kmeans::Reference(
      points, kmeans::DecodeCentroids(init[0].value), 25, 1e-6);
  EXPECT_LT(kmeans::MaxCentroidDelta(got, want), 1e-5);
}

TEST_F(CoreIterTest, GimvMatchesBlockedMultiply) {
  LocalCluster cluster(root_, 3);
  MatrixGenOptions gen;
  gen.num_blocks = 4;
  gen.block_size = 8;
  gen.density = 0.2;
  auto blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);

  IterativeEngine engine(
      &cluster, gimv::MakeIterSpec("gimv", 3, gen.block_size, 0.15, 40, 1e-10));
  ASSERT_TRUE(engine.Prepare(blocks, vec).ok());
  ASSERT_TRUE(engine.Run().ok());

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference =
      gimv::Reference(blocks, vec, gen.block_size, 0.15, 40, 1e-10);
  EXPECT_LT(gimv::MaxDelta(*state, reference), 1e-6);
}

TEST_F(CoreIterTest, StructureFilesSortedByProjectKey) {
  LocalCluster cluster(root_, 3);
  MatrixGenOptions gen;
  gen.num_blocks = 4;
  gen.block_size = 4;
  gen.density = 0.3;
  auto blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);
  auto spec = gimv::MakeIterSpec("gimv_sort", 3, gen.block_size);
  IterativeEngine engine(&cluster, spec);
  ASSERT_TRUE(engine.Prepare(blocks, vec).ok());

  for (int p = 0; p < 3; ++p) {
    auto recs = ReadRecords(engine.StructurePath(p));
    ASSERT_TRUE(recs.ok());
    std::string last;
    for (const auto& kv : *recs) {
      std::string proj = spec.projector->Project(kv.key);
      EXPECT_GE(proj, last) << "partition " << p << " unsorted";
      last = proj;
      // Co-partitioning invariant: hash(project(SK)) determines partition.
      EXPECT_EQ(Hash64(proj) % 3, static_cast<uint64_t>(p));
    }
  }
}

TEST_F(CoreIterTest, StateCoLocatedWithReducePartition) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 100;
  auto graph = GenGraph(gen);
  IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr_coloc", 4));
  ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
  ASSERT_TRUE(engine.Run().ok());
  for (int p = 0; p < 4; ++p) {
    for (const auto& [dk, dv] : engine.state(p)->items()) {
      (void)dv;
      EXPECT_EQ(Hash64(dk) % 4, static_cast<uint64_t>(p));
    }
  }
}

TEST_F(CoreIterTest, AllToOneStateReplicatedToEveryPartition) {
  LocalCluster cluster(root_, 3);
  PointsGenOptions gen;
  gen.num_points = 60;
  gen.dims = 2;
  auto points = GenPoints(gen);
  auto init = kmeans::InitialState(points, 3);
  IterativeEngine engine(&cluster, kmeans::MakeIterSpec("km_rep", 3, 5, 1e-6));
  ASSERT_TRUE(engine.Prepare(points, init).ok());
  ASSERT_TRUE(engine.Run().ok());
  const std::string* v0 = engine.state(0)->Get(kmeans::kStateKey);
  ASSERT_NE(v0, nullptr);
  for (int p = 1; p < 3; ++p) {
    const std::string* vp = engine.state(p)->Get(kmeans::kStateKey);
    ASSERT_NE(vp, nullptr);
    EXPECT_EQ(*v0, *vp);
  }
}

TEST_F(CoreIterTest, LoadExistingResumesFromSavedState) {
  GraphGenOptions gen;
  gen.num_vertices = 50;
  auto graph = GenGraph(gen);
  LocalCluster cluster(root_, 2);
  std::vector<KV> snapshot;
  {
    IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr_resume", 2));
    ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
    ASSERT_TRUE(engine.Run().ok());
    auto s = engine.StateSnapshot();
    ASSERT_TRUE(s.ok());
    snapshot = *s;
  }
  {
    IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr_resume", 2));
    ASSERT_TRUE(engine.LoadExisting().ok());
    auto s = engine.StateSnapshot();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, snapshot);
  }
}

TEST_F(CoreIterTest, RunWithoutPrepareFails) {
  LocalCluster cluster(root_, 2);
  IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr_unprep", 2));
  EXPECT_FALSE(engine.Run().ok());
}

TEST_F(CoreIterTest, IterationStatsArePopulated) {
  LocalCluster cluster(root_, 2);
  GraphGenOptions gen;
  gen.num_vertices = 80;
  auto graph = GenGraph(gen);
  IterativeEngine engine(&cluster, pagerank::MakeIterSpec("pr_stats", 2, 5, 0));
  ASSERT_TRUE(engine.Prepare(graph, UnitState(graph)).ok());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 5u);
  for (const auto& it : *stats) {
    EXPECT_EQ(it.map_instances, 80);
    EXPECT_GT(it.shuffle_bytes, 0);
    EXPECT_GT(it.reduced_keys, 0);
    EXPECT_GT(it.wall_ms, 0);
  }
}

}  // namespace
}  // namespace i2mr
