// Tests for the incremental iterative engine (§5 + §6): refresh equivalence
// with full re-computation, change propagation control, P∆ auto turn-off,
// checkpointing and fault recovery.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/gimv.h"
#include "apps/kmeans.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/codec.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

class CoreIncrIterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_incr_iter";
  }
  std::string root_;
};

TEST_F(CoreIncrIterTest, PageRankRefreshMatchesRecompute) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 250;
  gen.avg_degree = 5;
  auto graph = GenGraph(gen);

  IncrIterOptions options;
  options.filter_threshold = 0.0;   // exact propagation
  options.mrbg_auto_off_ratio = 2;  // keep the incremental path under test
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_incr", 4, 80, 1e-8), options);
  auto init = engine.RunInitial(graph, UnitState(graph));
  ASSERT_TRUE(init.ok()) << init.status().ToString();
  EXPECT_GT(init->preserve_ms, 0.0);

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  EXPECT_FALSE(refresh->mrbg_turned_off);
  EXPECT_GT(refresh->iterations.size(), 1u);

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = pagerank::Reference(graph, 80, 1e-8);
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4);
}

TEST_F(CoreIncrIterTest, RefreshTouchesFarFewerMapInstancesThanFullRun) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 400;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  IncrIterOptions options;
  options.filter_threshold = 1e-3;
  options.mrbg_auto_off_ratio = 2;
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_cheap", 4, 60, 1e-6), options);
  auto init = engine.RunInitial(graph, UnitState(graph));
  ASSERT_TRUE(init.ok());
  int64_t full_map_total = 0;
  for (const auto& it : init->iterations) full_map_total += it.map_instances;

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.02;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok());
  // First refresh iteration touches only the delta records.
  EXPECT_EQ(refresh->iterations[0].map_instances,
            static_cast<int64_t>(delta.size()));
  int64_t total_incr_map = 0;
  for (const auto& it : refresh->iterations) total_incr_map += it.map_instances;
  // The whole refresh maps far fewer instances than the full run did.
  EXPECT_LT(total_incr_map, full_map_total / 4);
}

TEST_F(CoreIncrIterTest, CpcDisabledPropagatesEverythingAndStillConverges) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 150;
  auto graph = GenGraph(gen);

  IncrIterOptions no_cpc;
  no_cpc.filter_threshold = -1.0;  // w/o CPC
  no_cpc.mrbg_auto_off_ratio = 2.0;  // never auto-off (to observe propagation)
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_nocpc", 3, 60, 1e-6), no_cpc);
  ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.05;
  dopt.seed = 7;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok());
  ASSERT_GT(refresh->iterations.size(), 2u);
  // Without CPC, propagation expands to (nearly) the whole graph.
  int64_t late = refresh->iterations[refresh->iterations.size() - 1].propagated_pairs;
  EXPECT_GT(late, static_cast<int64_t>(gen.num_vertices) / 2);

  auto reference = pagerank::Reference(graph, 60, 1e-6);
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4);
}

TEST_F(CoreIncrIterTest, CpcFiltersPropagationAndBoundsError) {
  GraphGenOptions gen;
  gen.num_vertices = 200;
  gen.avg_degree = 5;

  auto run_with_threshold = [&](double ft, const std::string& tag,
                                int64_t* total_propagated, double* error) {
    LocalCluster cluster(root_ + "_" + tag, 3);
    auto graph = GenGraph(gen);
    IncrIterOptions options;
    options.filter_threshold = ft;
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("pr_ft", 3, 60, 1e-6), options);
    EXPECT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    dopt.seed = 11;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    EXPECT_TRUE(refresh.ok());
    *total_propagated = 0;
    for (const auto& it : refresh->iterations) {
      *total_propagated += it.propagated_pairs;
    }
    auto reference = pagerank::Reference(graph, 60, 1e-6);
    auto state = engine.StateSnapshot();
    EXPECT_TRUE(state.ok());
    *error = pagerank::MeanError(*state, reference);
  };

  int64_t prop_small, prop_large;
  double err_small, err_large;
  run_with_threshold(1e-4, "small", &prop_small, &err_small);
  run_with_threshold(0.05, "large", &prop_large, &err_large);

  // Larger threshold filters more kv-pairs...
  EXPECT_LT(prop_large, prop_small);
  // ... at some accuracy cost, but bounded (paper: mean errors < 0.2%).
  EXPECT_LT(err_small, 1e-3);
  EXPECT_LT(err_large, 0.05);
  EXPECT_LE(err_small, err_large + 1e-12);
}

TEST_F(CoreIncrIterTest, SsspRefreshExactWithFilterZero) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 150;
  gen.avg_degree = 4;
  gen.weighted = true;
  auto graph = GenGraph(gen);
  std::string source = PaddedNum(0);

  auto spec = sssp::MakeIterSpec("sssp_incr", source, 3);
  std::vector<KV> init_state;
  for (const auto& kv : graph) {
    init_state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  IncrementalIterativeEngine engine(&cluster, spec, options);
  ASSERT_TRUE(engine.RunInitial(graph, init_state).ok());

  // Delta: add shortcut edges from the source (distance decreases only, so
  // incremental relaxation from the converged state is exact).
  std::vector<DeltaKV> delta;
  auto old_src = graph[0];
  auto edges = ParseWeightedAdjacency(old_src.value);
  edges.emplace_back(PaddedNum(77), 0.05);
  edges.emplace_back(PaddedNum(123), 0.01);
  std::string new_sv = JoinWeightedAdjacency(edges);
  delta.push_back(DeltaKV{DeltaOp::kDelete, old_src.key, old_src.value});
  delta.push_back(DeltaKV{DeltaOp::kInsert, old_src.key, new_sv});
  graph[0].value = new_sv;

  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = sssp::Reference(graph, source);
  EXPECT_EQ(sssp::ErrorRate(*state, reference, 1e-9), 0.0);
}

TEST_F(CoreIncrIterTest, GimvRefreshMatchesRecompute) {
  LocalCluster cluster(root_, 3);
  MatrixGenOptions gen;
  gen.num_blocks = 4;
  gen.block_size = 8;
  gen.density = 0.15;
  auto blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);

  IncrIterOptions options;
  options.filter_threshold = 0.0;
  IncrementalIterativeEngine engine(
      &cluster, gimv::MakeIterSpec("gimv_incr", 3, gen.block_size, 0.15, 60, 1e-10),
      options);
  ASSERT_TRUE(engine.RunInitial(blocks, vec).ok());

  auto delta = GenMatrixDelta(gen, 0.15, 9, &blocks);
  ASSERT_FALSE(delta.empty());
  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = gimv::Reference(blocks, vec, gen.block_size, 0.15, 60, 1e-10);
  EXPECT_LT(gimv::MaxDelta(*state, reference), 1e-5);
}

TEST_F(CoreIncrIterTest, KmeansWithMrbgOffRecomputesFromConvergedState) {
  LocalCluster cluster(root_, 3);
  PointsGenOptions gen;
  gen.num_points = 200;
  gen.dims = 2;
  gen.num_clusters = 3;
  auto points = GenPoints(gen);
  auto init = kmeans::InitialState(points, 3);

  IncrIterOptions options;
  options.maintain_mrbg = false;  // §5.2: wasteful for Kmeans
  IncrementalIterativeEngine engine(
      &cluster, kmeans::MakeIterSpec("km_incr", 3, 30, 1e-7), options);
  auto initrun = engine.RunInitial(points, init);
  ASSERT_TRUE(initrun.ok());
  auto converged = engine.StateSnapshot();
  ASSERT_TRUE(converged.ok());
  auto prev_centroids = kmeans::DecodeCentroids((*converged)[0].value);

  auto delta = GenPointsDelta(gen, 0.1, 0.05, 10, &points);
  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok());
  EXPECT_TRUE(refresh->mrbg_turned_off);

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto got = kmeans::DecodeCentroids((*state)[0].value);
  // Reference: Lloyd on the updated points FROM the previously converged
  // centroids (§5.1 "use the converged state data Di-1 from job Ai-1").
  auto want = kmeans::Reference(points, prev_centroids, 30, 1e-7);
  EXPECT_LT(kmeans::MaxCentroidDelta(got, want), 1e-5);
}

TEST_F(CoreIncrIterTest, PDeltaAutoTurnOffTriggersOnGlobalChange) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 100;
  auto graph = GenGraph(gen);
  IncrIterOptions options;
  options.filter_threshold = -1;      // no CPC -> everything propagates
  options.mrbg_auto_off_ratio = 0.5;  // paper default
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_autooff", 3, 60, 1e-6), options);
  ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());

  // Change most of the graph: P∆ rises above 50% within a few iterations.
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.9;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok());
  EXPECT_TRUE(refresh->mrbg_turned_off);
  EXPECT_GT(refresh->max_p_delta, 0.5);

  // Falls back to full iterative re-computation: result still correct.
  auto reference = pagerank::Reference(graph, 60, 1e-6);
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4);
}

TEST_F(CoreIncrIterTest, FaultRecoveryProducesSameResults) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  auto run = [&](bool inject, const std::string& tag,
                 std::vector<RecoveryEvent>* recoveries) {
    LocalCluster cluster(root_ + "_" + tag, 3);
    auto graph = GenGraph(gen);
    IncrIterOptions options;
    options.filter_threshold = 0.0;
    options.mrbg_auto_off_ratio = 2;
    options.checkpoint_each_iteration = true;
    if (inject) {
      options.fail_hook = [](int iteration, TaskId::Kind kind, int partition) {
        // Fail map task 1 in iteration 2 and reduce task 0 in iteration 3.
        return (iteration == 2 && kind == TaskId::Kind::kMap && partition == 1) ||
               (iteration == 3 && kind == TaskId::Kind::kReduce && partition == 0);
      };
    }
    IncrementalIterativeEngine engine(
        &cluster, pagerank::MakeIterSpec("pr_ft", 3, 60, 1e-8), options);
    EXPECT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.1;
    dopt.seed = 5;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    EXPECT_TRUE(refresh.ok()) << refresh.status().ToString();
    if (recoveries != nullptr) *recoveries = refresh->recoveries;
    auto state = engine.StateSnapshot();
    EXPECT_TRUE(state.ok());
    return *state;
  };

  std::vector<RecoveryEvent> recoveries;
  auto clean = run(false, "clean", nullptr);
  auto faulty = run(true, "faulty", &recoveries);
  EXPECT_EQ(clean, faulty);  // bit-identical recovery
  ASSERT_EQ(recoveries.size(), 2u);
  EXPECT_EQ(recoveries[0].iteration, 2);
  EXPECT_EQ(recoveries[1].iteration, 3);
  for (const auto& ev : recoveries) {
    EXPECT_GE(ev.recovery_ms, 0.0);
    EXPECT_LT(ev.recovery_ms, 5000.0);
  }
}

TEST_F(CoreIncrIterTest, EmptyDeltaRefreshConvergesImmediately) {
  LocalCluster cluster(root_, 2);
  GraphGenOptions gen;
  gen.num_vertices = 60;
  auto graph = GenGraph(gen);
  IncrIterOptions options;
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_empty", 2, 40, 1e-8), options);
  ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());
  auto before = engine.StateSnapshot();
  ASSERT_TRUE(before.ok());

  auto refresh = engine.RunIncremental({});
  ASSERT_TRUE(refresh.ok());
  EXPECT_EQ(refresh->iterations.size(), 1u);
  EXPECT_EQ(refresh->iterations[0].map_instances, 0);
  auto after = engine.StateSnapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(CoreIncrIterTest, RefreshAcrossEngineRestarts) {
  // The paper's deployment scenario: jobs A1, A2, A3 run as separate
  // processes (days apart), each picking up the preserved state and
  // MRBGraph of the previous one from disk.
  GraphGenOptions gen;
  gen.num_vertices = 120;
  auto graph = GenGraph(gen);
  std::string root = root_ + "_restart";
  // Separate cluster objects must not wipe each other's state: reuse one
  // root via distinct engine instances (a LocalCluster resets its root on
  // construction, so keep a single cluster alive as the "machine").
  LocalCluster cluster(root, 3);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  {
    IncrementalIterativeEngine a1(
        &cluster, pagerank::MakeIterSpec("pr_restart", 3, 80, 1e-8), options);
    ASSERT_TRUE(a1.RunInitial(graph, UnitState(graph)).ok());
  }  // engine object destroyed; state + MRBGraph live on disk
  for (int job = 2; job <= 3; ++job) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.08;
    dopt.seed = 40 + job;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    IncrementalIterativeEngine ai(
        &cluster, pagerank::MakeIterSpec("pr_restart", 3, 80, 1e-8), options);
    // A fresh engine has no in-memory state: it must load everything from
    // the partition directories (LoadExisting inside RunIncremental).
    auto refresh = ai.RunIncremental(delta);
    ASSERT_TRUE(refresh.ok()) << "job A" << job << ": "
                              << refresh.status().ToString();
    EXPECT_FALSE(refresh->mrbg_turned_off);
    auto state = ai.StateSnapshot();
    ASSERT_TRUE(state.ok());
    auto reference = pagerank::Reference(graph, 80, 1e-8);
    EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4) << "job A" << job;
  }
}

TEST_F(CoreIncrIterTest, DeletionsStayDeletedAcrossRestart) {
  // Structure deletions empty their MRBG chunks, which the log-structured
  // store records as tombstone frames. A fresh engine's LoadExisting
  // rebuilds each store's index by scanning the segment log — the
  // tombstoned chunks must come back deleted, not resurrect as the
  // pre-delete versions (which are still physically present in older
  // segments until compaction drops them).
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  std::string root = root_ + "_tombstone";
  LocalCluster cluster(root, 3);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  {
    IncrementalIterativeEngine a1(
        &cluster, pagerank::MakeIterSpec("pr_tomb", 3, 80, 1e-8), options);
    ASSERT_TRUE(a1.RunInitial(graph, UnitState(graph)).ok());
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.0;
    dopt.delete_fraction = 0.15;  // deletions only: every touched chunk
    dopt.seed = 77;               // shrinks or disappears
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = a1.RunIncremental(delta);
    ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
    EXPECT_FALSE(refresh->mrbg_turned_off);
  }  // engine destroyed; tombstones live only in the segment log
  IncrementalIterativeEngine a2(
      &cluster, pagerank::MakeIterSpec("pr_tomb", 3, 80, 1e-8), options);
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.05;
  dopt.seed = 78;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  auto refresh = a2.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  auto state = a2.StateSnapshot();
  ASSERT_TRUE(state.ok());
  auto reference = pagerank::Reference(graph, 80, 1e-8);
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4);
}

TEST_F(CoreIncrIterTest, SecondRefreshContinuesFromFirst) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 150;
  auto graph = GenGraph(gen);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_multi", 3, 80, 1e-8), options);
  ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());

  for (int round = 0; round < 2; ++round) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.08;
    dopt.insert_fraction = 0.02;
    dopt.seed = 20 + round;
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    ASSERT_TRUE(refresh.ok()) << "round " << round;
  }
  auto reference = pagerank::Reference(graph, 80, 1e-8);
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4);
}

}  // namespace
}  // namespace i2mr
