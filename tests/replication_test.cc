// Tests for the read-replica subsystem: delta-log + epoch shipping to
// followers, pinned reads over replica backends, kill-a-replica
// availability (reads keep succeeding, lag recovers after restart),
// compressed-archive shipping, and promote-on-primary-death failover (the
// promoted follower serves exactly the pre-crash committed epoch and the
// shard keeps ingesting). Runs in the TSan matrix: the concurrent-reader
// sections double as race checks on the shipper/cutover paths.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/pagerank.h"
#include "data/graph_gen.h"
#include "io/compress.h"
#include "io/env.h"
#include "pipeline/delta_log.h"
#include "replication/replica_set.h"
#include "serving/shard_router.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

ShardRouterOptions PageRankShards(int num_shards, int partitions = 2) {
  ShardRouterOptions options;
  options.num_shards = num_shards;
  options.workers_per_shard = 2;
  options.pipeline.spec = pagerank::MakeIterSpec("pr", partitions, 100, 1e-9);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.engine.mrbg_auto_off_ratio = 2;
  options.pipeline.log.segment_bytes = 8 << 10;  // small: exercise rotation
  return options;
}

std::vector<std::vector<KV>> ShardReferences(const ShardRouter& router,
                                             const std::vector<KV>& graph) {
  std::vector<std::vector<KV>> parts(router.num_shards());
  for (const auto& kv : graph) parts[router.ShardOf(kv.key)].push_back(kv);
  std::vector<std::vector<KV>> refs;
  refs.reserve(parts.size());
  for (const auto& part : parts) {
    refs.push_back(pagerank::Reference(part, 100, 1e-9));
  }
  return refs;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_replication";
    replicas_ = ::testing::TempDir() + "/i2mr_replication_replicas";
    ASSERT_TRUE(ResetDir(root_).ok());
    ASSERT_TRUE(ResetDir(replicas_).ok());
  }

  void AppendDelta(ShardRouter* router, std::vector<KV>* graph,
                   const GraphGenOptions& gen, int seed) {
    GraphDeltaOptions dopt;
    dopt.update_fraction = 0.08;
    dopt.seed = seed;
    auto delta = GenGraphDelta(gen, dopt, graph);
    ASSERT_TRUE(
        router->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
            .ok());
  }

  std::string root_;
  std::string replicas_;
};

// ---------------------------------------------------------------------------
// Shipping
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, ShipsCommittedEpochsAndServesThemFromFollowers) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  ReplicaSetOptions ro;
  ro.replicas_per_shard = 1;
  ro.read_from_primary = false;  // reads must come from followers
  auto set = ReplicaSet::Open(router->get(), replicas_, ro);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE((*set)->SyncAll().ok());

  // Every follower applied exactly the primary's committed epoch, counted
  // honest shipped bytes, and reports zero lag.
  for (int s = 0; s < 2; ++s) {
    FollowerReplica* f = (*set)->replica(s, 0);
    EXPECT_EQ(f->applied_epoch(), (*router)->shard(s)->committed_epoch());
    EXPECT_EQ(f->applied_watermark(),
              (*router)->shard(s)->committed_watermark());
    EXPECT_GT(f->shipped_bytes()->value(), 0);
    EXPECT_TRUE((*set)->shipper(s)->IsCaughtUp(0));
  }

  // Follower-served reads agree with the primary for every key.
  for (const auto& kv : graph) {
    auto replica_read = (*set)->Get(kv.key);
    ASSERT_TRUE(replica_read.ok()) << kv.key;
    auto primary_read = (*router)->Lookup(kv.key);
    ASSERT_TRUE(primary_read.ok());
    EXPECT_EQ(*replica_read, *primary_read);
  }

  // New epochs keep flowing: append, drain, sync, re-check.
  AppendDelta(router->get(), &graph, gen, 41);
  ASSERT_TRUE((*router)->DrainAll().ok());
  ASSERT_TRUE((*set)->SyncAll().ok());
  auto snap = (*set)->PinSnapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->epochs(), (*router)->CommittedEpochs());
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ((*set)->replica(s, 0)->applied_epoch(),
              (*router)->shard(s)->committed_epoch());
    EXPECT_GT((*set)->replica(s, 0)->applied_epochs()->value(), 1);
  }
}

TEST_F(ReplicationTest, ShipsCompressedArchiveSegmentsTransparently) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  ShardRouterOptions options = PageRankShards(2);
  options.pipeline.log.segment_bytes = 2 << 10;  // rotate often
  options.pipeline.log.archive_purged = true;
  options.pipeline.log.compress_archive = true;
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  ReplicaSetOptions ro;
  ro.replicas_per_shard = 1;
  auto set = ReplicaSet::Open(router->get(), replicas_, ro);
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  for (int round = 1; round <= 3; ++round) {
    AppendDelta(router->get(), &graph, gen, 50 + round);
    ASSERT_TRUE((*router)->DrainAll().ok());
  }
  ASSERT_TRUE((*set)->SyncAll().ok());

  // The primary archived consumed segments as compressed .lzd files and
  // the shipper landed (some of) them at the followers unmodified.
  bool saw_compressed = false;
  for (int s = 0; s < 2; ++s) {
    for (const auto& base : (*set)->replica(s, 0)->SegmentBasenames()) {
      if (base.size() > 4 &&
          base.compare(base.size() - 4, 4, ".lzd") == 0) {
        saw_compressed = true;
      }
    }
  }
  EXPECT_TRUE(saw_compressed) << "no compressed archive segment was shipped";

  // Failover on top of a compressed shipped log: the promoted pipeline's
  // recovery scan reads .lzd archives transparently.
  ASSERT_TRUE((*set)->KillPrimary(0).ok());
  uint64_t pre_crash = (*router)->shard(0)->committed_epoch();
  auto promoted = (*set)->Promote(0);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ((*set)->primary(0)->committed_epoch(), pre_crash);

  auto refs = ShardReferences(**router, graph);
  auto served = (*set)->primary(0)->ServingSnapshot();
  EXPECT_LT(pagerank::MeanError(served, refs[0]), 1e-3);
}

TEST_F(ReplicationTest, ArchivedTwinOfShippedRawSegmentNeverBlocksPromotion) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  ShardRouterOptions options = PageRankShards(2);
  options.pipeline.log.segment_bytes = 2 << 10;  // rotate often
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  ReplicaSetOptions ro;
  ro.replicas_per_shard = 1;
  auto set = ReplicaSet::Open(router->get(), replicas_, ro);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE((*set)->SyncAll().ok());

  // Seal fresh raw segments past the follower's applied watermark and ship
  // them. No drain: the follower holds the raw records but never applies a
  // newer epoch, so its purge mark can't retire them — the lagging
  // follower failover exists for.
  for (int round = 0; round < 8; ++round) {
    AppendDelta(router->get(), &graph, gen, 77 + round);
  }
  ASSERT_TRUE((*set)->SyncAll().ok());
  ASSERT_TRUE((*set)->KillPrimary(0).ok());

  // Emulate the primary having archived those same spans as compressed
  // `.lzd` twins before dying (the shipper's first-seq dedup normally
  // skips them; a direct install must replace — never duplicate — the raw
  // copy, since both cover the same seq range and a promoted root's
  // recovery scan rejects a duplicated span as a sequence regression).
  FollowerReplica* f = (*set)->replica(0, 0);
  auto held = ListFiles(f->LogDir());
  ASSERT_TRUE(held.ok());
  std::string scratch = root_ + "_twin_scratch";
  ASSERT_TRUE(ResetDir(scratch).ok());
  int twins = 0;
  for (const auto& seg : *held) {
    if (!IsDeltaLogSegmentFile(seg) || IsCompressedDeltaLogSegmentFile(seg)) {
      continue;
    }
    auto raw = ReadFileToString(seg);
    ASSERT_TRUE(raw.ok());
    std::string compressed;
    LzCompress(*raw, &compressed);
    std::string base = seg.substr(seg.find_last_of('/') + 1);
    std::string lzd =
        JoinPath(scratch, base.substr(0, base.size() - 4) + ".lzd");
    ASSERT_TRUE(WriteStringToFile(lzd, compressed, false).ok());
    ASSERT_TRUE(f->InstallSegment(lzd, nullptr).ok()) << lzd;
    ++twins;
  }
  ASSERT_GT(twins, 0) << "no raw shipped segment to re-encode";
  EXPECT_EQ(f->SegmentBasenames().size(), f->SegmentFirstSeqs().size())
      << "follower holds twin raw+compressed copies of a segment";

  // The promoted pipeline's recovery scans every held segment file; with
  // exactly one form per span it replays the shipped backlog cleanly.
  uint64_t pre_crash_applied = f->applied_epoch();
  auto promoted = (*set)->Promote(0);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ((*set)->primary(0)->committed_epoch(), pre_crash_applied);
  for (const auto& kv : graph) {
    if ((*router)->ShardOf(kv.key) != 0) continue;
    EXPECT_TRUE((*set)->Get(kv.key).ok());
    break;
  }
}

// ---------------------------------------------------------------------------
// Kill a replica: availability + lag recovery
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, KillReplicaKeepsReadsServingAndLagRecovers) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  ReplicaSetOptions ro;
  ro.replicas_per_shard = 2;
  auto set = ReplicaSet::Open(router->get(), replicas_, ro);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE((*set)->SyncAll().ok());

  // Hammer reads from another thread across the kill window; every read
  // must succeed (remaining backends cover the shard).
  std::atomic<bool> stop{false};
  std::atomic<int> failed{0}, done{0};
  std::thread reader([&] {
    size_t i = 0;
    while (!stop.load()) {
      const auto& kv = graph[i++ % graph.size()];
      auto v = (*set)->Get(kv.key);
      if (!v.ok()) failed.fetch_add(1);
      done.fetch_add(1);
    }
  });

  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE((*set)->KillReplica(s, 0).ok());
    EXPECT_TRUE((*set)->IsReplicaStale(s, 0));
  }

  // The killed replicas fall behind while the primaries keep committing.
  for (int round = 1; round <= 2; ++round) {
    AppendDelta(router->get(), &graph, gen, 60 + round);
    ASSERT_TRUE((*router)->DrainAll().ok());
  }
  ASSERT_TRUE((*set)->SyncAll().ok());
  for (int s = 0; s < 2; ++s) {
    EXPECT_GT((*set)->ReplicaLag(s, 0), 0u);
    EXPECT_TRUE((*set)->IsReplicaStale(s, 0));
    // The surviving replica stayed caught up.
    EXPECT_EQ((*set)->ReplicaLag(s, 1), 0u);
    EXPECT_FALSE((*set)->IsReplicaStale(s, 1));
  }

  // Restart: the shipper catches the replicas back up and routing
  // readmits them.
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE((*set)->RestartReplica(s, 0).ok());
  }
  ASSERT_TRUE((*set)->SyncAll().ok());
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ((*set)->ReplicaLag(s, 0), 0u);
    EXPECT_FALSE((*set)->IsReplicaStale(s, 0));
    EXPECT_EQ((*set)->replica(s, 0)->applied_epoch(),
              (*router)->shard(s)->committed_epoch());
  }

  stop.store(true);
  reader.join();
  EXPECT_GT(done.load(), 0);
  EXPECT_EQ(failed.load(), 0) << failed.load() << " of " << done.load()
                              << " reads failed during the kill window";
}

// ---------------------------------------------------------------------------
// Kill the primary: promote a follower
// ---------------------------------------------------------------------------

TEST_F(ReplicationTest, PromoteOnPrimaryDeathServesExactCommittedState) {
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);

  auto router = ShardRouter::Open(root_, "pr", PageRankShards(2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, UnitState(graph)).ok());

  ReplicaSetOptions ro;
  ro.replicas_per_shard = 2;
  auto set = ReplicaSet::Open(router->get(), replicas_, ro);
  ASSERT_TRUE(set.ok()) << set.status().ToString();

  AppendDelta(router->get(), &graph, gen, 71);
  ASSERT_TRUE((*router)->DrainAll().ok());
  ASSERT_TRUE((*set)->SyncAll().ok());

  const uint64_t pre_crash_epoch = (*router)->shard(0)->committed_epoch();
  std::map<std::string, std::string> pre_crash;
  for (const auto& kv : graph) {
    if ((*router)->ShardOf(kv.key) != 0) continue;
    auto v = (*router)->Lookup(kv.key);
    ASSERT_TRUE(v.ok());
    pre_crash[kv.key] = *v;
  }

  // Concurrent reads across kill + promotion: zero failures allowed.
  std::atomic<bool> stop{false};
  std::atomic<int> failed{0}, done{0};
  std::thread reader([&] {
    size_t i = 0;
    while (!stop.load()) {
      const auto& kv = graph[i++ % graph.size()];
      auto v = (*set)->Get(kv.key);
      if (!v.ok()) failed.fetch_add(1);
      done.fetch_add(1);
    }
  });

  ASSERT_TRUE((*set)->KillPrimary(0).ok());
  EXPECT_TRUE((*set)->primary_dead(0));
  // Writes to the dead shard are refused until a replica is promoted.
  ASSERT_FALSE(pre_crash.empty());
  EXPECT_FALSE((*set)
                   ->Append(DeltaKV{DeltaOp::kInsert, pre_crash.begin()->first,
                                    "0000000002"})
                   .ok());

  auto promoted = (*set)->Promote(0);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_FALSE((*set)->primary_dead(0));

  stop.store(true);
  reader.join();
  EXPECT_GT(done.load(), 0);
  EXPECT_EQ(failed.load(), 0) << failed.load() << " of " << done.load()
                              << " reads failed across the failover";

  // The promoted pipeline serves exactly the epoch the dead primary had
  // durably committed, value-for-value.
  Pipeline* promoted_primary = (*set)->primary(0);
  EXPECT_EQ(promoted_primary->committed_epoch(), pre_crash_epoch);
  for (const auto& [key, value] : pre_crash) {
    auto v = promoted_primary->Lookup(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }

  // The shard ingests again through the promoted primary (writes must
  // route through the set now — the router still points at the dead
  // pipeline), stays exact vs a from-scratch recompute, and replication
  // to the survivor resumes.
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.08;
  dopt.seed = 72;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*set)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  ASSERT_TRUE((*set)->DrainAll().ok());
  ASSERT_TRUE((*set)->SyncAll().ok());

  auto refs = ShardReferences(**router, graph);
  for (int s = 0; s < 2; ++s) {
    auto served = (*set)->primary(s)->ServingSnapshot();
    EXPECT_LT(pagerank::MeanError(served, refs[s]), 1e-3) << "shard " << s;
  }
  int survivor = *promoted == 0 ? 1 : 0;
  EXPECT_EQ((*set)->replica(0, survivor)->applied_epoch(),
            (*set)->primary(0)->committed_epoch());
  EXPECT_FALSE((*set)->IsReplicaStale(0, survivor));
}

}  // namespace
}  // namespace i2mr
