// Tests for the comparison baselines: PlainMR iteration driver, the
// HaLoop-style two-job driver, and the Spark-like in-memory engine.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/gimv.h"
#include "apps/pagerank.h"
#include "baselines/haloop_driver.h"
#include "baselines/plain_driver.h"
#include "baselines/spark_sim.h"
#include "common/codec.h"
#include "data/graph_gen.h"
#include "data/matrix_gen.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = ::testing::TempDir() + "/i2mr_baselines"; }
  std::string root_;
};

std::map<std::string, double> ReadRanksFromMixed(
    const std::vector<std::string>& parts) {
  std::map<std::string, double> ranks;
  for (const auto& part : parts) {
    if (!FileExists(part)) continue;
    auto recs = ReadRecords(part);
    EXPECT_TRUE(recs.ok());
    for (const auto& kv : *recs) {
      size_t bar = kv.value.rfind('|');
      ranks[kv.key] = *ParseDouble(kv.value.substr(bar + 1));
    }
  }
  return ranks;
}

TEST_F(BaselinesTest, PlainMrPageRankMatchesReference) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 120;
  auto graph = GenGraph(gen);

  std::vector<KV> mixed;
  for (const auto& kv : graph) {
    mixed.push_back(KV{kv.key, pagerank::MixedValue(kv.value, 1.0)});
  }
  ASSERT_TRUE(cluster.dfs()->WriteDataset("pr-in", mixed, 3).ok());

  PlainIterSpec spec;
  spec.name = "plainpr";
  spec.mapper = pagerank::PlainMapper();
  spec.reducer = pagerank::PlainReducer();
  spec.num_reduce_tasks = 3;
  spec.num_iterations = 25;
  auto result = RunPlainIterations(&cluster, spec, "pr-in");
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  auto ranks = ReadRanksFromMixed(result.final_parts);
  auto reference = pagerank::Reference(graph, 25, 0.0);
  double total_err = 0;
  size_t n = 0;
  for (const auto& kv : reference) {
    auto it = ranks.find(kv.key);
    if (it == ranks.end()) continue;  // destination-only vertices
    total_err += std::abs(it->second - *ParseDouble(kv.value));
    ++n;
  }
  ASSERT_GT(n, 100u);
  EXPECT_LT(total_err / n, 1e-3);
}

TEST_F(BaselinesTest, HaLoopPageRankMatchesPlain) {
  LocalCluster cluster(root_, 3);
  GraphGenOptions gen;
  gen.num_vertices = 100;
  gen.seed = 5;
  auto graph = GenGraph(gen);

  // HaLoop input: separate structure / state datasets.
  std::vector<KV> structure, state;
  for (const auto& kv : graph) {
    structure.push_back(KV{kv.key, "S" + kv.value});
    state.push_back(KV{kv.key, "R1"});
  }
  ASSERT_TRUE(cluster.dfs()->WriteDataset("hl-struct", structure, 3).ok());
  ASSERT_TRUE(cluster.dfs()->WriteDataset("hl-state", state, 3).ok());

  TwoJobIterSpec spec;
  spec.name = "haloop-pr";
  spec.mapper1 = pagerank::HaLoopIdentityMapper();
  spec.reducer1 = pagerank::HaLoopJoinReducer();
  spec.mapper2 = pagerank::HaLoopIdentityMapper();
  spec.reducer2 = pagerank::HaLoopSumReducer();
  spec.num_reduce_tasks = 3;
  spec.num_iterations = 20;
  auto result = RunTwoJobIterations(&cluster, spec, "hl-struct", "hl-state");
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  std::map<std::string, double> ranks;
  for (const auto& part : result.final_parts) {
    if (!FileExists(part)) continue;
    auto recs = ReadRecords(part);
    ASSERT_TRUE(recs.ok());
    for (const auto& kv : *recs) {
      ASSERT_EQ(kv.value[0], 'R');
      ranks[kv.key] = *ParseDouble(kv.value.substr(1));
    }
  }
  auto reference = pagerank::Reference(graph, 20, 0.0);
  for (const auto& kv : reference) {
    auto it = ranks.find(kv.key);
    if (it == ranks.end()) continue;
    EXPECT_NEAR(it->second, *ParseDouble(kv.value), 1e-3) << kv.key;
  }
  EXPECT_GE(ranks.size(), 100u);
}

TEST_F(BaselinesTest, GimvTwoJobMatchesReference) {
  LocalCluster cluster(root_, 3);
  MatrixGenOptions gen;
  gen.num_blocks = 3;
  gen.block_size = 6;
  gen.density = 0.25;
  auto blocks = GenBlockMatrix(gen);
  auto vec = GenVectorBlocks(gen, 1.0);

  std::vector<KV> matrix_ds, vector_ds;
  for (const auto& kv : blocks) matrix_ds.push_back(KV{kv.key, "M" + kv.value});
  for (const auto& kv : vec) vector_ds.push_back(KV{kv.key, "V" + kv.value});
  ASSERT_TRUE(cluster.dfs()->WriteDataset("gimv-m", matrix_ds, 2).ok());
  ASSERT_TRUE(cluster.dfs()->WriteDataset("gimv-v", vector_ds, 2).ok());

  TwoJobIterSpec spec;
  spec.name = "gimv2";
  spec.mapper1 = gimv::Phase1Mapper(gen.num_blocks);
  spec.reducer1 = gimv::Phase1Reducer(gen.block_size);
  spec.mapper2 = gimv::Phase2Mapper();
  spec.reducer2 = gimv::Phase2Reducer(0.15);
  spec.num_reduce_tasks = 3;
  spec.num_iterations = 15;
  spec.cache_static = false;  // plain two-job variant
  auto result = RunTwoJobIterations(&cluster, spec, "gimv-m", "gimv-v");
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  std::vector<KV> got;
  for (const auto& part : result.final_parts) {
    if (!FileExists(part)) continue;
    auto recs = ReadRecords(part);
    ASSERT_TRUE(recs.ok());
    for (const auto& kv : *recs) {
      got.push_back(KV{kv.key, kv.value.substr(1)});  // strip 'V'
    }
  }
  auto reference = gimv::Reference(blocks, vec, gen.block_size, 0.15, 15, 0.0);
  EXPECT_LT(gimv::MaxDelta(got, reference), 1e-6);
}

// ---------------------------------------------------------------------------
// SparkSim
// ---------------------------------------------------------------------------

class SparkSimTest : public BaselinesTest {
 protected:
  sparksim::Options Opts(size_t budget) {
    sparksim::Options o;
    o.num_partitions = 4;
    o.memory_budget_bytes = budget;
    o.spill_dir = root_ + "/spark_spill";
    return o;
  }
};

TEST_F(SparkSimTest, OpsComputeCorrectly) {
  sparksim::SparkSim spark(Opts(64u << 20));
  auto data = spark.Parallelize({{"a", "1"}, {"b", "2"}, {"a", "3"}});
  ASSERT_TRUE(data.ok());
  auto doubled = spark.FlatMap(*data, [](const KV& kv, std::vector<KV>* out) {
    out->push_back(KV{kv.key, std::to_string(*ParseNum(kv.value) * 2)});
  });
  ASSERT_TRUE(doubled.ok());
  auto summed = spark.ReduceByKey(
      *doubled, [](const std::string& a, const std::string& b) {
        return std::to_string(*ParseNum(a) + *ParseNum(b));
      });
  ASSERT_TRUE(summed.ok());
  auto result = spark.Collect(*summed);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0], (KV{"a", "8"}));
  EXPECT_EQ((*result)[1], (KV{"b", "4"}));
}

TEST_F(SparkSimTest, JoinAlignsPartitions) {
  sparksim::SparkSim spark(Opts(64u << 20));
  auto left = spark.Parallelize({{"x", "l1"}, {"y", "l2"}, {"z", "l3"}});
  auto right = spark.Parallelize({{"x", "r1"}, {"z", "r3"}});
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto joined = spark.JoinFlatMap(
      *left, *right,
      [](const std::string& k, const std::string& lv, const std::string& rv,
         std::vector<KV>* out) { out->push_back(KV{k, lv + "+" + rv}); });
  ASSERT_TRUE(joined.ok());
  auto result = spark.Collect(*joined);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0], (KV{"x", "l1+r1"}));
  EXPECT_EQ((*result)[1], (KV{"z", "l3+r3"}));
}

TEST_F(SparkSimTest, SpillsUnderMemoryPressureAndStaysCorrect) {
  // Tiny budget: everything spills, results identical to the in-memory run.
  auto run = [&](size_t budget, sparksim::Stats* stats) {
    sparksim::SparkSim spark(Opts(budget));
    std::vector<KV> recs;
    for (int i = 0; i < 2000; ++i) {
      recs.push_back({PaddedNum(i % 97), std::string(50, 'x')});
    }
    auto data = spark.Parallelize(recs);
    EXPECT_TRUE(data.ok());
    auto counted = spark.ReduceByKey(
        *data, [](const std::string& a, const std::string&) { return a; });
    EXPECT_TRUE(counted.ok());
    auto out = spark.Collect(*counted);
    EXPECT_TRUE(out.ok());
    *stats = spark.stats();
    return *out;
  };
  sparksim::Stats big_stats, small_stats;
  auto big = run(64u << 20, &big_stats);
  auto small = run(8u << 10, &small_stats);
  EXPECT_EQ(big, small);
  EXPECT_EQ(big_stats.spill_events, 0u);
  EXPECT_GT(small_stats.spill_events, 0u);
  EXPECT_GT(small_stats.disk_read_bytes, 0u);
}

TEST_F(SparkSimTest, PageRankOnSparkMatchesReference) {
  GraphGenOptions gen;
  gen.num_vertices = 100;
  auto graph = GenGraph(gen);

  sparksim::SparkSim spark(Opts(64u << 20));
  auto links = spark.Parallelize(graph);
  ASSERT_TRUE(links.ok());
  // All vertices (sources + destinations) start at rank 1.
  std::map<std::string, bool> vertices;
  for (const auto& kv : graph) {
    vertices[kv.key] = true;
    for (const auto& j : ParseAdjacency(kv.value)) vertices[j] = true;
  }
  std::vector<KV> rank0;
  for (const auto& [v, _] : vertices) rank0.push_back({v, "1"});
  auto ranks = spark.Parallelize(rank0);
  ASSERT_TRUE(ranks.ok());

  for (int it = 0; it < 25; ++it) {
    auto contribs = spark.JoinFlatMap(
        *links, *ranks,
        [](const std::string&, const std::string& adj, const std::string& rank,
           std::vector<KV>* out) {
          auto dests = ParseAdjacency(adj);
          if (dests.empty()) return;
          double share = *ParseDouble(rank) / dests.size();
          for (const auto& j : dests) out->push_back({j, FormatDouble(share)});
        });
    ASSERT_TRUE(contribs.ok());
    // Zero-contribution keep-alive so every vertex is rescored.
    auto keepalive = spark.FlatMap(*ranks, [](const KV& kv, std::vector<KV>* out) {
      out->push_back({kv.key, "0"});
    });
    ASSERT_TRUE(keepalive.ok());
    auto all = spark.Collect(*contribs);
    auto ka = spark.Collect(*keepalive);
    ASSERT_TRUE(all.ok());
    ASSERT_TRUE(ka.ok());
    all->insert(all->end(), ka->begin(), ka->end());
    auto merged = spark.Parallelize(*all);
    ASSERT_TRUE(merged.ok());
    auto summed = spark.ReduceByKey(
        *merged, [](const std::string& a, const std::string& b) {
          return FormatDouble(*ParseDouble(a) + *ParseDouble(b));
        });
    ASSERT_TRUE(summed.ok());
    auto damped = spark.FlatMap(*summed, [](const KV& kv, std::vector<KV>* out) {
      out->push_back(
          {kv.key, FormatDouble(0.85 * *ParseDouble(kv.value) + 0.15)});
    });
    ASSERT_TRUE(damped.ok());
    ranks = damped;
  }
  auto result = spark.Collect(*ranks);
  ASSERT_TRUE(result.ok());
  auto reference = pagerank::Reference(graph, 25, 0.0);
  EXPECT_LT(pagerank::MeanError(*result, reference), 1e-3);
}

}  // namespace
}  // namespace i2mr
