// Direct unit tests for the persistence helpers of the core engines:
// StateStore (loop-variant state files) and ResultStore (preserved Reduce
// outputs with per-instance output tracking).
#include <gtest/gtest.h>

#include <string>

#include "core/result_store.h"
#include "core/state_store.h"
#include "io/env.h"

namespace i2mr {
namespace {

class StoresTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/i2mr_stores";
    ASSERT_TRUE(ResetDir(dir_).ok());
  }
  std::string Path(const std::string& name) { return JoinPath(dir_, name); }
  std::string dir_;
};

// ---------------------------------------------------------------------------
// StateStore
// ---------------------------------------------------------------------------

TEST_F(StoresTest, StateStorePutGetErase) {
  StateStore store(Path("state"));
  EXPECT_EQ(store.Get("a"), nullptr);
  store.Put("a", "1");
  store.Put("b", "2");
  ASSERT_NE(store.Get("a"), nullptr);
  EXPECT_EQ(*store.Get("a"), "1");
  store.Put("a", "9");
  EXPECT_EQ(*store.Get("a"), "9");
  store.Erase("a");
  EXPECT_EQ(store.Get("a"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(StoresTest, StateStoreSaveLoadRoundTrip) {
  {
    StateStore store(Path("state"));
    store.Put("z", "26");
    store.Put("a", "1");
    ASSERT_TRUE(store.Save().ok());
  }
  StateStore loaded(Path("state"));
  ASSERT_TRUE(loaded.Load().ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(*loaded.Get("z"), "26");
  // Snapshot is sorted by DK.
  auto snap = loaded.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].key, "a");
  EXPECT_EQ(snap[1].key, "z");
}

TEST_F(StoresTest, StateStoreLoadMissingFileIsEmpty) {
  StateStore store(Path("missing"));
  ASSERT_TRUE(store.Load().ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(StoresTest, StateStoreLoadReplacesContents) {
  StateStore store(Path("state"));
  store.Put("only-in-memory", "x");
  ASSERT_TRUE(store.Save().ok());
  store.Put("not-saved", "y");
  ASSERT_TRUE(store.Load().ok());
  EXPECT_EQ(store.Get("not-saved"), nullptr);
  EXPECT_NE(store.Get("only-in-memory"), nullptr);
}

// ---------------------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------------------

TEST_F(StoresTest, ResultStoreInstanceOutputsReplaceOldOnes) {
  auto store = ResultStore::Open(Path("results"));
  ASSERT_TRUE(store.ok());
  // Reduce instance "k2a" emits two outputs.
  store->SetInstanceOutputs("k2a", {{"out1", "v1"}, {"out2", "v2"}});
  EXPECT_EQ(store->size(), 2u);
  // Re-reducing the instance replaces exactly its previous outputs.
  store->SetInstanceOutputs("k2a", {{"out3", "v3"}});
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->Get("out1"), nullptr);
  ASSERT_NE(store->Get("out3"), nullptr);
  EXPECT_EQ(*store->Get("out3"), "v3");
}

TEST_F(StoresTest, ResultStoreEraseInstance) {
  auto store = ResultStore::Open(Path("results"));
  ASSERT_TRUE(store.ok());
  store->SetInstanceOutputs("a", {{"x", "1"}});
  store->SetInstanceOutputs("b", {{"y", "2"}});
  store->EraseInstance("a");
  EXPECT_EQ(store->Get("x"), nullptr);
  EXPECT_NE(store->Get("y"), nullptr);
  store->EraseInstance("never-existed");  // no-op
  EXPECT_EQ(store->size(), 1u);
}

TEST_F(StoresTest, ResultStorePersistsInstanceMap) {
  {
    auto store = ResultStore::Open(Path("results"));
    ASSERT_TRUE(store.ok());
    store->SetInstanceOutputs("inst", {{"k3", "v3"}, {"k4", "v4"}});
    store->Put("direct", "d");  // accumulator-path entry
    ASSERT_TRUE(store->Save().ok());
  }
  auto reloaded = ResultStore::Open(Path("results"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), 3u);
  // The instance mapping survived: replacing the instance drops k3/k4 but
  // not the accumulator entry.
  reloaded->SetInstanceOutputs("inst", {});
  EXPECT_EQ(reloaded->Get("k3"), nullptr);
  EXPECT_EQ(reloaded->Get("k4"), nullptr);
  EXPECT_NE(reloaded->Get("direct"), nullptr);
}

TEST_F(StoresTest, ResultStoreSnapshotSorted) {
  auto store = ResultStore::Open(Path("results"));
  ASSERT_TRUE(store.ok());
  store->Put("b", "2");
  store->Put("a", "1");
  auto snap = store->Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].key, "a");
}

TEST_F(StoresTest, ResultStoreRejectsCorruptFile) {
  ASSERT_TRUE(WriteStringToFile(Path("bad"), "not a result store").ok());
  EXPECT_FALSE(ResultStore::Open(Path("bad")).ok());
}

}  // namespace
}  // namespace i2mr
