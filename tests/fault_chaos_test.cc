// Seeded chaos harness: a sharded (coordinated barrier commits) and
// replicated pipeline runs a delta stream under a randomized fault
// schedule — injected EIO/ENOSPC, torn writes, latency — while a
// fault-free twin of the same topology processes the identical stream as
// ground truth. Invariants, per seed:
//
//   * no crash, and no reads that return Corruption/Internal (errors
//     during chaos are fine; wrong or torn data is not),
//   * the system degrades gracefully (appends bounce, epochs retry or
//     roll forward) and recovers on its own once faults lift,
//   * after the faults stop, the system converges to the exact result of
//     the no-fault twin — through the router, through the replica read
//     path, and again after a full reopen (reset=false) of the same
//     roots (nothing torn was left on disk).
//
// Seeds come from I2MR_CHAOS_SEEDS (comma-separated; default two smoke
// seeds so push/PR CI stays fast — the nightly chaos job raises it). A
// failing seed prints its canonical replay spec (I2MR_FAULTS=...), and
// I2MR_CHAOS_ARTIFACT_DIR collects per-seed fault schedules.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/sssp.h"
#include "common/codec.h"
#include "common/health.h"
#include "common/metrics.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "replication/replica_set.h"
#include "serving/reshard.h"
#include "serving/shard_router.h"

namespace i2mr {
namespace {

constexpr int kVertices = 24;
constexpr int kShards = 2;
constexpr int kReplicasPerShard = 2;
constexpr int kRounds = 6;
constexpr int kBatch = 6;

std::string VertexKey(int i) { return PaddedNum(i); }

/// Weighted directed ring i -> i+1: every distance is a chain of
/// cross-shard relaxations, and SSSP's min-plus fixpoint is monotone, so
/// the converged state is independent of how chaos regroups the deltas
/// into epochs (a non-convergent workload would make the twin comparison
/// depend on iteration history).
std::vector<KV> RingGraph(int n) {
  std::vector<KV> graph;
  for (int i = 0; i < n; ++i) {
    graph.push_back(KV{VertexKey(i), VertexKey((i + 1) % n) + ":1"});
  }
  return graph;
}

std::vector<KV> InitStateFor(const IterJobSpec& spec,
                             const std::vector<KV>& graph) {
  std::vector<KV> state;
  state.reserve(graph.size());
  for (const auto& kv : graph) {
    state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  return state;
}

/// The delta stream adds a shortcut edge to a few vertices per round
/// (edge additions only decrease SSSP distances — exactly what the
/// incremental engine relaxes). The replacement adjacency is a function
/// of (seed, key) alone, never of the round, so a retried append whose
/// ack was lost to a fault — possibly reordered past later rounds — is
/// idempotent and converges to the same graph as the twin's stream.
std::vector<DeltaKV> RoundDeltas(uint64_t seed, int round) {
  std::vector<DeltaKV> deltas;
  for (int k = 0; k < kBatch; ++k) {
    int i = static_cast<int>((seed + 13 * round + 5 * k) % kVertices);
    int dest = static_cast<int>((i + 2 + (seed + 11 * i) % 9) % kVertices);
    deltas.push_back(DeltaKV{
        DeltaOp::kInsert, VertexKey(i),
        VertexKey((i + 1) % kVertices) + ":1 " + VertexKey(dest) + ":1"});
  }
  return deltas;
}

ShardRouterOptions RouterOptions(MetricsRegistry* metrics,
                                 HealthRegistry* health, bool reset) {
  ShardRouterOptions options;
  options.num_shards = kShards;
  options.workers_per_shard = 2;
  options.cross_shard_exchange = true;
  options.reset = reset;
  options.metrics = metrics;
  options.health = health;
  options.pipeline.spec = sssp::MakeIterSpec("sp", VertexKey(0), 2, 200);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.engine.mrbg_auto_off_ratio = 2;
  // Fast degraded-mode probing so convergence after the faults lift
  // doesn't wait on long probe intervals.
  options.pipeline.append_retries = 1;
  options.pipeline.append_retry_backoff_ms = 0.5;
  options.pipeline.degraded_probe_interval_ms = 5;
  return options;
}

/// An error observed during chaos may be anything the degradation layer
/// hands out — injected I/O errors, Unavailable bounces, poisoned-router
/// refusals — but never data-integrity failures: those would mean a torn
/// or wrong state got served.
void AssertNotIntegrityError(const Status& st, uint64_t seed) {
  ASSERT_NE(st.code(), Status::Code::kCorruption)
      << "seed " << seed << ": " << st.ToString();
  ASSERT_NE(st.code(), Status::Code::kInternal)
      << "seed " << seed << ": " << st.ToString();
}

std::vector<uint64_t> ChaosSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* env = std::getenv("I2MR_CHAOS_SEEDS")) {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) seeds.push_back(std::stoull(tok));
    }
  }
  if (seeds.empty()) seeds = {11, 12};  // push/PR smoke pair
  return seeds;
}

struct ChaosSystem {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<HealthRegistry> health;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<ReplicaSet> replicas;

  void Close() {
    replicas.reset();
    router.reset();
  }
};

bool OpenSystem(const std::string& root, bool reset, ChaosSystem* sys) {
  if (sys->metrics == nullptr) {
    sys->metrics = std::make_unique<MetricsRegistry>();
    sys->health = std::make_unique<HealthRegistry>(sys->metrics.get());
  }
  auto router = ShardRouter::Open(
      root, "sys", RouterOptions(sys->metrics.get(), sys->health.get(), reset));
  if (!router.ok()) {
    ADD_FAILURE() << "router open failed: " << router.status().ToString();
    return false;
  }
  sys->router = std::move(router.value());
  ReplicaSetOptions ro;
  ro.replicas_per_shard = kReplicasPerShard;
  ro.reset = reset;
  auto set =
      ReplicaSet::Open(sys->router.get(), JoinPath(root, "replicas"), ro);
  if (!set.ok()) {
    ADD_FAILURE() << "replica set open failed: " << set.status().ToString();
    return false;
  }
  sys->replicas = std::move(set.value());
  return true;
}

class FaultChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::Instance()->Reset(); }
  void TearDown() override { fault::FaultInjector::Instance()->Reset(); }
};

TEST_F(FaultChaosTest, SeededChaosNeverTearsStateAndConvergesToTwin) {
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const std::string base =
        ::testing::TempDir() + "/i2mr_chaos_seed" + std::to_string(seed);
    const std::string sys_root = JoinPath(base, "sys");
    const std::string twin_root = JoinPath(base, "twin");
    ASSERT_TRUE(ResetDir(base).ok());

    // The system under chaos: 2 coordinated shards, 2 replicas each.
    ChaosSystem sys;
    ASSERT_TRUE(OpenSystem(sys_root, /*reset=*/true, &sys));
    // The fault-free twin: identical topology, identical stream.
    MetricsRegistry twin_metrics;
    HealthRegistry twin_health(&twin_metrics);
    auto twin = ShardRouter::Open(
        twin_root, "sys",
        RouterOptions(&twin_metrics, &twin_health, /*reset=*/true));
    ASSERT_TRUE(twin.ok()) << twin.status().ToString();

    auto graph = RingGraph(kVertices);
    auto state = InitStateFor(RouterOptions(nullptr, nullptr, true)
                                  .pipeline.spec,
                              graph);
    ASSERT_TRUE(sys.router->Bootstrap(graph, state).ok());
    ASSERT_TRUE((*twin)->Bootstrap(graph, state).ok());

    // Unleash the seeded schedule, scoped to the system's root — the
    // twin and the test scaffolding stay fault-free.
    auto* inj = fault::FaultInjector::Instance();
    fault::ChaosOptions chaos;
    chaos.seed = seed;
    chaos.p_fail = 0.05;
    chaos.p_torn = 0.25;
    chaos.p_latency = 0.02;
    chaos.max_latency_ms = 1.0;
    chaos.path_substr = sys_root;
    inj->StartChaos(chaos);
    const std::string replay = inj->ChaosSpec();
    SCOPED_TRACE("replay with I2MR_FAULTS='" + replay + "'");

    std::vector<DeltaKV> unacked;
    for (int round = 0; round < kRounds; ++round) {
      for (const DeltaKV& delta : RoundDeltas(seed, round)) {
        ASSERT_TRUE((*twin)->Append(delta).ok());
        // Bounded retries while faults are live; what doesn't ack now is
        // retried (idempotently) after the faults lift.
        bool acked = false;
        for (int attempt = 0; attempt < 20 && !acked; ++attempt) {
          auto seq = sys.replicas->Append(delta);
          if (seq.ok()) {
            acked = true;
          } else {
            AssertNotIntegrityError(seq.status(), seed);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        if (!acked) unacked.push_back(delta);
      }
      // Epochs and ship passes run right through the fault storm; their
      // errors must always be clean failures.
      auto epoch = sys.router->RefreshCoordinated();
      if (!epoch.ok()) AssertNotIntegrityError(epoch.status(), seed);
      Status shipped = sys.replicas->SyncAll();
      if (!shipped.ok()) AssertNotIntegrityError(shipped, seed);
      // Reads during chaos: any answer is either an honest error or a
      // value from some committed epoch — never torn.
      for (int i = 0; i < kVertices; i += 5) {
        auto read = sys.replicas->Get(VertexKey(i));
        if (!read.ok()) AssertNotIntegrityError(read.status(), seed);
      }
      ASSERT_TRUE((*twin)->DrainAll().ok());
    }

    // Faults lift. Capture the schedule for replay before clearing.
    const std::string events = inj->EventLogText();
    const uint64_t injected = inj->injections();
    inj->Reset();
    if (const char* dir = std::getenv("I2MR_CHAOS_ARTIFACT_DIR")) {
      (void)CreateDirs(dir);
      (void)WriteStringToFile(
          JoinPath(dir, "chaos_seed" + std::to_string(seed) + ".txt"),
          "I2MR_FAULTS='" + replay + "'\n\n" + events);
    }
    EXPECT_GT(injected, 0u) << "chaos schedule injected nothing; the run "
                               "proved nothing — lower the seed's luck";

    // Recovery: unacked deltas land (pipelines probe out of degraded
    // mode on their own), epochs drain, and if a delta log was closed by
    // a failed rollback the reopen below heals it — but appends must
    // stop failing with transient errors within the retry budget.
    bool reopened_for_recovery = false;
    for (const DeltaKV& delta : unacked) {
      bool acked = false;
      for (int attempt = 0; attempt < 400 && !acked; ++attempt) {
        auto seq = sys.replicas->Append(delta);
        if (seq.ok()) {
          acked = true;
        } else if (seq.status().code() ==
                       Status::Code::kFailedPrecondition &&
                   !reopened_for_recovery) {
          // A closed delta log (failed rollback) needs the reopen path.
          sys.Close();
          ASSERT_TRUE(OpenSystem(sys_root, /*reset=*/false, &sys));
          reopened_for_recovery = true;
        } else {
          AssertNotIntegrityError(seq.status(), seed);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      ASSERT_TRUE(acked) << "append never recovered after faults lifted";
    }
    Status drained;
    for (int attempt = 0; attempt < 100; ++attempt) {
      drained = sys.router->DrainAll();
      if (drained.ok() && sys.router->TotalPending() == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(drained.ok()) << drained.ToString();
    ASSERT_EQ(sys.router->TotalPending(), 0u);
    ASSERT_FALSE(sys.router->poisoned());
    ASSERT_TRUE(sys.replicas->SyncAll().ok());
    ASSERT_TRUE((*twin)->DrainAll().ok());

    // Exact convergence to the no-fault result: primary read path and
    // the replica read path both match the twin on every key.
    for (int i = 0; i < kVertices; ++i) {
      auto expect = (*twin)->Lookup(VertexKey(i));
      ASSERT_TRUE(expect.ok()) << expect.status().ToString();
      auto direct = sys.router->Lookup(VertexKey(i));
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      EXPECT_EQ(*direct, *expect) << "key " << VertexKey(i);
      auto replicated = sys.replicas->Get(VertexKey(i));
      ASSERT_TRUE(replicated.ok()) << replicated.status().ToString();
      EXPECT_EQ(*replicated, *expect) << "key " << VertexKey(i);
    }

    // Reopen everything from disk (reset=false): whatever the fault
    // storm left behind recovers to the same exact state — nothing torn.
    sys.Close();
    ASSERT_TRUE(OpenSystem(sys_root, /*reset=*/false, &sys));
    for (int i = 0; i < kVertices; ++i) {
      auto expect = (*twin)->Lookup(VertexKey(i));
      ASSERT_TRUE(expect.ok());
      auto reread = sys.router->Lookup(VertexKey(i));
      ASSERT_TRUE(reread.ok()) << reread.status().ToString();
      EXPECT_EQ(*reread, *expect) << "after reopen, key " << VertexKey(i);
    }
    sys.Close();
  }
}

// Deterministic counterpart to the randomized storm: a coordinated
// barrier interrupted mid-flip by a real I/O failure rolls *forward* on
// the next coordinated tick (the decision record was durable), with no
// reopen — and reads are refused, not served mixed, in between.
TEST_F(FaultChaosTest, InterruptedBarrierRollsForwardWithoutReopen) {
  const std::string root =
      ::testing::TempDir() + "/i2mr_chaos_rollforward";
  ASSERT_TRUE(ResetDir(root).ok());
  MetricsRegistry metrics;
  HealthRegistry health(&metrics);
  auto router =
      ShardRouter::Open(root, "sys", RouterOptions(&metrics, &health, true));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  auto graph = RingGraph(kVertices);
  ASSERT_TRUE(
      (*router)
          ->Bootstrap(graph, InitStateFor(RouterOptions(nullptr, nullptr, true)
                                              .pipeline.spec,
                                          graph))
          .ok());

  ASSERT_TRUE((*router)
                  ->Append(DeltaKV{DeltaOp::kInsert, VertexKey(0),
                                   VertexKey(1) + ":1 " + VertexKey(5) + ":1"})
                  .ok());

  // Exactly one CURRENT flip fails with a real injected error. Shard 0
  // flips first; the failure strands the other shard staged.
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile | fault::kRename;
  rule.path_substr = "CURRENT";
  rule.kind = fault::FaultKind::kEIO;
  rule.after = 1;  // let the first shard's flip through
  rule.times = 1;
  fault::FaultInjector::Instance()->AddRule(rule);

  auto failed = (*router)->RefreshCoordinated();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE((*router)->poisoned());
  const uint64_t pending = (*router)->pending_flip_epoch();
  EXPECT_GT(pending, 0u);
  EXPECT_EQ(health.state("serving.sys"), HealthState::kDegraded);
  // Mixed-vector window: reads are refused, never served mixed.
  auto refused = (*router)->Lookup(VertexKey(0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kFailedPrecondition);

  // The disk heals; the next coordinated tick rolls the epoch forward
  // in-process.
  fault::FaultInjector::Instance()->Reset();
  auto resumed = (*router)->RefreshCoordinated();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE((*router)->poisoned());
  EXPECT_EQ((*router)->pending_flip_epoch(), 0u);
  EXPECT_EQ(health.state("serving.sys"), HealthState::kHealthy);
  for (uint64_t e : (*router)->CommittedEpochs()) {
    EXPECT_GE(e, pending);  // every shard reached the decided epoch
  }
  ASSERT_TRUE((*router)->DrainAll().ok());
  EXPECT_TRUE((*router)->Lookup(VertexKey(0)).ok());
}

// Mid-reshard kill sweep: each chaos seed kills the reshard coordinator
// at a seed-derived stage via the same fault-spec grammar the storm uses
// ("reshard/<stage>" kill points), on a fleet that has already absorbed
// real delta history. The invariant is the reshard crash contract: the
// reopened fleet serves exactly the old map or exactly the new one —
// never a mix — with every committed value intact, the durable RESHARD
// marker retired, and a clean retry (or the roll-forward) finishing the
// move so the fleet keeps ingesting at the target shape.
TEST_F(FaultChaosTest, MidReshardKillRecoversToOldOrNewMapAndCompletes) {
  const std::vector<std::string> stages = {"plan", "dual_journal", "transfer",
                                           "flip", "flip_marker"};
  for (uint64_t seed : ChaosSeeds()) {
    const std::string stage = stages[seed % stages.size()];
    SCOPED_TRACE("seed " + std::to_string(seed) + " kills at reshard/" +
                 stage);
    const std::string root = ::testing::TempDir() + "/i2mr_chaos_reshard" +
                             std::to_string(seed);
    ASSERT_TRUE(ResetDir(root).ok());
    MetricsRegistry metrics;
    HealthRegistry health(&metrics);

    std::map<std::string, std::string> before;
    {
      auto router = ShardRouter::Open(
          root, "sys", RouterOptions(&metrics, &health, /*reset=*/true));
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      auto graph = RingGraph(kVertices);
      ASSERT_TRUE(
          (*router)
              ->Bootstrap(graph,
                          InitStateFor(RouterOptions(nullptr, nullptr, true)
                                           .pipeline.spec,
                                       graph))
              .ok());
      // Real history before the kill: the transfer then moves converged
      // incremental state, not a fresh bootstrap image.
      for (int round = 0; round < 2; ++round) {
        for (const DeltaKV& delta : RoundDeltas(seed, round)) {
          ASSERT_TRUE((*router)->Append(delta).ok());
        }
        ASSERT_TRUE((*router)->DrainAll().ok());
      }
      for (int i = 0; i < kVertices; ++i) {
        auto v = (*router)->Lookup(VertexKey(i));
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        before[VertexKey(i)] = *v;
      }

      ASSERT_TRUE(fault::FaultInjector::Instance()
                      ->LoadSpec("op=crash,path=reshard/" + stage +
                                 ",kind=crash")
                      .ok());
      ReshardOptions opts;
      opts.new_num_shards = 3;
      opts.chunk_max_bytes = 512;
      ReshardCoordinator coordinator(router->get(), opts);
      ASSERT_FALSE(coordinator.Run().ok()) << "injected kill must surface";
      fault::FaultInjector::Instance()->Reset();
      if (stage == "flip_marker") {
        // Decision durable, topology not swapped: reads are refused until
        // the roll-forward reopen, never served from the superseded map.
        EXPECT_TRUE((*router)->poisoned());
        ASSERT_FALSE((*router)->Lookup(VertexKey(0)).ok());
        ASSERT_FALSE((*router)
                         ->Append(DeltaKV{DeltaOp::kInsert, VertexKey(0),
                                          VertexKey(1) + ":1"})
                         .ok());
      }
      // The killed coordinator's process is gone; recovery is the reopen.
    }

    auto options = RouterOptions(&metrics, &health, /*reset=*/false);
    auto reopened = ShardRouter::Open(root, "sys", options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_TRUE((*reopened)->bootstrapped());
    const bool rolled_forward = stage == "flip_marker";
    EXPECT_EQ((*reopened)->generation(), rolled_forward ? 1u : 0u);
    EXPECT_EQ((*reopened)->num_shards(), rolled_forward ? 3 : kShards);
    EXPECT_FALSE(FileExists(JoinPath(root, "sys.RESHARD")));
    for (const auto& [key, value] : before) {
      auto v = (*reopened)->Lookup(key);
      ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
      EXPECT_EQ(*v, value) << key;
    }

    // Finish what the kill interrupted: a clean retry reaches the target
    // shape (roll-forward already did), and ingestion continues on it.
    if (!rolled_forward) {
      ReshardOptions opts;
      opts.new_num_shards = 3;
      opts.chunk_max_bytes = 512;
      ReshardCoordinator retry(reopened->get(), opts);
      auto stats = retry.Run();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    EXPECT_EQ((*reopened)->num_shards(), 3);
    EXPECT_EQ((*reopened)->generation(), 1u);
    for (const DeltaKV& delta : RoundDeltas(seed, /*round=*/7)) {
      ASSERT_TRUE((*reopened)->Append(delta).ok());
    }
    ASSERT_TRUE((*reopened)->DrainAll().ok());
    for (const auto& [key, value] : before) {
      ASSERT_TRUE((*reopened)->Lookup(key).ok()) << key;
    }
  }
}

}  // namespace
}  // namespace i2mr
