// Tests for elastic online resharding (serving/reshard.h): N -> M moves
// under streaming deltas equal a fresh M-shard bootstrap (exact SSSP /
// ConComp), crash injection at every coordinator stage recovers to exactly
// the old map or the new map (never a mix), snapshots pinned before the
// flip keep serving the old generation with zero failed reads, a warm
// retry reuses the content-addressed chunks of a crashed attempt, the
// reshard metrics/health surface, the PARTMAP record is authoritative on
// reopen, and the replication layer detects the generation bump, re-syncs
// followers, and still promotes on primary death.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/concomp.h"
#include "apps/pagerank.h"
#include "apps/sssp.h"
#include "common/codec.h"
#include "common/health.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "replication/replica_set.h"
#include "serving/partition_map.h"
#include "serving/reshard.h"
#include "serving/shard_group.h"
#include "serving/shard_router.h"

namespace i2mr {
namespace {

std::vector<KV> InitStateFor(const IterJobSpec& spec,
                             const std::vector<KV>& graph) {
  std::vector<KV> state;
  state.reserve(graph.size());
  for (const auto& kv : graph) {
    state.push_back(KV{kv.key, spec.init_state(kv.key)});
  }
  return state;
}

/// Directed ring i -> i+1 (mod n): nearly every edge crosses a shard
/// boundary under hashed assignment — the adversarial case for both the
/// coordinated refresh and the reshard transfer.
std::vector<KV> RingGraph(int n, bool weighted) {
  std::vector<KV> graph;
  graph.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string dest = PaddedNum((i + 1) % n);
    graph.push_back(KV{PaddedNum(i), weighted ? dest + ":1" : dest});
  }
  return graph;
}

ShardRouterOptions CoordinatedOptions(IterJobSpec spec, int shards) {
  ShardRouterOptions options;
  options.num_shards = shards;
  options.workers_per_shard = 2;
  options.cross_shard_exchange = true;
  options.pipeline.spec = std::move(spec);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.engine.mrbg_auto_off_ratio = 2;
  return options;
}

/// Append a weighted shortcut edge from -> to (replacing `from`'s
/// adjacency record): distances only decrease, so the incremental result
/// stays the exact fixpoint of the final graph.
std::vector<DeltaKV> AddShortcut(std::vector<KV>* graph, int from, int to,
                                 const std::string& weight) {
  const std::string key = PaddedNum(from);
  std::vector<DeltaKV> batch;
  for (auto& kv : *graph) {
    if (kv.key != key) continue;
    std::string next = kv.value + " " + PaddedNum(to) + ":" + weight;
    batch.push_back(DeltaKV{DeltaOp::kDelete, kv.key, kv.value});
    batch.push_back(DeltaKV{DeltaOp::kInsert, kv.key, next});
    kv.value = next;
    break;
  }
  return batch;
}

/// Insert the undirected edge a <-> b (labels only merge downward, so
/// incremental ConComp equals a fresh bootstrap of the final graph).
std::vector<DeltaKV> LinkVertices(std::vector<KV>* graph, int a, int b) {
  std::vector<DeltaKV> batch;
  for (auto [self, other] : {std::pair<int, int>{a, b}, {b, a}}) {
    const std::string key = PaddedNum(self);
    for (auto& kv : *graph) {
      if (kv.key != key) continue;
      std::string next = kv.value + " " + PaddedNum(other);
      batch.push_back(DeltaKV{DeltaOp::kDelete, kv.key, kv.value});
      batch.push_back(DeltaKV{DeltaOp::kInsert, kv.key, next});
      kv.value = next;
      break;
    }
  }
  return batch;
}

std::vector<KV> ShardedSnapshot(const ShardRouter& router) {
  std::vector<KV> all;
  for (int s = 0; s < router.num_shards(); ++s) {
    auto part = router.shard(s)->ServingSnapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::map<std::string, std::string> ToMap(const std::vector<KV>& kvs) {
  std::map<std::string, std::string> m;
  for (const auto& kv : kvs) m[kv.key] = kv.value;
  return m;
}

void ExpectNumericParity(const std::vector<KV>& got_kvs,
                         const std::vector<KV>& want_kvs, double tol,
                         const std::string& what) {
  auto got = ToMap(got_kvs), want = ToMap(want_kvs);
  ASSERT_EQ(got.size(), want.size()) << what << ": key sets differ";
  for (const auto& [key, value] : want) {
    auto it = got.find(key);
    ASSERT_TRUE(it != got.end()) << what << ": missing key " << key;
    auto a = ParseDouble(it->second);
    auto b = ParseDouble(value);
    ASSERT_TRUE(a.ok() && b.ok()) << what << ": unparsable value at " << key;
    if (*a >= 1e29 && *b >= 1e29) continue;
    EXPECT_NEAR(*a, *b, tol) << what << ": key " << key;
  }
}

void ExpectExactParity(const std::vector<KV>& got_kvs,
                       const std::vector<KV>& want_kvs,
                       const std::string& what) {
  auto got = ToMap(got_kvs), want = ToMap(want_kvs);
  ASSERT_EQ(got.size(), want.size()) << what << ": key sets differ";
  for (const auto& [key, value] : want) {
    auto it = got.find(key);
    ASSERT_TRUE(it != got.end()) << what << ": missing key " << key;
    EXPECT_EQ(it->second, value) << what << ": key " << key;
  }
}

class ReshardingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_resharding";
    ASSERT_TRUE(ResetDir(root_).ok());
    fault::FaultInjector::Instance()->Reset();
  }
  void TearDown() override { fault::FaultInjector::Instance()->Reset(); }
  std::string root_;
};

// ---------------------------------------------------------------------------
// Parity: N -> M under streaming deltas == fresh M-shard bootstrap
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, SsspReshardUnderStreamingDeltasEqualsFreshBootstrap) {
  struct Shape {
    int from, to;
  };
  for (Shape shape : {Shape{2, 4}, Shape{4, 2}, Shape{3, 5}}) {
    SCOPED_TRACE("shape " + std::to_string(shape.from) + "->" +
                 std::to_string(shape.to));
    const int n = 24;
    auto graph = RingGraph(n, /*weighted=*/true);
    const std::string source = PaddedNum(0);
    auto spec = sssp::MakeIterSpec("sp", source, 2, 200);
    const auto init = InitStateFor(spec, graph);

    std::string croot =
        JoinPath(root_, "sssp_" + std::to_string(shape.from) + "to" +
                            std::to_string(shape.to));
    auto router = ShardRouter::Open(croot, "sp",
                                    CoordinatedOptions(spec, shape.from));
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());

    // One committed delta epoch before the move.
    ASSERT_TRUE(
        (*router)->AppendBatch(AddShortcut(&graph, 3, 3 + n / 2, "0.5")).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());

    // Deltas keep streaming DURING the move: right after the dual journal
    // arms and again mid-transfer. They reach the destinations through the
    // journal + catch-up, never through the chunk transfer.
    size_t mid_move = 0;
    ReshardOptions opts;
    opts.new_num_shards = shape.to;
    opts.chunk_max_bytes = 512;  // force many chunks even on a tiny graph
    opts.crash_hook = [&](const std::string& stage) {
      if (stage == "dual_journal") {
        auto batch = AddShortcut(&graph, 5, (5 + n / 3) % n, "0.25");
        mid_move += batch.size();
        EXPECT_TRUE((*router)->AppendBatch(batch).ok());
      } else if (stage == "transfer") {
        auto batch = AddShortcut(&graph, 9, (9 + n / 2) % n, "0.125");
        mid_move += batch.size();
        EXPECT_TRUE((*router)->AppendBatch(batch).ok());
      }
      return false;
    };
    ReshardCoordinator coordinator(router->get(), opts);
    auto stats = coordinator.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->old_shards, shape.from);
    EXPECT_EQ(stats->new_shards, shape.to);
    EXPECT_EQ(stats->old_generation, 0u);
    EXPECT_EQ(stats->new_generation, 1u);
    EXPECT_GT(stats->chunks_total, 0u);
    EXPECT_GT(stats->bytes_moved, 0u);
    EXPECT_EQ(stats->dual_journal_deltas, mid_move);
    ASSERT_GT(mid_move, 0u);

    EXPECT_EQ((*router)->num_shards(), shape.to);
    EXPECT_EQ((*router)->generation(), 1u);
    EXPECT_EQ((*router)->partition_map(),
              (PartitionMap{1, shape.to}));

    // The fleet keeps ingesting on the new map.
    ASSERT_TRUE(
        (*router)
            ->AppendBatch(AddShortcut(&graph, 14, (14 + n / 2) % n, "0.5"))
            .ok());
    ASSERT_TRUE((*router)->DrainAll().ok());
    EXPECT_EQ((*router)->CommittedEpochs().size(),
              static_cast<size_t>(shape.to));

    // Oracle: a fresh M-shard fleet bootstrapped from the final graph.
    auto oracle = ShardRouter::Open(JoinPath(croot, "oracle"), "sp",
                                    CoordinatedOptions(spec, shape.to));
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    ASSERT_TRUE((*oracle)->Bootstrap(graph, InitStateFor(spec, graph)).ok());
    ExpectNumericParity(ShardedSnapshot(**router), ShardedSnapshot(**oracle),
                        1e-9, "sssp reshard");
  }
}

TEST_F(ReshardingTest, ConcompReshardUnderStreamingDeltasEqualsFreshBootstrap) {
  struct Shape {
    int from, to;
  };
  for (Shape shape : {Shape{2, 4}, Shape{3, 5}}) {
    SCOPED_TRACE("shape " + std::to_string(shape.from) + "->" +
                 std::to_string(shape.to));
    GraphGenOptions gen;
    gen.num_vertices = 48;
    gen.avg_degree = 2;  // sparse: several components spanning shards
    auto graph = concomp::Symmetrize(GenGraph(gen));
    auto spec = concomp::MakeIterSpec("cc", 2, 200);
    const auto init = InitStateFor(spec, graph);

    std::string croot =
        JoinPath(root_, "cc_" + std::to_string(shape.from) + "to" +
                            std::to_string(shape.to));
    auto router = ShardRouter::Open(croot, "cc",
                                    CoordinatedOptions(spec, shape.from));
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    ASSERT_TRUE((*router)->Bootstrap(graph, init).ok());
    ASSERT_TRUE((*router)->AppendBatch(LinkVertices(&graph, 1, 30)).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());

    ReshardOptions opts;
    opts.new_num_shards = shape.to;
    opts.chunk_max_bytes = 512;
    opts.crash_hook = [&](const std::string& stage) {
      // Components merge mid-move: the label drop must flow through the
      // dual journal into the destination fleet.
      if (stage == "transfer") {
        EXPECT_TRUE((*router)->AppendBatch(LinkVertices(&graph, 7, 41)).ok());
      }
      return false;
    };
    ReshardCoordinator coordinator(router->get(), opts);
    auto stats = coordinator.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats->dual_journal_deltas, 0u);
    ASSERT_TRUE((*router)->AppendBatch(LinkVertices(&graph, 12, 25)).ok());
    ASSERT_TRUE((*router)->DrainAll().ok());

    auto oracle = ShardRouter::Open(JoinPath(croot, "oracle"), "cc",
                                    CoordinatedOptions(spec, shape.to));
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    ASSERT_TRUE((*oracle)->Bootstrap(graph, InitStateFor(spec, graph)).ok());
    ExpectExactParity(ShardedSnapshot(**router), ShardedSnapshot(**oracle),
                      "concomp reshard");
    // And the labels are actually right, not just consistently wrong.
    EXPECT_EQ(concomp::ErrorRate(ShardedSnapshot(**router),
                                 concomp::Reference(graph)),
              0.0);
  }
}

// ---------------------------------------------------------------------------
// The partition map is the single modulus source, across generations
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, ShardOfRoutesThroughThePartitionMapAcrossGenerations) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  auto router =
      ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 3));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE(
      (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());

  // Generation 0: the router's routing IS the map's.
  PartitionMap g0 = (*router)->partition_map();
  EXPECT_EQ(g0.num_shards, 3);
  for (int i = 0; i < 100; ++i) {
    std::string key = PaddedNum(i);
    EXPECT_EQ((*router)->ShardOf(key), g0.ShardOf(key));
  }

  ReshardOptions opts;
  opts.new_num_shards = 4;
  ReshardCoordinator coordinator(router->get(), opts);
  ASSERT_TRUE(coordinator.Run().ok());

  // Generation 1: routing follows the NEW map (and actually changed for
  // some keys — the regression this test pins is a layer still computing
  // `hash % old_count` after the count moved).
  PartitionMap g1 = (*router)->partition_map();
  EXPECT_EQ(g1.generation, 1u);
  EXPECT_EQ(g1.num_shards, 4);
  bool moved = false;
  for (int i = 0; i < 100; ++i) {
    std::string key = PaddedNum(i);
    EXPECT_EQ((*router)->ShardOf(key), g1.ShardOf(key));
    moved = moved || g1.ShardOf(key) != g0.ShardOf(key);
  }
  EXPECT_TRUE(moved);
  // Every key is served by the shard the new map names, and owns_key kept
  // the engines' boundary filter on the same map: a lookup through the
  // router and a direct lookup on the owning shard agree.
  for (const auto& kv : graph) {
    auto via_router = (*router)->Lookup(kv.key);
    ASSERT_TRUE(via_router.ok()) << kv.key;
    auto direct = (*router)->shard(g1.ShardOf(kv.key))->Lookup(kv.key);
    ASSERT_TRUE(direct.ok()) << kv.key;
    EXPECT_EQ(*via_router, *direct);
  }
}

TEST_F(ReshardingTest, PartmapRecordOverridesMismatchedOptionsOnReopen) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  std::map<std::string, std::string> before;
  {
    auto router =
        ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 2));
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    ASSERT_TRUE(
        (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());
    ReshardOptions opts;
    opts.new_num_shards = 4;
    ReshardCoordinator coordinator(router->get(), opts);
    ASSERT_TRUE(coordinator.Run().ok());
    for (const auto& kv : graph) {
      auto v = (*router)->Lookup(kv.key);
      ASSERT_TRUE(v.ok());
      before[kv.key] = *v;
    }
  }
  // Reopen with a STALE shard count in the options (an operator config
  // that never learned about the reshard): the durable PARTMAP record
  // names the partitioning the on-disk dirs were actually built with, and
  // it wins.
  auto options = CoordinatedOptions(spec, 2);
  options.reset = false;
  auto reopened = ShardRouter::Open(root_, "sp", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_shards(), 4);
  EXPECT_EQ((*reopened)->generation(), 1u);
  ASSERT_TRUE((*reopened)->bootstrapped());
  for (const auto& [key, value] : before) {
    auto v = (*reopened)->Lookup(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
}

// ---------------------------------------------------------------------------
// Crash injection: every stage recovers to exactly old-map or new-map
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, CrashAtEveryStageRecoversToExactlyOldOrNewMap) {
  const int n = 24;
  auto base_graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);

  for (const std::string stage :
       {"plan", "dual_journal", "transfer", "flip", "flip_marker"}) {
    SCOPED_TRACE("stage " + stage);
    auto graph = base_graph;
    std::string croot = JoinPath(root_, "crash_" + stage);
    std::map<std::string, std::string> before;
    {
      auto router =
          ShardRouter::Open(croot, "sp", CoordinatedOptions(spec, 2));
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      ASSERT_TRUE(
          (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());
      ASSERT_TRUE(
          (*router)->AppendBatch(AddShortcut(&graph, 3, 15, "0.5")).ok());
      ASSERT_TRUE((*router)->DrainAll().ok());
      for (const auto& kv : graph) {
        auto v = (*router)->Lookup(kv.key);
        ASSERT_TRUE(v.ok());
        before[kv.key] = *v;
      }

      ReshardOptions opts;
      opts.new_num_shards = 3;
      opts.chunk_max_bytes = 512;
      opts.crash_hook = [&](const std::string& s) { return s == stage; };
      ReshardCoordinator coordinator(router->get(), opts);
      auto stats = coordinator.Run();
      ASSERT_FALSE(stats.ok()) << "simulated crash must surface";

      if (stage == "flip_marker") {
        // The decision record is durable but the topology never swapped:
        // the old in-process topology must refuse reads rather than serve
        // state that recovery is about to replace.
        EXPECT_TRUE((*router)->poisoned());
        EXPECT_FALSE((*router)->Lookup(graph.front().key).ok());
        // ...and refuse appends too: an ack into the superseded
        // generation's donor logs would be discarded by the roll-forward.
        EXPECT_FALSE((*router)
                         ->Append(DeltaKV{DeltaOp::kInsert, graph.front().key,
                                          graph.front().value})
                         .ok());
      } else {
        // Anywhere earlier: the move simply didn't happen. Old map, old
        // values, journal disarmed, and the fleet still ingests.
        EXPECT_EQ((*router)->generation(), 0u);
        EXPECT_EQ((*router)->num_shards(), 2);
        for (const auto& [key, value] : before) {
          auto v = (*router)->Lookup(key);
          ASSERT_TRUE(v.ok()) << key;
          EXPECT_EQ(*v, value) << key;
        }
        ASSERT_TRUE(
            (*router)->AppendBatch(AddShortcut(&graph, 7, 19, "0.5")).ok());
        ASSERT_TRUE((*router)->DrainAll().ok());
        for (const auto& kv : graph) {
          auto v = (*router)->Lookup(kv.key);
          ASSERT_TRUE(v.ok());
          before[kv.key] = *v;
        }
      }
      // The simulated coordinator is dead; reopen "after the crash".
    }
    auto options = CoordinatedOptions(spec, 2);
    options.reset = false;
    auto reopened = ShardRouter::Open(croot, "sp", options);
    ASSERT_TRUE(reopened.ok())
        << stage << ": " << reopened.status().ToString();
    ASSERT_TRUE((*reopened)->bootstrapped()) << stage;
    if (stage == "flip_marker") {
      // Roll FORWARD: the marker's map is installed and the destination
      // fleet — durably committed before the marker was written — serves.
      EXPECT_EQ((*reopened)->generation(), 1u);
      EXPECT_EQ((*reopened)->num_shards(), 3);
    } else {
      EXPECT_EQ((*reopened)->generation(), 0u);
      EXPECT_EQ((*reopened)->num_shards(), 2);
    }
    // Either way: exactly the committed values, never a mix.
    for (const auto& [key, value] : before) {
      auto v = (*reopened)->Lookup(key);
      ASSERT_TRUE(v.ok()) << stage << "/" << key;
      EXPECT_EQ(*v, value) << stage << "/" << key;
    }
    // The marker never outlives recovery.
    EXPECT_FALSE(FileExists(JoinPath(croot, "sp.RESHARD"))) << stage;
    // And the recovered fleet keeps ingesting on whichever map it serves.
    ASSERT_TRUE(
        (*reopened)->AppendBatch(AddShortcut(&graph, 11, 23, "0.25")).ok());
    ASSERT_TRUE((*reopened)->DrainAll().ok()) << stage;
  }
}

TEST_F(ReshardingTest, FaultInjectorCrashPointsFireWithoutAWiredHook) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  auto router =
      ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE(
      (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());

  // The same I2MR_FAULTS grammar the chaos harness uses: a kill-at-point
  // rule on the transfer stage.
  ASSERT_TRUE(fault::FaultInjector::Instance()
                  ->LoadSpec("op=crash,path=reshard/transfer,kind=crash")
                  .ok());
  ReshardOptions opts;
  opts.new_num_shards = 3;
  ReshardCoordinator coordinator(router->get(), opts);
  EXPECT_FALSE(coordinator.Run().ok());
  fault::FaultInjector::Instance()->Reset();

  // Old map stands; a clean retry completes the move.
  EXPECT_EQ((*router)->generation(), 0u);
  ReshardCoordinator retry(router->get(), opts);
  auto stats = retry.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ((*router)->num_shards(), 3);
}

// ---------------------------------------------------------------------------
// Acked-write safety under real I/O faults
// ---------------------------------------------------------------------------

// A delta the donor acked mid-move but the dual journal failed to mirror
// must abort the move before the cutover commit point: past the flip it
// would be permanently missing from the new generation — silent
// acked-write loss. Aborting is safe; the old map serves every acked
// write.
TEST_F(ReshardingTest, DualJournalMirrorFailureAbortsTheMoveBeforeCutover) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  auto router = ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());

  // Right after the journal arms: every write under the staging fleet's
  // generation-1 dirs fails, so the donors ack a batch whose mirror is
  // lost. The faults lift immediately after, so nothing else is affected.
  size_t acked = 0;
  ReshardOptions opts;
  opts.new_num_shards = 3;
  opts.chunk_max_bytes = 512;
  opts.crash_hook = [&](const std::string& stage) {
    if (stage == "dual_journal") {
      fault::FaultRule rule;
      rule.ops = fault::kAppend | fault::kSync | fault::kFlush |
                 fault::kWriteFile | fault::kOpenWrite;
      rule.path_substr = "g1-";
      rule.kind = fault::FaultKind::kEIO;
      rule.times = -1;
      fault::FaultInjector::Instance()->AddRule(rule);
      auto batch = AddShortcut(&graph, 5, 13, "0.25");
      acked = batch.size();
      EXPECT_TRUE((*router)->AppendBatch(batch).ok());
      fault::FaultInjector::Instance()->Reset();
    }
    return false;
  };
  ReshardCoordinator coordinator(router->get(), opts);
  auto stats = coordinator.Run();
  ASSERT_FALSE(stats.ok()) << "a lost mirror must abort the move";
  ASSERT_GT(acked, 0u);

  // No marker, no poison, old map — and the acked batch still serves.
  EXPECT_FALSE(FileExists(JoinPath(root_, "sp.RESHARD")));
  EXPECT_FALSE((*router)->poisoned());
  EXPECT_EQ((*router)->generation(), 0u);
  EXPECT_EQ((*router)->num_shards(), 2);
  ASSERT_TRUE((*router)->DrainAll().ok());
  std::map<std::string, std::string> before;
  for (const auto& kv : graph) {
    auto v = (*router)->Lookup(kv.key);
    ASSERT_TRUE(v.ok()) << kv.key;
    before[kv.key] = *v;
  }

  // A clean retry completes the move with the acked history intact.
  ReshardOptions clean;
  clean.new_num_shards = 3;
  clean.chunk_max_bytes = 512;
  ReshardCoordinator retry(router->get(), clean);
  auto retried = retry.Run();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ((*router)->generation(), 1u);
  EXPECT_EQ((*router)->num_shards(), 3);
  for (const auto& [key, value] : before) {
    auto v = (*router)->Lookup(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
}

// An I/O failure on the PARTMAP publish AFTER the RESHARD marker is
// durable must not leave the marker behind: the live fleet keeps serving
// and acking the old generation, and a surviving marker would roll those
// acks forward into oblivion on reopen. The coordinator revokes the
// decision instead, so the old map stands consistently.
TEST_F(ReshardingTest, PartmapPublishFailureRevokesTheMarkerAndKeepsOldMap) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  auto router = ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());
  ASSERT_TRUE((*router)->AppendBatch(AddShortcut(&graph, 3, 15, "0.5")).ok());
  ASSERT_TRUE((*router)->DrainAll().ok());
  std::map<std::string, std::string> before;
  for (const auto& kv : graph) {
    auto v = (*router)->Lookup(kv.key);
    ASSERT_TRUE(v.ok());
    before[kv.key] = *v;
  }

  // The PARTMAP record is rewritten only at the publish (the staging
  // fleet never persists it), so one EIO on its path hits exactly the
  // write after the marker.
  fault::FaultRule rule;
  rule.ops = fault::kWriteFile;
  rule.path_substr = "sp.PARTMAP";
  rule.kind = fault::FaultKind::kEIO;
  rule.times = 1;
  fault::FaultInjector::Instance()->AddRule(rule);

  ReshardOptions opts;
  opts.new_num_shards = 3;
  opts.chunk_max_bytes = 512;
  ReshardCoordinator coordinator(router->get(), opts);
  auto stats = coordinator.Run();
  ASSERT_FALSE(stats.ok()) << "the failed publish must surface";
  fault::FaultInjector::Instance()->Reset();

  // The decision was revoked: no marker, no poison, old map serving every
  // committed value, and appends ack safely (nothing can roll them over).
  EXPECT_FALSE(FileExists(JoinPath(root_, "sp.RESHARD")));
  EXPECT_FALSE((*router)->poisoned());
  EXPECT_EQ((*router)->generation(), 0u);
  EXPECT_EQ((*router)->num_shards(), 2);
  EXPECT_EQ((*router)->partition_map(), (PartitionMap{0, 2}));
  for (const auto& [key, value] : before) {
    auto v = (*router)->Lookup(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
  ASSERT_TRUE((*router)->AppendBatch(AddShortcut(&graph, 7, 19, "0.5")).ok());
  ASSERT_TRUE((*router)->DrainAll().ok());

  // With the disk healed, a retry completes the interrupted move.
  ReshardCoordinator retry(router->get(), opts);
  auto retried = retry.Run();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ((*router)->generation(), 1u);
  EXPECT_EQ((*router)->num_shards(), 3);
  ASSERT_TRUE((*router)->DrainAll().ok());
  for (const auto& kv : graph) {
    ASSERT_TRUE((*router)->Lookup(kv.key).ok()) << kv.key;
  }
}

// ---------------------------------------------------------------------------
// Live readers across the cutover
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, PinnedPreFlipReaderServesOldGenerationWithZeroFailures) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  auto router =
      ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE(
      (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());
  ShardGroup group(router->get());

  // Pin BEFORE the move and record the full pinned view.
  auto pinned = group.PinSnapshot();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->epochs().size(), 2u);
  std::map<std::string, std::string> pinned_values;
  for (const auto& kv : graph) {
    auto v = pinned->Get(kv.key);
    ASSERT_TRUE(v.ok());
    pinned_values[kv.key] = *v;
  }

  // Readers hammer the pre-flip pin, fresh pins and routed gets across the
  // whole move. Zero failed reads allowed.
  std::atomic<bool> stop{false};
  std::atomic<int> failed{0}, done{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      size_t i = 0;
      while (!stop.load()) {
        const auto& kv = graph[i++ % graph.size()];
        if (!pinned->Get(kv.key).ok()) failed.fetch_add(1);
        if (!group.Get("", kv.key).ok()) failed.fetch_add(1);
        auto snap = group.PinSnapshot();
        if (!snap.ok() || !snap->Get(kv.key).ok()) failed.fetch_add(1);
        done.fetch_add(1);
      }
    });
  }

  ReshardOptions opts;
  opts.new_num_shards = 4;
  opts.crash_hook = [&](const std::string& stage) {
    if (stage == "transfer") {
      EXPECT_TRUE(
          (*router)->AppendBatch(AddShortcut(&graph, 5, 17, "0.5")).ok());
    }
    return false;
  };
  ReshardCoordinator coordinator(router->get(), opts);
  auto stats = coordinator.Run();
  stop.store(true);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(done.load(), 0);
  EXPECT_EQ(failed.load(), 0)
      << failed.load() << " failed reads across the cutover";

  // The pre-flip pin still serves the OLD generation bit for bit: its two
  // donor slices were retired alive, not destroyed.
  EXPECT_EQ(pinned->epochs().size(), 2u);
  for (const auto& [key, value] : pinned_values) {
    auto v = pinned->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
  // A fresh pin is one uniform cut of the NEW generation.
  auto fresh = group.PinSnapshot();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epochs().size(), 4u);
  for (const auto& kv : graph) ASSERT_TRUE(fresh->Get(kv.key).ok());
}

// ---------------------------------------------------------------------------
// Warm retry: content-addressed chunks survive a crashed attempt
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, WarmRetryReusesEveryChunkOfACrashedTransfer) {
  const int n = 32;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  auto router =
      ShardRouter::Open(root_, "sp", CoordinatedOptions(spec, 2));
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE(
      (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());

  ReshardOptions opts;
  opts.new_num_shards = 4;
  opts.chunk_max_bytes = 256;  // plenty of chunks
  opts.crash_hook = [](const std::string& stage) {
    return stage == "transfer";  // die AFTER the chunks are durable
  };
  ReshardCoordinator crashed(router->get(), opts);
  ASSERT_FALSE(crashed.Run().ok());
  EXPECT_EQ((*router)->generation(), 0u);

  // Retry with nothing changed in between: the donors' slices cut into
  // byte-identical chunks, so the store already holds every one of them.
  opts.crash_hook = nullptr;
  ReshardCoordinator retry(router->get(), opts);
  auto stats = retry.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GT(stats->chunks_total, 1u);
  EXPECT_EQ(stats->chunks_reused, stats->chunks_total)
      << "a warm retry must not re-copy identical donor slices";
  EXPECT_EQ(stats->bytes_moved, 0u);
  EXPECT_EQ((*router)->num_shards(), 4);
  for (const auto& kv : graph) {
    EXPECT_TRUE((*router)->Lookup(kv.key).ok()) << kv.key;
  }
}

// ---------------------------------------------------------------------------
// Observability: reshard metrics + health states
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, ReshardMetricsAndHealthStatesSurface) {
  const int n = 24;
  auto graph = RingGraph(n, /*weighted=*/true);
  auto spec = sssp::MakeIterSpec("sp", PaddedNum(0), 2, 200);
  MetricsRegistry metrics;
  HealthRegistry health(&metrics);
  auto options = CoordinatedOptions(spec, 2);
  options.metrics = &metrics;
  options.health = &health;
  auto router = ShardRouter::Open(root_, "sp", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE(
      (*router)->Bootstrap(graph, InitStateFor(spec, graph)).ok());

  // Mid-move, every donor and destination is visibly "resharding".
  std::atomic<int> degraded_seen{0};
  ReshardOptions opts;
  opts.new_num_shards = 3;
  opts.chunk_max_bytes = 512;
  opts.crash_hook = [&](const std::string& stage) {
    if (stage == "transfer") {
      for (const std::string c :
           {"reshard.sp.donor0", "reshard.sp.donor1", "reshard.sp.dest0",
            "reshard.sp.dest1", "reshard.sp.dest2"}) {
        if (health.state(c) == HealthState::kDegraded &&
            health.reason(c) == "resharding") {
          degraded_seen.fetch_add(1);
        }
      }
      EXPECT_TRUE(
          (*router)->AppendBatch(AddShortcut(&graph, 5, 17, "0.5")).ok());
    }
    return false;
  };
  ReshardCoordinator coordinator(router->get(), opts);
  auto stats = coordinator.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(degraded_seen.load(), 5);

  // Cleared after the move: no reshard component lingers.
  for (const auto& c : health.Snapshot()) {
    EXPECT_TRUE(c.component.rfind("reshard.", 0) != 0)
        << c.component << " still reported after the move";
  }

  // The counters mirror the returned stats exactly.
  EXPECT_EQ(metrics.Get("serving.sp.reshard.chunks_total")->value(),
            static_cast<int64_t>(stats->chunks_total));
  EXPECT_EQ(metrics.Get("serving.sp.reshard.chunks_reused")->value(),
            static_cast<int64_t>(stats->chunks_reused));
  EXPECT_EQ(metrics.Get("serving.sp.reshard.bytes_moved")->value(),
            static_cast<int64_t>(stats->bytes_moved));
  EXPECT_EQ(metrics.Get("serving.sp.reshard.dual_journal_deltas")->value(),
            static_cast<int64_t>(stats->dual_journal_deltas));
  EXPECT_GT(stats->dual_journal_deltas, 0u);
  EXPECT_EQ(metrics.GetGauge("serving.sp.reshard.cutover_ms")->value(),
            static_cast<int64_t>(stats->cutover_ms));

  // The new generation publishes its own per-shard counter family.
  int64_t g1_epochs = 0;
  for (int s = 0; s < 3; ++s) {
    g1_epochs += metrics
                     .Get("serving.sp.g1.shard" + std::to_string(s) +
                          ".epochs_committed")
                     ->value();
  }
  EXPECT_GT(g1_epochs, 0);
}

// ---------------------------------------------------------------------------
// Replication interop: generation bump detection, re-sync, promote
// ---------------------------------------------------------------------------

TEST_F(ReshardingTest, ReplicationDetectsGenerationBumpResyncsAndPromotes) {
  GraphGenOptions gen;
  gen.num_vertices = 100;
  gen.avg_degree = 4;
  auto graph = GenGraph(gen);
  std::vector<KV> state;
  for (const auto& kv : graph) state.push_back(KV{kv.key, "1"});

  // Independent mode (promotion requires per-shard managers).
  ShardRouterOptions options;
  options.num_shards = 2;
  options.workers_per_shard = 2;
  options.pipeline.spec = pagerank::MakeIterSpec("pr", 2, 100, 1e-9);
  options.pipeline.engine.filter_threshold = 0.0;
  options.pipeline.engine.mrbg_auto_off_ratio = 2;
  auto router = ShardRouter::Open(root_, "pr", options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  ASSERT_TRUE((*router)->Bootstrap(graph, state).ok());

  std::string replicas = root_ + "_replicas";
  ASSERT_TRUE(ResetDir(replicas).ok());
  ReplicaSetOptions ro;
  ro.replicas_per_shard = 1;
  auto set = ReplicaSet::Open(router->get(), replicas, ro);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE((*set)->SyncAll().ok());
  EXPECT_EQ((*set)->bound_generation(), 0u);

  ReshardOptions opts;
  opts.new_num_shards = 3;
  ReshardCoordinator coordinator(router->get(), opts);
  ASSERT_TRUE(coordinator.Run().ok());

  // The set is bound to a generation that no longer exists: every routed
  // operation is refused with a rebind hint instead of misrouting.
  auto stale = (*set)->Get(graph.front().key);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), Status::Code::kFailedPrecondition);
  EXPECT_NE(stale.status().ToString().find("Rebind"), std::string::npos);
  EXPECT_FALSE(
      (*set)
          ->Append(DeltaKV{DeltaOp::kInsert, graph.front().key, "0000000001"})
          .ok());
  EXPECT_FALSE((*set)->PinSnapshot().ok());

  // Rebind + re-sync: three new shards, three fresh follower fleets, all
  // stamped with the new generation.
  ASSERT_TRUE((*set)->Rebind().ok());
  EXPECT_EQ((*set)->bound_generation(), 1u);
  ASSERT_TRUE((*set)->SyncAll().ok());
  for (int s = 0; s < 3; ++s) {
    FollowerReplica* f = (*set)->replica(s, 0);
    EXPECT_EQ(f->generation(), 1u) << "shard " << s;
    EXPECT_EQ(f->applied_epoch(), (*router)->shard(s)->committed_epoch())
        << "shard " << s;
  }
  for (const auto& kv : graph) {
    auto replica_read = (*set)->Get(kv.key);
    ASSERT_TRUE(replica_read.ok()) << kv.key;
    auto primary_read = (*router)->Lookup(kv.key);
    ASSERT_TRUE(primary_read.ok()) << kv.key;
    EXPECT_EQ(*replica_read, *primary_read) << kv.key;
  }

  // A follower whose GEN disagrees with the primary discards its staged
  // state wholesale and the next ship pass re-seeds it from scratch.
  FollowerReplica* f = (*set)->replica(0, 0);
  ASSERT_TRUE(f->EnsureGeneration(99).ok());
  EXPECT_EQ(f->generation(), 99u);
  EXPECT_EQ(f->applied_epoch(), 0u);
  ASSERT_TRUE((*set)->SyncAll().ok());
  EXPECT_EQ(f->generation(), 1u);
  EXPECT_EQ(f->applied_epoch(), (*router)->shard(0)->committed_epoch());

  // Kill-primary-after-reshard: the promoted follower serves exactly the
  // dead primary's committed state on the NEW partitioning.
  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.08;
  dopt.seed = 7;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(
      (*router)
          ->AppendBatch(std::vector<DeltaKV>(delta.begin(), delta.end()))
          .ok());
  ASSERT_TRUE((*router)->DrainAll().ok());
  ASSERT_TRUE((*set)->SyncAll().ok());

  const PartitionMap map = (*router)->partition_map();
  const uint64_t pre_crash_epoch = (*router)->shard(0)->committed_epoch();
  std::map<std::string, std::string> pre_crash;
  for (const auto& kv : graph) {
    if (map.ShardOf(kv.key) != 0) continue;
    auto v = (*router)->Lookup(kv.key);
    ASSERT_TRUE(v.ok());
    pre_crash[kv.key] = *v;
  }
  ASSERT_FALSE(pre_crash.empty());

  ASSERT_TRUE((*set)->KillPrimary(0).ok());
  auto promoted = (*set)->Promote(0);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_EQ((*set)->primary(0)->committed_epoch(), pre_crash_epoch);
  for (const auto& [key, value] : pre_crash) {
    auto v = (*set)->primary(0)->Lookup(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
  // And the shard ingests again through the promoted primary.
  ASSERT_TRUE(
      (*set)
          ->Append(DeltaKV{DeltaOp::kInsert, pre_crash.begin()->first,
                           "0000000001 0000000002"})
          .ok());
  ASSERT_TRUE((*set)->DrainAll().ok());
}

}  // namespace
}  // namespace i2mr
