// Tests for the Connected Components app (label propagation over the
// iterative engine) including incremental refresh with component merges
// and offline MRBGraph compaction between refresh jobs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/concomp.h"
#include "common/codec.h"
#include "core/incr_iter_engine.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

class ConCompTest : public ::testing::Test {
 protected:
  void SetUp() override { root_ = ::testing::TempDir() + "/i2mr_concomp"; }
  std::string root_;
};

// Builds a graph of `k` disjoint chains of length `len`.
std::vector<KV> ChainGraph(int k, int len) {
  std::vector<KV> graph;
  for (int c = 0; c < k; ++c) {
    for (int i = 0; i < len; ++i) {
      int v = c * len + i;
      std::string adj =
          (i + 1 < len) ? PaddedNum(c * len + i + 1) : std::string();
      graph.push_back(KV{PaddedNum(v), adj});
    }
  }
  return graph;
}

TEST_F(ConCompTest, SymmetrizeAddsReverseEdges) {
  std::vector<KV> graph = {{"0000000001", "0000000002"}, {"0000000002", ""}};
  auto sym = concomp::Symmetrize(graph);
  ASSERT_EQ(sym.size(), 2u);
  bool found = false;
  for (const auto& kv : sym) {
    if (kv.key == "0000000002") {
      EXPECT_EQ(kv.value, "0000000001");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConCompTest, ReferenceLabelsChains) {
  auto graph = concomp::Symmetrize(ChainGraph(3, 4));
  auto ref = concomp::Reference(graph);
  ASSERT_EQ(ref.size(), 12u);
  for (const auto& kv : ref) {
    uint64_t v = *ParseNum(kv.key);
    EXPECT_EQ(*ParseNum(kv.value), (v / 4) * 4) << kv.key;
  }
}

TEST_F(ConCompTest, EngineMatchesUnionFind) {
  GraphGenOptions gen;
  gen.num_vertices = 200;
  gen.avg_degree = 2;  // sparse: several components
  auto graph = concomp::Symmetrize(GenGraph(gen));

  LocalCluster cluster(root_, 3);
  IterativeEngine engine(&cluster, concomp::MakeIterSpec("cc", 3));
  ASSERT_TRUE(engine.Prepare(graph, concomp::InitialState(graph)).ok());
  ASSERT_TRUE(engine.Run().ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(concomp::ErrorRate(*state, concomp::Reference(graph)), 0.0);
}

TEST_F(ConCompTest, IncrementalMergeOfComponentsIsExact) {
  // Two disjoint chains; then a bridge edge merges them.
  auto graph = concomp::Symmetrize(ChainGraph(2, 6));
  LocalCluster cluster(root_ + "_merge", 3);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  IncrementalIterativeEngine engine(&cluster, concomp::MakeIterSpec("ccm", 3),
                                    options);
  ASSERT_TRUE(engine.RunInitial(graph, concomp::InitialState(graph)).ok());

  // Bridge 5 <-> 6 (update both symmetric records).
  std::vector<DeltaKV> delta;
  auto add_edge = [&](const std::string& from, const std::string& to) {
    for (auto& kv : graph) {
      if (kv.key != from) continue;
      auto dests = ParseAdjacency(kv.value);
      dests.push_back(to);
      std::sort(dests.begin(), dests.end());
      std::string nv = JoinAdjacency(dests);
      delta.push_back(DeltaKV{DeltaOp::kDelete, kv.key, kv.value});
      delta.push_back(DeltaKV{DeltaOp::kInsert, kv.key, nv});
      kv.value = nv;
    }
  };
  add_edge(PaddedNum(5), PaddedNum(6));
  add_edge(PaddedNum(6), PaddedNum(5));

  auto refresh = engine.RunIncremental(delta);
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  // The merge propagates along the second chain only: far fewer map
  // instances than a full pass over all 12 records per iteration.
  EXPECT_EQ(refresh->iterations[0].map_instances, 4);

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(concomp::ErrorRate(*state, concomp::Reference(graph)), 0.0);
  // Everyone now carries label 0.
  for (const auto& kv : *state) EXPECT_EQ(kv.value, PaddedNum(0));
}

TEST_F(ConCompTest, NewVertexJoinsExistingComponent) {
  auto graph = concomp::Symmetrize(ChainGraph(1, 5));
  LocalCluster cluster(root_ + "_newv", 2);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  IncrementalIterativeEngine engine(&cluster, concomp::MakeIterSpec("ccn", 2),
                                    options);
  ASSERT_TRUE(engine.RunInitial(graph, concomp::InitialState(graph)).ok());

  // Insert vertex 99 linked to vertex 4 (both directions).
  std::vector<DeltaKV> delta;
  delta.push_back(DeltaKV{DeltaOp::kInsert, PaddedNum(99), PaddedNum(4)});
  for (auto& kv : graph) {
    if (kv.key != PaddedNum(4)) continue;
    auto dests = ParseAdjacency(kv.value);
    dests.push_back(PaddedNum(99));
    std::sort(dests.begin(), dests.end());
    std::string nv = JoinAdjacency(dests);
    delta.push_back(DeltaKV{DeltaOp::kDelete, kv.key, kv.value});
    delta.push_back(DeltaKV{DeltaOp::kInsert, kv.key, nv});
    kv.value = nv;
  }
  graph.push_back(KV{PaddedNum(99), PaddedNum(4)});

  ASSERT_TRUE(engine.RunIncremental(delta).ok());
  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  bool found = false;
  for (const auto& kv : *state) {
    if (kv.key == PaddedNum(99)) {
      EXPECT_EQ(kv.value, PaddedNum(0));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConCompTest, OfflineCompactionShrinksStoreAndPreservesResults) {
  GraphGenOptions gen;
  gen.num_vertices = 150;
  auto base = GenGraph(gen);
  auto graph = concomp::Symmetrize(base);

  LocalCluster cluster(root_ + "_compact", 3);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  IncrementalIterativeEngine engine(&cluster, concomp::MakeIterSpec("ccc", 3),
                                    options);
  ASSERT_TRUE(engine.RunInitial(graph, concomp::InitialState(graph)).ok());

  // Accumulate garbage over several refreshes (each appends new batches).
  for (int round = 0; round < 3; ++round) {
    std::vector<DeltaKV> delta;
    auto& victim = graph[10 + round];
    auto dests = ParseAdjacency(victim.value);
    dests.push_back(PaddedNum(140 - round));
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    std::string nv = JoinAdjacency(dests);
    delta.push_back(DeltaKV{DeltaOp::kDelete, victim.key, victim.value});
    delta.push_back(DeltaKV{DeltaOp::kInsert, victim.key, nv});
    victim.value = nv;
    ASSERT_TRUE(engine.RunIncremental(delta).ok());
  }

  auto before = engine.MrbgFileBytes();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(engine.CompactMRBGraph().ok());
  auto after = engine.MrbgFileBytes();
  ASSERT_TRUE(after.ok());
  EXPECT_LT(*after, *before);

  // The compacted store still supports further exact refreshes.
  std::vector<DeltaKV> delta;
  auto& victim = graph[50];
  auto dests = ParseAdjacency(victim.value);
  dests.push_back(PaddedNum(0));
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  std::string nv = JoinAdjacency(dests);
  delta.push_back(DeltaKV{DeltaOp::kDelete, victim.key, victim.value});
  delta.push_back(DeltaKV{DeltaOp::kInsert, victim.key, nv});
  victim.value = nv;
  ASSERT_TRUE(engine.RunIncremental(delta).ok());

  auto state = engine.StateSnapshot();
  ASSERT_TRUE(state.ok());
  // Note: the label-propagation fixpoint on the *directed* delta we applied
  // matches union-find on the symmetrized closure only if propagation can
  // flow back; keep the check one-sided: labels must be valid component
  // representatives (<= own id) and no errors raised.
  for (const auto& kv : *state) EXPECT_LE(kv.value, kv.key);
}

}  // namespace
}  // namespace i2mr
