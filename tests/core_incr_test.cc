// Tests for the one-step fine-grain incremental engine (§3): the running
// example of the paper (sum of in-edge weights per vertex, Fig. 3),
// property tests checking incremental == re-computation for random deltas,
// and the accumulator-Reduce fast path (§3.5).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/wordcount.h"
#include "common/codec.h"
#include "common/random.h"
#include "core/incr_job.h"
#include "data/graph_gen.h"
#include "io/env.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

// The paper's running example (Fig. 3): compute the sum of in-edge weights
// per vertex. Input record: <i, "j1:w1 j2:w2">; Map emits <j, w>; Reduce
// sums.
class InEdgeSumMapper : public Mapper {
 public:
  void Map(const std::string& /*key*/, const std::string& value,
           MapContext* ctx) override {
    for (const auto& [j, w] : ParseWeightedAdjacency(value)) {
      ctx->Emit(j, FormatDouble(w));
    }
  }
};

class SumReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    double sum = 0;
    for (const auto& v : values) sum += *ParseDouble(v);
    ctx->Emit(key, FormatDouble(sum));
  }
};

IncrJobSpec InEdgeSumSpec(const std::string& name, int reducers) {
  IncrJobSpec spec;
  spec.name = name;
  spec.num_reduce_tasks = reducers;
  spec.mapper = [] { return std::make_unique<InEdgeSumMapper>(); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::map<std::string, double> InEdgeSumReference(const std::vector<KV>& graph) {
  std::map<std::string, double> sums;
  for (const auto& kv : graph) {
    for (const auto& [j, w] : ParseWeightedAdjacency(kv.value)) sums[j] += w;
  }
  return sums;
}

std::map<std::string, double> ToDoubleMap(const std::vector<KV>& kvs) {
  std::map<std::string, double> out;
  for (const auto& kv : kvs) out[kv.key] = *ParseDouble(kv.value);
  return out;
}

void ExpectNear(const std::map<std::string, double>& got,
                const std::map<std::string, double>& want, double tol = 1e-9) {
  EXPECT_EQ(got.size(), want.size());
  for (const auto& [k, v] : want) {
    auto it = got.find(k);
    ASSERT_NE(it, got.end()) << "missing key " << k;
    EXPECT_NEAR(it->second, v, tol) << "key " << k;
  }
}

class CoreIncrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/i2mr_core_incr";
  }
  std::string root_;
};

TEST_F(CoreIncrTest, PaperRunningExample) {
  // Fig. 3 of the paper: initial graph, then delete vertex 1, insert vertex
  // 3, and modify vertex 0's edges.
  LocalCluster cluster(root_, 2);
  std::vector<KV> initial = {
      {"0", "1:0.3 2:0.3"},
      {"1", "2:0.4"},
      {"2", "0:0.5"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", initial, 2).ok());

  IncrementalOneStepJob job(&cluster, InEdgeSumSpec("inedge", 2));
  auto init = job.RunInitial(*cluster.dfs()->Parts("in"));
  ASSERT_TRUE(init.ok()) << init.status().ToString();

  auto results = job.Results();
  ASSERT_TRUE(results.ok());
  ExpectNear(ToDoubleMap(*results), InEdgeSumReference(initial));

  // Delta per Fig. 3(b): deletion of vertex 1, insertion of vertex 3,
  // modification of vertex 0.
  std::vector<DeltaKV> delta = {
      {DeltaOp::kDelete, "1", "2:0.4"},
      {DeltaOp::kInsert, "3", "0:0.1"},
      {DeltaOp::kDelete, "0", "1:0.3 2:0.3"},
      {DeltaOp::kInsert, "0", "2:0.6"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("delta", delta, 2).ok());
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("delta"));
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();

  std::vector<KV> updated = {
      {"0", "2:0.6"},
      {"2", "0:0.5"},
      {"3", "0:0.1"},
  };
  results = job.Results();
  ASSERT_TRUE(results.ok());
  // Vertex 1 lost all in-edges: per the engine its reduce instance becomes
  // empty and its result is removed (matching a from-scratch run).
  ExpectNear(ToDoubleMap(*results), InEdgeSumReference(updated));
}

TEST_F(CoreIncrTest, IncrementalTouchesOnlyAffectedInstances) {
  LocalCluster cluster(root_, 4);
  GraphGenOptions gen;
  gen.num_vertices = 400;
  gen.weighted = true;
  auto graph = GenGraph(gen);
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", graph, 4).ok());

  IncrementalOneStepJob job(&cluster, InEdgeSumSpec("touch", 4));
  auto init = job.RunInitial(*cluster.dfs()->Parts("in"));
  ASSERT_TRUE(init.ok());
  EXPECT_EQ(init->map_instances, 400);
  int64_t total_groups = init->reduce_instances;

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.05;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("delta", delta, 4).ok());
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("delta"));
  ASSERT_TRUE(incr.ok());

  // Map: one instance per delta record; Reduce: only affected K2s.
  EXPECT_EQ(incr->map_instances, static_cast<int64_t>(delta.size()));
  EXPECT_LT(incr->reduce_instances, total_groups);
  EXPECT_GT(incr->reduce_instances, 0);

  ExpectNear(ToDoubleMap(*job.Results()), InEdgeSumReference(graph), 1e-6);
}

// Property: for random update/insert/delete mixes, incremental refresh ==
// re-computation from scratch.
class IncrPropertyTest : public CoreIncrTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(IncrPropertyTest, IncrementalEqualsRecompute) {
  const int seed = GetParam();
  LocalCluster cluster(root_ + std::to_string(seed), 3);
  GraphGenOptions gen;
  gen.num_vertices = 120;
  gen.avg_degree = 6;
  gen.weighted = true;
  gen.seed = seed;
  auto graph = GenGraph(gen);
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", graph, 3).ok());

  IncrementalOneStepJob job(&cluster, InEdgeSumSpec("prop", 3));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("in")).ok());

  // Three consecutive refreshes with different delta mixes.
  GraphDeltaOptions mixes[3];
  mixes[0].update_fraction = 0.2;
  mixes[1].update_fraction = 0.05;
  mixes[1].insert_fraction = 0.1;
  mixes[2].update_fraction = 0.05;
  mixes[2].delete_fraction = 0.1;
  for (int round = 0; round < 3; ++round) {
    mixes[round].seed = seed * 100 + round;
    auto delta = GenGraphDelta(gen, mixes[round], &graph);
    std::string name = "delta" + std::to_string(round);
    ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset(name, delta, 3).ok());
    auto incr = job.RunIncremental(*cluster.dfs()->Parts(name));
    ASSERT_TRUE(incr.ok()) << incr.status().ToString();
    auto results = job.Results();
    ASSERT_TRUE(results.ok());
    ExpectNear(ToDoubleMap(*results), InEdgeSumReference(graph), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrPropertyTest, ::testing::Values(1, 2, 3, 7, 11));

TEST_F(CoreIncrTest, AccumulatorWordCountMatchesReference) {
  LocalCluster cluster(root_, 3);
  std::vector<KV> docs = {
      {"d0", "apple banana apple"},
      {"d1", "banana cherry"},
      {"d2", "apple cherry cherry date"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 2).ok());

  IncrementalOneStepJob job(&cluster, wordcount::MakeSpec("wc", 3));
  ASSERT_TRUE(job.accumulator_mode());
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  std::vector<DeltaKV> delta = {
      {DeltaOp::kInsert, "d3", "apple egg"},
      {DeltaOp::kInsert, "d4", "egg egg banana"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("delta", delta, 2).ok());
  ASSERT_TRUE(job.RunIncremental(*cluster.dfs()->Parts("delta")).ok());

  std::vector<KV> all = docs;
  all.push_back({"d3", "apple egg"});
  all.push_back({"d4", "egg egg banana"});
  auto want = wordcount::Reference(all);
  auto got = job.Results();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want.size());
  for (const auto& kv : *got) {
    EXPECT_EQ(*ParseNum(kv.value), want[kv.key]) << kv.key;
  }
}

TEST_F(CoreIncrTest, AccumulatorRejectsDeletions) {
  LocalCluster cluster(root_, 2);
  std::vector<KV> docs = {{"d0", "a b"}};
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 1).ok());
  IncrementalOneStepJob job(&cluster, wordcount::MakeSpec("wc", 2));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  std::vector<DeltaKV> delta = {{DeltaOp::kDelete, "d0", "a b"}};
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("delta", delta, 1).ok());
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("delta"));
  EXPECT_FALSE(incr.ok());
}

TEST_F(CoreIncrTest, MrbgWordCountSupportsDeletions) {
  LocalCluster cluster(root_, 2);
  std::vector<KV> docs = {
      {"d0", "x y x"},
      {"d1", "y z"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 2).ok());
  IncrementalOneStepJob job(&cluster, wordcount::MakeMrbgSpec("wcm", 2));
  ASSERT_FALSE(job.accumulator_mode());
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  // Update d0 (update = delete + insert) and delete d1.
  std::vector<DeltaKV> delta = {
      {DeltaOp::kDelete, "d0", "x y x"},
      {DeltaOp::kInsert, "d0", "x w"},
      {DeltaOp::kDelete, "d1", "y z"},
  };
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("delta", delta, 2).ok());
  ASSERT_TRUE(job.RunIncremental(*cluster.dfs()->Parts("delta")).ok());

  auto want = wordcount::Reference({{"d0", "x w"}});
  auto got = job.Results();
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want.size());
  for (const auto& kv : *got) {
    EXPECT_EQ(*ParseNum(kv.value), want[kv.key]) << kv.key;
  }
}

TEST_F(CoreIncrTest, AccumulatorAndMrbgModesAgree) {
  LocalCluster c1(root_ + "_acc", 2);
  LocalCluster c2(root_ + "_mrbg", 2);
  std::vector<KV> docs;
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    std::string text;
    for (int w = 0; w < 8; ++w) {
      if (w > 0) text += " ";
      text += "w" + std::to_string(rng.Uniform(20));
    }
    docs.push_back({PaddedNum(i), text});
  }
  ASSERT_TRUE(c1.dfs()->WriteDataset("docs", docs, 2).ok());
  ASSERT_TRUE(c2.dfs()->WriteDataset("docs", docs, 2).ok());

  IncrementalOneStepJob acc(&c1, wordcount::MakeSpec("wc", 2));
  IncrementalOneStepJob mrbg(&c2, wordcount::MakeMrbgSpec("wc", 2));
  ASSERT_TRUE(acc.RunInitial(*c1.dfs()->Parts("docs")).ok());
  ASSERT_TRUE(mrbg.RunInitial(*c2.dfs()->Parts("docs")).ok());

  std::vector<DeltaKV> delta;
  for (int i = 50; i < 60; ++i) {
    delta.push_back({DeltaOp::kInsert, PaddedNum(i), "w1 w2 w" +
                     std::to_string(rng.Uniform(20))});
  }
  ASSERT_TRUE(c1.dfs()->WriteDeltaDataset("d", delta, 2).ok());
  ASSERT_TRUE(c2.dfs()->WriteDeltaDataset("d", delta, 2).ok());
  ASSERT_TRUE(acc.RunIncremental(*c1.dfs()->Parts("d")).ok());
  ASSERT_TRUE(mrbg.RunIncremental(*c2.dfs()->Parts("d")).ok());

  auto r1 = acc.Results();
  auto r2 = mrbg.Results();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
}

TEST_F(CoreIncrTest, RepeatedEmptyDeltaIsNoop) {
  LocalCluster cluster(root_, 2);
  std::vector<KV> initial = {{"0", "1:1.0"}, {"1", "0:2.0"}};
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", initial, 1).ok());
  IncrementalOneStepJob job(&cluster, InEdgeSumSpec("noop", 2));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("in")).ok());
  auto before = job.Results();
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("empty", {}, 1).ok());
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("empty"));
  ASSERT_TRUE(incr.ok());
  EXPECT_EQ(incr->map_instances, 0);
  EXPECT_EQ(incr->reduce_instances, 0);
  auto after = job.Results();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(CoreIncrTest, StoreStatsReportIo) {
  LocalCluster cluster(root_, 2);
  GraphGenOptions gen;
  gen.num_vertices = 200;
  gen.weighted = true;
  auto graph = GenGraph(gen);
  ASSERT_TRUE(cluster.dfs()->WriteDataset("in", graph, 2).ok());
  IncrementalOneStepJob job(&cluster, InEdgeSumSpec("stats", 2));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("in")).ok());

  GraphDeltaOptions dopt;
  dopt.update_fraction = 0.1;
  auto delta = GenGraphDelta(gen, dopt, &graph);
  ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset("d", delta, 2).ok());
  auto incr = job.RunIncremental(*cluster.dfs()->Parts("d"));
  ASSERT_TRUE(incr.ok());
  EXPECT_GT(incr->store_io_reads, 0u);
  EXPECT_GT(incr->store_bytes_read, 0u);
  EXPECT_GE(incr->merge_ms, 0.0);
}

}  // namespace
}  // namespace i2mr
