// Randomized end-to-end stress tests: long refresh sequences with mixed
// delta types, random failure injection, and cross-validation against the
// sequential references after every refresh.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "apps/wordcount.h"
#include "common/codec.h"
#include "common/random.h"
#include "core/incr_iter_engine.h"
#include "core/incr_job.h"
#include "data/graph_gen.h"
#include "mr/cluster.h"

namespace i2mr {
namespace {

std::vector<KV> UnitState(const std::vector<KV>& structure) {
  std::vector<KV> state;
  for (const auto& kv : structure) state.push_back(KV{kv.key, "1"});
  return state;
}

class StressTest : public ::testing::TestWithParam<int> {
 protected:
  std::string Root(const std::string& tag) {
    return ::testing::TempDir() + "/i2mr_stress_" + tag + "_" +
           std::to_string(GetParam());
  }
};

// Five refreshes of incremental PageRank with varying delta mixes and
// random prime-task failures; every refresh must track the offline
// reference within tolerance and stay failure-transparent.
TEST_P(StressTest, PageRankLongRefreshSequenceWithRandomFailures) {
  const int seed = GetParam();
  Rng rng(seed * 7919);
  GraphGenOptions gen;
  gen.num_vertices = 150;
  gen.avg_degree = 5;
  gen.seed = seed;
  auto graph = GenGraph(gen);

  LocalCluster cluster(Root("pr"), 3);
  IncrIterOptions options;
  options.filter_threshold = 0.0;
  options.mrbg_auto_off_ratio = 2;
  options.checkpoint_each_iteration = true;
  // Random failures: each prime task of the first 4 iterations fails with
  // 15% probability (at most once per task, enforced by the engine).
  Rng fail_rng(seed);
  std::mutex mu;
  options.fail_hook = [&](int iteration, TaskId::Kind, int) {
    if (iteration > 4) return false;
    std::lock_guard<std::mutex> lock(mu);
    return fail_rng.Bernoulli(0.15);
  };

  IncrementalIterativeEngine engine(
      &cluster, pagerank::MakeIterSpec("pr_stress", 3, 80, 1e-8), options);
  ASSERT_TRUE(engine.RunInitial(graph, UnitState(graph)).ok());

  for (int round = 0; round < 5; ++round) {
    GraphDeltaOptions dopt;
    dopt.seed = seed * 100 + round;
    switch (round % 3) {
      case 0:
        dopt.update_fraction = 0.1;
        break;
      case 1:
        dopt.update_fraction = 0.03;
        dopt.insert_fraction = 0.05;
        break;
      case 2:
        dopt.update_fraction = 0.05;
        dopt.delete_fraction = 0.03;
        break;
    }
    auto delta = GenGraphDelta(gen, dopt, &graph);
    auto refresh = engine.RunIncremental(delta);
    ASSERT_TRUE(refresh.ok()) << "round " << round << ": "
                              << refresh.status().ToString();
    auto state = engine.StateSnapshot();
    ASSERT_TRUE(state.ok());
    auto reference = pagerank::Reference(graph, 80, 1e-8);
    EXPECT_LT(pagerank::MeanError(*state, reference), 1e-4)
        << "round " << round;
  }
}

// Ten accumulator-mode refreshes of WordCount; exact equality with the
// reference after each.
TEST_P(StressTest, WordCountManyRefreshesStayExact) {
  const int seed = GetParam();
  Rng rng(seed);
  LocalCluster cluster(Root("wc"), 3);

  auto make_doc = [&](uint64_t id) {
    std::string text;
    int words = 3 + static_cast<int>(rng.Uniform(6));
    for (int w = 0; w < words; ++w) {
      if (w > 0) text += " ";
      text += "w" + std::to_string(rng.Uniform(30));
    }
    return KV{PaddedNum(id), text};
  };

  std::vector<KV> docs;
  for (uint64_t i = 0; i < 80; ++i) docs.push_back(make_doc(i));
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 3).ok());

  IncrementalOneStepJob job(&cluster, wordcount::MakeSpec("wc_stress", 3));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  uint64_t next_id = 80;
  for (int round = 0; round < 10; ++round) {
    std::vector<DeltaKV> delta;
    int count = 1 + static_cast<int>(rng.Uniform(15));
    for (int i = 0; i < count; ++i) {
      KV doc = make_doc(next_id++);
      delta.push_back(DeltaKV{DeltaOp::kInsert, doc.key, doc.value});
      docs.push_back(doc);
    }
    std::string name = "d" + std::to_string(round);
    ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset(name, delta, 2).ok());
    ASSERT_TRUE(job.RunIncremental(*cluster.dfs()->Parts(name)).ok());

    auto want = wordcount::Reference(docs);
    auto got = job.Results();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), want.size()) << "round " << round;
    for (const auto& kv : *got) {
      ASSERT_EQ(*ParseNum(kv.value), want[kv.key])
          << "round " << round << " word " << kv.key;
    }
  }
}

// MRBG-mode WordCount with random update/delete churn; exact after each
// refresh (exercises chunk deletions, upserts and instance erasure).
TEST_P(StressTest, MrbgWordCountChurn) {
  const int seed = GetParam();
  Rng rng(seed + 31337);
  LocalCluster cluster(Root("wcm"), 2);

  auto make_text = [&] {
    std::string text;
    int words = 2 + static_cast<int>(rng.Uniform(5));
    for (int w = 0; w < words; ++w) {
      if (w > 0) text += " ";
      text += "t" + std::to_string(rng.Uniform(12));
    }
    return text;
  };

  std::vector<KV> docs;
  for (uint64_t i = 0; i < 40; ++i) docs.push_back({PaddedNum(i), make_text()});
  ASSERT_TRUE(cluster.dfs()->WriteDataset("docs", docs, 2).ok());
  IncrementalOneStepJob job(&cluster, wordcount::MakeMrbgSpec("wcm_stress", 2));
  ASSERT_TRUE(job.RunInitial(*cluster.dfs()->Parts("docs")).ok());

  for (int round = 0; round < 6; ++round) {
    std::vector<DeltaKV> delta;
    // Update 5 distinct docs and delete another one. A delta input is the
    // *net* diff between two snapshots (the paper's incremental-acquisition
    // model), so each record appears at most once per refresh.
    std::set<size_t> victims;
    while (victims.size() < 6 && victims.size() < docs.size()) {
      victims.insert(rng.Uniform(docs.size()));
    }
    std::vector<size_t> picked(victims.begin(), victims.end());
    for (size_t u = 0; u + 1 < picked.size(); ++u) {
      size_t i = picked[u];
      std::string nv = make_text();
      delta.push_back(DeltaKV{DeltaOp::kDelete, docs[i].key, docs[i].value});
      delta.push_back(DeltaKV{DeltaOp::kInsert, docs[i].key, nv});
      docs[i].value = nv;
    }
    if (!picked.empty()) {
      size_t i = picked.back();
      delta.push_back(DeltaKV{DeltaOp::kDelete, docs[i].key, docs[i].value});
      docs.erase(docs.begin() + i);
    }
    std::string name = "churn" + std::to_string(round);
    ASSERT_TRUE(cluster.dfs()->WriteDeltaDataset(name, delta, 2).ok());
    ASSERT_TRUE(job.RunIncremental(*cluster.dfs()->Parts(name)).ok());

    auto want = wordcount::Reference(docs);
    auto got = job.Results();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), want.size()) << "round " << round;
    for (const auto& kv : *got) {
      ASSERT_EQ(*ParseNum(kv.value), want[kv.key])
          << "round " << round << " word " << kv.key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Values(1, 2, 5));

}  // namespace
}  // namespace i2mr
