// Tests for the cluster cost model: simulated network transfers, job/task
// startup charges, and remote-input (Dfs-read) charging in map tasks.
#include <gtest/gtest.h>

#include <string>

#include "common/timer.h"
#include "io/env.h"
#include "io/record_file.h"
#include "mr/cluster.h"
#include "mr/cost_model.h"

namespace i2mr {
namespace {

TEST(CostModelTest, ZeroCostModelDoesNotSleep) {
  CostModel cost;
  WallTimer timer;
  cost.ChargeTransfer(100 << 20);
  cost.ChargeJobStartup();
  cost.ChargeTaskStartup();
  EXPECT_LT(timer.ElapsedMillis(), 5.0);
}

TEST(CostModelTest, TransferTimeScalesWithBytes) {
  CostModel cost;
  cost.net_mb_per_s = 100;  // 100 MB/s -> 10 MB should take ~100 ms
  WallTimer timer;
  cost.ChargeTransfer(10 << 20);
  double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, 90.0);
  EXPECT_LT(ms, 400.0);
}

TEST(CostModelTest, LatencyChargedPerTransfer) {
  CostModel cost;
  cost.net_latency_ms = 20;
  WallTimer timer;
  cost.ChargeTransfer(0);
  cost.ChargeTransfer(0);
  EXPECT_GE(timer.ElapsedMillis(), 40.0);
}

TEST(CostModelTest, RemoteInputsChargedLocalInputsFree) {
  // Two identical jobs; one reads its input from the Dfs (remote prefix),
  // the other from a local path outside it. With a slow simulated network
  // the remote job must be measurably slower.
  std::string root = ::testing::TempDir() + "/i2mr_cost_remote";
  CostModel cost;
  cost.net_mb_per_s = 2;  // slow: 1 MB ~ 500 ms
  LocalCluster cluster(root, 2, cost);

  std::vector<KV> records;
  records.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    records.push_back({"k" + std::to_string(i), std::string(256, 'x')});
  }
  ASSERT_TRUE(cluster.dfs()->WriteDataset("remote", records, 1).ok());
  // Local copy outside the Dfs prefix.
  std::string local_dir = JoinPath(root, "localdata");
  ASSERT_TRUE(CreateDirs(local_dir).ok());
  std::string local_part = JoinPath(local_dir, "part-00000.dat");
  ASSERT_TRUE(CopyFile(cluster.dfs()->PartPath("remote", 0), local_part).ok());

  auto run = [&](const std::vector<std::string>& inputs,
                 const std::string& out) {
    JobSpec spec;
    spec.name = out;
    spec.input_parts = inputs;
    spec.mapper = [] {
      return std::make_unique<FnMapper>(
          [](const std::string& k, const std::string&, MapContext* ctx) {
            ctx->Emit(k, "1");
          });
    };
    spec.reducer = [] {
      return std::make_unique<FnReducer>(
          [](const std::string& k, const std::vector<std::string>&,
             ReduceContext* ctx) { ctx->Emit(k, "1"); });
    };
    spec.num_reduce_tasks = 1;
    spec.output_dir = JoinPath(root, "out/" + out);
    WallTimer timer;
    auto result = cluster.RunJob(spec);
    EXPECT_TRUE(result.ok()) << result.status.ToString();
    return timer.ElapsedMillis();
  };

  double local_ms = run({local_part}, "local");
  double remote_ms = run(*cluster.dfs()->Parts("remote"), "remote");
  // The remote input part is ~1.1 MB -> ~550 ms extra at 2 MB/s.
  EXPECT_GT(remote_ms, local_ms + 200.0);
}

TEST(CostModelTest, ShuffleTransfersCharged) {
  // Shuffle volume is charged through the same network model: with a slow
  // network, a shuffle-heavy job takes measurably longer.
  std::string root = ::testing::TempDir() + "/i2mr_cost_shuffle";
  std::vector<KV> records;
  for (int i = 0; i < 2000; ++i) {
    records.push_back({"k" + std::to_string(i % 16), std::string(512, 'y')});
  }
  auto run = [&](double mbps, const std::string& tag) {
    CostModel cost;
    cost.net_mb_per_s = mbps;
    LocalCluster cluster(root + tag, 2, cost);
    // Local input (no remote charge): isolate the shuffle cost.
    std::string dir = JoinPath(root + tag, "localdata");
    EXPECT_TRUE(CreateDirs(dir).ok());
    std::string part = JoinPath(dir, "part.dat");
    EXPECT_TRUE(WriteRecords(part, records).ok());
    JobSpec spec;
    spec.input_parts = {part};
    spec.mapper = [] {
      return std::make_unique<FnMapper>(
          [](const std::string& k, const std::string& v, MapContext* ctx) {
            ctx->Emit(k, v);
          });
    };
    spec.reducer = [] {
      return std::make_unique<FnReducer>(
          [](const std::string& k, const std::vector<std::string>& vs,
             ReduceContext* ctx) { ctx->Emit(k, std::to_string(vs.size())); });
    };
    spec.num_reduce_tasks = 2;
    spec.output_dir = JoinPath(root + tag, "out");
    WallTimer timer;
    auto result = cluster.RunJob(spec);
    EXPECT_TRUE(result.ok());
    return timer.ElapsedMillis();
  };
  double fast = run(0, "_fast");      // no network model
  double slow = run(4, "_slow");      // ~1 MB shuffled at 4 MB/s ~ 250 ms
  EXPECT_GT(slow, fast + 100.0);
}

}  // namespace
}  // namespace i2mr
