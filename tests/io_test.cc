// Unit tests for src/io: files, record files, delta files, Dfs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/compress.h"
#include "io/dfs.h"
#include "io/env.h"
#include "io/file.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/i2mr_io_test";
    ASSERT_TRUE(ResetDir(dir_).ok());
  }
  void TearDown() override { RemoveAll(dir_).ok(); }

  std::string Path(const std::string& name) { return JoinPath(dir_, name); }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Env helpers
// ---------------------------------------------------------------------------

TEST_F(IoTest, WriteReadString) {
  ASSERT_TRUE(WriteStringToFile(Path("f"), "hello world").ok());
  auto got = ReadFileToString(Path("f"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello world");
  auto sz = FileSize(Path("f"));
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(*sz, 11u);
  // The synced variant lands the same bytes (fsync path exercised).
  ASSERT_TRUE(WriteStringToFile(Path("f"), "synced", /*sync=*/true).ok());
  auto synced = ReadFileToString(Path("f"));
  ASSERT_TRUE(synced.ok());
  EXPECT_EQ(*synced, "synced");
}

TEST_F(IoTest, LinkOrCopyFileSharesContentAndReplacesTarget) {
  ASSERT_TRUE(WriteStringToFile(Path("src"), "snapshot me").ok());
  ASSERT_TRUE(LinkOrCopyFile(Path("src"), Path("dst")).ok());
  auto got = ReadFileToString(Path("dst"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "snapshot me");
  // An existing target is replaced, not EEXIST-failed.
  ASSERT_TRUE(WriteStringToFile(Path("src2"), "v2").ok());
  ASSERT_TRUE(LinkOrCopyFile(Path("src2"), Path("dst")).ok());
  auto got2 = ReadFileToString(Path("dst"));
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, "v2");
}

TEST_F(IoTest, RewritesUseFreshInodesSoHardLinkedSnapshotsKeepTheirBytes) {
  // The epoch-snapshot contract: after hard-linking a committed file,
  // rewriting the original path must NOT change the snapshot's bytes.
  ASSERT_TRUE(WriteStringToFile(Path("work"), "epoch-1 state").ok());
  ASSERT_TRUE(LinkOrCopyFile(Path("work"), Path("snap")).ok());

  // Rewrite via WritableFile::Create (the RecordWriter/DeltaWriter path).
  auto w = WritableFile::Create(Path("work"));
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append("epoch-2 state, longer").ok());
  ASSERT_TRUE((*w)->Close().ok());
  auto snap = ReadFileToString(Path("snap"));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(*snap, "epoch-1 state");

  // Rewrite via WriteStringToFile (the MANIFEST / chunk-index path).
  ASSERT_TRUE(LinkOrCopyFile(Path("work"), Path("snap2")).ok());
  ASSERT_TRUE(WriteStringToFile(Path("work"), "epoch-3").ok());
  auto snap2 = ReadFileToString(Path("snap2"));
  ASSERT_TRUE(snap2.ok());
  EXPECT_EQ(*snap2, "epoch-2 state, longer");
}

TEST_F(IoTest, SyncPrimitivesSucceedOnHealthyFiles) {
  auto w = WritableFile::Create(Path("s"));
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append("abc").ok());
  EXPECT_TRUE((*w)->Sync().ok());
  ASSERT_TRUE((*w)->Close().ok());
  EXPECT_TRUE(SyncFile(Path("s")).ok());
  EXPECT_TRUE(SyncDir(dir_).ok());
  EXPECT_FALSE(SyncFile(Path("no-such-file")).ok());
}

TEST_F(IoTest, ListFilesSorted) {
  ASSERT_TRUE(WriteStringToFile(Path("b"), "1").ok());
  ASSERT_TRUE(WriteStringToFile(Path("a"), "2").ok());
  ASSERT_TRUE(WriteStringToFile(Path("c"), "3").ok());
  auto files = ListFiles(dir_);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 3u);
  EXPECT_EQ((*files)[0], Path("a"));
  EXPECT_EQ((*files)[2], Path("c"));
}

TEST_F(IoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFileToString(Path("nope")).ok());
}

TEST_F(IoTest, RenameAndCopy) {
  ASSERT_TRUE(WriteStringToFile(Path("x"), "data").ok());
  ASSERT_TRUE(RenameFile(Path("x"), Path("y")).ok());
  EXPECT_FALSE(FileExists(Path("x")));
  ASSERT_TRUE(CopyFile(Path("y"), Path("z")).ok());
  EXPECT_EQ(*ReadFileToString(Path("z")), "data");
  EXPECT_TRUE(FileExists(Path("y")));
}

// ---------------------------------------------------------------------------
// WritableFile / RandomAccessFile / SequentialFile
// ---------------------------------------------------------------------------

TEST_F(IoTest, WritableAppendTracksOffset) {
  auto f = WritableFile::Create(Path("w"));
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append("abc").ok());
  ASSERT_TRUE((*f)->Append("defg").ok());
  EXPECT_EQ((*f)->offset(), 7u);
  ASSERT_TRUE((*f)->Close().ok());
  EXPECT_EQ(*FileSize(Path("w")), 7u);
}

TEST_F(IoTest, WritableAppendMode) {
  ASSERT_TRUE(WriteStringToFile(Path("w"), "abc").ok());
  auto f = WritableFile::Create(Path("w"), /*append=*/true);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->offset(), 3u);
  ASSERT_TRUE((*f)->Append("def").ok());
  ASSERT_TRUE((*f)->Close().ok());
  EXPECT_EQ(*ReadFileToString(Path("w")), "abcdef");
}

TEST_F(IoTest, RandomAccessCountsReads) {
  ASSERT_TRUE(WriteStringToFile(Path("r"), "0123456789").ok());
  auto f = RandomAccessFile::Open(Path("r"));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->size(), 10u);
  std::string out;
  ASSERT_TRUE((*f)->Read(2, 4, &out).ok());
  EXPECT_EQ(out, "2345");
  ASSERT_TRUE((*f)->Read(8, 10, &out).ok());
  EXPECT_EQ(out, "89");  // truncated at EOF
  EXPECT_EQ((*f)->num_reads(), 2u);
  EXPECT_EQ((*f)->bytes_read(), 6u);
  (*f)->ResetStats();
  EXPECT_EQ((*f)->num_reads(), 0u);
}

TEST_F(IoTest, SequentialReadExact) {
  ASSERT_TRUE(WriteStringToFile(Path("s"), "abcdef").ok());
  auto f = SequentialFile::Open(Path("s"));
  ASSERT_TRUE(f.ok());
  std::string out;
  ASSERT_TRUE((*f)->ReadExact(3, &out).ok());
  EXPECT_EQ(out, "abc");
  ASSERT_TRUE((*f)->ReadExact(3, &out).ok());
  EXPECT_EQ(out, "def");
  EXPECT_TRUE((*f)->ReadExact(1, &out).IsNotFound());
}

TEST_F(IoTest, SequentialShortReadIsCorruption) {
  ASSERT_TRUE(WriteStringToFile(Path("s"), "abc").ok());
  auto f = SequentialFile::Open(Path("s"));
  std::string out;
  EXPECT_TRUE((*f)->ReadExact(10, &out).IsCorruption());
}

// ---------------------------------------------------------------------------
// MmapFile
// ---------------------------------------------------------------------------

TEST_F(IoTest, MmapFileMatchesStreamingRead) {
  std::string payload;
  for (int i = 0; i < 5000; ++i) payload += "record-" + std::to_string(i) + ";";
  ASSERT_TRUE(WriteStringToFile(Path("seg"), payload).ok());
  auto mapped = MmapFile::Open(Path("seg"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), payload.size());
  EXPECT_EQ((*mapped)->data(), payload);
  EXPECT_EQ((*mapped)->data(), *ReadFileToString(Path("seg")));
}

TEST_F(IoTest, MmapFileEmptyAndMissing) {
  ASSERT_TRUE(WriteStringToFile(Path("empty"), "").ok());
  auto mapped = MmapFile::Open(Path("empty"));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ((*mapped)->size(), 0u);
  EXPECT_TRUE((*mapped)->data().empty());
  EXPECT_FALSE(MmapFile::Open(Path("missing")).ok());
}

// ---------------------------------------------------------------------------
// LZ codec (compressed archive segments)
// ---------------------------------------------------------------------------

TEST_F(IoTest, LzRoundTripCompressibleAndIncompressible) {
  // Repetitive data must shrink; both kinds must round-trip exactly.
  std::string repetitive;
  for (int i = 0; i < 2000; ++i) repetitive += "delta-log-record-payload ";
  std::string noisy;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 50000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    noisy.push_back(static_cast<char>(x & 0xff));
  }
  for (const std::string& raw : {repetitive, noisy, std::string()}) {
    std::string compressed;
    LzCompress(raw, &compressed);
    EXPECT_TRUE(LzIsCompressed(compressed));
    std::string back;
    ASSERT_TRUE(LzDecompress(compressed, &back).ok());
    EXPECT_EQ(back, raw);
  }
  std::string compressed;
  LzCompress(repetitive, &compressed);
  EXPECT_LT(compressed.size(), repetitive.size() / 4);
}

TEST_F(IoTest, LzDecompressRejectsCorruption) {
  std::string raw;
  for (int i = 0; i < 300; ++i) raw += "abcdefgh-" + std::to_string(i);
  std::string compressed;
  LzCompress(raw, &compressed);
  std::string out;
  // Not a compressed frame at all.
  EXPECT_FALSE(LzIsCompressed(raw));
  EXPECT_TRUE(LzDecompress("plain bytes", &out).IsCorruption());
  // Truncated frame.
  EXPECT_FALSE(
      LzDecompress(std::string_view(compressed).substr(0, compressed.size() / 2),
                   &out)
          .ok());
  // Declared size mismatch.
  std::string short_frame = compressed;
  ++short_frame[4];  // bump raw_len past what the tokens produce
  EXPECT_TRUE(LzDecompress(short_frame, &out).IsCorruption());
  // A flipped byte deep in the stream either fails structurally or decodes
  // to different bytes — never silently back to the original (payload
  // integrity is the delta log's per-record CRC, not the codec's job).
  std::string mangled = compressed;
  mangled[mangled.size() - 5] ^= 0x5a;
  std::string got;
  Status st = LzDecompress(mangled, &got);
  EXPECT_TRUE(!st.ok() || got != raw);
}

TEST_F(IoTest, LzCorruptHeaderLengthFailsWithoutHugeAllocation) {
  std::string raw;
  for (int i = 0; i < 300; ++i) raw += "abcdefgh-" + std::to_string(i);
  std::string compressed;
  LzCompress(raw, &compressed);
  // Corrupt the declared raw length to ~4 GiB. The decoder must fail with
  // Corruption once the real tokens run out — without having reserved the
  // declared size up front (a single flipped header on an archived segment
  // must not turn recovery/shipping into a multi-GiB allocation).
  for (int i = 0; i < 4; ++i) compressed[4 + i] = static_cast<char>(0xff);
  for (int i = 4; i < 8; ++i) compressed[4 + i] = 0;
  std::string out;
  Status st = LzDecompress(compressed, &out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_LT(out.capacity(), 16u << 20);
}

// ---------------------------------------------------------------------------
// Record files
// ---------------------------------------------------------------------------

TEST_F(IoTest, RecordRoundTrip) {
  std::vector<KV> recs = {
      {"k1", "v1"}, {"", ""}, {"key with spaces", std::string(5000, 'x')}};
  ASSERT_TRUE(WriteRecords(Path("rec"), recs).ok());
  auto got = ReadRecords(Path("rec"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, recs);
}

TEST_F(IoTest, EmptyRecordFile) {
  ASSERT_TRUE(WriteRecords(Path("rec"), {}).ok());
  auto got = ReadRecords(Path("rec"));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_F(IoTest, RecordReaderDetectsTruncation) {
  std::vector<KV> recs = {{"aaaa", "bbbb"}};
  ASSERT_TRUE(WriteRecords(Path("rec"), recs).ok());
  auto data = ReadFileToString(Path("rec"));
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteStringToFile(Path("bad"), data->substr(0, data->size() - 2)).ok());
  auto r = RecordReader::Open(Path("bad"));
  ASSERT_TRUE(r.ok());
  KV kv;
  Status st = (*r)->Next(&kv);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsNotFound());  // corruption, not clean EOF
}

TEST_F(IoTest, RecordReaderRejectsGarbledLengthWithoutAllocating) {
  // A corrupt length prefix claiming ~4 GB must fail fast as Corruption,
  // not attempt the allocation.
  std::string bad;
  bad += std::string("\xff\xff\xff\xfe", 4);  // klen = ~4 GB
  bad += "junk";
  ASSERT_TRUE(WriteStringToFile(Path("bad"), bad).ok());
  auto r = RecordReader::Open(Path("bad"));
  ASSERT_TRUE(r.ok());
  KV kv;
  EXPECT_TRUE((*r)->Next(&kv).IsCorruption());
}

TEST_F(IoTest, ValidateRecordFileCountsAndFlagsTruncation) {
  std::vector<KV> recs = {{"k1", "v1"}, {"k2", "v2"}, {"k3", "v3"}};
  ASSERT_TRUE(WriteRecords(Path("rec"), recs).ok());
  auto n = ValidateRecordFile(Path("rec"));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3u);

  // Chop mid-record: validation names the damage instead of under-counting.
  auto data = ReadFileToString(Path("rec"));
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      WriteStringToFile(Path("torn"), data->substr(0, data->size() - 3)).ok());
  auto torn = ValidateRecordFile(Path("torn"));
  EXPECT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption());

  // Open-time validation makes the corruption visible before any Next().
  EXPECT_TRUE(RecordReader::Open(Path("torn"), /*validate=*/true)
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(RecordReader::Open(Path("rec"), /*validate=*/true).ok());
}

TEST_F(IoTest, ValidateDeltaFileFlagsTruncation) {
  std::vector<DeltaKV> recs = {{DeltaOp::kInsert, "a", "1"},
                               {DeltaOp::kDelete, "b", "2"}};
  ASSERT_TRUE(WriteDeltaRecords(Path("d"), recs).ok());
  auto n = ValidateDeltaFile(Path("d"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);

  auto data = ReadFileToString(Path("d"));
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(
      WriteStringToFile(Path("dt"), data->substr(0, data->size() - 1)).ok());
  auto torn = ValidateDeltaFile(Path("dt"));
  EXPECT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption());
  EXPECT_TRUE(DeltaReader::Open(Path("dt"), /*validate=*/true)
                  .status()
                  .IsCorruption());
}

TEST_F(IoTest, DeltaRoundTrip) {
  std::vector<DeltaKV> recs = {
      {DeltaOp::kInsert, "a", "1"},
      {DeltaOp::kDelete, "b", "2"},
      {DeltaOp::kInsert, "", ""},
  };
  ASSERT_TRUE(WriteDeltaRecords(Path("d"), recs).ok());
  auto got = ReadDeltaRecords(Path("d"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, recs);
}

TEST_F(IoTest, DeltaReaderRejectsBadOp) {
  ASSERT_TRUE(WriteStringToFile(Path("d"), "X\x01\x00\x00\x00k\x01\x00\x00\x00v").ok());
  auto r = DeltaReader::Open(Path("d"));
  ASSERT_TRUE(r.ok());
  DeltaKV rec;
  EXPECT_TRUE((*r)->Next(&rec).IsCorruption());
}

TEST_F(IoTest, RecordWriterCountsRecordsAndBytes) {
  auto w = RecordWriter::Create(Path("rec"));
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Add("key", "value").ok());
  ASSERT_TRUE((*w)->Add("key2", "value2").ok());
  EXPECT_EQ((*w)->num_records(), 2u);
  EXPECT_GT((*w)->bytes_written(), 0u);
  ASSERT_TRUE((*w)->Close().ok());
}

// ---------------------------------------------------------------------------
// Dfs
// ---------------------------------------------------------------------------

TEST_F(IoTest, DfsDatasetRoundTrip) {
  Dfs dfs(Path("dfs"));
  std::vector<KV> recs;
  for (int i = 0; i < 10; ++i) recs.push_back({"k" + std::to_string(i), "v"});
  ASSERT_TRUE(dfs.WriteDataset("in", recs, 3).ok());
  auto parts = dfs.Parts("in");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 3u);
  auto got = dfs.ReadDataset("in");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 10u);
  // Round-robin split: part 0 holds records 0,3,6,9.
  auto p0 = ReadRecords(dfs.PartPath("in", 0));
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0->size(), 4u);
  EXPECT_EQ((*p0)[0].key, "k0");
  EXPECT_EQ((*p0)[1].key, "k3");
}

TEST_F(IoTest, DfsMissingDataset) {
  Dfs dfs(Path("dfs"));
  EXPECT_FALSE(dfs.DatasetExists("nope"));
  EXPECT_TRUE(dfs.Parts("nope").status().IsNotFound());
}

TEST_F(IoTest, DfsDeltaDataset) {
  Dfs dfs(Path("dfs"));
  std::vector<DeltaKV> recs = {{DeltaOp::kInsert, "a", "1"},
                               {DeltaOp::kDelete, "b", "2"}};
  ASSERT_TRUE(dfs.WriteDeltaDataset("d", recs, 2).ok());
  auto got = dfs.ReadDeltaDataset("d");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
}

TEST_F(IoTest, DfsCheckpoints) {
  Dfs dfs(Path("dfs"));
  ASSERT_TRUE(WriteStringToFile(Path("local"), "state").ok());
  ASSERT_TRUE(dfs.CheckpointIn(Path("local"), "iter3/state-part0").ok());
  EXPECT_TRUE(dfs.CheckpointExists("iter3/state-part0"));
  EXPECT_FALSE(dfs.CheckpointExists("iter4/state-part0"));
  ASSERT_TRUE(dfs.CheckpointOut("iter3/state-part0", Path("restored")).ok());
  EXPECT_EQ(*ReadFileToString(Path("restored")), "state");
}

TEST_F(IoTest, DfsRejectsZeroParts) {
  Dfs dfs(Path("dfs"));
  EXPECT_FALSE(dfs.WriteDataset("x", {}, 0).ok());
}

}  // namespace
}  // namespace i2mr
