// Unit tests for src/common: status, codecs, hashing, RNG, thread pool,
// metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "common/hash.h"
#include "common/kv.h"
#include "common/metrics.h"
#include "common/metrics_exporter.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "io/env.h"

namespace i2mr {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, DistinctCodes) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_FALSE(Status::IOError("x").IsCorruption());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string(1000, 'x');
  std::string s = std::move(v).value();
  EXPECT_EQ(s.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(CodecTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed32(&buf, 0xffffffffu);
  Decoder dec(buf);
  uint32_t v;
  ASSERT_TRUE(dec.GetFixed32(&v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(dec.GetFixed32(&v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dec.GetFixed32(&v));
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(dec.GetFixed32(&v));
  EXPECT_EQ(v, 0xffffffffu);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetFixed64(&v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(100000, 'z'));
  Decoder dec(buf);
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s));
  EXPECT_EQ(s.size(), 100000u);
  EXPECT_TRUE(dec.done());
}

TEST(CodecTest, DoubleRoundTrip) {
  std::string buf;
  PutDouble(&buf, 3.14159);
  PutDouble(&buf, -0.0);
  PutDouble(&buf, 1e308);
  Decoder dec(buf);
  double d;
  ASSERT_TRUE(dec.GetDouble(&d));
  EXPECT_DOUBLE_EQ(d, 3.14159);
  ASSERT_TRUE(dec.GetDouble(&d));
  EXPECT_DOUBLE_EQ(d, -0.0);
  ASSERT_TRUE(dec.GetDouble(&d));
  EXPECT_DOUBLE_EQ(d, 1e308);
}

TEST(CodecTest, DecoderFailsOnTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  Decoder dec(buf.data(), buf.size() - 2);
  std::string s;
  EXPECT_FALSE(dec.GetLengthPrefixed(&s));
  EXPECT_FALSE(dec.ok());
  // Further reads keep failing.
  uint32_t v;
  EXPECT_FALSE(dec.GetFixed32(&v));
}

TEST(CodecTest, PaddedNumOrdersLexicographically) {
  EXPECT_EQ(PaddedNum(42), "0000000042");
  EXPECT_LT(PaddedNum(9), PaddedNum(10));
  EXPECT_LT(PaddedNum(99), PaddedNum(100));
  EXPECT_LT(PaddedNum(0), PaddedNum(1));
}

TEST(CodecTest, ParseNum) {
  ASSERT_TRUE(ParseNum("0000000042").ok());
  EXPECT_EQ(*ParseNum("0000000042"), 42u);
  EXPECT_EQ(*ParseNum("7"), 7u);
  EXPECT_FALSE(ParseNum("").ok());
  EXPECT_FALSE(ParseNum("12x").ok());
}

TEST(CodecTest, ParseFormatDoubleRoundTrip) {
  for (double d : {0.0, 1.0, -2.5, 0.15, 1e-9, 123456.789}) {
    auto parsed = ParseDouble(FormatDouble(d));
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(*parsed, d);
  }
  EXPECT_FALSE(ParseDouble("abc").ok());
}

// ---------------------------------------------------------------------------
// Hash
// ---------------------------------------------------------------------------

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(Hash64("pagerank"), Hash64("pagerank"));
  EXPECT_NE(Hash64("a"), Hash64("b"));
  EXPECT_NE(Hash64(""), Hash64("a"));
  // Different seeds give different hashes.
  EXPECT_NE(Hash64("a", 1), Hash64("a", 2));
}

TEST(HashTest, LowCollisionOnSequentialKeys) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(Hash64(PaddedNum(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, MapInstanceKeyDependsOnBothKeyAndValue) {
  EXPECT_NE(MapInstanceKey("k", "v1"), MapInstanceKey("k", "v2"));
  EXPECT_NE(MapInstanceKey("k1", "v"), MapInstanceKey("k2", "v"));
  EXPECT_EQ(MapInstanceKey("k", "v"), MapInstanceKey("k", "v"));
  // Boundary shifting must not collide.
  EXPECT_NE(MapInstanceKey("ab", "c"), MapInstanceKey("a", "bc"));
}

TEST(HashTest, Crc32KnownVectorsAndSensitivity) {
  // The standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
  // Single-bit damage anywhere changes the checksum.
  std::string s(64, 'x');
  uint32_t base = Crc32(s);
  for (size_t i = 0; i < s.size(); i += 7) {
    std::string t = s;
    t[i] ^= 1;
    EXPECT_NE(Crc32(t), base);
  }
}

TEST(HashTest, PartitionBalance) {
  // Hash partitioning of padded numeric keys should be roughly balanced.
  const int kParts = 8;
  const int kKeys = 80000;
  std::vector<int> counts(kParts, 0);
  for (int i = 0; i < kKeys; ++i) {
    counts[Hash64(PaddedNum(i)) % kParts]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kKeys / kParts * 0.9);
    EXPECT_LT(c, kKeys / kParts * 1.1);
  }
}

// ---------------------------------------------------------------------------
// Rng / Zipf
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ZipfTest, SkewFavorsSmallIds) {
  Rng rng(13);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) counts[zipf.Sample(&rng)]++;
  // Rank 0 much more frequent than rank 500.
  EXPECT_GT(counts[0], counts[500] * 10);
  // All samples in range (vector indexing would have crashed otherwise).
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 100000);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(&pool, 64, [&](int i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [&](int) { FAIL(); });
}

TEST(ThreadPoolTest, ConcurrentSubmitDuringWaitIdle) {
  // Producers keep submitting while another thread sits in WaitIdle: every
  // submitted task must run, and WaitIdle must return once the queue truly
  // drains (the PipelineManager leans on exactly this pattern).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.Submit([&] { count.fetch_add(1); });
        if (i % 50 == 0) pool.WaitIdle();  // interleave waits with submits
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.WaitIdle();
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  // Destroying the pool with a deep queue must run every queued task (the
  // documented contract), not drop or deadlock on them.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    // No WaitIdle: the destructor races the still-full queue.
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, NestedParallelForAcrossPools) {
  // An epoch driver running on one pool issues ParallelFor against a
  // different pool (manager scheduler -> cluster workers). Ensure the
  // blocking rendezvous completes under contention.
  ThreadPool drivers(3);
  ThreadPool workers(2);
  std::atomic<int> total{0};
  ParallelFor(&drivers, 3, [&](int) {
    ParallelFor(&workers, 16, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 48);
}

TEST(ThreadPoolTest, WaitIdleThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 2);
}

// ---------------------------------------------------------------------------
// Metrics / timer
// ---------------------------------------------------------------------------

TEST(MetricsTest, AddAccumulates) {
  StageMetrics a, b;
  a.map_ns = 100;
  a.shuffle_bytes = 5;
  b.map_ns = 50;
  b.shuffle_bytes = 7;
  a.Add(b);
  EXPECT_EQ(a.map_ns.load(), 150);
  EXPECT_EQ(a.shuffle_bytes.load(), 12);
}

TEST(MetricsTest, ScopedTimerAccumulates) {
  std::atomic<int64_t> ns{0};
  {
    ScopedTimer t(&ns);
  }
  {
    ScopedTimer t(&ns);
  }
  EXPECT_GE(ns.load(), 0);
}

TEST(KVTest, Ordering) {
  EXPECT_LT((KV{"a", "z"}), (KV{"b", "a"}));
  EXPECT_LT((KV{"a", "a"}), (KV{"a", "b"}));
  EXPECT_EQ((KV{"a", "a"}), (KV{"a", "a"}));
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetIsStableAndCountersAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.Get("pipeline.epochs");
  EXPECT_EQ(c, registry.Get("pipeline.epochs"));  // get-or-create, stable
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5);
  EXPECT_EQ(registry.Get("pipeline.epochs")->value(), 5);
  EXPECT_EQ(registry.Get("pipeline.other")->value(), 0);
}

TEST(MetricsRegistryTest, SnapshotSortedAndPrefixAggregation) {
  MetricsRegistry registry;
  registry.Get("serving.pr.shard0.reads")->Add(3);
  registry.Get("serving.pr.shard1.reads")->Add(5);
  registry.Get("serving.pr.router.deltas")->Add(7);
  registry.Get("other.counter")->Add(11);

  auto snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));

  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard0"), 3);
  EXPECT_EQ(registry.SumPrefixed("serving.pr."), 15);
  EXPECT_EQ(registry.SumPrefixed(""), 26);
  EXPECT_EQ(registry.SumPrefixed("no.such."), 0);
  // Families are dot-bounded: a partial last token matches nothing.
  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard"), 0);

  std::string text = registry.ToString("serving.pr.");
  EXPECT_NE(text.find("serving.pr.shard0.reads=3"), std::string::npos);
  EXPECT_NE(text.find("serving.pr.shard1.reads=5"), std::string::npos);
  EXPECT_EQ(text.find("other.counter"), std::string::npos);
  EXPECT_EQ(registry.ToString("serving.pr.shard").size(), 0u);
}

TEST(MetricsRegistryTest, FamilyMatchingIsDotBounded) {
  MetricsRegistry registry;
  registry.Get("serving.pr.shard1.reads")->Add(2);
  registry.Get("serving.pr.shard1.lag")->Add(3);
  registry.Get("serving.pr.shard10.reads")->Add(100);
  registry.Get("serving.pr.shard1")->Add(40);  // exact name is in-family

  // "shard1" must not swallow "shard10.*".
  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard1"), 45);
  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard1."), 5);
  std::string text = registry.ToString("serving.pr.shard1");
  EXPECT_EQ(text.find("shard10"), std::string::npos);
  EXPECT_NE(text.find("serving.pr.shard1.reads=2"), std::string::npos);
  EXPECT_NE(text.find("serving.pr.shard1=40"), std::string::npos);

  EXPECT_EQ(registry.Unregister("serving.pr.shard1"), 3u);
  EXPECT_EQ(registry.Get("serving.pr.shard10.reads")->value(), 100);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndIncrementIsSafe) {
  MetricsRegistry registry;
  const int kThreads = 8, kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads hammer a shared counter, half create their own —
      // insertion must never invalidate a live Counter*.
      Counter* mine = registry.Get("concurrent.t" + std::to_string(t));
      Counter* shared = registry.Get("concurrent.shared");
      for (int i = 0; i < kIters; ++i) {
        mine->Increment();
        shared->Increment();
        if (i % 100 == 0) {
          registry.Get("concurrent.extra.t" + std::to_string(t) + "." +
                       std::to_string(i));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.Get("concurrent.shared")->value(), kThreads * kIters);
  int64_t per_thread_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    per_thread_sum += registry.SumPrefixed("concurrent.t" + std::to_string(t));
  }
  EXPECT_EQ(per_thread_sum, kThreads * kIters);
}

TEST(MetricsRegistryTest, UnregisterRemovesSeriesButCountersStayValid) {
  MetricsRegistry registry;
  Counter* r0 = registry.Get("serving.pr.shard0.replica0.reads");
  Counter* r1 = registry.Get("serving.pr.shard0.replica0.lag");
  Counter* keep = registry.Get("serving.pr.shard0.replica1.reads");
  r0->Add(3);
  r1->Add(2);
  keep->Add(7);

  EXPECT_EQ(registry.Unregister("serving.pr.shard0.replica0."), 2u);
  // Gone from every visible surface...
  EXPECT_EQ(registry.Snapshot().size(), 1u);
  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard0.replica0."), 0);
  EXPECT_EQ(registry.ToString("serving.pr.shard0.replica0").size(), 0u);
  // ...but retired Counter* held by callers remain safe to use.
  r0->Increment();
  EXPECT_EQ(r0->value(), 4);
  EXPECT_EQ(keep->value(), 7);
  // Re-registering the name starts a fresh series.
  EXPECT_EQ(registry.Get("serving.pr.shard0.replica0.reads")->value(), 0);
  EXPECT_EQ(registry.Unregister("no.such.prefix."), 0u);
}

TEST(MetricsRegistryTest, ScopedMetricPrefixRetiresExactlyItsFamily) {
  MetricsRegistry registry;
  // "replica1" must not swallow "replica10" when it unregisters.
  Counter* ten = registry.Get("serving.pr.shard0.replica10.reads");
  ten->Add(5);
  {
    ScopedMetricPrefix scope(&registry, "serving.pr.shard0.replica1");
    scope.Get("reads")->Add(3);
    scope.Get("lag")->Add(1);
    EXPECT_EQ(registry.SumPrefixed("serving.pr.shard0.replica1."), 4);
  }
  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard0.replica1."), 0);
  EXPECT_EQ(registry.Get("serving.pr.shard0.replica10.reads")->value(), 5);

  // Move transfers ownership; Reset is idempotent.
  ScopedMetricPrefix a(&registry, "serving.pr.shard0.replica2");
  a.Get("reads")->Increment();
  ScopedMetricPrefix b(std::move(a));
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  b.Reset();
  b.Reset();
  EXPECT_EQ(registry.SumPrefixed("serving.pr.shard0.replica2."), 0);
}

// ---------------------------------------------------------------------------
// Gauge / Histogram
// ---------------------------------------------------------------------------

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("replica.lag_epochs");
  EXPECT_EQ(g, registry.GetGauge("replica.lag_epochs"));
  g->Set(7);
  EXPECT_EQ(g->value(), 7);
  g->Set(2);  // gauges go DOWN without signed-delta bookkeeping
  EXPECT_EQ(g->value(), 2);
  g->Add(-2);
  EXPECT_EQ(g->value(), 0);
  auto snap = registry.SnapshotGauges();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "replica.lag_epochs");
}

TEST(HistogramTest, PercentilesWithinBucketError) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.sum(), 10000LL * 10001 / 2);
  // Log buckets with 8 sub-buckets per octave: <= ~9% relative error.
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000, 5000 * 0.09);
  EXPECT_NEAR(static_cast<double>(h.p95()), 9500, 9500 * 0.09);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900, 9900 * 0.09);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
  h.Record(-17);  // negative clamps to 0 instead of indexing off the table
  EXPECT_EQ(h.ValueAtPercentile(0.0), 0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int64_t v = 0; v < 8; ++v) h.Record(v);
  EXPECT_EQ(h.ValueAtPercentile(0.01), 0);
  EXPECT_EQ(h.p99(), 7);
  auto buckets = h.NonzeroBuckets();
  ASSERT_EQ(buckets.size(), 8u);
  for (size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].first, i);
    EXPECT_EQ(buckets[i].second, 1u);
  }
}

TEST(HistogramTest, ConcurrentRecordAndMerge) {
  Histogram a, b;
  const int kThreads = 8, kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a, &b, t] {
      Histogram* h = t % 2 == 0 ? &a : &b;
      for (int i = 0; i < kIters; ++i) h->Record(t * 1000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(a.count() + b.count(),
            static_cast<uint64_t>(kThreads) * kIters);
  Histogram merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.count(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());
  EXPECT_GT(merged.p99(), merged.p50());
}

TEST(MetricsRegistryTest, UnregisterCoversGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.Get("replica.r0.reads")->Add(1);
  registry.GetGauge("replica.r0.lag")->Set(3);
  registry.GetHistogram("replica.r0.read_ns")->Record(100);
  registry.GetGauge("replica.r10.lag")->Set(9);
  EXPECT_EQ(registry.Unregister("replica.r0"), 3u);
  EXPECT_EQ(registry.SnapshotGauges().size(), 1u);
  EXPECT_TRUE(registry.Histograms().empty());
  EXPECT_EQ(registry.GetGauge("replica.r10.lag")->value(), 9);
  // ToString renders a histogram as a percentile summary line.
  registry.GetHistogram("replica.r10.read_ns")->Record(50);
  std::string text = registry.ToString("replica.r10");
  EXPECT_NE(text.find("replica.r10.lag=9"), std::string::npos);
  EXPECT_NE(text.find("replica.r10.read_ns{count=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsExporter
// ---------------------------------------------------------------------------

TEST(MetricsExporterTest, WriteOnceRendersPrometheusText) {
  MetricsRegistry registry;
  registry.Get("pm.epochs_committed")->Add(4);
  registry.GetGauge("replica.0.lag_epochs")->Set(2);
  Histogram* h = registry.GetHistogram("pm.epoch_wall_ns");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);

  MetricsExporterOptions opt;
  opt.path = ::testing::TempDir() + "/i2mr_metrics.prom";
  opt.registry = &registry;
  MetricsExporter exporter(opt);
  ASSERT_TRUE(exporter.WriteOnce().ok());

  auto text = ReadFileToString(opt.path);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("# TYPE pm_epochs_committed counter"),
            std::string::npos);
  EXPECT_NE(text->find("pm_epochs_committed 4"), std::string::npos);
  EXPECT_NE(text->find("# TYPE replica_0_lag_epochs gauge"),
            std::string::npos);
  EXPECT_NE(text->find("replica_0_lag_epochs 2"), std::string::npos);
  EXPECT_NE(text->find("# TYPE pm_epoch_wall_ns summary"), std::string::npos);
  EXPECT_NE(text->find("pm_epoch_wall_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text->find("pm_epoch_wall_ns_count 100"), std::string::npos);
}

TEST(MetricsExporterTest, MissingPathIsInvalidArgument) {
  MetricsExporter exporter(MetricsExporterOptions{});
  EXPECT_FALSE(exporter.WriteOnce().ok());
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

TEST(TraceTest, SpansNestAndExportAsChromeJson) {
  trace::TraceCollector* collector = trace::TraceCollector::Get();
  collector->Start();
  {
    TRACE_SPAN("outer", "k=%d", 1);
    {
      TRACE_SPAN("inner");
      TRACE_INSTANT("mark", "i=%d", 7);
    }
  }
  collector->Stop();

  auto events = collector->Snapshot();
  const trace::Event* outer = nullptr;
  const trace::Event* inner = nullptr;
  const trace::Event* mark = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
    if (std::string(e.name) == "mark") mark = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(outer->args, "k=1");
  EXPECT_EQ(mark->args, "i=7");
  EXPECT_EQ(mark->dur_ns, -1);  // instant
  // RAII nesting: inner is contained in outer on the same track.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);

  std::string json = collector->ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\",\"name\":\"mark\""),
            std::string::npos);
}

TEST(TraceTest, SessionsDoNotBleed) {
  trace::TraceCollector* collector = trace::TraceCollector::Get();
  collector->Start();
  { TRACE_SPAN("first_session_span"); }
  collector->Stop();
  collector->Start();
  { TRACE_SPAN("second_session_span"); }
  collector->Stop();
  bool saw_first = false, saw_second = false;
  for (const auto& e : collector->Snapshot()) {
    if (std::string(e.name) == "first_session_span") saw_first = true;
    if (std::string(e.name) == "second_session_span") saw_second = true;
  }
  EXPECT_FALSE(saw_first);
  EXPECT_TRUE(saw_second);
}

TEST(TraceTest, DisabledEmitsNothing) {
  trace::TraceCollector* collector = trace::TraceCollector::Get();
  ASSERT_FALSE(trace::Enabled());
  { TRACE_SPAN("not_recorded"); }
  collector->Start();
  collector->Stop();
  for (const auto& e : collector->Snapshot()) {
    EXPECT_NE(std::string(e.name), "not_recorded");
  }
}

TEST(TraceTest, WraparoundDropsOldestNotNewest) {
  trace::TraceCollector* collector = trace::TraceCollector::Get();
  collector->set_ring_capacity(64);
  collector->Start();
  const int kEvents = 200;
  // A fresh thread gets a fresh (small) ring.
  std::thread emitter([] {
    trace::TraceCollector::SetThreadName("wrap-test");
    for (int i = 0; i < kEvents; ++i) TRACE_INSTANT("wrap", "i=%d", i);
  });
  emitter.join();
  collector->Stop();

  int count = 0;
  bool saw_first = false, saw_last = false;
  for (const auto& e : collector->Snapshot()) {
    if (std::string(e.name) != "wrap") continue;
    ++count;
    if (e.args == "i=0") saw_first = true;
    if (e.args == "i=" + std::to_string(kEvents - 1)) saw_last = true;
  }
  EXPECT_LE(count, 64);
  EXPECT_GT(count, 0);
  EXPECT_TRUE(saw_last);    // the ring keeps the newest...
  EXPECT_FALSE(saw_first);  // ...and overwrites the oldest
  EXPECT_GT(collector->approx_dropped(), 0u);
  collector->set_ring_capacity(4096);  // restore the default for later tests
}

TEST(TraceTest, SnapshotWhileTracingIsRaceFree) {
  trace::TraceCollector* collector = trace::TraceCollector::Get();
  collector->Start();
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 4; ++t) {
    emitters.emplace_back([&stop, t] {
      while (!stop.load()) {
        TRACE_SPAN("contended", "t=%d", t);
        TRACE_INSTANT("tick");
      }
    });
  }
  // Readers race the wrapping writers: torn slots must be dropped, never
  // returned with garbage.
  for (int i = 0; i < 50; ++i) {
    for (const auto& e : collector->Snapshot()) {
      ASSERT_NE(e.name, nullptr);
      ASSERT_GE(e.ts_ns, collector->session_start_ns());
    }
    std::string json = collector->ToChromeJson();
    ASSERT_FALSE(json.empty());
  }
  stop.store(true);
  for (auto& t : emitters) t.join();
  collector->Stop();
}

TEST(TraceTest, ExportWritesParseableFile) {
  trace::TraceCollector* collector = trace::TraceCollector::Get();
  collector->Start();
  { TRACE_SPAN("exported_span"); }
  collector->Stop();
  std::string path = ::testing::TempDir() + "/i2mr_trace.json";
  ASSERT_TRUE(collector->ExportChromeJson(path).ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->front(), '{');
  EXPECT_NE(text->find("exported_span"), std::string::npos);
}

TEST(StatusTest, ResourceExhaustedCode) {
  Status st = Status::ResourceExhausted("tenant over quota");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_EQ(st.ToString(), "RESOURCE_EXHAUSTED: tenant over quota");
}

}  // namespace
}  // namespace i2mr
