// ReshardCoordinator: elastic online resharding of a ShardRouter fleet,
// N shards -> M shards, while the fleet keeps serving.
//
// The move runs in five phases:
//
//   1. Plan: decide the next partition map {generation + 1, M} and open a
//      *staging* fleet — M full shard slices under the new generation's
//      shard dirs — that is never scheduled and never persists the live
//      PARTMAP record.
//   2. Fence: drain the donors, then hold the router's append gate
//      exclusive just long enough to verify nothing is pending, pin every
//      donor's committed epoch, and arm dual-journaling — from here every
//      accepted append lands in the donor's log AND the staging fleet's
//      logs (routed by the new map). The pinned epochs plus the journal
//      cover the full history with no gap. A delta that the donor acked
//      but the mirror failed to land is counted, and the move aborts
//      before the cutover commit point rather than cut over without it.
//      Ordering: the mirror runs synchronously before each ack, so
//      caller-serialized appends journal in order; only appends racing on
//      the same key may reach the two logs in different orders.
//   3. Transfer: cut the pinned structure + state into content-addressed
//      chunks (ContentChunkStore under `<root>/<name>.reshard-chunks/`,
//      bucketed by key hash and sorted so equal slices chunk identically).
//      A chunk whose content the store already holds — a previous crashed
//      attempt, or an identical slice — is reused, not re-copied. The
//      destinations assemble their slices from the store and bootstrap.
//   4. Catch-up: the staging fleet drains the dual-journaled deltas that
//      arrived while the transfer ran.
//   5. Cutover: append gate exclusive again, staging drains the tail, a
//      durable RESHARD marker (the new map's encoding) commits the
//      decision, the PARTMAP record is rewritten, and the router adopts
//      the staging topology in one seqlock-bracketed pointer swap. The
//      marker is then retired and the donors' managers stop. Donor slices
//      stay alive (retired) so snapshots pinned before the flip keep
//      serving the old map with zero failed reads.
//
// Crash story: the RESHARD marker is the commit point. A crash anywhere
// before it recovers (reset=false reopen) to exactly the old map — the
// PARTMAP record is untouched and stale staging dirs are inert. A crash
// after it rolls forward: ShardRouter::RecoverReshard installs the
// marker's map as the PARTMAP and the reopened fleet is the new
// generation, bootstrapped from its own durably committed epoch 0+. An
// in-process I/O failure between the marker write and the topology swap
// revokes the decision (marker retired, PARTMAP restored to the old map)
// so the old generation stands consistently; if revocation itself fails,
// the router is poisoned — appends and lookups refused — until the
// roll-forward reopen, so no acked write can be contradicted by recovery.
//
// Metrics (serving.<name>.reshard.*): chunks_total, chunks_reused,
// bytes_moved, dual_journal_deltas, cutover_ms. Health: every donor and
// destination reports "resharding" on "reshard.<name>.{donor,dest}<i>"
// for the duration of the move. Trace spans: reshard.run wraps
// reshard.plan, reshard.transfer (with per-destination child spans) and
// reshard.cutover.
#ifndef I2MR_SERVING_RESHARD_H_
#define I2MR_SERVING_RESHARD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serving/shard_router.h"

namespace i2mr {

struct ReshardOptions {
  /// Target shard count M (must be >= 1 and different from the current).
  int new_num_shards = 0;

  /// Split threshold for one content chunk; a hash bucket whose sorted
  /// records exceed this is cut at record boundaries.
  uint64_t chunk_max_bytes = 256ull << 10;

  /// Key-hash buckets per (destination, kind) stream. More buckets =
  /// finer reuse granularity under churn, more chunks to index.
  int buckets_per_stream = 64;

  /// Test hook simulating coordinator death inside the move, in the style
  /// of ShardRouterOptions::barrier_crash_hook. Stages: "plan" (nothing
  /// changed yet), "dual_journal" (journaling armed, transfer not begun),
  /// "transfer" (chunks durable, staging fleet not bootstrapped),
  /// "flip" (cutover fenced, RESHARD marker not yet written — recovery
  /// keeps the old map), "flip_marker" (marker durable, topology not
  /// swapped — recovery rolls forward to the new map; the router is
  /// poisoned in-process exactly like a mid-flip barrier crash). The same
  /// points fire from the fault-injection layer as "reshard/<stage>".
  std::function<bool(const std::string& stage)> crash_hook;
};

struct ReshardStats {
  uint64_t old_generation = 0;
  uint64_t new_generation = 0;
  int old_shards = 0;
  int new_shards = 0;
  uint64_t chunks_total = 0;
  uint64_t chunks_reused = 0;
  uint64_t bytes_moved = 0;         // chunk bytes actually written
  uint64_t dual_journal_deltas = 0; // deltas mirrored mid-move
  double transfer_ms = 0;
  double bootstrap_ms = 0;
  double catchup_ms = 0;
  double cutover_ms = 0;  // appends-blocked window of phase 5
  double wall_ms = 0;
};

class ReshardCoordinator {
 public:
  /// The router must stay alive for the coordinator's lifetime. The move
  /// itself is Run(); one coordinator runs one move.
  ReshardCoordinator(ShardRouter* router, ReshardOptions options);

  /// Execute the full reshard. On success the router serves the new
  /// generation and the returned stats describe the move. On failure the
  /// router still serves the old map (or — after the "flip_marker" point,
  /// or when a post-marker failure's decision could not be revoked — is
  /// poisoned pending the roll-forward reopen) — never a mix.
  StatusOr<ReshardStats> Run();

 private:
  bool Crashed(const std::string& stage) const;
  Status DrainDonors();

  ShardRouter* const router_;
  ReshardOptions options_;
};

}  // namespace i2mr

#endif  // I2MR_SERVING_RESHARD_H_
