// ShardGroup: epoch-consistent, non-blocking reads over a ShardRouter's
// shards, with per-tenant admission at the edge.
//
// A reader calls PinSnapshot() and receives a ShardSnapshot: a pinned
// version vector of per-shard committed epoch ids plus, per shard, a
// refcounted EpochPin on that epoch's immutable result store (MVCC-style).
// Everything the snapshot answers — point gets, multi-gets, scatter-gather
// range scans and top-k — comes from exactly those epochs:
//
//   * Non-blocking: pinning takes one mutex acquisition per shard; reads
//     against the snapshot touch only frozen in-memory stores. Commits,
//     garbage collection and delta-log purges proceed underneath without
//     ever blocking or invalidating an in-flight reader.
//   * Consistent: each component pin is taken atomically against that
//     shard's commit publication, so no component can observe a
//     half-committed epoch; the vector freezes the cross-shard version the
//     reader saw, and repeated reads through one snapshot always agree.
//
// Admission: when an AdmissionController is wired, PinSnapshot()/Get()
// charge the calling tenant's read bucket and fail fast with
// RESOURCE_EXHAUSTED when it is drained — an over-quota tenant is bounced
// at the edge (reads against an already-pinned snapshot are local memory
// reads and stay free). Epoch-side quotas are wired at the router
// (PipelineManager::epoch_gate), so the same controller also keeps one
// tenant's delta backlog from monopolizing refresh scheduling.
#ifndef I2MR_SERVING_SHARD_GROUP_H_
#define I2MR_SERVING_SHARD_GROUP_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "serving/admission.h"
#include "serving/shard_router.h"

namespace i2mr {

/// A pinned, epoch-consistent, cross-shard read view. Cheap to copy (pins
/// are shared); destroying the last copy releases every shard's epoch for
/// garbage collection. Must not outlive its ShardGroup.
class ShardSnapshot {
 public:
  ShardSnapshot() = default;

  bool valid() const { return router_ != nullptr; }

  /// The pinned version vector: committed epoch id per shard at pin time.
  const std::vector<uint64_t>& epochs() const { return epochs_; }

  /// Point get from the key's shard's pinned epoch.
  StatusOr<std::string> Get(const std::string& key) const;

  /// One result per key, all answered from the same pinned epochs.
  std::vector<StatusOr<std::string>> MultiGet(
      const std::vector<std::string>& keys) const;

  /// All results with begin <= key < end (empty end = unbounded), merged
  /// across shards in key order, truncated to `limit`. Scatter-gather:
  /// shards scan in parallel on the group's pool, the gather merges.
  std::vector<KV> Range(const std::string& begin, const std::string& end,
                        size_t limit = SIZE_MAX) const;

  /// The k highest-scoring results across shards (score desc, key asc for
  /// determinism on ties). Each shard reduces to a local top-k in
  /// parallel; the gather merges k-sized candidate sets, never full
  /// stores.
  std::vector<KV> TopK(size_t k,
                       const std::function<double(const KV&)>& score) const;

 private:
  friend class ShardGroup;
  friend class ReplicaSet;  // builds snapshots over primary+replica pins

  const ShardRouter* router_ = nullptr;
  ThreadPool* pool_ = nullptr;  // borrowed from the group
  /// The partition map the pins were taken under. Routing MUST go through
  /// this copy, not the router's live map: a reshard cutover can publish a
  /// new generation while this snapshot is alive, and the pinned stores
  /// are partitioned by the generation that produced them.
  std::shared_ptr<const PartitionMap> map_;
  std::vector<Counter*> shard_reads_ = {};  // per-shard snapshot_reads
  std::vector<EpochPin> pins_;
  std::vector<uint64_t> epochs_;
};

struct ShardGroupOptions {
  /// Per-tenant read admission; nullptr = no quotas, everyone admitted.
  AdmissionController* admission = nullptr;

  /// Scatter-gather parallelism for Range/TopK (0 = min(num_shards, 8)).
  int scatter_threads = 0;
};

class ShardGroup {
 public:
  explicit ShardGroup(ShardRouter* router, ShardGroupOptions options = {});

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  /// Pin the current committed epoch on every shard (charges one read
  /// from `tenant`'s quota). The returned snapshot keeps answering from
  /// exactly those epochs while commits/purges land underneath.
  StatusOr<ShardSnapshot> PinSnapshot(const std::string& tenant = "") const;

  /// Convenience latest-committed point read (routed, admission-charged):
  /// equivalent to pinning one shard for one get.
  StatusOr<std::string> Get(const std::string& tenant,
                            const std::string& key) const;

  /// Coordinate epochs across shards: run refreshes everywhere until no
  /// shard has pending deltas (blocking). After it returns OK, a fresh
  /// snapshot observes every delta appended before the call.
  Status RefreshAll();

  /// The current (unpinned) committed version vector.
  std::vector<uint64_t> CommittedEpochs() const {
    return router_->CommittedEpochs();
  }

  ShardRouter* router() const { return router_; }

 private:
  /// Per-shard snapshot_reads counters for one generation's map, built
  /// lazily: a reshard changes both the shard count and the metric prefix,
  /// and snapshots pinned before the cutover keep charging the old
  /// generation's counters.
  const std::vector<Counter*>& ReadsFor(const PartitionMap& map) const;

  ShardRouter* router_;
  ShardGroupOptions options_;
  mutable ThreadPool scatter_pool_;
  mutable std::mutex reads_mu_;
  mutable std::unordered_map<uint64_t, std::vector<Counter*>> reads_by_gen_;
  Counter* snapshots_pinned_;
  Counter* reads_rejected_;
};

}  // namespace i2mr

#endif  // I2MR_SERVING_SHARD_GROUP_H_
