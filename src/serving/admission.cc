#include "serving/admission.h"

#include <algorithm>

#include "common/timer.h"

namespace i2mr {

AdmissionController::AdmissionController(MetricsRegistry* metrics,
                                         std::string metrics_prefix)
    : metrics_(metrics == nullptr ? MetricsRegistry::Default() : metrics),
      prefix_(std::move(metrics_prefix)) {}

bool AdmissionController::Bucket::TryTake(double cost, int64_t now_ns) {
  if (rate < 0) return true;  // unlimited
  // rate == 0 is a hard deny ("block this tenant"), not a bucket that
  // never refills: the burst defaulting (max(rate, 1) = 1) plus the
  // start-full bucket would otherwise still admit one request.
  if (rate == 0) return false;
  if (refilled_ns != 0) {
    tokens = std::min(burst, tokens + (now_ns - refilled_ns) / 1e9 * rate);
  }
  refilled_ns = now_ns;
  if (tokens < cost) return false;
  tokens -= cost;
  return true;
}

AdmissionController::Tenant* AdmissionController::GetLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return &it->second;
  Tenant& t = tenants_[tenant];
  std::string base = prefix_ + "." + tenant + ".";
  t.reads_admitted = metrics_->Get(base + "reads_admitted");
  t.reads_rejected = metrics_->Get(base + "reads_rejected");
  t.epochs_admitted = metrics_->Get(base + "epochs_admitted");
  t.epochs_deferred = metrics_->Get(base + "epochs_deferred");
  return &t;
}

void AdmissionController::SetQuota(const std::string& tenant,
                                   const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetLocked(tenant);
  t->reads.rate = quota.read_rate;
  t->reads.burst = quota.read_burst > 0 ? quota.read_burst
                                        : std::max(quota.read_rate, 1.0);
  t->reads.tokens = t->reads.burst;  // start full: an idle tenant can burst
  t->reads.refilled_ns = 0;
  t->epochs.rate = quota.epoch_rate;
  t->epochs.burst = quota.epoch_burst > 0 ? quota.epoch_burst
                                          : std::max(quota.epoch_rate, 1.0);
  t->epochs.tokens = t->epochs.burst;
  t->epochs.refilled_ns = 0;
}

bool AdmissionController::AdmitRead(const std::string& tenant, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetLocked(tenant);
  bool admitted = t->reads.TryTake(cost, NowNanos());
  (admitted ? t->reads_admitted : t->reads_rejected)->Increment();
  return admitted;
}

bool AdmissionController::AdmitEpoch(const std::string& tenant, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant* t = GetLocked(tenant);
  bool admitted = t->epochs.TryTake(cost, NowNanos());
  (admitted ? t->epochs_admitted : t->epochs_deferred)->Increment();
  return admitted;
}

AdmissionController::TenantStats AdmissionController::tenant_stats(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantStats s;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return s;
  s.reads_admitted = static_cast<uint64_t>(it->second.reads_admitted->value());
  s.reads_rejected = static_cast<uint64_t>(it->second.reads_rejected->value());
  s.epochs_admitted =
      static_cast<uint64_t>(it->second.epochs_admitted->value());
  s.epochs_deferred =
      static_cast<uint64_t>(it->second.epochs_deferred->value());
  return s;
}

}  // namespace i2mr
