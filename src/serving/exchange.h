// CrossShardExchange: the routing fabric that makes a sharded refresh
// equal the unsharded computation.
//
// A ShardRouter partitions one computation by key, but reduce input does
// not partition with it: a map instance on shard A may emit to a key shard
// B owns (PageRank contributions along cross-partition edges, SSSP
// relaxations, ConComp label pushes). Before this exchange existed each
// shard reduced those emissions locally as phantom keys and the owner
// never saw them — per-shard results silently diverged from the whole
// computation whenever reduce output depended on another shard's keys.
//
// During a coordinated refresh round every shard's engine captures its
// out-of-partition emissions as boundary edges (DeltaEdge: K2, MK, V2,
// with the MRBGraph's replace/delete-by-(K2, MK) semantics) instead of
// shuffling them locally. The exchange:
//
//   1. collects each shard's captured exports (Offer),
//   2. routes every edge to ShardOf(K2) — packing each destination's
//      batch through a FlatKVRun arena, whose record-file serialized size
//      is what the CostModel's simulated network transfer is charged from
//      (the same accounting the in-memory shuffle uses),
//   3. hands the per-destination batches back to the router, which folds
//      them into each owning engine's durable remote-edge inbox for the
//      next barrier round.
//
// Rounds repeat under the router's barrier until the joint fixpoint (no
// export changes any inbox, or the round's total state change drops under
// the spec's convergence epsilon); the router then commits every shard's
// epoch N atomically (see ShardRouter::RefreshCoordinated).
#ifndef I2MR_SERVING_EXCHANGE_H_
#define I2MR_SERVING_EXCHANGE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "mr/cost_model.h"
#include "mrbg/chunk.h"

namespace i2mr {

class CrossShardExchange {
 public:
  /// `owner` maps a key to its owning shard (the router's ShardOf).
  /// Transfer volume is charged against `cost` and counted into `metrics`
  /// under "<metrics_prefix>.{edges_routed,bytes_routed,rounds}".
  CrossShardExchange(int num_shards,
                     std::function<int(std::string_view)> owner,
                     const CostModel& cost, MetricsRegistry* metrics,
                     const std::string& metrics_prefix);

  CrossShardExchange(const CrossShardExchange&) = delete;
  CrossShardExchange& operator=(const CrossShardExchange&) = delete;

  /// Stage one shard's boundary exports for the current round. Edges whose
  /// owner is the offering shard itself are rejected loudly (the engine's
  /// owns_key filter should have kept them local).
  Status Offer(int from_shard, std::vector<DeltaEdge> exports);

  /// Route everything offered since the last Route() to the owning shards:
  /// returns one inbound edge batch per shard (empty when no shard
  /// offered). Charges the cost model's simulated network transfer for the
  /// serialized bytes of every non-local batch and advances the counters.
  std::vector<std::vector<DeltaEdge>> Route();

  uint64_t edges_routed() const { return edges_routed_; }
  uint64_t bytes_routed() const { return bytes_routed_; }
  uint64_t rounds() const { return rounds_; }

 private:
  const int num_shards_;
  const std::function<int(std::string_view)> owner_;
  const CostModel cost_;
  std::vector<std::vector<DeltaEdge>> staged_;  // per destination shard

  uint64_t edges_routed_ = 0;
  uint64_t bytes_routed_ = 0;
  uint64_t rounds_ = 0;
  Counter* edges_counter_;
  Counter* bytes_counter_;
  Counter* rounds_counter_;
};

}  // namespace i2mr

#endif  // I2MR_SERVING_EXCHANGE_H_
