#include "serving/exchange.h"

#include <thread>

#include "common/kv.h"
#include "common/logging.h"
#include "common/trace.h"
#include "core/delta.h"

namespace i2mr {

CrossShardExchange::CrossShardExchange(
    int num_shards, std::function<int(std::string_view)> owner,
    const CostModel& cost, MetricsRegistry* metrics,
    const std::string& metrics_prefix)
    : num_shards_(num_shards),
      owner_(std::move(owner)),
      cost_(cost),
      staged_(num_shards) {
  if (metrics == nullptr) metrics = MetricsRegistry::Default();
  edges_counter_ = metrics->Get(metrics_prefix + ".edges_routed");
  bytes_counter_ = metrics->Get(metrics_prefix + ".bytes_routed");
  rounds_counter_ = metrics->Get(metrics_prefix + ".rounds");
}

Status CrossShardExchange::Offer(int from_shard,
                                 std::vector<DeltaEdge> exports) {
  for (auto& e : exports) {
    int to = owner_(e.k2);
    if (to < 0 || to >= num_shards_) {
      return Status::Internal("exchange: no owner for key " + e.k2);
    }
    if (to == from_shard) {
      // The engine's owns_key filter only exports non-owned keys; a
      // self-addressed edge means the filter and the router disagree on
      // the partition function — corrupt silently nothing.
      return Status::Internal("exchange: shard " +
                              std::to_string(from_shard) +
                              " exported its own key " + e.k2);
    }
    staged_[to].push_back(std::move(e));
  }
  return Status::OK();
}

std::vector<std::vector<DeltaEdge>> CrossShardExchange::Route() {
  TRACE_SPAN("exchange.route", "shards=%d", num_shards_);
  std::vector<std::vector<DeltaEdge>> inbound(num_shards_);
  // One transfer per destination shard, in parallel — like the shuffle's
  // reduce-side fetches, a round's wall time pays max(batch transfer),
  // not the sum over destinations.
  std::vector<uint64_t> bytes(num_shards_, 0);
  std::vector<std::thread> transfers;
  bool any = false;
  for (int to = 0; to < num_shards_; ++to) {
    if (staged_[to].empty()) continue;
    any = true;
    transfers.emplace_back([this, to, &inbound, &bytes] {
      trace::TraceCollector::SetThreadName("exchange-" + std::to_string(to));
      TRACE_SPAN("exchange.transfer", "to=%d", to);
      // Pack the batch through a flat-KV transfer arena — (K2, encoded
      // edge) records, the same wire format the shuffle moves — and
      // charge the simulated network for the bytes its record-file spill
      // would occupy, keeping cross-shard accounting identical to the
      // shuffle's.
      FlatKVRun run;
      run.Reserve(staged_[to].size(), 0);
      for (const auto& e : staged_[to]) {
        run.Append(e.k2, EncodeEdgeValue(e.mk, e.deleted,
                                         e.deleted ? std::string_view()
                                                   : std::string_view(e.v2)));
      }
      staged_[to].clear();
      cost_.ChargeTransfer(run.serialized_bytes());
      bytes[to] = run.serialized_bytes();

      // "Arrival": decode the arena back into owned edges for the
      // receiving engine's inbox fold.
      std::vector<DeltaEdge>& batch = inbound[to];
      batch.reserve(run.size());
      for (size_t i = 0; i < run.size(); ++i) {
        DeltaEdge e;
        Status st = DecodeEdgeValue(run.value(i), &e);
        I2MR_CHECK(st.ok()) << "exchange arena round-trip failed: "
                            << st.ToString();
        e.k2.assign(run.key(i));
        batch.push_back(std::move(e));
      }
    });
  }
  for (auto& t : transfers) t.join();
  if (any) {
    for (int to = 0; to < num_shards_; ++to) {
      bytes_routed_ += bytes[to];
      edges_routed_ += inbound[to].size();
      bytes_counter_->Add(static_cast<int64_t>(bytes[to]));
      edges_counter_->Add(static_cast<int64_t>(inbound[to].size()));
    }
    ++rounds_;
    rounds_counter_->Increment();
  }
  return inbound;
}

}  // namespace i2mr
