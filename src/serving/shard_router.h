// ShardRouter: hash-partitions one continuously-refreshed computation
// across N shards. Each shard is a full vertical slice — its own
// LocalCluster (under <root>/shard-NNN/), its own Pipeline (own DeltaLog,
// epoch dirs, engine state) and its own PipelineManager scheduling that
// pipeline's epochs — so shards ingest, refresh and serve independently;
// nothing is shared but the process.
//
// Routing is by key: ShardOf(key) = Hash64(key) % num_shards, stable
// across runs (the same property the shuffle partitioner relies on), so a
// key's deltas, its committed state and its lookups always meet on the
// same shard. Bootstrap() splits the initial structure/state the same way.
//
// Sharding assumes the app's computation partitions by key: each shard
// refreshes over only its own structure subset, and cross-shard data
// dependencies (e.g. PageRank contributions along edges that cross the
// partition) are confined to their shard rather than exchanged. Apps with
// global state (k-means' single centroid record) belong on one shard.
//
// Epoch-consistent cross-shard reads and per-tenant admission live one
// layer up, in ShardGroup / AdmissionController.
#ifndef I2MR_SERVING_SHARD_ROUTER_H_
#define I2MR_SERVING_SHARD_ROUTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mr/cluster.h"
#include "pipeline/pipeline_manager.h"
#include "serving/admission.h"

namespace i2mr {

struct ShardRouterOptions {
  int num_shards = 4;
  int workers_per_shard = 2;

  /// Per-shard cluster cost model.
  CostModel cost;

  /// true: wipe the shard roots (fresh deployment). false: re-attach and
  /// recover every shard's committed epoch + delta log from disk.
  bool reset = true;

  /// Template for every shard's pipeline (spec, engine knobs, triggers,
  /// durability). The spec's partition count applies per shard.
  PipelineOptions pipeline;

  /// Template for every shard's manager; metrics_prefix is overridden with
  /// "serving.<name>.shard<i>" so one registry holds per-shard counter
  /// families, and epoch_gate is overridden when admission is wired below.
  PipelineManagerOptions manager;

  /// Owning tenant + admission control: when both are set, every shard
  /// manager's epoch_gate consults admission->AdmitEpoch(tenant), so this
  /// computation's delta backlog competes for refresh slots under the
  /// tenant's epoch quota.
  std::string tenant;
  AdmissionController* admission = nullptr;

  /// Counter registry (Default() when null).
  MetricsRegistry* metrics = nullptr;
};

class ShardRouter {
 public:
  /// Open (or with options.reset=false, recover) the sharded computation
  /// `name` under `root`.
  static StatusOr<std::unique_ptr<ShardRouter>> Open(const std::string& root,
                                                     const std::string& name,
                                                     ShardRouterOptions options);

  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Stable shard assignment for a key.
  int ShardOf(std::string_view key) const;

  /// Split the initial structure/state by key and run every shard's full
  /// computation + epoch-0 commit. Shards bootstrap concurrently.
  Status Bootstrap(const std::vector<KV>& structure,
                   const std::vector<KV>& initial_state);
  bool bootstrapped() const;

  /// Durably append one update to its key's shard.
  StatusOr<uint64_t> Append(const DeltaKV& delta);
  /// Partition a batch by key and append per shard (one group per shard).
  Status AppendBatch(const std::vector<DeltaKV>& deltas);

  /// Point lookup from the key's shard's latest committed epoch.
  StatusOr<std::string> Lookup(const std::string& key) const;

  /// Background epoch scheduling on every shard.
  void Start();
  void Stop();
  /// Run epochs everywhere until no shard has pending deltas; blocks.
  Status DrainAll();

  /// Deltas logged but not yet consumed, summed over shards.
  uint64_t TotalPending() const;

  /// Committed epoch id per shard (the version vector readers pin).
  std::vector<uint64_t> CommittedEpochs() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const std::string& name() const { return name_; }
  const std::string& tenant() const { return options_.tenant; }
  Pipeline* shard(int i) const { return shards_[i]->pipeline; }
  PipelineManager* manager(int i) const { return shards_[i]->manager.get(); }
  LocalCluster* cluster(int i) const { return shards_[i]->cluster.get(); }
  MetricsRegistry* metrics() const { return options_.metrics; }

 private:
  struct Shard {
    std::unique_ptr<LocalCluster> cluster;
    std::unique_ptr<PipelineManager> manager;
    Pipeline* pipeline = nullptr;  // owned by manager
  };

  ShardRouter(std::string name, ShardRouterOptions options);

  const std::string name_;
  ShardRouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Counter* deltas_routed_ = nullptr;
  Counter* lookups_routed_ = nullptr;
};

}  // namespace i2mr

#endif  // I2MR_SERVING_SHARD_ROUTER_H_
