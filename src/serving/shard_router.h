// ShardRouter: hash-partitions one continuously-refreshed computation
// across N shards. Each shard is a full vertical slice — its own
// LocalCluster (under <root>/<shard-dir>/), its own Pipeline (own DeltaLog,
// epoch dirs, engine state) and its own PipelineManager scheduling that
// pipeline's epochs — so shards ingest, refresh and serve independently;
// nothing is shared but the process.
//
// Routing is by key through the router's versioned PartitionMap (see
// serving/partition_map.h) — one stable key-hash partition function,
// durable as the `<name>.PARTMAP` record, shared with the exchange's
// owner map, bootstrap splitting and the engines' owns_key filter, so a
// key's deltas, its committed state and its lookups always meet on the
// same shard and no layer can ever compute the split from a different
// shard count. An elastic reshard (serving/reshard.h) replaces the whole
// topology — map, shard slices, exchange — with a new generation in one
// atomic cutover; retired donor slices stay alive until the router dies
// so pre-cutover pins keep serving the old map.
//
// Two consistency modes:
//
//  * Independent (cross_shard_exchange = false, the default): each shard
//    refreshes and commits on its own schedule. Correct only for apps
//    whose reduce input partitions with the keys — cross-shard data
//    dependencies (e.g. PageRank contributions along edges that cross the
//    partition) are silently confined to their shard. Apps with global
//    state (k-means' single centroid record) belong on one shard.
//
//  * Coordinated (cross_shard_exchange = true): every engine's map
//    emissions to non-owned keys are captured at the boundary, routed to
//    the owning shard by a CrossShardExchange, and folded into that
//    shard's refresh; RefreshCoordinated() iterates rounds under a
//    barrier to the joint fixpoint, so the sharded result equals the
//    unsharded computation. All shards then commit the same epoch N with
//    a two-phase protocol — stage every epoch dir, write the coordinator
//    BARRIER record, flip every CURRENT, clean up — and recovery rolls an
//    incomplete barrier back to N-1 everywhere, so readers never observe
//    a mixed epoch vector.
//
// Epoch-consistent cross-shard reads and per-tenant admission live one
// layer up, in ShardGroup / AdmissionController.
#ifndef I2MR_SERVING_SHARD_ROUTER_H_
#define I2MR_SERVING_SHARD_ROUTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "mr/cluster.h"
#include "pipeline/pipeline_manager.h"
#include "serving/admission.h"
#include "serving/exchange.h"
#include "serving/partition_map.h"

namespace i2mr {

class HealthRegistry;
class ReshardCoordinator;

struct ShardRouterOptions {
  int num_shards = 4;
  int workers_per_shard = 2;

  /// Coordinated mode (see the header comment): exchange out-of-partition
  /// map/reduce contributions between shards and commit epochs under a
  /// cross-shard barrier, making sharded results equal the unsharded
  /// computation. Requires a partition-by-key app (not all-to-one).
  bool cross_shard_exchange = false;

  /// Safety cap on exchange rounds per coordinated epoch. Like the
  /// engine's max_iterations, hitting it logs a warning and commits the
  /// best state reached instead of failing the epoch.
  int max_exchange_rounds = 256;

  /// Test hook simulating coordinator death inside the barrier commit.
  /// Stages: "staged" (every shard's epoch dir staged, BARRIER not yet
  /// written), "barrier" (BARRIER durable, nothing flipped), "mid_flip"
  /// (exactly one shard's CURRENT flipped), "flipped" (all flipped,
  /// BARRIER not yet removed). Return true to abandon the commit with the
  /// on-disk state exactly as a crash would leave it; the router marks
  /// every shard dirty and refuses the epoch. The same points fire from
  /// the fault-injection layer: a kind=crash rule matching
  /// "barrier/<stage>" (io/fault_env.h) kills here without wiring a
  /// lambda.
  std::function<bool(const std::string& stage)> barrier_crash_hook;

  /// Per-shard cluster cost model.
  CostModel cost;

  /// true: wipe the shard roots (fresh deployment). false: re-attach and
  /// recover every shard's committed epoch + delta log from disk — and
  /// trust the durable PARTMAP record over num_shards above, because the
  /// record names the partitioning the on-disk shards were actually built
  /// with (it differs after an elastic reshard).
  bool reset = true;

  /// Template for every shard's pipeline (spec, engine knobs, triggers,
  /// durability). The spec's partition count applies per shard.
  PipelineOptions pipeline;

  /// Template for every shard's manager; metrics_prefix is overridden with
  /// the partition map's per-shard prefix ("serving.<name>.shard<i>" at
  /// generation 0) so one registry holds per-shard counter families, and
  /// epoch_gate is overridden when admission is wired below.
  PipelineManagerOptions manager;

  /// Owning tenant + admission control: when both are set, every shard
  /// manager's epoch_gate consults admission->AdmitEpoch(tenant), so this
  /// computation's delta backlog competes for refresh slots under the
  /// tenant's epoch quota.
  std::string tenant;
  AdmissionController* admission = nullptr;

  /// Counter registry (Default() when null).
  MetricsRegistry* metrics = nullptr;

  /// Health registry (Default() when null). The router reports
  /// "serving.<name>" — kDegraded while coordinated epochs are failing or
  /// an interrupted barrier awaits roll-forward, kHealthy once epochs
  /// commit again — and forwards the registry into every shard pipeline
  /// (which reports "pipeline.<name>" for its degraded read-only mode).
  HealthRegistry* health = nullptr;

  /// Internal (ReshardCoordinator): open this fleet under an explicit
  /// partition map instead of {generation 0, num_shards}. Ignored when
  /// its num_shards is 0.
  PartitionMap partition_map{0, 0};

  /// Internal (ReshardCoordinator): a staging fleet must not write the
  /// live PARTMAP record — publishing the new map is the cutover.
  bool persist_partition_map = true;
};

class ShardRouter {
 public:
  /// Open (or with options.reset=false, recover) the sharded computation
  /// `name` under `root`.
  static StatusOr<std::unique_ptr<ShardRouter>> Open(const std::string& root,
                                                     const std::string& name,
                                                     ShardRouterOptions options);

  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Stable shard assignment for a key under the current partition map.
  int ShardOf(std::string_view key) const;

  /// The current partition map (by value: a reshard publishes a whole new
  /// map, it never mutates one in place).
  PartitionMap partition_map() const;
  uint64_t generation() const { return partition_map().generation; }

  /// An atomically-grabbed view of the current topology: the map and the
  /// per-shard pipelines that belong to it. Readers that touch more than
  /// one shard (snapshot pinning, the replication layer) hold a view so a
  /// concurrent reshard cutover can never hand them a torn mix of
  /// generations — retired slices stay alive, so a pre-cutover view keeps
  /// working on the old map.
  struct TopologyView {
    std::shared_ptr<const PartitionMap> map;
    std::vector<Pipeline*> pipelines;
  };
  TopologyView topology() const;

  /// Split the initial structure/state by key and run every shard's full
  /// computation + epoch-0 commit. Shards bootstrap concurrently.
  Status Bootstrap(const std::vector<KV>& structure,
                   const std::vector<KV>& initial_state);
  bool bootstrapped() const;

  /// Durably append one update to its key's shard. Refused (like Lookup)
  /// while the router is poisoned: a durable barrier/reshard decision
  /// already supersedes the live topology, and recovery could discard an
  /// ack made against it.
  StatusOr<uint64_t> Append(const DeltaKV& delta);
  /// Partition a batch by key and append per shard (one group per shard).
  Status AppendBatch(const std::vector<DeltaKV>& deltas);

  /// Point lookup from the key's shard's latest committed epoch.
  StatusOr<std::string> Lookup(const std::string& key) const;

  /// Background epoch scheduling: per-shard managers in independent mode,
  /// one coordinator thread driving RefreshCoordinated in coordinated mode.
  void Start();
  void Stop();
  /// Run epochs everywhere until no shard has pending deltas; blocks.
  /// Coordinated mode drains through RefreshCoordinated (barrier commits).
  Status DrainAll();

  /// One coordinated epoch across all shards (cross_shard_exchange mode):
  /// every shard drains + refreshes, boundary contributions are exchanged
  /// and re-reduced under a barrier until the joint fixpoint, then every
  /// shard's epoch N commits atomically (two-phase; see RecoverBarrier in
  /// the implementation for the crash story). Returns committed=false
  /// without committing when nothing is pending anywhere. Serialized
  /// against itself and the coordinator thread.
  struct CoordinatedEpochStats {
    bool committed = false;
    uint64_t epoch = 0;
    int rounds = 0;              // exchange rounds beyond the initial refresh
    uint64_t deltas_applied = 0;
    uint64_t edges_exchanged = 0;
    double wall_ms = 0;
  };
  StatusOr<CoordinatedEpochStats> RefreshCoordinated();

  /// Deltas logged but not yet consumed, summed over shards.
  uint64_t TotalPending() const;

  /// Committed epoch id per shard (the version vector readers pin).
  std::vector<uint64_t> CommittedEpochs() const;

  int num_shards() const;
  bool coordinated() const { return options_.cross_shard_exchange; }

  /// Barrier-flip seqlock for uniform reads: even = stable, odd = a
  /// barrier commit (or a reshard cutover) is mid-flip. ShardGroup::
  /// PinSnapshot brackets its per-shard pins with this (wait while odd,
  /// retry if it moved), so a coordinated-mode pin is always a uniform
  /// epoch vector of one generation even while flips land one CURRENT at
  /// a time.
  uint64_t commit_seq() const {
    return commit_seq_.load(std::memory_order_acquire);
  }
  /// True after a barrier commit died between the decision record and the
  /// last CURRENT flip: the on-disk state needs the reopen recovery, and
  /// cross-shard reads are refused rather than served mixed.
  bool poisoned() const { return poisoned_.load(); }
  /// Nonzero when a *real* I/O failure (not a simulated coordinator
  /// crash) interrupted the barrier after its decision record was
  /// durable: the epoch is decided, the staged slots are intact, and the
  /// next coordinated tick rolls the commit *forward* in-process instead
  /// of requiring a reopen. Zero otherwise.
  uint64_t pending_flip_epoch() const { return pending_flip_epoch_.load(); }

  const std::string& name() const { return name_; }
  const std::string& tenant() const { return options_.tenant; }
  Pipeline* shard(int i) const;
  PipelineManager* manager(int i) const;
  LocalCluster* cluster(int i) const;
  MetricsRegistry* metrics() const { return options_.metrics; }
  /// Effective options (metrics defaulted, templates as applied; after a
  /// reshard, num_shards and pipeline.generation track the live map). The
  /// replication layer clones the pipeline/cost templates from here when
  /// it promotes a follower into a primary.
  const ShardRouterOptions& options() const { return options_; }

 private:
  friend class ReshardCoordinator;

  struct Shard {
    std::unique_ptr<LocalCluster> cluster;
    std::unique_ptr<PipelineManager> manager;
    Pipeline* pipeline = nullptr;  // owned by manager
  };

  ShardRouter(std::string name, std::string root, ShardRouterOptions options);

  /// Coordinated bootstrap: per-shard full computation, exchange rounds to
  /// the joint fixpoint, then the epoch-0 barrier commit.
  Status BootstrapCoordinated(std::vector<std::vector<KV>> structure_parts,
                              std::vector<std::vector<KV>> state_parts);

  /// RefreshCoordinated body; caller holds coord_mu_ (the reshard
  /// coordinator drains donors while holding the lock for the whole move).
  StatusOr<CoordinatedEpochStats> RefreshCoordinatedLocked();

  /// Exchange rounds (after per-shard refreshes produced `offers`) until
  /// the joint fixpoint; returns the number of rounds run.
  StatusOr<int> RunExchangeRounds(CrossShardExchange* exchange,
                                  std::vector<std::vector<DeltaEdge>> offers,
                                  uint64_t* edges_exchanged);

  /// Two-phase barrier commit of epoch `epoch` on every shard. On error
  /// (or a simulated coordinator crash) every shard is marked dirty —
  /// except a real I/O failure after the decision record, which leaves
  /// the staged slots intact and arms pending_flip_epoch_ for
  /// ResumeBarrierLocked.
  Status CommitBarrier(uint64_t epoch);

  /// Roll an interrupted-but-decided barrier commit forward: finish
  /// flipping every shard still on N-1 (their staged slots survived),
  /// retire the BARRIER record, and unpoison the router. Caller holds
  /// coord_mu_. On failure the router stays poisoned and the next
  /// coordinated tick retries.
  Status ResumeBarrierLocked();

  /// Path of the coordinator's durable barrier decision record
  /// (generation-qualified past generation 0, so a staging fleet's
  /// barrier never collides with the live one's).
  static std::string BarrierPathFor(const std::string& root,
                                    const std::string& name,
                                    const PartitionMap& map);
  std::string BarrierPath() const;
  /// Path of the durable reshard decision record (`<name>.RESHARD`).
  static std::string ReshardMarkerPath(const std::string& root,
                                       const std::string& name);

  /// Roll an incomplete barrier commit back to epoch N-1 on every shard
  /// (reset=false reopen): shards whose CURRENT already names the barrier
  /// epoch are rewound to their previous epoch dir, staged dirs are
  /// removed, and the BARRIER record is cleared. Called before the shard
  /// pipelines open.
  static Status RecoverBarrier(const std::string& root,
                               const std::string& name,
                               const ShardRouterOptions& options,
                               const PartitionMap& map);

  /// Roll an interrupted reshard cutover forward on reopen: a durable
  /// RESHARD marker means the destination fleet was fully committed and
  /// the new map was decided — install it as the PARTMAP and retire the
  /// marker. No marker: the old map stands (a crash anywhere earlier in
  /// the move recovers to exactly the old partitioning).
  static Status RecoverReshard(const std::string& root,
                               const std::string& name, bool sync);

  /// The reshard cutover: replace the whole topology (map, shard slices,
  /// exchange, per-shard counters, options' shard count + generation)
  /// with the staging fleet's, bracketed by the barrier-flip seqlock.
  /// Retired slices (managers stopped by the caller) are kept alive until
  /// the router dies so pre-cutover pins and views keep serving.
  void AdoptTopology(std::vector<std::unique_ptr<Shard>> shards,
                     std::unique_ptr<CrossShardExchange> exchange,
                     std::shared_ptr<const PartitionMap> map,
                     std::vector<Counter*> epochs_committed,
                     std::vector<Counter*> deltas_applied);

  void MarkAllDirty();

  const std::string name_;
  const std::string root_;
  ShardRouterOptions options_;

  /// Guards the live topology — map_, shards_, exchange_, the per-shard
  /// counter vectors — shared for every read/route, exclusive only for
  /// the reshard cutover's pointer swap. Lock order: append_gate_ (when
  /// taken) before topo_mu_ before anything inside a pipeline.
  mutable std::shared_mutex topo_mu_;
  std::shared_ptr<const PartitionMap> map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Donor slices of previous generations, retired at cutover: managers
  /// stopped, pipelines alive so pre-cutover pins stay valid.
  std::vector<std::unique_ptr<Shard>> retired_;

  /// Append gate: appends hold it shared; the reshard coordinator takes
  /// it exclusive for the brief watermark fence (enable dual-journaling
  /// against a drained fleet) and the final cutover. Reads never touch it.
  mutable std::shared_mutex append_gate_;
  /// Dual-journal sink (set only mid-reshard, under the exclusive gate):
  /// every successfully routed append is also offered to the destination
  /// fleet. Called with the append gate held shared, synchronously before
  /// the append acks — so appends the caller serializes mirror in that
  /// order. Appends racing on the SAME key carry no ordering promise: the
  /// donor log and the staging log may order such a pair differently, so
  /// callers whose deltas don't commute per key must serialize their own
  /// same-key appends.
  std::function<void(const DeltaKV& delta)> journal_;

  Counter* deltas_routed_ = nullptr;
  Counter* lookups_routed_ = nullptr;

  /// Coordinated mode: serializes RefreshCoordinated / DrainAll / the
  /// coordinator thread (and, for the length of a move, the reshard
  /// coordinator).
  std::mutex coord_mu_;
  std::unique_ptr<CrossShardExchange> exchange_;
  std::thread coordinator_;
  std::atomic<bool> coordinating_{false};
  /// See commit_seq().
  std::atomic<uint64_t> commit_seq_{0};
  /// Set when a barrier commit died after the decision record was written
  /// but before every CURRENT flipped: the on-disk state needs the reopen
  /// recovery (RecoverBarrier); further coordinated epochs are refused.
  std::atomic<bool> poisoned_{false};
  /// See pending_flip_epoch(). Epoch 0 (bootstrap) is never resumable —
  /// its rollback already lands on "nothing committed".
  std::atomic<uint64_t> pending_flip_epoch_{0};
  /// Resolved health registry (options_.health or Default()).
  HealthRegistry* health_ = nullptr;
  /// Per-shard commit counters (the manager publishes these for solo
  /// epochs; the router does for barrier commits). Guarded by topo_mu_.
  std::vector<Counter*> shard_epochs_committed_;
  std::vector<Counter*> shard_deltas_applied_;
};

}  // namespace i2mr

#endif  // I2MR_SERVING_SHARD_ROUTER_H_
