// AdmissionController: per-tenant token-bucket quotas for the serving
// layer. Two buckets per tenant:
//
//   reads  — gates query QPS at the ShardGroup edge (a rejected read
//            returns RESOURCE_EXHAUSTED immediately; it never reaches a
//            shard, so an over-quota tenant costs the servers nothing).
//   epochs — gates refresh scheduling: wired into PipelineManager's
//            epoch_gate so a tenant with a huge delta backlog gets its
//            epochs deferred once over quota, instead of monopolizing the
//            scheduler threads every other tenant's refreshes (and the
//            cluster worker pool behind them) run on.
//
// Buckets refill continuously at `rate` tokens/sec up to `burst`. A tenant
// with no quota configured is admitted unconditionally. All decisions are
// counted into a MetricsRegistry under
// "<prefix>.<tenant>.{reads_admitted,reads_rejected,epochs_admitted,
// epochs_deferred}".
#ifndef I2MR_SERVING_ADMISSION_H_
#define I2MR_SERVING_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/metrics.h"

namespace i2mr {

struct TenantQuota {
  /// Sustained read admissions per second; < 0 = unlimited, 0 = hard deny
  /// (block this tenant — no burst, every request rejected).
  double read_rate = -1;
  /// Read bucket capacity (momentary burst). <= 0 defaults to max(rate, 1).
  double read_burst = 0;

  /// Sustained epoch-scheduling admissions per second; < 0 = unlimited,
  /// 0 = hard deny (this tenant's refreshes are always deferred).
  double epoch_rate = -1;
  /// Epoch bucket capacity. <= 0 defaults to max(rate, 1).
  double epoch_burst = 0;
};

class AdmissionController {
 public:
  /// Decisions are counted into `metrics` (Default() when null) under
  /// "<metrics_prefix>.<tenant>.*".
  explicit AdmissionController(MetricsRegistry* metrics = nullptr,
                               std::string metrics_prefix = "admission");

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Install (or replace) `tenant`'s quota. Buckets start full.
  void SetQuota(const std::string& tenant, const TenantQuota& quota);

  /// Take `cost` read tokens; false = over quota, reject the read now.
  bool AdmitRead(const std::string& tenant, double cost = 1.0);

  /// Take `cost` epoch tokens; false = defer this tenant's refresh (the
  /// backlog stays in its delta log and is re-evaluated next poll).
  bool AdmitEpoch(const std::string& tenant, double cost = 1.0);

  struct TenantStats {
    uint64_t reads_admitted = 0;
    uint64_t reads_rejected = 0;
    uint64_t epochs_admitted = 0;
    uint64_t epochs_deferred = 0;
  };
  TenantStats tenant_stats(const std::string& tenant) const;

 private:
  struct Bucket {
    double rate = -1;  // < 0 = unlimited
    double burst = 0;
    double tokens = 0;
    int64_t refilled_ns = 0;

    bool TryTake(double cost, int64_t now_ns);
  };

  struct Tenant {
    Bucket reads;
    Bucket epochs;
    Counter* reads_admitted = nullptr;
    Counter* reads_rejected = nullptr;
    Counter* epochs_admitted = nullptr;
    Counter* epochs_deferred = nullptr;
  };

  /// Get-or-create (unquoted tenants still get decision counters).
  Tenant* GetLocked(const std::string& tenant);

  MetricsRegistry* metrics_;
  const std::string prefix_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant> tenants_;
};

}  // namespace i2mr

#endif  // I2MR_SERVING_ADMISSION_H_
