#include "serving/shard_group.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <thread>

namespace i2mr {

// ---------------------------------------------------------------------------
// ShardSnapshot
// ---------------------------------------------------------------------------

StatusOr<std::string> ShardSnapshot::Get(const std::string& key) const {
  if (!valid()) return Status::FailedPrecondition("empty shard snapshot");
  // Route by the snapshot's own map: the router may have cut over to a
  // new generation since the pins were taken, and these stores are
  // partitioned by the map that produced them.
  int s = map_->ShardOf(key);
  shard_reads_[s]->Increment();
  return pins_[s].Lookup(key);
}

std::vector<StatusOr<std::string>> ShardSnapshot::MultiGet(
    const std::vector<std::string>& keys) const {
  std::vector<StatusOr<std::string>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(Get(key));
  return out;
}

std::vector<KV> ShardSnapshot::Range(const std::string& begin,
                                     const std::string& end,
                                     size_t limit) const {
  if (!valid()) return {};
  const int n = static_cast<int>(pins_.size());
  // Scatter: each shard scans its pinned store in key order, stopping at
  // `limit` (a shard can never contribute more than the whole answer).
  std::vector<std::vector<KV>> parts(n);
  ParallelFor(pool_, n, [&](int s) {
    shard_reads_[s]->Increment();
    const ResultStore* store = pins_[s].store();
    if (store == nullptr) return;
    std::vector<KV>& part = parts[s];
    store->VisitRange(begin, end, [&](const KV& kv) {
      part.push_back(kv);
      return part.size() < limit;
    });
  });
  // Gather: one k-way heap merge over the sorted parts, stopping at
  // `limit` — O(answer * log shards), instead of re-merging the
  // accumulated result with every shard's part (O(shards * total) copies).
  struct Cursor {
    const std::vector<KV>* part;
    size_t i;
  };
  auto after = [](const Cursor& a, const Cursor& b) {
    return (*b.part)[b.i] < (*a.part)[a.i];  // min-heap
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(after);
  size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
    if (!part.empty()) heap.push(Cursor{&part, 0});
  }
  std::vector<KV> merged;
  merged.reserve(std::min(limit, total));
  while (!heap.empty() && merged.size() < limit) {
    Cursor cur = heap.top();
    heap.pop();
    merged.push_back((*cur.part)[cur.i]);
    if (++cur.i < cur.part->size()) heap.push(cur);
  }
  return merged;
}

std::vector<KV> ShardSnapshot::TopK(
    size_t k, const std::function<double(const KV&)>& score) const {
  if (!valid() || k == 0) return {};
  const int n = static_cast<int>(pins_.size());
  struct Scored {
    double score;
    KV kv;
  };
  auto better = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.kv.key < b.kv.key;
  };
  // Scatter: each shard reduces its pinned store to a local top-k, so the
  // gather merges n*k candidates instead of every record.
  std::vector<std::vector<Scored>> parts(n);
  ParallelFor(pool_, n, [&](int s) {
    shard_reads_[s]->Increment();
    const ResultStore* store = pins_[s].store();
    if (store == nullptr) return;
    std::vector<Scored>& part = parts[s];
    store->VisitRange("", "", [&](const KV& kv) {
      Scored cand{score(kv), kv};
      if (part.size() < k) {
        part.push_back(std::move(cand));
        std::push_heap(part.begin(), part.end(), better);  // min at front
      } else if (better(cand, part.front())) {
        std::pop_heap(part.begin(), part.end(), better);
        part.back() = std::move(cand);
        std::push_heap(part.begin(), part.end(), better);
      }
      return true;
    });
  });
  std::vector<Scored> all;
  for (auto& part : parts) {
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(), better);
  std::vector<KV> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(std::move(all[i].kv));
  return out;
}

// ---------------------------------------------------------------------------
// ShardGroup
// ---------------------------------------------------------------------------

ShardGroup::ShardGroup(ShardRouter* router, ShardGroupOptions options)
    : router_(router),
      options_(options),
      scatter_pool_(options.scatter_threads > 0
                        ? options.scatter_threads
                        : std::min(router->num_shards(), 8)) {
  MetricsRegistry* metrics = router_->metrics();
  const std::string base = "serving." + router_->name();
  snapshots_pinned_ = metrics->Get(base + ".snapshots_pinned");
  reads_rejected_ = metrics->Get(base + ".reads_rejected");
}

const std::vector<Counter*>& ShardGroup::ReadsFor(
    const PartitionMap& map) const {
  std::lock_guard<std::mutex> lock(reads_mu_);
  auto it = reads_by_gen_.find(map.generation);
  if (it != reads_by_gen_.end()) return it->second;
  MetricsRegistry* metrics = router_->metrics();
  std::vector<Counter*> reads;
  reads.reserve(map.num_shards);
  for (int s = 0; s < map.num_shards; ++s) {
    reads.push_back(metrics->Get(map.ShardMetricsPrefix(router_->name(), s) +
                                 ".snapshot_reads"));
  }
  return reads_by_gen_.emplace(map.generation, std::move(reads)).first->second;
}

StatusOr<ShardSnapshot> ShardGroup::PinSnapshot(
    const std::string& tenant) const {
  if (options_.admission != nullptr && !tenant.empty() &&
      !options_.admission->AdmitRead(tenant)) {
    reads_rejected_->Increment();
    return Status::ResourceExhausted("tenant " + tenant +
                                     " over read quota");
  }
  ShardSnapshot snap;
  snap.router_ = router_;
  snap.pool_ = &scatter_pool_;
  // Coordinated mode: bracket the per-shard pins with the router's
  // barrier-flip seqlock so the vector is always one uniform cut — a
  // barrier commit landing mid-pin (it flips CURRENTs one shard at a
  // time) just makes us retry. The flip window is a few renames in the
  // default durability mode but per-shard fsyncs under kPowerFailure, so
  // the wait backs off from yields to short sleeps instead of burning a
  // core. Independent mode pins whatever each shard committed, as before.
  // Pins always come from one atomically-grabbed TopologyView, so even a
  // reshard cutover landing mid-pin can only yield a uniform vector of
  // ONE generation (retired donor slices stay pinnable); the seqlock —
  // which the cutover also brackets — then retries onto the new map.
  const bool coordinated = router_->coordinated();
  int spins = 0;
  for (;;) {
    if (coordinated && router_->poisoned()) {
      return Status::FailedPrecondition(
          "a barrier commit was left incomplete; reopen the router "
          "(reset=false) to recover");
    }
    uint64_t seq = router_->commit_seq();
    if (coordinated && (seq & 1) != 0) {
      // A flip is in progress.
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      continue;
    }
    ShardRouter::TopologyView view = router_->topology();
    snap.pins_.clear();
    snap.epochs_.clear();
    snap.pins_.reserve(view.pipelines.size());
    snap.epochs_.reserve(view.pipelines.size());
    for (size_t s = 0; s < view.pipelines.size(); ++s) {
      EpochPin pin = view.pipelines[s]->PinServing();
      if (!pin.valid()) {
        return Status::FailedPrecondition("shard " + std::to_string(s) +
                                          " not bootstrapped");
      }
      snap.epochs_.push_back(pin.epoch());
      snap.pins_.push_back(std::move(pin));
    }
    if (!coordinated || router_->commit_seq() == seq) {
      snap.map_ = view.map;
      snap.shard_reads_ = ReadsFor(*view.map);
      break;
    }
    // A barrier flip interleaved with our pins: drop them and re-pin.
  }
  snapshots_pinned_->Increment();
  return snap;
}

StatusOr<std::string> ShardGroup::Get(const std::string& tenant,
                                      const std::string& key) const {
  if (options_.admission != nullptr && !tenant.empty() &&
      !options_.admission->AdmitRead(tenant)) {
    reads_rejected_->Increment();
    return Status::ResourceExhausted("tenant " + tenant +
                                     " over read quota");
  }
  return router_->Lookup(key);
}

Status ShardGroup::RefreshAll() { return router_->DrainAll(); }

}  // namespace i2mr
