#include "serving/reshard.h"

#include <algorithm>
#include <utility>

#include "common/codec.h"
#include "common/hash.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/record_file.h"
#include "mrbg/chunk_index.h"

namespace i2mr {
namespace {

/// Length-prefixed KV framing inside one content chunk.
void AppendRecord(std::string* payload, const KV& kv) {
  PutLengthPrefixed(payload, kv.key);
  PutLengthPrefixed(payload, kv.value);
}

Status DecodeRecords(std::string_view payload, std::vector<KV>* out) {
  Decoder dec(payload);
  while (!dec.done()) {
    KV kv;
    if (!dec.GetLengthPrefixed(&kv.key) || !dec.GetLengthPrefixed(&kv.value)) {
      return Status::Corruption("bad record framing in content chunk");
    }
    out->push_back(std::move(kv));
  }
  return Status::OK();
}

}  // namespace

ReshardCoordinator::ReshardCoordinator(ShardRouter* router,
                                       ReshardOptions options)
    : router_(router), options_(std::move(options)) {}

bool ReshardCoordinator::Crashed(const std::string& stage) const {
  if (options_.crash_hook && options_.crash_hook(stage)) return true;
  if (fault::FaultInjector::Armed()) {
    return fault::FaultInjector::Instance()->AtCrashPoint("reshard/" + stage);
  }
  return false;
}

Status ReshardCoordinator::DrainDonors() {
  // Bounded: while appends keep flowing, a writer that outpaces the epoch
  // cadence would starve an until-zero loop forever. The fence closes the
  // append gate for its final pass, under which one pass reaches zero.
  for (int pass = 0; pass < 4; ++pass) {
    if (router_->TotalPending() == 0) return Status::OK();
    if (router_->coordinated()) {
      // Run() holds coord_mu_ for the whole move.
      auto st = router_->RefreshCoordinatedLocked();
      if (!st.ok()) return st.status();
    } else {
      I2MR_RETURN_IF_ERROR(router_->DrainAll());
    }
  }
  return Status::OK();
}

StatusOr<ReshardStats> ReshardCoordinator::Run() {
  WallTimer wall;
  ReshardStats stats;
  const std::string& name = router_->name();
  const std::string& root = router_->root_;
  MetricsRegistry* metrics = router_->metrics();
  HealthRegistry* health = router_->health_;
  const std::string mbase = "serving." + name + ".reshard.";
  Counter* chunks_total = metrics->Get(mbase + "chunks_total");
  Counter* chunks_reused = metrics->Get(mbase + "chunks_reused");
  Counter* bytes_moved = metrics->Get(mbase + "bytes_moved");
  Counter* dual_journal = metrics->Get(mbase + "dual_journal_deltas");
  Gauge* cutover_gauge = metrics->GetGauge(mbase + "cutover_ms");
  // The counter outlives this move (the registry aggregates across moves);
  // the returned stats cover this move only.
  const int64_t dual_journal_base = dual_journal->value();

  TRACE_SPAN("reshard.run", "router=%s", name.c_str());

  // Coordinated fleets: hold the epoch coordinator's lock for the whole
  // move, so no barrier commit interleaves with the fence, the transfer or
  // the cutover. (The router's coordinator thread just waits; it resumes
  // on the new topology afterwards.) Independent fleets keep committing
  // per shard throughout — the dual journal keeps destinations current.
  std::unique_lock<std::mutex> coord;
  if (router_->coordinated()) {
    coord = std::unique_lock<std::mutex>(router_->coord_mu_);
  }

  if (router_->poisoned_.load()) {
    return Status::FailedPrecondition(
        "router has an interrupted barrier commit; recover before resharding");
  }
  if (!router_->bootstrapped()) {
    return Status::FailedPrecondition("router not bootstrapped");
  }

  // ---- Phase 1: plan -------------------------------------------------------
  trace::ScopedSpan plan_span("reshard.plan", "to=%d", options_.new_num_shards);
  const ShardRouter::TopologyView donors = router_->topology();
  const PartitionMap old_map = *donors.map;
  const int n = old_map.num_shards;
  const int m = options_.new_num_shards;
  if (m <= 0) return Status::InvalidArgument("new_num_shards must be > 0");
  if (m == n) {
    return Status::InvalidArgument("fleet already has " + std::to_string(m) +
                                   " shards");
  }
  const PartitionMap new_map{old_map.generation + 1, m};
  stats.old_generation = old_map.generation;
  stats.new_generation = new_map.generation;
  stats.old_shards = n;
  stats.new_shards = m;
  const bool sync =
      router_->options().pipeline.durability == DurabilityMode::kPowerFailure;
  const int num_partitions =
      router_->options().pipeline.spec.num_partitions;

  // Was the donor fleet being background-scheduled? Carried over to the
  // destinations at cutover.
  bool donors_running = router_->coordinating_.load();
  if (!router_->coordinated()) {
    std::shared_lock<std::shared_mutex> topo(router_->topo_mu_);
    for (const auto& sh : router_->shards_) {
      donors_running = donors_running || sh->manager->running();
    }
  }

  // Health: donors and destinations are visibly "resharding" for the
  // length of the move; cleared (removed) on every exit path.
  std::vector<std::string> health_components;
  for (int s = 0; s < n; ++s) {
    health_components.push_back("reshard." + name + ".donor" +
                                std::to_string(s));
  }
  for (int d = 0; d < m; ++d) {
    health_components.push_back("reshard." + name + ".dest" +
                                std::to_string(d));
  }
  for (const auto& c : health_components) {
    health->Report(c, HealthState::kDegraded, "resharding");
  }
  struct HealthGuard {
    HealthRegistry* health;
    const std::vector<std::string>* components;
    ~HealthGuard() {
      for (const auto& c : *components) health->Remove(c);
    }
  } health_guard{health, &health_components};

  if (Crashed("plan")) {
    return Status::Aborted("simulated coordinator crash in reshard plan");
  }

  // Staging fleet: M slices under the new generation's shard dirs, opened
  // fresh, never Start()ed, and barred from touching the live PARTMAP.
  ShardRouterOptions staging_opts = router_->options();
  staging_opts.num_shards = m;
  staging_opts.partition_map = new_map;
  staging_opts.persist_partition_map = false;
  staging_opts.reset = true;
  staging_opts.admission = nullptr;  // donors already pay the tenant quota
  staging_opts.barrier_crash_hook = nullptr;
  auto staging_or = ShardRouter::Open(root, name, std::move(staging_opts));
  if (!staging_or.ok()) return staging_or.status();
  std::unique_ptr<ShardRouter> staging = std::move(staging_or.value());
  plan_span.End();

  // ---- Phase 2: fence + arm the dual journal ------------------------------
  // Drain, then verify under the exclusive append gate that nothing is
  // pending; re-drain if an append slipped in between. Writers that
  // outpace the drain would starve that forever, so after a few optimistic
  // passes the residue (only what landed during the last pass) drains with
  // the gate closed. Once the gate is held with zero pending, pin every
  // donor's committed epoch: the pins + every journaled delta after them
  // cover the full history exactly once.
  // Mirror failures are fatal to the move, not to the donor ack: the
  // donor durably owns the delta either way, so a delta that failed to
  // reach the staging logs just means the new generation would be missing
  // an acked write. The flag is read under the cutover's exclusive gate
  // (no mirror can be in flight there) and aborts before the commit
  // point. Outlives journal_guard below, which disarms the capturing
  // lambda first.
  std::atomic<uint64_t> journal_errors{0};
  std::vector<EpochPin> pins;
  {
    std::unique_lock<std::shared_mutex> gate(router_->append_gate_,
                                             std::defer_lock);
    bool fenced = false;
    for (int attempt = 0; attempt < 3 && !fenced; ++attempt) {
      I2MR_RETURN_IF_ERROR(DrainDonors());
      gate.lock();
      fenced = router_->TotalPending() == 0;
      if (!fenced) gate.unlock();
    }
    if (!fenced) {
      gate.lock();
      I2MR_RETURN_IF_ERROR(DrainDonors());
      if (router_->TotalPending() != 0) {
        return Status::Internal(
            "donor fleet would not quiesce under the closed append gate");
      }
    }
    pins.reserve(n);
    for (int s = 0; s < n; ++s) {
      EpochPin pin = donors.pipelines[s]->PinServing();
      if (!pin.valid()) {
        return Status::FailedPrecondition("donor shard " + std::to_string(s) +
                                          " has no committed epoch");
      }
      pins.push_back(std::move(pin));
    }
    ShardRouter* staging_ptr = staging.get();
    std::atomic<uint64_t>* errors = &journal_errors;
    router_->journal_ = [staging_ptr, dual_journal, errors](const DeltaKV& d) {
      auto seq = staging_ptr->Append(d);
      if (seq.ok()) {
        dual_journal->Increment();
      } else {
        errors->fetch_add(1);
        LOG_WARN << "reshard dual-journal append failed (move will abort "
                 << "before cutover): " << seq.status().ToString();
      }
    };
  }
  // Disarm on every non-cutover exit: the journal captures the staging
  // fleet, which dies with this scope.
  struct JournalGuard {
    ShardRouter* router;
    bool active = true;
    void Disarm() {
      if (!active) return;
      std::unique_lock<std::shared_mutex> gate(router->append_gate_);
      router->journal_ = nullptr;
      active = false;
    }
    ~JournalGuard() { Disarm(); }
  } journal_guard{router_};

  if (Crashed("dual_journal")) {
    return Status::Aborted(
        "simulated coordinator crash after arming the dual journal");
  }

  // ---- Phase 3: transfer ---------------------------------------------------
  WallTimer transfer_timer;
  trace::ScopedSpan transfer_span("reshard.transfer", "donors=%d dests=%d", n,
                                  m);
  const int buckets = std::max(1, options_.buckets_per_stream);
  // streams[kind][dest] -> key-hash buckets of records. kind 0 =
  // structure, 1 = state.
  std::vector<std::vector<std::vector<KV>>> streams[2];
  for (auto& kind : streams) {
    kind.assign(m, std::vector<std::vector<KV>>(buckets));
  }
  auto route = [&](int kind, KV kv) {
    int dest = new_map.ShardOf(kv.key);
    int bucket =
        static_cast<int>(Hash64(kv.key) / 7 % static_cast<uint64_t>(buckets));
    streams[kind][dest][bucket].push_back(std::move(kv));
  };
  for (int s = 0; s < n; ++s) {
    // Structure: the pinned epoch's per-partition structure files hold
    // this shard's full subgraph.
    for (int p = 0; p < num_partitions; ++p) {
      char part[32];
      std::snprintf(part, sizeof(part), "part-%03d", p);
      std::string path = JoinPath(JoinPath(pins[s].dir(), part),
                                  "structure.dat");
      if (!FileExists(path)) continue;
      auto records = ReadRecords(path);
      if (!records.ok()) return records.status();
      for (auto& kv : *records) route(0, std::move(kv));
    }
    // State: the pinned committed result store.
    for (auto& kv : pins[s].store()->Snapshot()) route(1, std::move(kv));
  }

  // Chunk every (dest, kind) stream: buckets are sorted so equal slices
  // byte-match across attempts (content-addressing needs determinism),
  // then cut at chunk_max_bytes.
  ContentChunkStore store;
  I2MR_RETURN_IF_ERROR(
      store.Attach(JoinPath(root, name + ".reshard-chunks")));
  // refs[kind][dest]: the ordered chunk list each destination assembles.
  std::vector<std::vector<ContentChunkRef>> refs[2];
  for (auto& kind : refs) kind.assign(m, {});
  for (int kind = 0; kind < 2; ++kind) {
    for (int d = 0; d < m; ++d) {
      for (auto& bucket : streams[kind][d]) {
        if (bucket.empty()) continue;
        std::sort(bucket.begin(), bucket.end());
        std::string payload;
        auto emit = [&]() -> Status {
          if (payload.empty()) return Status::OK();
          bool reused = false;
          auto ref = store.Put(payload, &reused);
          if (!ref.ok()) return ref.status();
          refs[kind][d].push_back(*ref);
          chunks_total->Increment();
          ++stats.chunks_total;
          if (reused) {
            chunks_reused->Increment();
            ++stats.chunks_reused;
          } else {
            bytes_moved->Add(static_cast<int64_t>(payload.size()));
            stats.bytes_moved += payload.size();
          }
          payload.clear();
          return Status::OK();
        };
        for (const KV& kv : bucket) {
          AppendRecord(&payload, kv);
          if (payload.size() >= options_.chunk_max_bytes) {
            I2MR_RETURN_IF_ERROR(emit());
          }
        }
        I2MR_RETURN_IF_ERROR(emit());
        bucket.clear();
        bucket.shrink_to_fit();
      }
    }
  }
  I2MR_RETURN_IF_ERROR(store.Flush(sync));

  if (Crashed("transfer")) {
    return Status::Aborted(
        "simulated coordinator crash mid-transfer (chunks durable)");
  }

  // Destination assembly: each destination fetches exactly its chunk list
  // from the store (reused chunks were never re-copied) and decodes its
  // slice.
  std::vector<KV> all_structure, all_state;
  for (int d = 0; d < m; ++d) {
    TRACE_SPAN("reshard.transfer.dest", "dest=%d chunks=%zu", d,
               refs[0][d].size() + refs[1][d].size());
    for (int kind = 0; kind < 2; ++kind) {
      std::vector<KV>* out = kind == 0 ? &all_structure : &all_state;
      for (const auto& ref : refs[kind][d]) {
        auto payload = store.Read(ref);
        if (!payload.ok()) return payload.status();
        I2MR_RETURN_IF_ERROR(DecodeRecords(*payload, out));
      }
    }
  }
  stats.transfer_ms = transfer_timer.ElapsedMillis();
  transfer_span.End();

  // Bootstrap the staging fleet from the transferred slices (split again
  // by the new map inside Bootstrap — identical routing by construction).
  WallTimer bootstrap_timer;
  I2MR_RETURN_IF_ERROR(staging->Bootstrap(all_structure, all_state));
  all_structure.clear();
  all_state.clear();
  stats.bootstrap_ms = bootstrap_timer.ElapsedMillis();

  // ---- Phase 4: catch-up ---------------------------------------------------
  // Drain the deltas dual-journaled while the transfer ran. Journaled
  // appends keep flowing in, so an until-zero drain may never converge;
  // pass until the backlog stops shrinking — from there the residue is
  // one pass's arrivals, the best reachable online — and leave that tail
  // to the cutover's gated drain (journal quiet, so it terminates). This
  // keeps the appends-blocked window proportional to the append rate, not
  // to the length of the transfer.
  WallTimer catchup_timer;
  uint64_t prev_pending = UINT64_MAX;
  for (int pass = 0; pass < 16; ++pass) {
    const uint64_t pending = staging->TotalPending();
    if (pending == 0 || pending >= prev_pending) break;
    prev_pending = pending;
    if (staging->coordinated()) {
      auto st = staging->RefreshCoordinated();
      if (!st.ok()) return st.status();
    } else {
      I2MR_RETURN_IF_ERROR(staging->DrainAll());
    }
  }
  stats.catchup_ms = catchup_timer.ElapsedMillis();

  // ---- Phase 5: cutover ----------------------------------------------------
  trace::ScopedSpan cutover_span("reshard.cutover", "generation=%llu",
                                 static_cast<unsigned long long>(
                                     new_map.generation));
  WallTimer cutover_timer;
  {
    std::unique_lock<std::shared_mutex> gate(router_->append_gate_);
    // The gate is exclusive: no mirror is in flight, so the error count
    // is final. Any delta a donor acked but the staging fleet missed
    // would be permanently absent from the new generation past the flip —
    // abort instead; the old map still serves every acked write.
    const uint64_t mirror_failures = journal_errors.load();
    if (mirror_failures != 0) {
      return Status::Aborted(
          "reshard aborted before cutover: " +
          std::to_string(mirror_failures) +
          " dual-journal append(s) failed to mirror acked deltas to the "
          "destination fleet; the old map still serves");
    }
    // Tail drain: every delta accepted before the gate closed is in the
    // staging logs; consume them so the flip loses nothing.
    I2MR_RETURN_IF_ERROR(staging->DrainAll());

    if (Crashed("flip")) {
      return Status::Aborted(
          "simulated coordinator crash at cutover before the marker");
    }
    // Any in-process failure between the marker write and the topology
    // swap leaves a durable decision the live fleet contradicts: serving
    // (and acking) on the old map would be silently rolled forward over
    // by RecoverReshard on reopen. Revoke the decision — retire the
    // marker and make sure the PARTMAP still names the old map — so the
    // old generation stands consistently; if revocation itself fails,
    // poison the router (appends and lookups refused until the
    // roll-forward reopen), exactly like the flip_marker crash hook.
    auto revoke_or_poison = [&](const Status& cause) {
      Status revoked = RemoveAll(ShardRouter::ReshardMarkerPath(root, name));
      if (revoked.ok() && sync) revoked = SyncDir(root);
      if (revoked.ok()) {
        // The PARTMAP publish uses tmp + rename; the live record is
        // untouched unless the rename landed (e.g. only the directory
        // sync failed). Restore it only in that case.
        auto on_disk = PartitionMap::Load(PartitionMap::RecordPath(root, name));
        if (!on_disk.ok() || *on_disk != old_map) {
          revoked = PartitionMap::Save(PartitionMap::RecordPath(root, name),
                                       old_map, sync);
        }
      }
      if (revoked.ok()) {
        LOG_WARN << "reshard " << name << ": cutover failed after the marker "
                 << "write (" << cause.ToString()
                 << "); decision revoked, the old map stands";
      } else {
        router_->poisoned_.store(true);
        LOG_WARN << "reshard " << name << ": cutover failed after the marker "
                 << "write (" << cause.ToString()
                 << ") and the decision could not be revoked ("
                 << revoked.ToString()
                 << "); router poisoned until the roll-forward reopen";
      }
    };
    // Commit point: the durable marker carries the new map. From here a
    // crash rolls FORWARD (RecoverReshard installs it on reopen).
    Status marked = PartitionMap::Save(
        ShardRouter::ReshardMarkerPath(root, name), new_map, sync);
    if (!marked.ok()) {
      // The save's own failure can still have left a durable marker (tmp
      // + rename, with only the directory sync failing); revoke it.
      revoke_or_poison(marked);
      return marked;
    }
    if (Crashed("flip_marker")) {
      // In-process simulation of dying right after the decision: the old
      // topology must not serve new reads that recovery would contradict.
      router_->poisoned_.store(true);
      return Status::Aborted(
          "simulated coordinator crash after the reshard marker");
    }
    Status published =
        PartitionMap::Save(PartitionMap::RecordPath(root, name), new_map, sync);
    if (!published.ok()) {
      revoke_or_poison(published);
      return published;
    }
    router_->journal_ = nullptr;
    journal_guard.active = false;  // cleared under this gate hold
    router_->AdoptTopology(std::move(staging->shards_),
                           std::move(staging->exchange_), staging->map_,
                           std::move(staging->shard_epochs_committed_),
                           std::move(staging->shard_deltas_applied_));
    Status cleared =
        RemoveAll(ShardRouter::ReshardMarkerPath(root, name));
    if (cleared.ok() && sync) cleared = SyncDir(root);
    if (!cleared.ok()) {
      // The cutover stands (PARTMAP already names the new map; recovery
      // re-installing the same map is idempotent). Only log.
      LOG_WARN << "reshard " << name << ": marker not retired ("
               << cleared.ToString() << "); reopen will re-install the map";
    }
  }
  stats.cutover_ms = cutover_timer.ElapsedMillis();
  cutover_gauge->Set(static_cast<int64_t>(stats.cutover_ms));
  cutover_span.End();

  // Donor slices are retired inside the router; stop their schedulers and
  // carry the scheduling state over to the new generation.
  {
    std::vector<PipelineManager*> retired_managers;
    {
      std::shared_lock<std::shared_mutex> topo(router_->topo_mu_);
      for (const auto& sh : router_->retired_) {
        retired_managers.push_back(sh->manager.get());
      }
    }
    for (PipelineManager* mgr : retired_managers) mgr->Stop();
  }
  if (donors_running && !router_->coordinated()) {
    std::shared_lock<std::shared_mutex> topo(router_->topo_mu_);
    for (const auto& sh : router_->shards_) sh->manager->Start();
  }

  stats.dual_journal_deltas =
      static_cast<uint64_t>(dual_journal->value() - dual_journal_base);
  stats.wall_ms = wall.ElapsedMillis();
  LOG_INFO << "reshard " << name << ": generation " << old_map.generation
           << " (" << n << " shards) -> " << new_map.generation << " (" << m
           << " shards); " << stats.chunks_total << " chunks ("
           << stats.chunks_reused << " reused), " << stats.bytes_moved
           << " bytes moved, " << stats.dual_journal_deltas
           << " deltas dual-journaled, cutover " << stats.cutover_ms << "ms";
  return stats;
}

}  // namespace i2mr
