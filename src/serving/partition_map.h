// PartitionMap: the single authoritative partition function of a sharded
// computation, versioned by generation.
//
// Every layer that used to compute a shard index from a raw count —
// ShardRouter routing, CrossShardExchange ownership, bootstrap splitting,
// the engines' owns_key boundary filter, ShardSnapshot read routing and
// the replication layer — now goes through one PartitionMap value, so the
// modulus can never be computed against two different counts again (the
// old ShardOf-vs-options.num_shards divergence class of bug).
//
// Generations make the map *replaceable*: an elastic reshard builds a
// new-generation map (new shard count, fresh generation-qualified shard
// directories), bootstraps the destination fleet next to the live one,
// and publishes the new map with one durable record swap. The map is
// durable as `<root>/<name>.PARTMAP` (CRC'd, tmp+rename) next to the
// barrier record; a reset=false reopen trusts the record over whatever
// shard count the options carry, because the record is what the on-disk
// shard directories were actually partitioned by.
#ifndef I2MR_SERVING_PARTITION_MAP_H_
#define I2MR_SERVING_PARTITION_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/status.h"

namespace i2mr {

struct PartitionMap {
  /// Monotonic map version. 0 = the creation-time map; every reshard
  /// publishes generation + 1. Stamped into epoch MANIFESTs so replicas
  /// can detect that shipped state belongs to a different partitioning.
  uint64_t generation = 0;

  /// Shard count of this generation.
  int num_shards = 1;

  /// The one partition function. Everything routes through here: the
  /// stable key-hash modulus lives in this method and nowhere else.
  int ShardOf(std::string_view key) const {
    return static_cast<int>(Hash64(key) % static_cast<uint64_t>(num_shards));
  }

  /// On-disk shard directory under the router root. Generation 0 keeps
  /// the original "shard-NNN" layout (backward compatible with every
  /// pre-reshard deployment); later generations are namespaced
  /// "g<generation>-shard-NNN" so a destination fleet bootstraps next to
  /// the live donors without colliding.
  std::string ShardDirName(int shard) const;

  /// Metrics family prefix for one shard of this generation:
  /// "serving.<name>.shard<i>" at generation 0, generation-qualified
  /// ("serving.<name>.g<gen>.shard<i>") afterwards so a reshard starts a
  /// fresh per-shard series instead of polluting the donors'.
  std::string ShardMetricsPrefix(const std::string& name, int shard) const;

  friend bool operator==(const PartitionMap& a, const PartitionMap& b) {
    return a.generation == b.generation && a.num_shards == b.num_shards;
  }
  friend bool operator!=(const PartitionMap& a, const PartitionMap& b) {
    return !(a == b);
  }

  /// Record codec: [u64 generation][u32 num_shards][u32 crc of the first
  /// 12 bytes]. Shared by the PARTMAP record and the reshard decision
  /// record (which stores the *next* map).
  std::string Encode() const;
  static StatusOr<PartitionMap> Decode(std::string_view data);

  /// Durable record next to the barrier record: `<root>/<name>.PARTMAP`.
  static std::string RecordPath(const std::string& root,
                                const std::string& name);

  /// Write the record atomically (tmp + rename; fsync'd when `sync`).
  static Status Save(const std::string& path, const PartitionMap& map,
                     bool sync);
  static StatusOr<PartitionMap> Load(const std::string& path);
};

}  // namespace i2mr

#endif  // I2MR_SERVING_PARTITION_MAP_H_
