#include "serving/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <thread>

#include "common/codec.h"
#include "common/hash.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"
#include "io/env.h"
#include "io/fault_env.h"

namespace i2mr {
namespace {

std::string PipelineDirOf(const std::string& root, const std::string& name,
                          const PartitionMap& map, int s) {
  return JoinPath(JoinPath(root, map.ShardDirName(s)), "pipeline/" + name);
}

/// One thread per shard — the coordinated rounds and the barrier phases
/// all fan out this way, like Bootstrap/DrainAll always have.
void ForEachShard(int n, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int s = 0; s < n; ++s) {
    threads.emplace_back([&fn, s] {
      trace::TraceCollector::SetThreadName("shard-" + std::to_string(s));
      fn(s);
    });
  }
  for (auto& t : threads) t.join();
}

Status FirstError(const std::vector<Status>& status) {
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

ShardRouter::ShardRouter(std::string name, std::string root,
                         ShardRouterOptions options)
    : name_(std::move(name)),
      root_(std::move(root)),
      options_(std::move(options)) {}

ShardRouter::~ShardRouter() { Stop(); }

std::string ShardRouter::BarrierPathFor(const std::string& root,
                                        const std::string& name,
                                        const PartitionMap& map) {
  if (map.generation == 0) return JoinPath(root, name + ".BARRIER");
  return JoinPath(root, name + ".g" + std::to_string(map.generation) +
                            ".BARRIER");
}

std::string ShardRouter::BarrierPath() const {
  return BarrierPathFor(root_, name_, partition_map());
}

std::string ShardRouter::ReshardMarkerPath(const std::string& root,
                                           const std::string& name) {
  return JoinPath(root, name + ".RESHARD");
}

Status ShardRouter::RecoverReshard(const std::string& root,
                                   const std::string& name, bool sync) {
  const std::string marker = ReshardMarkerPath(root, name);
  if (!FileExists(marker)) return Status::OK();
  // The marker is written only after the destination fleet durably
  // committed its state, so its presence means the new map was decided:
  // roll forward by publishing it, exactly like the barrier record's
  // roll-forward (PR 9).
  auto decided = PartitionMap::Load(marker);
  if (!decided.ok()) return decided.status();
  I2MR_RETURN_IF_ERROR(
      PartitionMap::Save(PartitionMap::RecordPath(root, name), *decided, sync));
  I2MR_RETURN_IF_ERROR(RemoveAll(marker));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(root));
  LOG_INFO << "serving " << name << ": rolled interrupted reshard forward to "
           << "generation " << decided->generation << " (" << decided->num_shards
           << " shards)";
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    const std::string& root, const std::string& name,
    ShardRouterOptions options) {
  if (options.num_shards <= 0 && options.partition_map.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be > 0");
  }
  if (options.cross_shard_exchange &&
      options.pipeline.spec.projector != nullptr &&
      options.pipeline.spec.projector->dep_type() == DepType::kAllToOne) {
    // Global reduce state cannot partition by key; run such apps on one
    // shard in independent mode instead.
    return Status::InvalidArgument(
        "cross_shard_exchange requires a partition-by-key app");
  }
  if (options.metrics == nullptr) options.metrics = MetricsRegistry::Default();
  if (options.health == nullptr) options.health = HealthRegistry::Default();
  // Shard pipelines report their own degraded read-only mode through the
  // same registry unless the caller wired a different one explicitly.
  if (options.pipeline.health == nullptr) {
    options.pipeline.health = options.health;
  }
  I2MR_RETURN_IF_ERROR(CreateDirs(root));
  const bool sync =
      options.pipeline.durability == DurabilityMode::kPowerFailure;

  // Resolve the authoritative partition map. Precedence: an explicit
  // internal map (a reshard's staging fleet) > the durable PARTMAP record
  // (reset=false: the on-disk shards were partitioned by it, whatever
  // shard count the options carry) > {generation 0, options.num_shards}.
  PartitionMap map{0, options.num_shards};
  const std::string map_path = PartitionMap::RecordPath(root, name);
  if (options.partition_map.num_shards > 0) {
    map = options.partition_map;
  } else if (options.persist_partition_map && !options.reset) {
    // An interrupted cutover first: a durable RESHARD marker decides for
    // the new map before we read the record.
    I2MR_RETURN_IF_ERROR(RecoverReshard(root, name, sync));
    if (FileExists(map_path)) {
      auto loaded = PartitionMap::Load(map_path);
      if (!loaded.ok()) return loaded.status();
      if (*loaded != map) {
        LOG_INFO << "serving " << name << ": PARTMAP record (generation "
                 << loaded->generation << ", " << loaded->num_shards
                 << " shards) overrides options.num_shards="
                 << options.num_shards;
      }
      map = *loaded;
    }
  }
  options.num_shards = map.num_shards;
  options.pipeline.generation = map.generation;
  if (options.persist_partition_map) {
    if (options.reset) {
      // Fresh deployment: retire this computation's reshard leftovers
      // (records are name-qualified; shard dirs are wiped per cluster).
      I2MR_RETURN_IF_ERROR(RemoveAll(ReshardMarkerPath(root, name)));
      I2MR_RETURN_IF_ERROR(RemoveAll(JoinPath(root, name + ".reshard-chunks")));
      map = PartitionMap{0, options.num_shards};
    }
    if (options.reset || !FileExists(map_path)) {
      I2MR_RETURN_IF_ERROR(PartitionMap::Save(map_path, map, sync));
    }
  }

  std::unique_ptr<ShardRouter> router(
      new ShardRouter(name, root, std::move(options)));
  router->health_ = router->options_.health;
  router->map_ = std::make_shared<const PartitionMap>(map);
  const ShardRouterOptions& opts = router->options_;
  if (opts.cross_shard_exchange) {
    if (opts.reset) {
      // Fresh deployment: a leftover barrier record belongs to wiped state.
      I2MR_RETURN_IF_ERROR(RemoveAll(BarrierPathFor(root, name, map)));
    } else {
      // A crash inside a barrier commit left the decision record behind:
      // roll every shard back to the previous epoch before the pipelines
      // open, so no reader (and no replay) ever observes a mixed vector.
      I2MR_RETURN_IF_ERROR(RecoverBarrier(root, name, opts, map));
    }
  }
  for (int s = 0; s < map.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Each shard's cluster root is disjoint by construction; reset=false
    // re-attaches all of them for crash recovery (collision-free now that
    // LocalCluster job dirs are instance-namespaced).
    shard->cluster = std::make_unique<LocalCluster>(
        JoinPath(root, map.ShardDirName(s)), opts.workers_per_shard, opts.cost,
        opts.reset);
    PipelineManagerOptions mopts = opts.manager;
    mopts.metrics = opts.metrics;
    mopts.metrics_prefix = map.ShardMetricsPrefix(name, s);
    if (!opts.cross_shard_exchange && opts.admission != nullptr &&
        !opts.tenant.empty()) {
      // The tenant's epoch quota gates every shard's refresh scheduling.
      // (Coordinated mode consults the same quota once per coordinated
      // epoch, in the coordinator loop.)
      AdmissionController* admission = opts.admission;
      std::string tenant = opts.tenant;
      mopts.epoch_gate = [admission, tenant](const Pipeline&) {
        return admission->AdmitEpoch(tenant);
      };
    }
    shard->manager =
        std::make_unique<PipelineManager>(shard->cluster.get(), mopts);
    PipelineOptions popts = opts.pipeline;
    if (opts.cross_shard_exchange) {
      // The engine-boundary hook: this shard owns exactly the keys the
      // partition map assigns to it, so map emissions to any other key are
      // captured for the exchange instead of reducing here as phantoms.
      // The map is captured by value: a shard slice belongs to exactly one
      // generation, and keeps its own-map semantics even while a reshard
      // builds the next generation alongside.
      popts.spec.owns_key = [map, s](std::string_view key) {
        return map.ShardOf(key) == s;
      };
    }
    auto pipeline = shard->manager->Register(name, popts);
    if (!pipeline.ok()) return pipeline.status();
    shard->pipeline = pipeline.value();
    router->shards_.push_back(std::move(shard));
  }
  router->deltas_routed_ =
      opts.metrics->Get("serving." + name + ".router.deltas_routed");
  router->lookups_routed_ =
      opts.metrics->Get("serving." + name + ".router.lookups_routed");
  if (opts.cross_shard_exchange) {
    router->exchange_ = std::make_unique<CrossShardExchange>(
        map.num_shards,
        [map](std::string_view key) { return map.ShardOf(key); }, opts.cost,
        opts.metrics, "serving." + name + ".exchange");
    for (int s = 0; s < map.num_shards; ++s) {
      router->shard_epochs_committed_.push_back(opts.metrics->Get(
          map.ShardMetricsPrefix(name, s) + ".epochs_committed"));
      router->shard_deltas_applied_.push_back(opts.metrics->Get(
          map.ShardMetricsPrefix(name, s) + ".deltas_applied"));
    }
  }
  return router;
}

int ShardRouter::ShardOf(std::string_view key) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return map_->ShardOf(key);
}

PartitionMap ShardRouter::partition_map() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return *map_;
}

ShardRouter::TopologyView ShardRouter::topology() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  TopologyView view;
  view.map = map_;
  view.pipelines.reserve(shards_.size());
  for (const auto& shard : shards_) view.pipelines.push_back(shard->pipeline);
  return view;
}

int ShardRouter::num_shards() const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return map_->num_shards;
}

Pipeline* ShardRouter::shard(int i) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return shards_[i]->pipeline;
}

PipelineManager* ShardRouter::manager(int i) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return shards_[i]->manager.get();
}

LocalCluster* ShardRouter::cluster(int i) const {
  std::shared_lock<std::shared_mutex> topo(topo_mu_);
  return shards_[i]->cluster.get();
}

// ---------------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------------

Status ShardRouter::Bootstrap(const std::vector<KV>& structure,
                              const std::vector<KV>& initial_state) {
  TopologyView view = topology();
  const int n = view.map->num_shards;
  std::vector<std::vector<KV>> structure_parts(n), state_parts(n);
  for (const auto& kv : structure) {
    structure_parts[view.map->ShardOf(kv.key)].push_back(kv);
  }
  for (const auto& kv : initial_state) {
    state_parts[view.map->ShardOf(kv.key)].push_back(kv);
  }
  if (options_.cross_shard_exchange) {
    return BootstrapCoordinated(std::move(structure_parts),
                                std::move(state_parts));
  }
  // Shards bootstrap concurrently: each runs its full computation on its
  // own cluster's worker pool.
  std::vector<Status> status(n);
  ForEachShard(n, [&](int s) {
    status[s] =
        view.pipelines[s]->Bootstrap(structure_parts[s], state_parts[s]);
  });
  return FirstError(status);
}

Status ShardRouter::BootstrapCoordinated(
    std::vector<std::vector<KV>> structure_parts,
    std::vector<std::vector<KV>> state_parts) {
  std::lock_guard<std::mutex> lock(coord_mu_);
  TopologyView view = topology();
  const int n = view.map->num_shards;
  // Phase 1: every shard's full computation over its own subgraph — no
  // commit yet. Emissions to non-owned keys are captured, not reduced.
  std::vector<Status> status(n);
  ForEachShard(n, [&](int s) {
    status[s] = view.pipelines[s]->BootstrapPrepare(structure_parts[s],
                                                    state_parts[s]);
  });
  I2MR_RETURN_IF_ERROR(FirstError(status));

  // Collect each shard's complete boundary set (captured by the MRBGraph
  // preservation pass) and iterate exchange rounds to the joint fixpoint.
  std::vector<std::vector<DeltaEdge>> offers(n);
  std::vector<Status> round_status(n);
  ForEachShard(n, [&](int s) {
    auto rr = view.pipelines[s]->RefreshRound(/*first=*/false, {});
    if (!rr.ok()) {
      round_status[s] = rr.status();
      return;
    }
    offers[s] = std::move(rr->exports);
  });
  Status st = FirstError(round_status);
  if (st.ok()) {
    auto rounds = RunExchangeRounds(exchange_.get(), std::move(offers),
                                    nullptr);
    st = rounds.ok() ? Status::OK() : rounds.status();
  }
  if (!st.ok()) {
    MarkAllDirty();
    return st;
  }
  // Epoch 0 lands on every shard atomically.
  return CommitBarrier(/*epoch=*/0);
}

bool ShardRouter::bootstrapped() const {
  TopologyView view = topology();
  for (Pipeline* pipeline : view.pipelines) {
    if (!pipeline->bootstrapped()) return false;
  }
  return !view.pipelines.empty();
}

// ---------------------------------------------------------------------------
// Routed ingestion + lookups
// ---------------------------------------------------------------------------

StatusOr<uint64_t> ShardRouter::Append(const DeltaKV& delta) {
  if (poisoned_.load()) {
    // A durable decision (a barrier record or a reshard marker) already
    // supersedes the live topology: an ack against this generation's log
    // could be discarded by the recovery that resolves the poison. Refuse
    // like Lookup does — an acked append must survive recovery.
    return Status::FailedPrecondition(
        "a barrier commit or reshard cutover was left incomplete; appends "
        "are refused until recovery");
  }
  // The gate is shared for normal traffic; a reshard holds it exclusive
  // only for the watermark fence and the final cutover, so appends pause
  // for microseconds-to-one-epoch, never for the whole move.
  std::shared_lock<std::shared_mutex> gate(append_gate_);
  TopologyView view = topology();
  auto seq = view.pipelines[view.map->ShardOf(delta.key)]->Append(delta);
  // Successes only: a failed log append was not routed into any shard.
  if (seq.ok()) {
    deltas_routed_->Increment();
    // Mid-reshard: dual-journal the delta to the destination fleet (the
    // sink routes by the next generation's map). The mirror runs
    // synchronously before the ack, so appends the caller serializes
    // reach the staging logs in that order; only appends racing on the
    // SAME key can land in the donor log and the staging log in opposite
    // orders (no order was promised to the racing callers to begin with).
    if (journal_) journal_(delta);
  }
  return seq;
}

Status ShardRouter::AppendBatch(const std::vector<DeltaKV>& deltas) {
  if (poisoned_.load()) {
    return Status::FailedPrecondition(
        "a barrier commit or reshard cutover was left incomplete; appends "
        "are refused until recovery");
  }
  std::shared_lock<std::shared_mutex> gate(append_gate_);
  TopologyView view = topology();
  const int n = view.map->num_shards;
  std::vector<std::vector<DeltaKV>> parts(n);
  for (const auto& d : deltas) parts[view.map->ShardOf(d.key)].push_back(d);
  std::vector<int> targets;
  for (int s = 0; s < n; ++s) {
    if (!parts[s].empty()) targets.push_back(s);
  }
  auto journal_part = [this](const std::vector<DeltaKV>& part) {
    if (!journal_) return;
    for (const auto& d : part) journal_(d);
  };
  if (targets.size() == 1) {
    auto seq = view.pipelines[targets[0]]->AppendBatch(parts[targets[0]]);
    if (!seq.ok()) return seq.status();
    deltas_routed_->Add(static_cast<int64_t>(parts[targets[0]].size()));
    journal_part(parts[targets[0]]);
    return Status::OK();
  }
  // Shard logs are independent: overlap the per-shard appends so a synced
  // (kPowerFailure) batch pays max(shard fsync), not sum over shards.
  std::vector<Status> status(targets.size());
  std::vector<std::thread> threads;
  threads.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    threads.emplace_back([&view, i, &targets, &parts, &status] {
      auto seq = view.pipelines[targets[i]]->AppendBatch(parts[targets[i]]);
      status[i] = seq.ok() ? Status::OK() : seq.status();
    });
  }
  for (auto& t : threads) t.join();
  // Count only the sub-batches whose append succeeded (a failed shard's
  // records never reached its log).
  int64_t routed = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    if (status[i].ok()) {
      routed += static_cast<int64_t>(parts[targets[i]].size());
      journal_part(parts[targets[i]]);
    }
  }
  if (routed > 0) deltas_routed_->Add(routed);
  return FirstError(status);
}

StatusOr<std::string> ShardRouter::Lookup(const std::string& key) const {
  if (poisoned_.load()) {
    // A barrier commit died between the decision record and the last
    // CURRENT flip: some shards serve epoch N, others N-1, and recovery
    // will roll N back — answers from it would be retroactively
    // un-committed. Refuse, like PinSnapshot does.
    return Status::FailedPrecondition(
        "a barrier commit was left incomplete; reopen the router "
        "(reset=false) to recover");
  }
  TopologyView view = topology();
  auto result = view.pipelines[view.map->ShardOf(key)]->Lookup(key);
  // An answered lookup — including a definitive NotFound — was served; a
  // shard that failed to answer (e.g. not bootstrapped) was not.
  if (result.ok() || result.status().IsNotFound()) {
    lookups_routed_->Increment();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Epoch scheduling
// ---------------------------------------------------------------------------

void ShardRouter::Start() {
  if (!options_.cross_shard_exchange) {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    for (const auto& shard : shards_) shard->manager->Start();
    return;
  }
  bool expected = false;
  if (!coordinating_.compare_exchange_strong(expected, true)) return;
  // One coordinator instead of per-shard schedulers: epochs must advance
  // in lockstep or the exchange would fold contributions into the wrong
  // epoch. Polls like the managers do; consults the tenant's epoch quota
  // once per coordinated epoch.
  coordinator_ = std::thread([this] {
    const auto poll = std::chrono::microseconds(
        static_cast<int64_t>(options_.manager.poll_interval_ms * 1000));
    // Failure backoff: consecutive failed coordinated epochs (a sick disk
    // fails every tick) back off exponentially instead of hammering the
    // same fault at poll rate. Sliced sleeps keep Stop() responsive.
    int failures = 0;
    auto backoff_sleep = [this](int64_t ms) {
      const int64_t deadline = NowNanos() + ms * 1000000;
      while (coordinating_.load() && NowNanos() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    };
    while (coordinating_.load()) {
      bool ready = false;
      for (Pipeline* pipeline : topology().pipelines) {
        if (pipeline->EpochReady()) {
          ready = true;
          break;
        }
      }
      // A pending roll-forward counts as ready even with the router
      // poisoned: RefreshCoordinated resumes the interrupted barrier
      // before (or instead of) taking new work.
      const bool resumable = pending_flip_epoch_.load() != 0;
      if ((ready && !poisoned_.load()) || resumable) {
        bool admitted = resumable || options_.admission == nullptr ||
                        options_.tenant.empty() ||
                        options_.admission->AdmitEpoch(options_.tenant);
        if (admitted) {
          auto st = RefreshCoordinated();
          if (!st.ok()) {
            ++failures;
            int64_t backoff_ms = std::min<int64_t>(
                5000, 100LL << std::min(failures - 1, 20));
            LOG_WARN << "serving " << name_ << ": coordinated epoch failed ("
                     << st.status().ToString() << "); backing off "
                     << backoff_ms << "ms";
            health_->Report("serving." + name_, HealthState::kDegraded,
                            st.status().ToString());
            backoff_sleep(backoff_ms);
          } else {
            if (failures > 0) {
              health_->Report("serving." + name_, HealthState::kHealthy);
            }
            failures = 0;
          }
        }
      }
      std::this_thread::sleep_for(poll);
    }
  });
}

void ShardRouter::Stop() {
  if (coordinating_.exchange(false)) {
    if (coordinator_.joinable()) coordinator_.join();
  }
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    for (const auto& shard : shards_) shard->manager->Stop();
    for (const auto& shard : retired_) shard->manager->Stop();
  }
}

Status ShardRouter::DrainAll() {
  if (options_.cross_shard_exchange) {
    while (true) {
      auto st = RefreshCoordinated();
      if (!st.ok()) return st.status();
      if (TotalPending() == 0) return Status::OK();
    }
  }
  TopologyView view = topology();
  const int n = static_cast<int>(view.pipelines.size());
  std::vector<Status> status(n);
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    std::vector<PipelineManager*> managers;
    managers.reserve(n);
    for (const auto& shard : shards_) managers.push_back(shard->manager.get());
    topo.unlock();
    ForEachShard(n, [&](int s) { status[s] = managers[s]->DrainAll(); });
  }
  return FirstError(status);
}

uint64_t ShardRouter::TotalPending() const {
  uint64_t total = 0;
  for (Pipeline* pipeline : topology().pipelines) total += pipeline->pending();
  return total;
}

std::vector<uint64_t> ShardRouter::CommittedEpochs() const {
  TopologyView view = topology();
  std::vector<uint64_t> epochs;
  epochs.reserve(view.pipelines.size());
  for (Pipeline* pipeline : view.pipelines) {
    epochs.push_back(pipeline->committed_epoch());
  }
  return epochs;
}

// ---------------------------------------------------------------------------
// Coordinated epochs: exchange rounds + barrier commit
// ---------------------------------------------------------------------------

void ShardRouter::MarkAllDirty() {
  for (Pipeline* pipeline : topology().pipelines) pipeline->AbortCoordinated();
}

StatusOr<int> ShardRouter::RunExchangeRounds(
    CrossShardExchange* exchange, std::vector<std::vector<DeltaEdge>> offers,
    uint64_t* edges_exchanged) {
  TopologyView view = topology();
  const int n = view.map->num_shards;
  const double eps = options_.pipeline.spec.convergence_epsilon;
  int rounds = 0;
  bool absorb_and_stop = false;
  while (true) {
    bool any_offer = false;
    for (int s = 0; s < n; ++s) {
      if (offers[s].empty()) continue;
      any_offer = true;
      I2MR_RETURN_IF_ERROR(exchange->Offer(s, std::move(offers[s])));
      offers[s].clear();
    }
    // No shard exported anything new: exact joint fixpoint (SSSP/ConComp
    // land here; their converged exports stop changing bit for bit).
    if (!any_offer) break;
    TRACE_SPAN("exchange.round", "round=%d", rounds);
    auto inbound = exchange->Route();
    if (edges_exchanged != nullptr) {
      for (const auto& batch : inbound) *edges_exchanged += batch.size();
    }
    if (absorb_and_stop || rounds >= options_.max_exchange_rounds) {
      // The previous round's refreshes moved state by at most the
      // convergence epsilon (or we hit the safety cap — same contract as
      // the engine silently stopping at max_iterations), so these final
      // exports carry only sub-epsilon changes. Absorb them: fold AND
      // re-reduce on the owners, so the state that commits already
      // includes every routed contribution — no re-reduce obligation
      // survives the epoch (it would live only in memory and be lost to
      // a restart, or never absorbed on an idle fleet). The absorb
      // round's own re-exports are dropped; receivers pick those values
      // up when the emitting instances next re-execute, keeping the
      // deviation inside the same epsilon bound.
      if (rounds >= options_.max_exchange_rounds) {
        LOG_WARN << "serving " << name_ << ": exchange hit the "
                 << options_.max_exchange_rounds
                 << "-round cap before the joint fixpoint; committing the "
                 << "state reached (raise max_exchange_rounds or epsilon)";
      }
      std::vector<Status> status(n);
      ForEachShard(n, [&](int s) {
        if (inbound[s].empty()) return;
        auto rr = view.pipelines[s]->RefreshRound(/*first=*/false,
                                                  inbound[s]);
        status[s] = rr.ok() ? Status::OK() : rr.status();
      });
      I2MR_RETURN_IF_ERROR(FirstError(status));
      break;
    }
    ++rounds;
    // Barrier round: every shard with inbound contributions folds and
    // refreshes; a fold that changes nothing skips the refresh and
    // exports nothing, which is what drains the loop.
    std::vector<Status> status(n);
    std::vector<Pipeline::RoundResult> results(n);
    ForEachShard(n, [&](int s) {
      if (inbound[s].empty()) return;
      auto rr = view.pipelines[s]->RefreshRound(/*first=*/false,
                                                inbound[s]);
      if (!rr.ok()) {
        status[s] = rr.status();
        return;
      }
      results[s] = std::move(*rr);
    });
    I2MR_RETURN_IF_ERROR(FirstError(status));
    // The convergence gate rides on the RECEIVERS' state movement after
    // the fold (an exporter whose own state never changed says nothing
    // about the impact of its exports): once a whole round of re-reduces
    // stays within epsilon, the remaining exports are sub-epsilon.
    bool any_refreshed = false;
    double round_diff = 0;
    for (int s = 0; s < n; ++s) {
      any_refreshed = any_refreshed || results[s].refreshed;
      round_diff += results[s].total_diff;
      offers[s] = std::move(results[s].exports);
    }
    if (any_refreshed && round_diff <= eps) absorb_and_stop = true;
  }
  return rounds;
}

StatusOr<ShardRouter::CoordinatedEpochStats> ShardRouter::RefreshCoordinated() {
  std::lock_guard<std::mutex> lock(coord_mu_);
  return RefreshCoordinatedLocked();
}

StatusOr<ShardRouter::CoordinatedEpochStats>
ShardRouter::RefreshCoordinatedLocked() {
  CoordinatedEpochStats stats;
  WallTimer wall;
  TRACE_SPAN("serving.coordinated_epoch", "router=%s shards=%d", name_.c_str(),
             num_shards());
  if (!options_.cross_shard_exchange) {
    return Status::FailedPrecondition(
        "RefreshCoordinated requires cross_shard_exchange");
  }
  if (poisoned_.load()) {
    if (pending_flip_epoch_.load() != 0) {
      // The interrupted barrier was *decided* (record durable, staged
      // slots intact): roll it forward before taking new work. Failure
      // keeps the router poisoned and the next tick retries.
      Status resumed = ResumeBarrierLocked();
      if (!resumed.ok()) {
        return Status::Unavailable(
            "interrupted barrier commit not yet rolled forward: " +
            resumed.ToString());
      }
    } else {
      return Status::FailedPrecondition(
          "a barrier commit was left incomplete; reopen the router "
          "(reset=false) to recover");
    }
  }
  if (!bootstrapped()) {
    return Status::FailedPrecondition("router not bootstrapped");
  }
  if (TotalPending() == 0) {
    stats.wall_ms = wall.ElapsedMillis();
    return stats;  // nothing to commit anywhere
  }

  // The topology is stable for the whole locked body: a reshard cutover
  // swaps it only while holding coord_mu_ (coordinated fleets).
  TopologyView view = topology();
  const int n = view.map->num_shards;
  // Round 0: every shard drains its log and refreshes its own subgraph,
  // capturing boundary exports.
  std::vector<Status> status(n);
  std::vector<Pipeline::RoundResult> results(n);
  ForEachShard(n, [&](int s) {
    auto rr = view.pipelines[s]->RefreshRound(/*first=*/true, {});
    if (!rr.ok()) {
      status[s] = rr.status();
      return;
    }
    results[s] = std::move(*rr);
  });
  Status st = FirstError(status);
  if (!st.ok()) {
    MarkAllDirty();
    return st;
  }
  std::vector<std::vector<DeltaEdge>> offers(n);
  std::vector<uint64_t> drained(n, 0);
  for (int s = 0; s < n; ++s) {
    offers[s] = std::move(results[s].exports);
    drained[s] = results[s].deltas_drained;
    stats.deltas_applied += results[s].deltas_drained;
  }

  auto rounds = RunExchangeRounds(exchange_.get(), std::move(offers),
                                  &stats.edges_exchanged);
  if (!rounds.ok()) {
    MarkAllDirty();
    return rounds.status();
  }
  stats.rounds = *rounds;

  // Everyone commits the same epoch N (vectors stay uniform: coordinated
  // mode is the only committer).
  uint64_t epoch = 0;
  for (uint64_t e : CommittedEpochs()) epoch = std::max(epoch, e);
  ++epoch;
  I2MR_RETURN_IF_ERROR(CommitBarrier(epoch));
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    for (int s = 0; s < n; ++s) {
      shard_epochs_committed_[s]->Increment();
      if (drained[s] > 0) {
        shard_deltas_applied_[s]->Add(static_cast<int64_t>(drained[s]));
      }
    }
  }
  stats.committed = true;
  stats.epoch = epoch;
  stats.wall_ms = wall.ElapsedMillis();
  return stats;
}

Status ShardRouter::CommitBarrier(uint64_t epoch) {
  TopologyView view = topology();
  const int n = view.map->num_shards;
  auto crashed = [this](const std::string& stage) {
    if (options_.barrier_crash_hook && options_.barrier_crash_hook(stage)) {
      return true;
    }
    if (fault::FaultInjector::Armed()) {
      return fault::FaultInjector::Instance()->AtCrashPoint("barrier/" + stage);
    }
    return false;
  };
  auto fail = [this](Status st) {
    MarkAllDirty();
    return st;
  };

  // Phase 1 (prepare): stage every shard's epoch dir. Nothing is visible
  // yet — a crash in here leaves orphan dirs the pipelines GC on reopen,
  // and every CURRENT still names N-1.
  trace::ScopedSpan stage_span("barrier.stage", "epoch=%llu",
                               static_cast<unsigned long long>(epoch));
  std::vector<Status> status(n);
  ForEachShard(n, [&](int s) {
    status[s] = view.pipelines[s]->StageEpoch(epoch, nullptr);
  });
  stage_span.End();
  Status staged = FirstError(status);
  if (!staged.ok()) return fail(staged);
  if (crashed("staged")) {
    return fail(Status::Aborted("simulated coordinator crash after staging"));
  }

  // Decision record: once BARRIER is durable the epoch is decided; a crash
  // from here on is rolled back to N-1 everywhere by RecoverBarrier (the
  // log is not purged until after the barrier, so the deltas replay).
  const bool sync = options_.pipeline.durability == DurabilityMode::kPowerFailure;
  trace::ScopedSpan record_span("barrier.record", "epoch=%llu",
                                static_cast<unsigned long long>(epoch));
  std::string payload;
  PutFixed64(&payload, epoch);
  std::string record = payload;
  PutFixed32(&record, Crc32(payload));
  const std::string barrier_path = BarrierPathFor(root_, name_, *view.map);
  std::string tmp = barrier_path + ".tmp";
  Status wrote = WriteStringToFile(tmp, record, sync);
  if (wrote.ok()) wrote = RenameFile(tmp, barrier_path);
  if (wrote.ok() && sync) wrote = SyncDir(root_);
  record_span.End();
  if (!wrote.ok()) return fail(wrote);
  if (crashed("barrier")) {
    return fail(
        Status::Aborted("simulated coordinator crash after barrier record"));
  }

  // Phase 2 (flip): swing every shard's CURRENT. Sequential on purpose —
  // a failure mid-flip must stop immediately and leave the barrier record
  // in place for recovery; no GC or log purge happens until all flipped.
  // The seqlock goes odd around the flips so a concurrent PinSnapshot
  // retries instead of observing a mixed vector mid-publication; on a
  // mid-flip failure the router stays poisoned and pins are refused.
  trace::ScopedSpan flip_span("barrier.flip", "epoch=%llu",
                              static_cast<unsigned long long>(epoch));
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
  auto fail_mid_flip = [&](Status st) {
    poisoned_.store(true);
    commit_seq_.fetch_add(1, std::memory_order_acq_rel);  // release readers
    return fail(st);
  };
  // A *real* I/O failure past the decision record is recoverable without
  // a reopen: the epoch is decided (BARRIER durable) and every unflipped
  // shard's staged slot is still valid, so the commit can roll *forward*
  // once the disk heals. Keep the slots (no MarkAllDirty), poison reads,
  // and arm the resume path. Bootstrap (epoch 0) stays non-resumable —
  // its rollback lands on "nothing committed", which reopen handles.
  auto fail_resumable = [&](Status st) {
    if (epoch == 0) return fail_mid_flip(std::move(st));
    poisoned_.store(true);
    pending_flip_epoch_.store(epoch);
    commit_seq_.fetch_add(1, std::memory_order_acq_rel);  // release readers
    LOG_WARN << "serving " << name_ << ": barrier commit of epoch " << epoch
             << " interrupted by I/O failure (" << st.ToString()
             << "); will roll forward on the next coordinated tick";
    health_->Report("serving." + name_, HealthState::kDegraded,
                    "barrier commit of epoch " + std::to_string(epoch) +
                        " awaiting roll-forward: " + st.ToString());
    return st;
  };
  for (int s = 0; s < n; ++s) {
    Status flipped = view.pipelines[s]->FinalizeStagedEpoch();
    if (!flipped.ok()) return fail_resumable(std::move(flipped));
    if (s == 0 && crashed("mid_flip")) {
      return fail_mid_flip(
          Status::Aborted("simulated coordinator crash mid-flip"));
    }
  }
  if (crashed("flipped")) {
    return fail_mid_flip(
        Status::Aborted("simulated coordinator crash before barrier removal"));
  }
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
  flip_span.End();

  // Barrier complete: retire the decision record, then housekeeping (GC of
  // superseded epoch dirs + log purges) — deferred until now because a
  // rollback needs the N-1 dirs and the unpurged logs.
  TRACE_SPAN("barrier.cleanup", "epoch=%llu",
             static_cast<unsigned long long>(epoch));
  Status cleared = RemoveAll(barrier_path);
  if (cleared.ok() && sync) cleared = SyncDir(root_);
  if (!cleared.ok()) {
    // The commit stands (every CURRENT names N) but the stale barrier
    // record would trigger a needless rollback on reopen. Resumable like
    // a mid-flip failure: the next coordinated tick finds every shard
    // already on N and just retries the removal.
    if (epoch > 0) {
      poisoned_.store(true);
      pending_flip_epoch_.store(epoch);
      LOG_WARN << "serving " << name_ << ": barrier record of epoch " << epoch
               << " not retired (" << cleared.ToString()
               << "); will retry on the next coordinated tick";
      health_->Report("serving." + name_, HealthState::kDegraded,
                      "barrier record removal pending: " + cleared.ToString());
      return cleared;
    }
    poisoned_.store(true);
    return fail(cleared);
  }
  ForEachShard(n, [&](int s) {
    Status cleaned = view.pipelines[s]->CleanupCommitted();
    if (!cleaned.ok()) {
      LOG_WARN << "serving " << name_ << ": shard " << s
               << " post-barrier cleanup failed (" << cleaned.ToString()
               << ")";
    }
  });
  return Status::OK();
}

Status ShardRouter::ResumeBarrierLocked() {
  const uint64_t epoch = pending_flip_epoch_.load();
  TopologyView view = topology();
  const int n = view.map->num_shards;
  const bool sync =
      options_.pipeline.durability == DurabilityMode::kPowerFailure;
  TRACE_SPAN("barrier.resume", "epoch=%llu",
             static_cast<unsigned long long>(epoch));
  // Finish the flips sequentially, exactly like the interrupted phase 2.
  // FinalizeStagedEpoch is idempotent up to the CURRENT rename, and a
  // shard that already flipped reports committed_epoch() == epoch. The
  // seqlock goes odd around the flips for symmetry (pins are refused
  // while poisoned anyway).
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
  Status st;
  for (int s = 0; s < n && st.ok(); ++s) {
    if (view.pipelines[s]->committed_epoch() >= epoch) continue;
    st = view.pipelines[s]->FinalizeStagedEpoch();
  }
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
  if (!st.ok()) return st;  // still poisoned; retried next tick

  Status cleared = RemoveAll(BarrierPathFor(root_, name_, *view.map));
  if (cleared.ok() && sync) cleared = SyncDir(root_);
  if (!cleared.ok()) return cleared;  // commit stands; retried next tick

  pending_flip_epoch_.store(0);
  poisoned_.store(false);
  {
    std::shared_lock<std::shared_mutex> topo(topo_mu_);
    for (int s = 0; s < n; ++s) shard_epochs_committed_[s]->Increment();
  }
  ForEachShard(n, [&](int s) {
    Status cleaned = view.pipelines[s]->CleanupCommitted();
    if (!cleaned.ok()) {
      LOG_WARN << "serving " << name_ << ": shard " << s
               << " post-barrier cleanup failed (" << cleaned.ToString()
               << ")";
    }
  });
  LOG_INFO << "serving " << name_ << ": rolled interrupted barrier commit of "
           << "epoch " << epoch << " forward";
  health_->Report("serving." + name_, HealthState::kHealthy);
  return Status::OK();
}

Status ShardRouter::RecoverBarrier(const std::string& root,
                                   const std::string& name,
                                   const ShardRouterOptions& options,
                                   const PartitionMap& map) {
  const std::string barrier = BarrierPathFor(root, name, map);
  if (!FileExists(barrier)) return Status::OK();
  auto data = ReadFileToString(barrier);
  if (!data.ok()) return data.status();
  if (data->size() != 12) return Status::Corruption("bad BARRIER record size");
  std::string_view payload(data->data(), 8);
  if (DecodeFixed32(data->data() + 8) != Crc32(payload)) {
    return Status::Corruption("BARRIER record crc mismatch");
  }
  const uint64_t epoch = DecodeFixed64(data->data());
  const std::string epoch_name = Pipeline::EpochDirName(epoch);
  const bool sync =
      options.pipeline.durability == DurabilityMode::kPowerFailure;

  for (int s = 0; s < map.num_shards; ++s) {
    std::string pdir = PipelineDirOf(root, name, map, s);
    std::string current_path = JoinPath(pdir, "CURRENT");
    if (FileExists(current_path)) {
      auto current = ReadFileToString(current_path);
      if (!current.ok()) return current.status();
      if (*current == epoch_name) {
        // This shard already flipped: rewind to its previous epoch (GC and
        // log purges are barred until after the barrier, so the previous
        // dir is still there and the drained deltas still replay).
        if (epoch == 0) {
          // A bootstrap barrier rolls back to "nothing committed".
          I2MR_RETURN_IF_ERROR(RemoveAll(current_path));
        } else {
          uint64_t prev = 0;
          bool found = false;
          std::error_code ec;
          std::filesystem::directory_iterator it(pdir, ec), end;
          if (ec) {
            return Status::IOError("list " + pdir + ": " + ec.message());
          }
          for (; it != end; it.increment(ec)) {
            if (ec) {
              return Status::IOError("list " + pdir + ": " + ec.message());
            }
            std::string base = it->path().filename().string();
            if (base.rfind("epoch-", 0) != 0 || base == epoch_name) continue;
            if (base.size() > 4 &&
                base.compare(base.size() - 4, 4, ".tmp") == 0) {
              continue;
            }
            uint64_t e = std::strtoull(base.c_str() + 6, nullptr, 10);
            if (e < epoch && (!found || e > prev)) {
              prev = e;
              found = true;
            }
          }
          if (!found) {
            return Status::Corruption(
                "shard " + std::to_string(s) + " flipped to " + epoch_name +
                " but has no previous epoch to roll back to");
          }
          std::string tmp = current_path + ".tmp";
          I2MR_RETURN_IF_ERROR(
              WriteStringToFile(tmp, Pipeline::EpochDirName(prev), sync));
          I2MR_RETURN_IF_ERROR(RenameFile(tmp, current_path));
          if (sync) I2MR_RETURN_IF_ERROR(SyncDir(pdir));
        }
      }
    }
    // Staged (or flipped-then-rewound) epoch dir: gone either way.
    std::string staged_dir = JoinPath(pdir, epoch_name);
    if (FileExists(staged_dir)) I2MR_RETURN_IF_ERROR(RemoveAll(staged_dir));
  }
  I2MR_RETURN_IF_ERROR(RemoveAll(barrier));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(root));
  return Status::OK();
}

void ShardRouter::AdoptTopology(std::vector<std::unique_ptr<Shard>> shards,
                                std::unique_ptr<CrossShardExchange> exchange,
                                std::shared_ptr<const PartitionMap> map,
                                std::vector<Counter*> epochs_committed,
                                std::vector<Counter*> deltas_applied) {
  // The swap itself: pointer moves under the exclusive topology lock,
  // bracketed by the barrier-flip seqlock so coordinated pins retry
  // instead of pinning across two generations. Old slices move to
  // retired_ (the caller stops their managers afterwards); their
  // pipelines stay alive so pre-cutover pins and views keep serving the
  // old map until the router dies.
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock<std::shared_mutex> topo(topo_mu_);
    for (auto& shard : shards_) retired_.push_back(std::move(shard));
    shards_ = std::move(shards);
    exchange_ = std::move(exchange);
    map_ = std::move(map);
    shard_epochs_committed_ = std::move(epochs_committed);
    shard_deltas_applied_ = std::move(deltas_applied);
    options_.num_shards = map_->num_shards;
    options_.pipeline.generation = map_->generation;
  }
  commit_seq_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace i2mr
