#include "serving/shard_router.h"

#include <cstdio>
#include <thread>

#include "common/hash.h"
#include "io/env.h"

namespace i2mr {
namespace {

std::string ShardDirName(int s) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard-%03d", s);
  return buf;
}

std::string ShardMetricsPrefix(const std::string& name, int s) {
  return "serving." + name + ".shard" + std::to_string(s);
}

}  // namespace

ShardRouter::ShardRouter(std::string name, ShardRouterOptions options)
    : name_(std::move(name)), options_(std::move(options)) {}

ShardRouter::~ShardRouter() { Stop(); }

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    const std::string& root, const std::string& name,
    ShardRouterOptions options) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be > 0");
  }
  if (options.metrics == nullptr) options.metrics = MetricsRegistry::Default();
  std::unique_ptr<ShardRouter> router(
      new ShardRouter(name, std::move(options)));
  const ShardRouterOptions& opts = router->options_;
  I2MR_RETURN_IF_ERROR(CreateDirs(root));
  for (int s = 0; s < opts.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Each shard's cluster root is disjoint by construction; reset=false
    // re-attaches all of them for crash recovery (collision-free now that
    // LocalCluster job dirs are instance-namespaced).
    shard->cluster = std::make_unique<LocalCluster>(
        JoinPath(root, ShardDirName(s)), opts.workers_per_shard, opts.cost,
        opts.reset);
    PipelineManagerOptions mopts = opts.manager;
    mopts.metrics = opts.metrics;
    mopts.metrics_prefix = ShardMetricsPrefix(name, s);
    if (opts.admission != nullptr && !opts.tenant.empty()) {
      // The tenant's epoch quota gates every shard's refresh scheduling.
      AdmissionController* admission = opts.admission;
      std::string tenant = opts.tenant;
      mopts.epoch_gate = [admission, tenant](const Pipeline&) {
        return admission->AdmitEpoch(tenant);
      };
    }
    shard->manager =
        std::make_unique<PipelineManager>(shard->cluster.get(), mopts);
    auto pipeline = shard->manager->Register(name, opts.pipeline);
    if (!pipeline.ok()) return pipeline.status();
    shard->pipeline = pipeline.value();
    router->shards_.push_back(std::move(shard));
  }
  router->deltas_routed_ =
      opts.metrics->Get("serving." + name + ".router.deltas_routed");
  router->lookups_routed_ =
      opts.metrics->Get("serving." + name + ".router.lookups_routed");
  return router;
}

int ShardRouter::ShardOf(std::string_view key) const {
  return static_cast<int>(Hash64(key) % shards_.size());
}

Status ShardRouter::Bootstrap(const std::vector<KV>& structure,
                              const std::vector<KV>& initial_state) {
  const int n = num_shards();
  std::vector<std::vector<KV>> structure_parts(n), state_parts(n);
  for (const auto& kv : structure) structure_parts[ShardOf(kv.key)].push_back(kv);
  for (const auto& kv : initial_state) state_parts[ShardOf(kv.key)].push_back(kv);
  // Shards bootstrap concurrently: each runs its full computation on its
  // own cluster's worker pool.
  std::vector<Status> status(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int s = 0; s < n; ++s) {
    threads.emplace_back([this, s, &structure_parts, &state_parts, &status] {
      status[s] =
          shards_[s]->pipeline->Bootstrap(structure_parts[s], state_parts[s]);
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

bool ShardRouter::bootstrapped() const {
  for (const auto& shard : shards_) {
    if (!shard->pipeline->bootstrapped()) return false;
  }
  return !shards_.empty();
}

StatusOr<uint64_t> ShardRouter::Append(const DeltaKV& delta) {
  deltas_routed_->Increment();
  return shards_[ShardOf(delta.key)]->pipeline->Append(delta);
}

Status ShardRouter::AppendBatch(const std::vector<DeltaKV>& deltas) {
  const int n = num_shards();
  std::vector<std::vector<DeltaKV>> parts(n);
  for (const auto& d : deltas) parts[ShardOf(d.key)].push_back(d);
  deltas_routed_->Add(static_cast<int64_t>(deltas.size()));
  std::vector<int> targets;
  for (int s = 0; s < n; ++s) {
    if (!parts[s].empty()) targets.push_back(s);
  }
  if (targets.size() == 1) {
    auto seq = shards_[targets[0]]->pipeline->AppendBatch(parts[targets[0]]);
    return seq.ok() ? Status::OK() : seq.status();
  }
  // Shard logs are independent: overlap the per-shard appends so a synced
  // (kPowerFailure) batch pays max(shard fsync), not sum over shards.
  std::vector<Status> status(targets.size());
  std::vector<std::thread> threads;
  threads.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    threads.emplace_back([this, i, &targets, &parts, &status] {
      auto seq = shards_[targets[i]]->pipeline->AppendBatch(parts[targets[i]]);
      status[i] = seq.ok() ? Status::OK() : seq.status();
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

StatusOr<std::string> ShardRouter::Lookup(const std::string& key) const {
  lookups_routed_->Increment();
  return shards_[ShardOf(key)]->pipeline->Lookup(key);
}

void ShardRouter::Start() {
  for (const auto& shard : shards_) shard->manager->Start();
}

void ShardRouter::Stop() {
  for (const auto& shard : shards_) shard->manager->Stop();
}

Status ShardRouter::DrainAll() {
  std::vector<Status> status(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    threads.emplace_back(
        [this, s, &status] { status[s] = shards_[s]->manager->DrainAll(); });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : status) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

uint64_t ShardRouter::TotalPending() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->pipeline->pending();
  return total;
}

std::vector<uint64_t> ShardRouter::CommittedEpochs() const {
  std::vector<uint64_t> epochs;
  epochs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    epochs.push_back(shard->pipeline->committed_epoch());
  }
  return epochs;
}

}  // namespace i2mr
