#include "serving/partition_map.h"

#include <cstdio>

#include "common/codec.h"
#include "io/env.h"

namespace i2mr {

std::string PartitionMap::ShardDirName(int shard) const {
  char buf[64];
  if (generation == 0) {
    std::snprintf(buf, sizeof(buf), "shard-%03d", shard);
  } else {
    std::snprintf(buf, sizeof(buf), "g%llu-shard-%03d",
                  static_cast<unsigned long long>(generation), shard);
  }
  return buf;
}

std::string PartitionMap::ShardMetricsPrefix(const std::string& name,
                                             int shard) const {
  std::string prefix = "serving." + name + ".";
  if (generation != 0) prefix += "g" + std::to_string(generation) + ".";
  return prefix + "shard" + std::to_string(shard);
}

std::string PartitionMap::Encode() const {
  std::string payload;
  PutFixed64(&payload, generation);
  PutFixed32(&payload, static_cast<uint32_t>(num_shards));
  std::string record = payload;
  PutFixed32(&record, Crc32(payload));
  return record;
}

StatusOr<PartitionMap> PartitionMap::Decode(std::string_view data) {
  if (data.size() != 16) {
    return Status::Corruption("bad partition-map record size");
  }
  std::string_view payload(data.data(), 12);
  if (DecodeFixed32(data.data() + 12) != Crc32(payload)) {
    return Status::Corruption("partition-map record crc mismatch");
  }
  PartitionMap map;
  map.generation = DecodeFixed64(data.data());
  map.num_shards = static_cast<int>(DecodeFixed32(data.data() + 8));
  if (map.num_shards <= 0) {
    return Status::Corruption("partition-map record names zero shards");
  }
  return map;
}

std::string PartitionMap::RecordPath(const std::string& root,
                                     const std::string& name) {
  return JoinPath(root, name + ".PARTMAP");
}

Status PartitionMap::Save(const std::string& path, const PartitionMap& map,
                          bool sync) {
  std::string tmp = path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, map.Encode(), sync));
  I2MR_RETURN_IF_ERROR(RenameFile(tmp, path));
  if (sync) {
    std::string dir = path;
    size_t slash = dir.find_last_of('/');
    if (slash != std::string::npos) {
      I2MR_RETURN_IF_ERROR(SyncDir(dir.substr(0, slash)));
    }
  }
  return Status::OK();
}

StatusOr<PartitionMap> PartitionMap::Load(const std::string& path) {
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  return Decode(*data);
}

}  // namespace i2mr
