// SparkSim (§8.7 comparison): an in-memory partitioned-dataset engine in
// the style of Spark RDDs. Datasets are immutable, hash-partitioned by key,
// and eagerly materialized in memory. A memory manager enforces a cluster
// memory budget: when live datasets exceed it, victim datasets are spilled
// to disk and later reads stream them back from files — reproducing the
// paper's observation that Spark wins while everything is memory-resident
// and degrades once input + intermediate data exhaust the heap.
#ifndef I2MR_BASELINES_SPARK_SIM_H_
#define I2MR_BASELINES_SPARK_SIM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace i2mr {
namespace sparksim {

struct Options {
  int num_partitions = 4;
  /// Total memory budget for live datasets, in bytes.
  size_t memory_budget_bytes = 64u << 20;
  /// Where spilled partitions go.
  std::string spill_dir;
  /// Optional worker pool for per-partition parallelism.
  ThreadPool* pool = nullptr;
};

struct Stats {
  uint64_t spill_events = 0;
  uint64_t spilled_bytes = 0;
  uint64_t disk_read_bytes = 0;
};

class SparkSim;

/// Immutable partitioned dataset (RDD stand-in). Obtain via SparkSim ops.
class Dataset {
 public:
  size_t bytes() const { return bytes_; }
  bool spilled() const { return spilled_; }
  int id() const { return id_; }

 private:
  friend class SparkSim;
  std::vector<std::vector<KV>> parts_;
  std::vector<std::string> spill_paths_;
  bool spilled_ = false;
  size_t bytes_ = 0;
  int id_ = 0;
};

using DatasetPtr = std::shared_ptr<Dataset>;

class SparkSim {
 public:
  explicit SparkSim(Options options);

  /// Create a dataset from records (hash-partitioned by key).
  StatusOr<DatasetPtr> Parallelize(const std::vector<KV>& records);

  /// Per-record transform emitting zero or more records.
  StatusOr<DatasetPtr> FlatMap(
      const DatasetPtr& in,
      const std::function<void(const KV&, std::vector<KV>*)>& fn);

  /// Join two datasets on key (keys unique within each side) and emit
  /// records. Partitions are aligned, so no shuffle is needed.
  StatusOr<DatasetPtr> JoinFlatMap(
      const DatasetPtr& left, const DatasetPtr& right,
      const std::function<void(const std::string& key, const std::string& lv,
                               const std::string& rv, std::vector<KV>*)>& fn);

  /// Aggregate values per key with a binary combine function.
  StatusOr<DatasetPtr> ReduceByKey(
      const DatasetPtr& in,
      const std::function<std::string(const std::string&, const std::string&)>&
          fn);

  StatusOr<std::vector<KV>> Collect(const DatasetPtr& in);

  const Stats& stats() const { return stats_; }
  size_t resident_bytes() const;
  size_t memory_budget() const { return options_.memory_budget_bytes; }

 private:
  StatusOr<DatasetPtr> MakeDataset(std::vector<std::vector<KV>> parts);
  StatusOr<std::vector<KV>> LoadPart(const DatasetPtr& ds, int p);
  Status EnforceBudget();
  Status Spill(Dataset* ds);
  void ForEachPartition(const std::function<void(int)>& fn);

  Options options_;
  Stats stats_;
  std::vector<std::weak_ptr<Dataset>> registry_;
  std::mutex mu_;
  int next_id_ = 0;
};

}  // namespace sparksim
}  // namespace i2mr

#endif  // I2MR_BASELINES_SPARK_SIM_H_
