// PlainMR baseline ("PlainMR recomp." in §8): re-computation on vanilla
// MapReduce. Every iteration is a fresh job that reads the mixed
// structure|state dataset from the Dfs (paying the remote read), re-parses
// it, shuffles structure data along with state data, and pays the per-job
// startup cost. PlainIterDriver runs single-job-per-iteration algorithms
// (PageRank Algorithm 2, SSSP); TwoJobIterDriver (haloop_driver.h) covers
// two-job-per-iteration formulations.
#ifndef I2MR_BASELINES_PLAIN_DRIVER_H_
#define I2MR_BASELINES_PLAIN_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "mr/cluster.h"

namespace i2mr {

struct PlainIterSpec {
  std::string name = "plain";
  MapperFactory mapper;
  ReducerFactory reducer;
  int num_reduce_tasks = 4;
  int num_iterations = 10;
};

struct PlainIterResult {
  Status status;
  double wall_ms = 0;
  std::shared_ptr<StageMetrics> metrics;  // accumulated over all iterations
  /// Output parts of the final iteration.
  std::vector<std::string> final_parts;
  bool ok() const { return status.ok(); }
};

/// Runs `num_iterations` chained jobs: iteration k reads the previous
/// iteration's output dataset and writes `<name>-it<k>`.
PlainIterResult RunPlainIterations(LocalCluster* cluster,
                                   const PlainIterSpec& spec,
                                   const std::string& input_dataset);

}  // namespace i2mr

#endif  // I2MR_BASELINES_PLAIN_DRIVER_H_
