#include "baselines/plain_driver.h"

#include "common/timer.h"
#include "io/env.h"

namespace i2mr {

PlainIterResult RunPlainIterations(LocalCluster* cluster,
                                   const PlainIterSpec& spec,
                                   const std::string& input_dataset) {
  PlainIterResult result;
  result.metrics = std::make_shared<StageMetrics>();
  WallTimer wall;

  auto inputs = cluster->dfs()->Parts(input_dataset);
  if (!inputs.ok()) {
    result.status = inputs.status();
    return result;
  }
  std::vector<std::string> current = *inputs;

  for (int it = 1; it <= spec.num_iterations; ++it) {
    std::string out_dataset = spec.name + "-it" + std::to_string(it);
    Status st = cluster->dfs()->CreateDataset(out_dataset);
    if (!st.ok()) {
      result.status = st;
      return result;
    }
    JobSpec job;
    job.name = spec.name + "-it" + std::to_string(it);
    job.input_parts = current;
    job.mapper = spec.mapper;
    job.reducer = spec.reducer;
    job.num_reduce_tasks = spec.num_reduce_tasks;
    job.output_dir = cluster->dfs()->DatasetPath(out_dataset);
    JobResult jr = cluster->RunJob(job);
    if (!jr.ok()) {
      result.status = jr.status;
      return result;
    }
    result.metrics->Add(*jr.metrics);
    current = jr.output_parts;
  }
  result.final_parts = std::move(current);
  result.wall_ms = wall.ElapsedMillis();
  result.status = Status::OK();
  return result;
}

}  // namespace i2mr
