#include "baselines/spark_sim.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace sparksim {
namespace {

size_t RecordBytes(const KV& kv) { return kv.key.size() + kv.value.size() + 16; }

}  // namespace

SparkSim::SparkSim(Options options) : options_(std::move(options)) {
  I2MR_CHECK(options_.num_partitions > 0);
  I2MR_CHECK(!options_.spill_dir.empty()) << "spill_dir required";
  I2MR_CHECK_OK(CreateDirs(options_.spill_dir));
}

void SparkSim::ForEachPartition(const std::function<void(int)>& fn) {
  if (options_.pool != nullptr) {
    ParallelFor(options_.pool, options_.num_partitions, fn);
  } else {
    for (int p = 0; p < options_.num_partitions; ++p) fn(p);
  }
}

StatusOr<DatasetPtr> SparkSim::MakeDataset(std::vector<std::vector<KV>> parts) {
  auto ds = std::make_shared<Dataset>();
  ds->parts_ = std::move(parts);
  size_t bytes = 0;
  for (const auto& part : ds->parts_) {
    for (const auto& kv : part) bytes += RecordBytes(kv);
  }
  ds->bytes_ = bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ds->id_ = next_id_++;
    registry_.push_back(ds);
  }
  I2MR_RETURN_IF_ERROR(EnforceBudget());
  return ds;
}

size_t SparkSim::resident_bytes() const {
  size_t total = 0;
  for (const auto& weak : registry_) {
    auto ds = weak.lock();
    if (ds != nullptr && !ds->spilled_) total += ds->bytes_;
  }
  return total;
}

Status SparkSim::EnforceBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  // Gather live datasets, oldest first.
  std::vector<DatasetPtr> live;
  size_t total = 0;
  for (const auto& weak : registry_) {
    auto ds = weak.lock();
    if (ds != nullptr && !ds->spilled_) {
      live.push_back(ds);
      total += ds->bytes_;
    }
  }
  std::sort(live.begin(), live.end(),
            [](const DatasetPtr& a, const DatasetPtr& b) {
              return a->id_ < b->id_;
            });
  for (const auto& ds : live) {
    if (total <= options_.memory_budget_bytes) break;
    I2MR_RETURN_IF_ERROR(Spill(ds.get()));
    total -= ds->bytes_;
  }
  return Status::OK();
}

Status SparkSim::Spill(Dataset* ds) {
  ds->spill_paths_.resize(ds->parts_.size());
  for (size_t p = 0; p < ds->parts_.size(); ++p) {
    std::string path = JoinPath(
        options_.spill_dir,
        "rdd-" + std::to_string(ds->id_) + "-p" + std::to_string(p) + ".dat");
    I2MR_RETURN_IF_ERROR(WriteRecords(path, ds->parts_[p]));
    ds->spill_paths_[p] = path;
  }
  stats_.spill_events += 1;
  stats_.spilled_bytes += ds->bytes_;
  ds->parts_.clear();
  ds->parts_.shrink_to_fit();
  ds->spilled_ = true;
  return Status::OK();
}

StatusOr<std::vector<KV>> SparkSim::LoadPart(const DatasetPtr& ds, int p) {
  if (!ds->spilled_) return ds->parts_[p];
  auto recs = ReadRecords(ds->spill_paths_[p]);
  if (!recs.ok()) return recs.status();
  size_t bytes = 0;
  for (const auto& kv : *recs) bytes += RecordBytes(kv);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.disk_read_bytes += bytes;
  }
  return recs;
}

StatusOr<DatasetPtr> SparkSim::Parallelize(const std::vector<KV>& records) {
  std::vector<std::vector<KV>> parts(options_.num_partitions);
  for (const auto& kv : records) {
    parts[Hash64(kv.key) % options_.num_partitions].push_back(kv);
  }
  return MakeDataset(std::move(parts));
}

StatusOr<DatasetPtr> SparkSim::FlatMap(
    const DatasetPtr& in,
    const std::function<void(const KV&, std::vector<KV>*)>& fn) {
  const int n = options_.num_partitions;
  std::vector<std::vector<std::vector<KV>>> out(n);  // [src][dst]
  std::vector<Status> statuses(n);
  ForEachPartition([&](int p) {
    out[p].resize(n);
    auto recs = LoadPart(in, p);
    if (!recs.ok()) {
      statuses[p] = recs.status();
      return;
    }
    std::vector<KV> emitted;
    for (const auto& kv : *recs) {
      emitted.clear();
      fn(kv, &emitted);
      for (auto& e : emitted) {
        out[p][Hash64(e.key) % n].push_back(std::move(e));
      }
    }
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  std::vector<std::vector<KV>> parts(n);
  for (int p = 0; p < n; ++p) {
    for (int d = 0; d < n; ++d) {
      parts[d].insert(parts[d].end(),
                      std::make_move_iterator(out[p][d].begin()),
                      std::make_move_iterator(out[p][d].end()));
    }
  }
  return MakeDataset(std::move(parts));
}

StatusOr<DatasetPtr> SparkSim::JoinFlatMap(
    const DatasetPtr& left, const DatasetPtr& right,
    const std::function<void(const std::string&, const std::string&,
                             const std::string&, std::vector<KV>*)>& fn) {
  const int n = options_.num_partitions;
  std::vector<std::vector<std::vector<KV>>> out(n);
  std::vector<Status> statuses(n);
  ForEachPartition([&](int p) {
    out[p].resize(n);
    auto lrecs = LoadPart(left, p);
    auto rrecs = LoadPart(right, p);
    if (!lrecs.ok() || !rrecs.ok()) {
      statuses[p] = lrecs.ok() ? rrecs.status() : lrecs.status();
      return;
    }
    std::unordered_map<std::string, const std::string*> rmap;
    rmap.reserve(rrecs->size());
    for (const auto& kv : *rrecs) rmap[kv.key] = &kv.value;
    std::vector<KV> emitted;
    for (const auto& kv : *lrecs) {
      auto it = rmap.find(kv.key);
      if (it == rmap.end()) continue;
      emitted.clear();
      fn(kv.key, kv.value, *it->second, &emitted);
      for (auto& e : emitted) {
        out[p][Hash64(e.key) % n].push_back(std::move(e));
      }
    }
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  std::vector<std::vector<KV>> parts(n);
  for (int p = 0; p < n; ++p) {
    for (int d = 0; d < n; ++d) {
      parts[d].insert(parts[d].end(),
                      std::make_move_iterator(out[p][d].begin()),
                      std::make_move_iterator(out[p][d].end()));
    }
  }
  return MakeDataset(std::move(parts));
}

StatusOr<DatasetPtr> SparkSim::ReduceByKey(
    const DatasetPtr& in,
    const std::function<std::string(const std::string&, const std::string&)>&
        fn) {
  const int n = options_.num_partitions;
  std::vector<std::vector<KV>> parts(n);
  std::vector<Status> statuses(n);
  ForEachPartition([&](int p) {
    auto recs = LoadPart(in, p);
    if (!recs.ok()) {
      statuses[p] = recs.status();
      return;
    }
    std::unordered_map<std::string, std::string> agg;
    for (const auto& kv : *recs) {
      auto [it, inserted] = agg.emplace(kv.key, kv.value);
      if (!inserted) it->second = fn(it->second, kv.value);
    }
    parts[p].reserve(agg.size());
    for (auto& [k, v] : agg) parts[p].push_back(KV{k, std::move(v)});
    std::sort(parts[p].begin(), parts[p].end());
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  return MakeDataset(std::move(parts));
}

StatusOr<std::vector<KV>> SparkSim::Collect(const DatasetPtr& in) {
  std::vector<KV> all;
  for (int p = 0; p < options_.num_partitions; ++p) {
    auto recs = LoadPart(in, p);
    if (!recs.ok()) return recs.status();
    all.insert(all.end(), recs->begin(), recs->end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace sparksim
}  // namespace i2mr
