#include "baselines/haloop_driver.h"

#include <cstdio>

#include "common/timer.h"
#include "io/env.h"

namespace i2mr {

TwoJobIterResult RunTwoJobIterations(LocalCluster* cluster,
                                     const TwoJobIterSpec& spec,
                                     const std::string& static_dataset,
                                     const std::string& dynamic_dataset) {
  TwoJobIterResult result;
  result.metrics = std::make_shared<StageMetrics>();
  WallTimer wall;

  auto static_parts = cluster->dfs()->Parts(static_dataset);
  auto dynamic_parts = cluster->dfs()->Parts(dynamic_dataset);
  if (!static_parts.ok()) {
    result.status = static_parts.status();
    return result;
  }
  if (!dynamic_parts.ok()) {
    result.status = dynamic_parts.status();
    return result;
  }

  // HaLoop structure caching: copy the static dataset into worker-local
  // storage once; iterations read the cached copies (outside the Dfs
  // prefix, so no remote-read charge).
  std::vector<std::string> static_inputs = *static_parts;
  if (spec.cache_static) {
    std::string cache_dir = JoinPath(cluster->WorkerDir(0),
                                     "haloop-cache/" + spec.name);
    Status st = ResetDir(cache_dir);
    if (!st.ok()) {
      result.status = st;
      return result;
    }
    std::vector<std::string> cached;
    for (size_t i = 0; i < static_parts->size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "cached-%05zu.dat", i);
      std::string dst = JoinPath(cache_dir, buf);
      st = CopyFile((*static_parts)[i], dst);
      if (!st.ok()) {
        result.status = st;
        return result;
      }
      cached.push_back(dst);
    }
    // The initial copy itself pays the remote read once.
    for (const auto& p : *static_parts) {
      auto sz = FileSize(p);
      if (sz.ok()) cluster->cost().ChargeTransfer(*sz);
    }
    static_inputs = std::move(cached);
  }

  std::vector<std::string> dynamic = *dynamic_parts;
  for (int it = 1; it <= spec.num_iterations; ++it) {
    // Job 1: join static with dynamic.
    std::string join_out = spec.name + "-join-it" + std::to_string(it);
    Status st = cluster->dfs()->CreateDataset(join_out);
    if (!st.ok()) {
      result.status = st;
      return result;
    }
    JobSpec job1;
    job1.name = spec.name + "-j1-it" + std::to_string(it);
    job1.input_parts = static_inputs;
    job1.input_parts.insert(job1.input_parts.end(), dynamic.begin(),
                            dynamic.end());
    job1.mapper = spec.mapper1;
    job1.reducer = spec.reducer1;
    job1.num_reduce_tasks = spec.num_reduce_tasks;
    job1.output_dir = cluster->dfs()->DatasetPath(join_out);
    JobResult r1 = cluster->RunJob(job1);
    if (!r1.ok()) {
      result.status = r1.status;
      return result;
    }
    result.metrics->Add(*r1.metrics);

    // Job 2: compute the new dynamic dataset.
    std::string out_dataset = spec.name + "-it" + std::to_string(it);
    st = cluster->dfs()->CreateDataset(out_dataset);
    if (!st.ok()) {
      result.status = st;
      return result;
    }
    JobSpec job2;
    job2.name = spec.name + "-j2-it" + std::to_string(it);
    job2.input_parts = r1.output_parts;
    job2.mapper = spec.mapper2;
    job2.reducer = spec.reducer2;
    job2.num_reduce_tasks = spec.num_reduce_tasks;
    job2.output_dir = cluster->dfs()->DatasetPath(out_dataset);
    JobResult r2 = cluster->RunJob(job2);
    if (!r2.ok()) {
      result.status = r2.status;
      return result;
    }
    result.metrics->Add(*r2.metrics);
    dynamic = r2.output_parts;
  }
  result.final_parts = std::move(dynamic);
  result.wall_ms = wall.ElapsedMillis();
  result.status = Status::OK();
  return result;
}

}  // namespace i2mr
