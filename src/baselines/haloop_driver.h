// HaLoop-style baseline (§8.6, Algorithm 5): two MapReduce jobs per
// iteration — an extra join job matches the static (structure) dataset with
// the dynamic (state) dataset, then the compute job produces the new state.
// HaLoop's contribution over plain MapReduce is the structure-data cache:
// with `cache_static = true` the static dataset is copied to worker-local
// storage once and later iterations read it for free instead of paying the
// Dfs transfer.
//
// The same driver with cache_static = false serves as the plain-MapReduce
// runner for inherently two-job algorithms (GIM-V Algorithm 4).
#ifndef I2MR_BASELINES_HALOOP_DRIVER_H_
#define I2MR_BASELINES_HALOOP_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "mr/cluster.h"

namespace i2mr {

struct TwoJobIterSpec {
  std::string name = "haloop";
  /// Job 1 (join): inputs = static parts + dynamic parts.
  MapperFactory mapper1;
  ReducerFactory reducer1;
  /// Job 2 (compute): input = job 1 output; output = new dynamic dataset.
  MapperFactory mapper2;
  ReducerFactory reducer2;
  int num_reduce_tasks = 4;
  int num_iterations = 10;
  /// HaLoop structure caching.
  bool cache_static = true;
};

struct TwoJobIterResult {
  Status status;
  double wall_ms = 0;
  std::shared_ptr<StageMetrics> metrics;
  std::vector<std::string> final_parts;  // final dynamic dataset parts
  bool ok() const { return status.ok(); }
};

TwoJobIterResult RunTwoJobIterations(LocalCluster* cluster,
                                     const TwoJobIterSpec& spec,
                                     const std::string& static_dataset,
                                     const std::string& dynamic_dataset);

}  // namespace i2mr

#endif  // I2MR_BASELINES_HALOOP_DRIVER_H_
