// Fixed-size worker pool used by the LocalCluster to emulate TaskTrackers.
#ifndef I2MR_COMMON_THREAD_POOL_H_
#define I2MR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace i2mr {

/// Fixed pool of worker threads draining a FIFO task queue.
/// Submit() enqueues; WaitIdle() blocks until queue empty and all workers
/// idle. Destruction drains remaining tasks.
class ThreadPool {
 public:
  /// `name`, when set, labels the workers' tracks in exported traces
  /// ("<name>-0" .. "<name>-N").
  explicit ThreadPool(int num_threads, std::string name = "");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> fn);
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop(int worker);

  const std::string name_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

/// Run `fn(i)` for i in [0, n) on `pool`, blocking until all complete.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace i2mr

#endif  // I2MR_COMMON_THREAD_POOL_H_
