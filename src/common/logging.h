// Minimal leveled logging + CHECK macros.
#ifndef I2MR_COMMON_LOGGING_H_
#define I2MR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace i2mr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default kWarn so the
/// library is quiet in tests; benches raise verbosity explicitly.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Emits the message; aborts on kFatal.

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows the stream when the level is disabled.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace i2mr

#define I2MR_LOG(level)                                                   \
  (::i2mr::LogLevel::level < ::i2mr::GetLogLevel())                       \
      ? (void)0                                                           \
      : ::i2mr::internal::LogSink() &                                     \
            ::i2mr::internal::LogMessage(::i2mr::LogLevel::level,         \
                                         __FILE__, __LINE__)              \
                .stream()

#define LOG_DEBUG I2MR_LOG(kDebug)
#define LOG_INFO I2MR_LOG(kInfo)
#define LOG_WARN I2MR_LOG(kWarn)
#define LOG_ERROR I2MR_LOG(kError)

#define I2MR_CHECK(cond)                                                   \
  (cond) ? (void)0                                                        \
         : ::i2mr::internal::LogSink() &                                  \
               ::i2mr::internal::LogMessage(::i2mr::LogLevel::kFatal,     \
                                            __FILE__, __LINE__)           \
                   .stream()                                              \
               << "Check failed: " #cond " "

#define I2MR_CHECK_OK(expr)                                   \
  do {                                                        \
    ::i2mr::Status _st = (expr);                              \
    I2MR_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

#endif  // I2MR_COMMON_LOGGING_H_
