#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace i2mr {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  s0_ = SplitMix64(&s);
  s1_ = SplitMix64(&s);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t n) {
  I2MR_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

ZipfSampler::ZipfSampler(uint64_t n, double skew) {
  I2MR_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace i2mr
