#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace i2mr {

void StageMetrics::Add(const StageMetrics& other) {
  map_ns += other.map_ns.load();
  shuffle_ns += other.shuffle_ns.load();
  sort_ns += other.sort_ns.load();
  reduce_ns += other.reduce_ns.load();
  map_input_records += other.map_input_records.load();
  map_output_records += other.map_output_records.load();
  shuffle_bytes += other.shuffle_bytes.load();
  reduce_groups += other.reduce_groups.load();
  reduce_output_records += other.reduce_output_records.load();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t Histogram::BucketMidpoint(int index) {
  const uint64_t lo = BucketLowerBound(index);
  if (index + 1 >= kNumBuckets) return lo;
  const uint64_t hi = BucketLowerBound(index + 1);
  return lo + (hi - lo) / 2;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

int64_t Histogram::ValueAtPercentile(double p) const {
  p = std::min(1.0, std::max(0.0, p));
  const uint64_t total = count();
  if (total == 0) return 0;
  // Rank of the p-th sample (1-based), then walk the buckets to it.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return static_cast<int64_t>(BucketMidpoint(i));
  }
  // Concurrent recording moved the total under us; report the top
  // non-empty bucket.
  for (int i = kNumBuckets - 1; i >= 0; --i) {
    if (buckets_[i].load(std::memory_order_relaxed) != 0) {
      return static_cast<int64_t>(BucketMidpoint(i));
    }
  }
  return 0;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::NonzeroBuckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.emplace_back(BucketLowerBound(i), n);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return registry;
}

bool MetricsRegistry::InFamily(const std::string& name,
                               const std::string& prefix) {
  if (prefix.empty()) return true;
  if (name.size() < prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  if (name.size() == prefix.size()) return true;
  // "shard1" matches "shard1.reads" but not "shard10.reads"; a trailing
  // dot in the prefix already supplies the boundary.
  return prefix.back() == '.' || name[prefix.size()] == '.';
}

namespace {

/// Walk `prefix`'s dot-bounded family in a name-keyed map. Family members
/// share the raw string prefix, so lower_bound + the InFamily filter
/// visits exactly them.
template <typename Map, typename Fn>
void ForFamily(Map& map, const std::string& prefix, Fn fn) {
  for (auto it = map.lower_bound(prefix);
       it != map.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;) {
    if (MetricsRegistry::InFamily(it->first, prefix)) {
      if (fn(it)) continue;  // fn advanced (erased) the iterator itself
    }
    ++it;
  }
}

}  // namespace

Counter* MetricsRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

size_t MetricsRegistry::Unregister(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  ForFamily(counters_, prefix, [&](auto& it) {
    retired_.push_back(std::move(it->second));
    it = counters_.erase(it);
    ++removed;
    return true;
  });
  ForFamily(gauges_, prefix, [&](auto& it) {
    retired_gauges_.push_back(std::move(it->second));
    it = gauges_.erase(it);
    ++removed;
    return true;
  });
  ForFamily(histograms_, prefix, [&](auto& it) {
    retired_histograms_.push_back(std::move(it->second));
    it = histograms_.erase(it);
    ++removed;
    return true;
  });
  return removed;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::SnapshotGauges()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

int64_t MetricsRegistry::SumPrefixed(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t sum = 0;
  ForFamily(counters_, prefix, [&](const auto& it) {
    sum += it->second->value();
    return false;
  });
  return sum;
}

std::string MetricsRegistry::ToString(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  ForFamily(counters_, prefix, [&](const auto& it) {
    out += it->first + "=" + std::to_string(it->second->value()) + "\n";
    return false;
  });
  ForFamily(gauges_, prefix, [&](const auto& it) {
    out += it->first + "=" + std::to_string(it->second->value()) + "\n";
    return false;
  });
  ForFamily(histograms_, prefix, [&](const auto& it) {
    const Histogram& h = *it->second;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{count=%llu p50=%lld p95=%lld p99=%lld}\n",
                  it->first.c_str(),
                  static_cast<unsigned long long>(h.count()),
                  static_cast<long long>(h.p50()),
                  static_cast<long long>(h.p95()),
                  static_cast<long long>(h.p99()));
    out += buf;
    return false;
  });
  return out;
}

std::string StageMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.1fms shuffle=%.1fms sort=%.1fms reduce=%.1fms "
                "in=%lld out=%lld shuffled=%lldB groups=%lld",
                map_ms(), shuffle_ms(), sort_ms(), reduce_ms(),
                static_cast<long long>(map_input_records.load()),
                static_cast<long long>(map_output_records.load()),
                static_cast<long long>(shuffle_bytes.load()),
                static_cast<long long>(reduce_groups.load()));
  return buf;
}

}  // namespace i2mr
