#include "common/metrics.h"

#include <cstdio>

namespace i2mr {

void StageMetrics::Add(const StageMetrics& other) {
  map_ns += other.map_ns.load();
  shuffle_ns += other.shuffle_ns.load();
  sort_ns += other.sort_ns.load();
  reduce_ns += other.reduce_ns.load();
  map_input_records += other.map_input_records.load();
  map_output_records += other.map_output_records.load();
  shuffle_bytes += other.shuffle_bytes.load();
  reduce_groups += other.reduce_groups.load();
  reduce_output_records += other.reduce_output_records.load();
}

std::string StageMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.1fms shuffle=%.1fms sort=%.1fms reduce=%.1fms "
                "in=%lld out=%lld shuffled=%lldB groups=%lld",
                map_ms(), shuffle_ms(), sort_ms(), reduce_ms(),
                static_cast<long long>(map_input_records.load()),
                static_cast<long long>(map_output_records.load()),
                static_cast<long long>(shuffle_bytes.load()),
                static_cast<long long>(reduce_groups.load()));
  return buf;
}

}  // namespace i2mr
