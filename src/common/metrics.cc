#include "common/metrics.h"

#include <cstdio>

namespace i2mr {

void StageMetrics::Add(const StageMetrics& other) {
  map_ns += other.map_ns.load();
  shuffle_ns += other.shuffle_ns.load();
  sort_ns += other.sort_ns.load();
  reduce_ns += other.reduce_ns.load();
  map_input_records += other.map_input_records.load();
  map_output_records += other.map_output_records.load();
  shuffle_bytes += other.shuffle_bytes.load();
  reduce_groups += other.reduce_groups.load();
  reduce_output_records += other.reduce_output_records.load();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return registry;
}

Counter* MetricsRegistry::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

size_t MetricsRegistry::Unregister(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  auto it = counters_.lower_bound(prefix);
  while (it != counters_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    retired_.push_back(std::move(it->second));
    it = counters_.erase(it);
    ++removed;
  }
  return removed;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

int64_t MetricsRegistry::SumPrefixed(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    sum += it->second->value();
  }
  return sum;
}

std::string MetricsRegistry::ToString(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (auto it = counters_.lower_bound(prefix);
       it != counters_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out += it->first + "=" + std::to_string(it->second->value()) + "\n";
  }
  return out;
}

std::string StageMetrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "map=%.1fms shuffle=%.1fms sort=%.1fms reduce=%.1fms "
                "in=%lld out=%lld shuffled=%lldB groups=%lld",
                map_ms(), shuffle_ms(), sort_ms(), reduce_ms(),
                static_cast<long long>(map_input_records.load()),
                static_cast<long long>(map_output_records.load()),
                static_cast<long long>(shuffle_bytes.load()),
                static_cast<long long>(reduce_groups.load()));
  return buf;
}

}  // namespace i2mr
