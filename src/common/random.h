// Deterministic random generators for synthetic dataset generation.
#ifndef I2MR_COMMON_RANDOM_H_
#define I2MR_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace i2mr {

/// splitmix64-seeded xorshift128+ generator. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean / stddev.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_, s1_;
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent `skew`.
/// Precomputes the CDF; Sample() is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double skew);

  uint64_t Sample(Rng* rng) const;
  uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_RANDOM_H_
