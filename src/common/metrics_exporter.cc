#include "common/metrics_exporter.h"

#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "io/env.h"

namespace i2mr {

MetricsExporter::MetricsExporter(MetricsExporterOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = MetricsRegistry::Default();
  }
}

MetricsExporter::~MetricsExporter() { Stop(); }

std::string MetricsExporter::SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

std::string MetricsExporter::Render() const {
  const MetricsRegistry& reg = *options_.registry;
  std::string out;
  char buf[256];
  for (const auto& [name, value] : reg.Snapshot()) {
    const std::string id = SanitizeName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %lld\n",
                  id.c_str(), id.c_str(), static_cast<long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : reg.SnapshotGauges()) {
    const std::string id = SanitizeName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %lld\n",
                  id.c_str(), id.c_str(), static_cast<long long>(value));
    out += buf;
  }
  for (const auto& [name, histogram] : reg.Histograms()) {
    const std::string id = SanitizeName(name);
    std::snprintf(
        buf, sizeof(buf),
        "# TYPE %s summary\n"
        "%s{quantile=\"0.5\"} %lld\n"
        "%s{quantile=\"0.95\"} %lld\n"
        "%s{quantile=\"0.99\"} %lld\n"
        "%s_sum %lld\n"
        "%s_count %llu\n",
        id.c_str(), id.c_str(), static_cast<long long>(histogram->p50()),
        id.c_str(), static_cast<long long>(histogram->p95()), id.c_str(),
        static_cast<long long>(histogram->p99()), id.c_str(),
        static_cast<long long>(histogram->sum()), id.c_str(),
        static_cast<unsigned long long>(histogram->count()));
    out += buf;
  }
  return out;
}

Status MetricsExporter::WriteOnce() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("MetricsExporter needs a path");
  }
  const std::string tmp = options_.path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, Render()));
  return RenameFile(tmp, options_.path);
}

void MetricsExporter::WriterLoop() {
  HealthRegistry* health = options_.health != nullptr
                               ? options_.health
                               : HealthRegistry::Default();
  bool degraded = false;
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    lock.unlock();
    Status st = WriteOnce();
    if (!st.ok()) {
      // Scrapers keep the last complete exposition (tmp+rename); the next
      // interval retries. Never worth failing the process over.
      LOG_WARN << "metrics exposition write failed (will retry next "
               << "interval): " << st.ToString();
      health->Report("metrics.exporter", HealthState::kDegraded,
                     st.ToString());
      degraded = true;
    } else if (degraded) {
      health->Report("metrics.exporter", HealthState::kHealthy);
      degraded = false;
    }
    lock.lock();
    cv_.wait_for(lock,
                 std::chrono::duration<double, std::milli>(
                     options_.interval_ms),
                 [this] { return !running_; });
  }
}

void MetricsExporter::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  writer_ = std::thread(&MetricsExporter::WriterLoop, this);
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  (void)WriteOnce();  // final flush so the file reflects shutdown state
}

}  // namespace i2mr
