// Periodic Prometheus-style text exposition of a MetricsRegistry.
//
// A background thread renders every counter, gauge and histogram in the
// registry into the standard text format (counters as `counter`, gauges
// as `gauge`, histograms as `summary` with p50/p95/p99 quantile samples)
// and writes it to a file via tmp+rename, so a scraper — or a human with
// `watch cat` — always sees a complete exposition. Dot-separated i2mr
// series names are sanitized to Prometheus identifiers by mapping every
// non-[a-zA-Z0-9_] byte to '_' ("serving.pr.shard0.reads_served" →
// "serving_pr_shard0_reads_served").
#ifndef I2MR_COMMON_METRICS_EXPORTER_H_
#define I2MR_COMMON_METRICS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/health.h"
#include "common/metrics.h"
#include "common/status.h"

namespace i2mr {

struct MetricsExporterOptions {
  /// Exposition file path. Required.
  std::string path;

  /// Rewrite cadence for Start().
  double interval_ms = 1000;

  /// Registry to export; nullptr = MetricsRegistry::Default().
  MetricsRegistry* registry = nullptr;

  /// Health registry to report the writer's own state into; nullptr =
  /// HealthRegistry::Default(). An interval write that fails (tmp write
  /// or rename — e.g. the exposition volume ran out of space) is logged,
  /// reported as "metrics.exporter" kDegraded, and retried on the next
  /// interval; the exposition file keeps its last complete contents
  /// (tmp+rename never leaves it torn). Recovery reports kHealthy.
  HealthRegistry* health = nullptr;
};

class MetricsExporter {
 public:
  explicit MetricsExporter(MetricsExporterOptions options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Begin periodic exposition writes. Stop() (or destruction) joins the
  /// writer thread; the final state is flushed on Stop.
  void Start();
  void Stop();

  /// One synchronous exposition write (also what the periodic thread runs).
  Status WriteOnce();

  /// The full exposition text, rendered now.
  std::string Render() const;

  static std::string SanitizeName(const std::string& name);

 private:
  void WriterLoop();

  MetricsExporterOptions options_;
  std::thread writer_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;  // guarded by mu_
};

}  // namespace i2mr

#endif  // I2MR_COMMON_METRICS_EXPORTER_H_
