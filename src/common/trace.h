// Lock-free per-thread ring-buffer tracing with RAII scoped spans,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
//   TRACE_SPAN("epoch.commit");                       // span = this scope
//   TRACE_SPAN("epoch.refresh", "epoch=%llu", e);     // with annotation
//   TRACE_INSTANT("epoch.poisoned", "shard=%d", s);   // zero-duration mark
//
// Design: each emitting thread owns a fixed ring of seqlock-protected
// slots; a span is recorded as ONE complete event at destruction, so the
// hot path is two NowNanos() calls plus a handful of relaxed atomic
// stores, with no locks and no allocation. When tracing is disabled every
// macro costs a single relaxed atomic load. The ring wraps by overwriting
// the OLDEST events; a reader (Snapshot/Export) validates each slot's
// sequence number and simply drops slots torn by a concurrently wrapping
// writer, so snapshotting while tracing is race-free. Rings are recycled
// through a free list when their thread exits, bounding memory by the
// peak number of concurrent threads rather than the total ever spawned
// (shard fan-out and exchange transfers spawn short-lived threads per
// round).
//
// Sessions: Start() stamps a session start time; Snapshot() returns only
// events that began at or after it, so back-to-back sessions on the
// process-wide collector don't bleed into each other without any racy
// ring clearing.
#ifndef I2MR_COMMON_TRACE_H_
#define I2MR_COMMON_TRACE_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace i2mr {
namespace trace {

/// One decoded event, as returned by TraceCollector::Snapshot().
struct Event {
  const char* name = nullptr;  // the static string passed to the macro
  uint32_t tid = 0;            // trace-local track id (ring id)
  int64_t ts_ns = 0;           // steady-clock span start
  int64_t dur_ns = -1;         // span duration; -1 = instant event
  std::string args;            // preformatted "k=v ..." text, may be empty
};

namespace internal {

inline constexpr size_t kArgCapacity = 64;

/// Seqlock-protected slot. Every field is an atomic, so a reader racing a
/// wrapping writer performs no data race; the seq check tells it whether
/// the payload was torn, in which case the slot is dropped.
struct Slot {
  std::atomic<uint64_t> seq{0};  // 2e+1 while event e is written, 2e+2 after
  std::atomic<const char*> name{nullptr};
  std::atomic<int64_t> ts_ns{0};
  std::atomic<int64_t> dur_ns{0};
  std::atomic<uint8_t> arg_len{0};
  std::atomic<char> args[kArgCapacity];
};

class ThreadRing {
 public:
  ThreadRing(uint32_t tid, size_t capacity_pow2);

  /// Writer side: single-threaded (the owning thread only).
  void Emit(const char* name, int64_t ts_ns, int64_t dur_ns, const char* args,
            size_t arg_len);

  /// Reader side: any thread, concurrently with Emit. Appends every
  /// validated event with ts_ns >= min_ts_ns to `out`.
  void Collect(int64_t min_ts_ns, std::vector<Event>* out) const;

  uint32_t tid() const { return tid_; }
  uint64_t emitted() const { return head_.load(std::memory_order_acquire); }
  size_t capacity() const { return cap_; }

 private:
  const uint32_t tid_;
  const size_t cap_;  // power of two
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
};

extern std::atomic<bool> g_enabled;

}  // namespace internal

/// True while a trace session is active. A single relaxed load — the
/// whole cost of TRACE_SPAN / TRACE_INSTANT when tracing is off.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Process-wide collector (never destroyed, like
/// MetricsRegistry::Default()). Start/Stop/Snapshot/Export are
/// thread-safe; Snapshot and Export may run while tracing is live.
class TraceCollector {
 public:
  static TraceCollector* Get();

  void Start();
  void Stop();

  /// Events of the current (or most recent) session, sorted by start time.
  std::vector<Event> Snapshot() const;

  /// Snapshot rendered as Chrome trace-event JSON:
  /// {"traceEvents":[...]} with "X" (complete), "i" (instant) and "M"
  /// (thread-name metadata) phases; timestamps in microseconds relative
  /// to the session start.
  std::string ToChromeJson() const;
  Status ExportChromeJson(const std::string& path) const;

  /// Approximate events lost to ring wraparound (lifetime, all rings).
  uint64_t approx_dropped() const;

  /// Label the calling thread's track in exported traces. Cheap: stashes
  /// the name thread-locally and applies it when (if) the thread first
  /// emits; never allocates a ring by itself.
  static void SetThreadName(const std::string& name);

  /// Events-per-thread ring capacity for rings created after this call
  /// (rounded up to a power of two). Existing rings keep their size.
  void set_ring_capacity(size_t events);

  int64_t session_start_ns() const;

  /// Emit path (macro implementation detail): the calling thread's ring,
  /// acquired from the free list or freshly allocated.
  internal::ThreadRing* RingForThisThread();

 private:
  TraceCollector() = default;

  void ReleaseRing(internal::ThreadRing* ring);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<internal::ThreadRing>> rings_;  // never freed
  std::vector<internal::ThreadRing*> free_rings_;
  std::map<uint32_t, std::string> thread_names_;  // by ring tid, last owner
  size_t ring_capacity_ = 4096;
  std::atomic<int64_t> session_start_ns_{0};

  friend struct ThreadRingHandle;
};

/// Starts a session on the default collector if I2MR_TRACE_JSON is set in
/// the environment. Returns true if tracing started.
bool StartFromEnv();

/// Exports the default collector to $I2MR_TRACE_JSON, if set. No-op
/// Status::OK when the variable is absent.
Status ExportFromEnv();

void EmitInstant(const char* name);
inline void EmitInstantf(const char* name) { EmitInstant(name); }
void EmitInstantf(const char* name, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// RAII span: records one complete event covering its own lifetime.
/// `name` must be a string literal (stored by pointer, never copied).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Enabled()) Begin(name);
  }
  ScopedSpan(const char* name, const char* fmt, ...)
      __attribute__((format(printf, 3, 4))) {
    if (Enabled()) {
      va_list ap;
      va_start(ap, fmt);
      BeginV(name, fmt, ap);
      va_end(ap);
    }
  }
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// End the span now rather than at scope exit. Idempotent; the
  /// destructor is then a no-op.
  void End() {
    if (name_ == nullptr) return;
    Finish();
    name_ = nullptr;
  }

 private:
  void Begin(const char* name);
  void BeginV(const char* name, const char* fmt, va_list ap);
  void Finish();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint8_t arg_len_ = 0;
  char args_[internal::kArgCapacity];
};

}  // namespace trace
}  // namespace i2mr

#define I2MR_TRACE_CONCAT_(a, b) a##b
#define I2MR_TRACE_CONCAT(a, b) I2MR_TRACE_CONCAT_(a, b)

/// Span covering the enclosing scope. TRACE_SPAN("name") or
/// TRACE_SPAN("name", "k=%d", v) — the annotation is printf-formatted
/// only while tracing is enabled.
#define TRACE_SPAN(...)                 \
  ::i2mr::trace::ScopedSpan I2MR_TRACE_CONCAT(i2mr_trace_span_, \
                                              __LINE__)(__VA_ARGS__)

/// Zero-duration mark: TRACE_INSTANT("name") or
/// TRACE_INSTANT("name", "k=%d", v).
#define TRACE_INSTANT(...) ::i2mr::trace::EmitInstantf(__VA_ARGS__)

#endif  // I2MR_COMMON_TRACE_H_
