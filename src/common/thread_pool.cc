#include "common/thread_pool.h"

#include "common/logging.h"
#include "common/trace.h"

namespace i2mr {

ThreadPool::ThreadPool(int num_threads, std::string name)
    : name_(std::move(name)) {
  I2MR_CHECK(num_threads > 0) << "thread pool needs >= 1 thread";
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    I2MR_CHECK(!shutdown_) << "submit after shutdown";
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop(int worker) {
  if (!name_.empty()) {
    trace::TraceCollector::SetThreadName(name_ + "-" + std::to_string(worker));
  }
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  std::mutex mu;
  std::condition_variable cv;
  int remaining = n;
  for (int i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace i2mr
