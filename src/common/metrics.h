// Per-stage metrics collected by the MapReduce engine (the quantities
// Fig. 9 / Table 4 of the paper report), plus a process-wide registry of
// named monotonic counters that the pipeline and serving layers publish
// into (epochs committed, reads served, quota rejections, ...) instead of
// exposing ad-hoc struct reads.
#ifndef I2MR_COMMON_METRICS_H_
#define I2MR_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace i2mr {

/// Accumulated across all tasks of one job (or one iteration). Thread-safe:
/// tasks add into the atomics concurrently.
struct StageMetrics {
  // Wall time spent inside each stage, summed over tasks (nanoseconds).
  std::atomic<int64_t> map_ns{0};
  std::atomic<int64_t> shuffle_ns{0};  // transferring map outputs to reducers
  std::atomic<int64_t> sort_ns{0};     // map-side sort + reduce-side merge
  std::atomic<int64_t> reduce_ns{0};

  // Volumes.
  std::atomic<int64_t> map_input_records{0};
  std::atomic<int64_t> map_output_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  std::atomic<int64_t> reduce_groups{0};
  std::atomic<int64_t> reduce_output_records{0};

  void Clear() {
    map_ns = 0;
    shuffle_ns = 0;
    sort_ns = 0;
    reduce_ns = 0;
    map_input_records = 0;
    map_output_records = 0;
    shuffle_bytes = 0;
    reduce_groups = 0;
    reduce_output_records = 0;
  }

  /// Accumulate another job's metrics into this one.
  void Add(const StageMetrics& other);

  double map_ms() const { return map_ns.load() / 1e6; }
  double shuffle_ms() const { return shuffle_ns.load() / 1e6; }
  double sort_ms() const { return sort_ns.load() / 1e6; }
  double reduce_ms() const { return reduce_ns.load() / 1e6; }
  double total_ms() const {
    return (map_ns.load() + shuffle_ns.load() + sort_ns.load() +
            reduce_ns.load()) / 1e6;
  }

  std::string ToString() const;
};

/// One named monotonic counter. Obtained from a MetricsRegistry; the
/// pointer is stable for the registry's lifetime, so hot paths hold the
/// Counter* and never re-do the name lookup.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A point-in-time level (queue depth, replica lag, resident bytes):
/// Set() semantics rather than a counter's monotonic Add. Same pointer
/// stability contract as Counter.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Lock-free fixed-log-bucket latency histogram (HdrHistogram-lite):
/// non-negative int64 values land in one of ~500 buckets laid out as 8
/// sub-buckets per power of two, giving <= ~9% relative value error at
/// any magnitude. Record() is a handful of relaxed atomic adds, safe from
/// any thread; Merge() adds another histogram's buckets in, so per-thread
/// or per-shard histograms can be combined before extracting
/// p50/p95/p99. Values are unit-agnostic integers — the convention in
/// this codebase is nanoseconds for durations.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  void Record(int64_t value) {
    const uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<int64_t>(v), std::memory_order_relaxed);
  }

  /// Accumulate another histogram's samples into this one.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Value at percentile p in [0, 1] (bucket midpoint; <= ~9% relative
  /// error). Concurrent Record()s make this an approximation of a moving
  /// population, never a torn read.
  int64_t ValueAtPercentile(double p) const;
  int64_t p50() const { return ValueAtPercentile(0.50); }
  int64_t p95() const { return ValueAtPercentile(0.95); }
  int64_t p99() const { return ValueAtPercentile(0.99); }

  /// (bucket lower bound, count) for every non-empty bucket, ascending —
  /// the compact export form bench JSON emits.
  std::vector<std::pair<uint64_t, uint64_t>> NonzeroBuckets() const;

  static int BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    const int exp = 63 - __builtin_clzll(v);
    const int shift = exp - kSubBucketBits;
    const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
    return ((shift + 1) << kSubBucketBits) + sub;
  }
  static uint64_t BucketLowerBound(int index) {
    const int shift = (index >> kSubBucketBits) - 1;
    const uint64_t sub = static_cast<uint64_t>(index & (kSubBuckets - 1));
    if (shift < 0) return sub;
    return (static_cast<uint64_t>(kSubBuckets) + sub) << shift;
  }
  static uint64_t BucketMidpoint(int index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Registry of named counters, gauges and histograms. Get*() is
/// get-or-create and thread-safe; reads through the returned pointers are
/// lock-free. Names are dot-separated paths
/// ("serving.pr.shard0.reads_served") so one registry can hold per-shard
/// / per-tenant families side by side.
///
/// Every prefix-taking call (Unregister / SumPrefixed / ToString) matches
/// whole dot-separated families: `prefix` selects the series named
/// exactly `prefix` plus everything under "prefix." — so "shard1" never
/// swallows "shard10.reads". A trailing dot selects strictly-under
/// ("shard1." == children of shard1), and "" selects everything.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (what everything publishes into unless
  /// handed an explicit one, e.g. a test-local registry).
  static MetricsRegistry* Default();

  /// Get-or-create the counter named `name`; the pointer stays valid for
  /// the registry's lifetime (even across Unregister — see below). The
  /// three kinds live in separate namespaces, but reusing one name across
  /// kinds is a reporting bug waiting to happen — don't.
  Counter* Get(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Remove every series in `prefix`'s family (dot-boundary semantics,
  /// see class comment) from the visible set (Snapshot / SumPrefixed /
  /// ToString / re-Get), so a deregistered shard or replica doesn't leak
  /// stale series forever. Returns the number of series removed.
  /// Previously handed-out pointers stay valid (the objects are retired,
  /// not destroyed, until the registry itself dies) — a racing holder at
  /// worst updates a series nobody reports anymore.
  size_t Unregister(const std::string& prefix);

  /// Point-in-time values of every counter, sorted by name. Counters are
  /// sampled individually (relaxed), not as one atomic cut.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Point-in-time values of every gauge, sorted by name.
  std::vector<std::pair<std::string, int64_t>> SnapshotGauges() const;

  /// Name + stable pointer for every live histogram, sorted by name (for
  /// exporters; the pointers outlive Unregister like all series objects).
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// Sum of all counters in `prefix`'s family (a cheap way to aggregate
  /// per-shard series; dot-boundary semantics — see class comment).
  int64_t SumPrefixed(const std::string& prefix) const;

  /// "name=value" lines for counters and gauges plus
  /// "name{count,p50,p95,p99}" lines for histograms in `prefix`'s family
  /// ("" = all).
  std::string ToString(const std::string& prefix = "") const;

  /// Whether `name` belongs to `prefix`'s dot-separated family — the
  /// boundary rule every prefix-taking call above applies.
  static bool InFamily(const std::string& name, const std::string& prefix);

 private:
  mutable std::mutex mu_;
  // Heap-allocated values, so series addresses are stable across inserts
  // and survive Unregister (moved to retired_).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Series removed by Unregister: invisible to reads, kept alive so stale
  // pointer holders never dangle.
  std::vector<std::unique_ptr<Counter>> retired_;
  std::vector<std::unique_ptr<Gauge>> retired_gauges_;
  std::vector<std::unique_ptr<Histogram>> retired_histograms_;
};

/// RAII ownership of one dot-separated counter family: constructs around
/// a registry + prefix, Get()s members as "<prefix>.<suffix>", and
/// unregisters the whole family on destruction (or Reset()). The handle a
/// shard/replica holds so its series disappear when it does.
class ScopedMetricPrefix {
 public:
  ScopedMetricPrefix() = default;
  ScopedMetricPrefix(MetricsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}
  ScopedMetricPrefix(const ScopedMetricPrefix&) = delete;
  ScopedMetricPrefix& operator=(const ScopedMetricPrefix&) = delete;
  ScopedMetricPrefix(ScopedMetricPrefix&& other) noexcept { *this = std::move(other); }
  ScopedMetricPrefix& operator=(ScopedMetricPrefix&& other) noexcept {
    if (this != &other) {
      Reset();
      registry_ = other.registry_;
      prefix_ = std::move(other.prefix_);
      other.registry_ = nullptr;
      other.prefix_.clear();
    }
    return *this;
  }
  ~ScopedMetricPrefix() { Reset(); }

  /// Get-or-create "<prefix>.<suffix>" in the owned family.
  Counter* Get(const std::string& suffix) const {
    return registry_->Get(prefix_ + "." + suffix);
  }
  Gauge* GetGauge(const std::string& suffix) const {
    return registry_->GetGauge(prefix_ + "." + suffix);
  }
  Histogram* GetHistogram(const std::string& suffix) const {
    return registry_->GetHistogram(prefix_ + "." + suffix);
  }

  /// Unregister the family now and detach ("...replica1" never removes
  /// "...replica10.*" — the registry's dot-boundary rule).
  void Reset() {
    if (registry_ != nullptr) registry_->Unregister(prefix_);
    registry_ = nullptr;
    prefix_.clear();
  }

  bool active() const { return registry_ != nullptr; }
  const std::string& prefix() const { return prefix_; }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_METRICS_H_
