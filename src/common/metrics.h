// Per-stage metrics collected by the MapReduce engine. These are the
// quantities Fig. 9 / Table 4 of the paper report.
#ifndef I2MR_COMMON_METRICS_H_
#define I2MR_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace i2mr {

/// Accumulated across all tasks of one job (or one iteration). Thread-safe:
/// tasks add into the atomics concurrently.
struct StageMetrics {
  // Wall time spent inside each stage, summed over tasks (nanoseconds).
  std::atomic<int64_t> map_ns{0};
  std::atomic<int64_t> shuffle_ns{0};  // transferring map outputs to reducers
  std::atomic<int64_t> sort_ns{0};     // map-side sort + reduce-side merge
  std::atomic<int64_t> reduce_ns{0};

  // Volumes.
  std::atomic<int64_t> map_input_records{0};
  std::atomic<int64_t> map_output_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  std::atomic<int64_t> reduce_groups{0};
  std::atomic<int64_t> reduce_output_records{0};

  void Clear() {
    map_ns = 0;
    shuffle_ns = 0;
    sort_ns = 0;
    reduce_ns = 0;
    map_input_records = 0;
    map_output_records = 0;
    shuffle_bytes = 0;
    reduce_groups = 0;
    reduce_output_records = 0;
  }

  /// Accumulate another job's metrics into this one.
  void Add(const StageMetrics& other);

  double map_ms() const { return map_ns.load() / 1e6; }
  double shuffle_ms() const { return shuffle_ns.load() / 1e6; }
  double sort_ms() const { return sort_ns.load() / 1e6; }
  double reduce_ms() const { return reduce_ns.load() / 1e6; }
  double total_ms() const {
    return (map_ns.load() + shuffle_ns.load() + sort_ns.load() +
            reduce_ns.load()) / 1e6;
  }

  std::string ToString() const;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_METRICS_H_
