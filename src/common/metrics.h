// Per-stage metrics collected by the MapReduce engine (the quantities
// Fig. 9 / Table 4 of the paper report), plus a process-wide registry of
// named monotonic counters that the pipeline and serving layers publish
// into (epochs committed, reads served, quota rejections, ...) instead of
// exposing ad-hoc struct reads.
#ifndef I2MR_COMMON_METRICS_H_
#define I2MR_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace i2mr {

/// Accumulated across all tasks of one job (or one iteration). Thread-safe:
/// tasks add into the atomics concurrently.
struct StageMetrics {
  // Wall time spent inside each stage, summed over tasks (nanoseconds).
  std::atomic<int64_t> map_ns{0};
  std::atomic<int64_t> shuffle_ns{0};  // transferring map outputs to reducers
  std::atomic<int64_t> sort_ns{0};     // map-side sort + reduce-side merge
  std::atomic<int64_t> reduce_ns{0};

  // Volumes.
  std::atomic<int64_t> map_input_records{0};
  std::atomic<int64_t> map_output_records{0};
  std::atomic<int64_t> shuffle_bytes{0};
  std::atomic<int64_t> reduce_groups{0};
  std::atomic<int64_t> reduce_output_records{0};

  void Clear() {
    map_ns = 0;
    shuffle_ns = 0;
    sort_ns = 0;
    reduce_ns = 0;
    map_input_records = 0;
    map_output_records = 0;
    shuffle_bytes = 0;
    reduce_groups = 0;
    reduce_output_records = 0;
  }

  /// Accumulate another job's metrics into this one.
  void Add(const StageMetrics& other);

  double map_ms() const { return map_ns.load() / 1e6; }
  double shuffle_ms() const { return shuffle_ns.load() / 1e6; }
  double sort_ms() const { return sort_ns.load() / 1e6; }
  double reduce_ms() const { return reduce_ns.load() / 1e6; }
  double total_ms() const {
    return (map_ns.load() + shuffle_ns.load() + sort_ns.load() +
            reduce_ns.load()) / 1e6;
  }

  std::string ToString() const;
};

/// One named monotonic counter. Obtained from a MetricsRegistry; the
/// pointer is stable for the registry's lifetime, so hot paths hold the
/// Counter* and never re-do the name lookup.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Registry of named counters. Get() is get-or-create and thread-safe;
/// reads through the returned Counter* are lock-free. Names are
/// dot-separated paths ("serving.pr.shard0.reads_served") so one registry
/// can hold per-shard / per-tenant families side by side.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry (what everything publishes into unless
  /// handed an explicit one, e.g. a test-local registry).
  static MetricsRegistry* Default();

  /// Get-or-create the counter named `name`; the pointer stays valid for
  /// the registry's lifetime (even across Unregister — see below).
  Counter* Get(const std::string& name);

  /// Remove every counter whose name starts with `prefix` from the
  /// visible series (Snapshot / SumPrefixed / ToString / re-Get), so a
  /// deregistered shard or replica doesn't leak stale series forever.
  /// Returns the number of counters removed. Previously handed-out
  /// Counter* stay valid (the objects are retired, not destroyed, until
  /// the registry itself dies) — a racing holder at worst updates a
  /// counter nobody reports anymore.
  size_t Unregister(const std::string& prefix);

  /// Point-in-time values of every counter, sorted by name. Counters are
  /// sampled individually (relaxed), not as one atomic cut.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Sum of all counters whose name starts with `prefix` (a cheap way to
  /// aggregate a per-shard family).
  int64_t SumPrefixed(const std::string& prefix) const;

  /// "name=value" lines for every counter under `prefix` ("" = all).
  std::string ToString(const std::string& prefix = "") const;

 private:
  mutable std::mutex mu_;
  // Heap-allocated values, so Counter addresses are stable across inserts
  // and survive Unregister (moved to retired_).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  // Counters removed by Unregister: invisible to reads, kept alive so
  // stale Counter* holders never dangle.
  std::vector<std::unique_ptr<Counter>> retired_;
};

/// RAII ownership of one dot-separated counter family: constructs around
/// a registry + prefix, Get()s members as "<prefix>.<suffix>", and
/// unregisters the whole family on destruction (or Reset()). The handle a
/// shard/replica holds so its series disappear when it does.
class ScopedMetricPrefix {
 public:
  ScopedMetricPrefix() = default;
  ScopedMetricPrefix(MetricsRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}
  ScopedMetricPrefix(const ScopedMetricPrefix&) = delete;
  ScopedMetricPrefix& operator=(const ScopedMetricPrefix&) = delete;
  ScopedMetricPrefix(ScopedMetricPrefix&& other) noexcept { *this = std::move(other); }
  ScopedMetricPrefix& operator=(ScopedMetricPrefix&& other) noexcept {
    if (this != &other) {
      Reset();
      registry_ = other.registry_;
      prefix_ = std::move(other.prefix_);
      other.registry_ = nullptr;
      other.prefix_.clear();
    }
    return *this;
  }
  ~ScopedMetricPrefix() { Reset(); }

  /// Get-or-create "<prefix>.<suffix>" in the owned family.
  Counter* Get(const std::string& suffix) const {
    return registry_->Get(prefix_ + "." + suffix);
  }

  /// Unregister the family now and detach. The trailing separator keeps
  /// this from swallowing a sibling family that shares a name prefix
  /// ("...replica1" must not remove "...replica10.*").
  void Reset() {
    if (registry_ != nullptr) registry_->Unregister(prefix_ + ".");
    registry_ = nullptr;
    prefix_.clear();
  }

  bool active() const { return registry_ != nullptr; }
  const std::string& prefix() const { return prefix_; }

 private:
  MetricsRegistry* registry_ = nullptr;
  std::string prefix_;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_METRICS_H_
