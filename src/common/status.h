// Status / StatusOr: error handling without exceptions (library-wide).
#ifndef I2MR_COMMON_STATUS_H_
#define I2MR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace i2mr {

/// Result of a fallible operation. Cheap to copy when OK.
///
/// [[nodiscard]]: silently dropping a Status hides I/O failures on commit
/// paths; deliberate best-effort call sites must say so with a cast to void
/// (or log the failure).
class [[nodiscard]] Status {
 public:
  enum class Code : int {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kAborted = 5,
    kAlreadyExists = 6,
    kFailedPrecondition = 7,
    kInternal = 8,
    kResourceExhausted = 9,
    kUnavailable = 10,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A quota or rate limit said no (admission control); retryable later.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// The component is temporarily not serving this operation (e.g. a
  /// pipeline in degraded read-only mode); retry after it recovers.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of T or an error Status. Access to value() requires ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr from OK status needs a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace i2mr

/// Propagate a non-OK Status from the current function.
#define I2MR_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::i2mr::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // I2MR_COMMON_STATUS_H_
