// 64-bit hashing used for shuffle partitioning, chunk indexes and MK keys.
#ifndef I2MR_COMMON_HASH_H_
#define I2MR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace i2mr {

/// 64-bit FNV-1a with an avalanche finalizer (splitmix64 mix). Stable across
/// platforms and runs; do not change without regenerating persisted indexes.
uint64_t Hash64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL);

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Hash64(s.data(), s.size(), seed);
}

/// Combine two hashes (order-sensitive).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// Globally unique Map-instance key for one-step jobs: Hash64(K1 ‖ V1).
uint64_t MapInstanceKey(std::string_view k1, std::string_view v1);

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to frame durable log
/// records; stable across platforms and runs — do not change without
/// regenerating persisted logs.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace i2mr

#endif  // I2MR_COMMON_HASH_H_
