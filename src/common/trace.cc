#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "io/env.h"

namespace i2mr {
namespace trace {

namespace internal {

std::atomic<bool> g_enabled{false};

ThreadRing::ThreadRing(uint32_t tid, size_t capacity_pow2)
    : tid_(tid), cap_(capacity_pow2), slots_(new Slot[capacity_pow2]) {}

void ThreadRing::Emit(const char* name, int64_t ts_ns, int64_t dur_ns,
                      const char* args, size_t arg_len) {
  const uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h & (cap_ - 1)];
  // Seqlock writer: odd marks the slot in flight; the release fence orders
  // the odd mark before the payload for a racing reader.
  s.seq.store(2 * h + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.name.store(name, std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  if (arg_len > kArgCapacity) arg_len = kArgCapacity;
  for (size_t i = 0; i < arg_len; ++i) {
    s.args[i].store(args[i], std::memory_order_relaxed);
  }
  s.arg_len.store(static_cast<uint8_t>(arg_len), std::memory_order_relaxed);
  s.seq.store(2 * h + 2, std::memory_order_release);
  head_.store(h + 1, std::memory_order_release);
}

void ThreadRing::Collect(int64_t min_ts_ns, std::vector<Event>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t lo = head > cap_ ? head - cap_ : 0;
  for (uint64_t e = lo; e < head; ++e) {
    const Slot& s = slots_[e & (cap_ - 1)];
    const uint64_t expect = 2 * e + 2;
    if (s.seq.load(std::memory_order_acquire) != expect) continue;
    Event ev;
    ev.tid = tid_;
    ev.name = s.name.load(std::memory_order_relaxed);
    ev.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    ev.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
    const size_t len =
        std::min<size_t>(s.arg_len.load(std::memory_order_relaxed),
                         kArgCapacity);
    char buf[kArgCapacity];
    for (size_t i = 0; i < len; ++i) {
      buf[i] = s.args[i].load(std::memory_order_relaxed);
    }
    // Seqlock reader: the acquire fence orders the payload loads before
    // the re-check; a slot overwritten mid-read fails it and is dropped
    // (ring wraparound drops the oldest events, never the newest).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != expect) continue;
    if (ev.name == nullptr || ev.ts_ns < min_ts_ns) continue;
    ev.args.assign(buf, len);
    out->push_back(std::move(ev));
  }
}

}  // namespace internal

namespace {

thread_local std::string t_pending_thread_name;

/// Owns the thread's ring pointer; the destructor recycles the ring when
/// the thread exits so short-lived threads (shard fan-outs, exchange
/// transfers) don't grow the ring set without bound.
struct RingHandle {
  internal::ThreadRing* ring = nullptr;
  ~RingHandle();
};

thread_local RingHandle t_ring;

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

struct ThreadRingHandle {
  static void Release(internal::ThreadRing* ring) {
    TraceCollector::Get()->ReleaseRing(ring);
  }
};

RingHandle::~RingHandle() {
  if (ring != nullptr) ThreadRingHandle::Release(ring);
}

TraceCollector* TraceCollector::Get() {
  static TraceCollector* collector = new TraceCollector();  // never freed
  return collector;
}

void TraceCollector::Start() {
  session_start_ns_.store(NowNanos(), std::memory_order_relaxed);
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void TraceCollector::Stop() {
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

int64_t TraceCollector::session_start_ns() const {
  return session_start_ns_.load(std::memory_order_relaxed);
}

void TraceCollector::set_ring_capacity(size_t events) {
  size_t cap = 64;
  while (cap < events) cap <<= 1;
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = cap;
  // Undersized recycled rings would resurrect the old capacity.
  free_rings_.erase(
      std::remove_if(free_rings_.begin(), free_rings_.end(),
                     [cap](internal::ThreadRing* r) {
                       return r->capacity() != cap;
                     }),
      free_rings_.end());
}

internal::ThreadRing* TraceCollector::RingForThisThread() {
  if (t_ring.ring != nullptr) return t_ring.ring;
  std::lock_guard<std::mutex> lock(mu_);
  internal::ThreadRing* ring;
  if (!free_rings_.empty()) {
    ring = free_rings_.back();
    free_rings_.pop_back();
  } else {
    rings_.push_back(std::make_unique<internal::ThreadRing>(
        static_cast<uint32_t>(rings_.size()), ring_capacity_));
    ring = rings_.back().get();
  }
  if (!t_pending_thread_name.empty()) {
    thread_names_[ring->tid()] = t_pending_thread_name;
  }
  t_ring.ring = ring;
  return ring;
}

void TraceCollector::ReleaseRing(internal::ThreadRing* ring) {
  std::lock_guard<std::mutex> lock(mu_);
  free_rings_.push_back(ring);
}

void TraceCollector::SetThreadName(const std::string& name) {
  t_pending_thread_name = name;
  if (t_ring.ring != nullptr) {
    TraceCollector* c = Get();
    std::lock_guard<std::mutex> lock(c->mu_);
    c->thread_names_[t_ring.ring->tid()] = name;
  }
}

std::vector<Event> TraceCollector::Snapshot() const {
  const int64_t min_ts = session_start_ns();
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) ring->Collect(min_ts, &out);
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.dur_ns > b.dur_ns;  // enclosing span first at equal starts
  });
  return out;
}

uint64_t TraceCollector::approx_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const uint64_t emitted = ring->emitted();
    if (emitted > ring->capacity()) dropped += emitted - ring->capacity();
  }
  return dropped;
}

std::string TraceCollector::ToChromeJson() const {
  const int64_t t0 = session_start_ns();
  std::vector<Event> events = Snapshot();
  std::map<uint32_t, std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = thread_names_;
  }
  std::string out = "{\"traceEvents\":[\n";
  char buf[256];
  bool first = true;
  for (const auto& [tid, name] : names) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", tid, JsonEscape(name).c_str());
    out += buf;
    first = false;
  }
  for (const Event& ev : events) {
    const double ts_us = static_cast<double>(ev.ts_ns - t0) / 1e3;
    if (ev.dur_ns >= 0) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"ph\":\"X\",\"name\":\"%s\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%.3f,\"dur\":%.3f",
                    first ? "" : ",\n", JsonEscape(ev.name).c_str(), ev.tid,
                    ts_us, static_cast<double>(ev.dur_ns) / 1e3);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":%.3f",
                    first ? "" : ",\n", JsonEscape(ev.name).c_str(), ev.tid,
                    ts_us);
    }
    out += buf;
    if (!ev.args.empty()) {
      out += ",\"args\":{\"detail\":\"" + JsonEscape(ev.args) + "\"}";
    }
    out += "}";
    first = false;
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::ExportChromeJson(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, ToChromeJson()));
  return RenameFile(tmp, path);
}

bool StartFromEnv() {
  const char* path = std::getenv("I2MR_TRACE_JSON");
  if (path == nullptr || path[0] == '\0') return false;
  TraceCollector::Get()->Start();
  return true;
}

Status ExportFromEnv() {
  const char* path = std::getenv("I2MR_TRACE_JSON");
  if (path == nullptr || path[0] == '\0') return Status::OK();
  return TraceCollector::Get()->ExportChromeJson(path);
}

void EmitInstant(const char* name) {
  if (!Enabled()) return;
  TraceCollector::Get()->RingForThisThread()->Emit(name, NowNanos(), -1,
                                                   nullptr, 0);
}

void EmitInstantf(const char* name, const char* fmt, ...) {
  if (!Enabled()) return;
  char buf[internal::kArgCapacity];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n < 0) n = 0;
  TraceCollector::Get()->RingForThisThread()->Emit(
      name, NowNanos(), -1, buf,
      std::min<size_t>(static_cast<size_t>(n), sizeof(buf)));
}

void ScopedSpan::Begin(const char* name) {
  name_ = name;
  arg_len_ = 0;
  // Pin the thread's ring NOW, not at first emit: a span is written at
  // destruction, so if the ring were acquired lazily, two overlapping
  // short-lived threads could emit sequentially into the same recycled
  // ring and interleave overlapping spans on one track. Holding the ring
  // while a span is open keeps every track's events properly nested (a
  // ring is only recycled at thread exit, after all its spans ended).
  TraceCollector::Get()->RingForThisThread();
  start_ns_ = NowNanos();
}

void ScopedSpan::BeginV(const char* name, const char* fmt, va_list ap) {
  name_ = name;
  int n = std::vsnprintf(args_, sizeof(args_), fmt, ap);
  if (n < 0) n = 0;
  arg_len_ = static_cast<uint8_t>(
      std::min<size_t>(static_cast<size_t>(n), sizeof(args_)));
  TraceCollector::Get()->RingForThisThread();  // see Begin()
  start_ns_ = NowNanos();
}

void ScopedSpan::Finish() {
  // Emitted even if tracing was stopped mid-span: the span began inside
  // the session, and snapshot filtering is by start timestamp.
  const int64_t dur = NowNanos() - start_ns_;
  TraceCollector::Get()->RingForThisThread()->Emit(name_, start_ns_, dur,
                                                   args_, arg_len_);
}

}  // namespace trace
}  // namespace i2mr
