// Binary codecs: fixed-width little-endian integers, varints and
// length-prefixed strings. Used by record files, shuffle spills and the
// MRBG-Store chunk format.
#ifndef I2MR_COMMON_CODEC_H_
#define I2MR_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace i2mr {

// ---------------------------------------------------------------------------
// Low-level fixed-width append/parse.
// ---------------------------------------------------------------------------

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);  // little-endian hosts only (x86/arm64).
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

inline void PutDouble(std::string* dst, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  PutFixed64(dst, bits);
}

// ---------------------------------------------------------------------------
// Decoder: sequential parse over a byte buffer with error tracking.
// ---------------------------------------------------------------------------

/// Sequential decoder over a borrowed byte range. After any failed Get* the
/// decoder is marked bad and further reads fail fast.
class Decoder {
 public:
  Decoder(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit Decoder(std::string_view s) : Decoder(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  bool GetFixed32(uint32_t* v) {
    if (!Require(4)) return false;
    *v = DecodeFixed32(p_);
    p_ += 4;
    return true;
  }

  bool GetFixed64(uint64_t* v) {
    if (!Require(8)) return false;
    *v = DecodeFixed64(p_);
    p_ += 8;
    return true;
  }

  bool GetDouble(double* d) {
    uint64_t bits;
    if (!GetFixed64(&bits)) return false;
    std::memcpy(d, &bits, 8);
    return true;
  }

  bool GetLengthPrefixed(std::string_view* out) {
    uint32_t n;
    if (!GetFixed32(&n)) return false;
    if (!Require(n)) return false;
    *out = std::string_view(p_, n);
    p_ += n;
    return true;
  }

  bool GetLengthPrefixed(std::string* out) {
    std::string_view v;
    if (!GetLengthPrefixed(&v)) return false;
    out->assign(v.data(), v.size());
    return true;
  }

  bool GetByte(uint8_t* b) {
    if (!Require(1)) return false;
    *b = static_cast<uint8_t>(*p_);
    ++p_;
    return true;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* p_;
  const char* end_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Human-friendly numeric <-> string key helpers.
// ---------------------------------------------------------------------------

/// Fixed-width decimal encoding so lexicographic string order == numeric
/// order (used for vertex-id keys in graph apps).
std::string PaddedNum(uint64_t v, int width = 10);

/// Parse a decimal string (with or without padding) to uint64.
StatusOr<uint64_t> ParseNum(std::string_view s);

/// Parse a double from text.
StatusOr<double> ParseDouble(std::string_view s);

/// Format a double with enough digits to round-trip.
std::string FormatDouble(double d);

}  // namespace i2mr

#endif  // I2MR_COMMON_CODEC_H_
