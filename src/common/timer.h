// Wall-clock timing helpers (header-only).
#ifndef I2MR_COMMON_TIMER_H_
#define I2MR_COMMON_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace i2mr {

/// Monotonic nanosecond clock.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  int64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  int64_t start_;
};

/// Adds the scope's duration to an atomic nanosecond accumulator on exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::atomic<int64_t>* sink)
      : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { sink_->fetch_add(NowNanos() - start_, std::memory_order_relaxed); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_TIMER_H_
