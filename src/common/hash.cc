#include "common/hash.h"

namespace i2mr {
namespace {

inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h ^ (n * 0x9e3779b97f4a7c15ULL));
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

uint64_t MapInstanceKey(std::string_view k1, std::string_view v1) {
  return HashCombine(Hash64(k1), Hash64(v1, 0x8445d61a4e774912ULL));
}

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0);
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) c = table.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace i2mr
