#include "common/codec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace i2mr {

std::string PaddedNum(uint64_t v, int width) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%0*llu", width,
                        static_cast<unsigned long long>(v));
  return std::string(buf, n);
}

StatusOr<uint64_t> ParseNum(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad digit in number: " + std::string(s));
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

StatusOr<double> ParseDouble(std::string_view s) {
  std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  double d = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size() || errno == ERANGE) {
    return Status::InvalidArgument("bad double: " + tmp);
  }
  return d;
}

std::string FormatDouble(double d) {
  char buf[40];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
  return std::string(buf, n);
}

}  // namespace i2mr
