// Core key-value record types shared by all layers.
#ifndef I2MR_COMMON_KV_H_
#define I2MR_COMMON_KV_H_

#include <cstdint>
#include <string>
#include <tuple>

namespace i2mr {

/// A key-value record. Keys and values are opaque byte strings; ordering is
/// lexicographic on the key (then value, for determinism).
struct KV {
  std::string key;
  std::string value;

  friend bool operator==(const KV& a, const KV& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KV& a, const KV& b) {
    return std::tie(a.key, a.value) < std::tie(b.key, b.value);
  }
};

/// Delta-input operation marker (paper §3.3: '+' insert, '-' delete; an
/// update is a deletion followed by an insertion).
enum class DeltaOp : uint8_t { kInsert = '+', kDelete = '-' };

/// One record of a delta input file.
struct DeltaKV {
  DeltaOp op = DeltaOp::kInsert;
  std::string key;
  std::string value;

  friend bool operator==(const DeltaKV& a, const DeltaKV& b) {
    return a.op == b.op && a.key == b.key && a.value == b.value;
  }
};

inline char DeltaOpChar(DeltaOp op) { return static_cast<char>(op); }

}  // namespace i2mr

#endif  // I2MR_COMMON_KV_H_
