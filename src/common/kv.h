// Core key-value record types shared by all layers.
#ifndef I2MR_COMMON_KV_H_
#define I2MR_COMMON_KV_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

namespace i2mr {

/// A key-value record. Keys and values are opaque byte strings; ordering is
/// lexicographic on the key (then value, for determinism).
struct KV {
  std::string key;
  std::string value;

  friend bool operator==(const KV& a, const KV& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KV& a, const KV& b) {
    return std::tie(a.key, a.value) < std::tie(b.key, b.value);
  }
};

/// Delta-input operation marker (paper §3.3: '+' insert, '-' delete; an
/// update is a deletion followed by an insertion).
enum class DeltaOp : uint8_t { kInsert = '+', kDelete = '-' };

/// One record of a delta input file.
struct DeltaKV {
  DeltaOp op = DeltaOp::kInsert;
  std::string key;
  std::string value;

  friend bool operator==(const DeltaKV& a, const DeltaKV& b) {
    return a.op == b.op && a.key == b.key && a.value == b.value;
  }
};

inline char DeltaOpChar(DeltaOp op) { return static_cast<char>(op); }

/// Offset/length view of one record inside a FlatKVRun arena. Key and value
/// carry independent offsets so a run can be built zero-copy over framed
/// record-file bytes (where a length prefix sits between the two fields) as
/// well as over tightly packed Append()ed bytes.
struct KVRef {
  uint64_t key_off = 0;
  uint64_t val_off = 0;
  uint32_t klen = 0;
  uint32_t vlen = 0;
};

/// A flat run of kv records: one contiguous byte arena plus an offset/length
/// entry per record. Sorting and merging permute the 24-byte refs instead of
/// copying `std::string` pairs, which is what keeps the in-memory shuffle
/// free of the per-record allocation storm the KV-vector representation
/// paid. Lifetime: Append/AppendRun may reallocate the arena, so views
/// returned by key()/value() are valid only while the run is no longer
/// mutated (Sort is fine — it moves refs, not bytes) and not destroyed,
/// cleared or moved-from. The shuffle honors this by finishing all writes
/// to a run before any reader borrows it.
class FlatKVRun {
 public:
  void Reserve(size_t records, size_t arena_bytes) {
    refs_.reserve(records);
    arena_.reserve(arena_bytes);
  }

  void Append(std::string_view key, std::string_view value) {
    KVRef ref;
    ref.key_off = arena_.size();
    ref.klen = static_cast<uint32_t>(key.size());
    ref.val_off = ref.key_off + key.size();
    ref.vlen = static_cast<uint32_t>(value.size());
    arena_.append(key.data(), key.size());
    arena_.append(value.data(), value.size());
    payload_bytes_ += key.size() + value.size();
    refs_.push_back(ref);
  }

  void AppendRun(const FlatKVRun& other) {
    uint64_t base = arena_.size();
    arena_.append(other.arena_);
    refs_.reserve(refs_.size() + other.refs_.size());
    for (KVRef ref : other.refs_) {
      ref.key_off += base;
      ref.val_off += base;
      refs_.push_back(ref);
    }
    payload_bytes_ += other.payload_bytes_;
  }

  /// Adopt a pre-filled arena and refs (zero-copy spill-file decode).
  void Adopt(std::string arena, std::vector<KVRef> refs,
             uint64_t payload_bytes) {
    arena_ = std::move(arena);
    refs_ = std::move(refs);
    payload_bytes_ = payload_bytes;
  }

  size_t size() const { return refs_.size(); }
  bool empty() const { return refs_.empty(); }

  std::string_view key(size_t i) const { return key(refs_[i]); }
  std::string_view value(size_t i) const { return value(refs_[i]); }
  std::string_view key(const KVRef& r) const {
    return std::string_view(arena_.data() + r.key_off, r.klen);
  }
  std::string_view value(const KVRef& r) const {
    return std::string_view(arena_.data() + r.val_off, r.vlen);
  }

  std::vector<KVRef>& refs() { return refs_; }
  const std::vector<KVRef>& refs() const { return refs_; }

  /// Bytes this run occupies in memory (arena + refs) — what a shuffle
  /// memory budget accounts against.
  uint64_t memory_bytes() const {
    return arena_.size() + refs_.size() * sizeof(KVRef);
  }

  /// Bytes this run would occupy as a record file
  /// ([u32 klen][key][u32 vlen][value] per record) — the size its disk
  /// spill would have had, used to keep the shuffle's simulated network
  /// charges identical between the in-memory and disk paths.
  uint64_t serialized_bytes() const {
    return payload_bytes_ + 8u * refs_.size();
  }

  /// Sort refs by (key, value), the record-file spill order.
  void Sort() {
    std::sort(refs_.begin(), refs_.end(),
              [this](const KVRef& a, const KVRef& b) {
                int c = key(a).compare(key(b));
                if (c != 0) return c < 0;
                return value(a) < value(b);
              });
  }

  void Clear() {
    arena_.clear();
    refs_.clear();
    payload_bytes_ = 0;
  }

 private:
  std::string arena_;
  std::vector<KVRef> refs_;
  uint64_t payload_bytes_ = 0;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_KV_H_
