#include "common/health.h"

#include "common/logging.h"
#include "common/timer.h"

namespace i2mr {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFailed: return "failed";
  }
  return "unknown";
}

HealthRegistry::HealthRegistry(MetricsRegistry* metrics)
    : metrics_(metrics != nullptr ? metrics : MetricsRegistry::Default()) {}

HealthRegistry* HealthRegistry::Default() {
  static HealthRegistry* instance = new HealthRegistry();
  return instance;
}

void HealthRegistry::Report(const std::string& component, HealthState state,
                            const std::string& reason) {
  bool transitioned = false;
  HealthState previous = HealthState::kHealthy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = components_.try_emplace(component);
    ComponentHealth& h = it->second;
    if (inserted) {
      h.component = component;
      h.since_ns = NowNanos();
    }
    previous = h.state;
    // A component's implicit initial state is healthy, so a first report
    // of a non-healthy state is a real transition (and gets logged).
    transitioned = inserted ? state != HealthState::kHealthy
                            : h.state != state;
    if (inserted || transitioned) {
      h.state = state;
      h.since_ns = NowNanos();
      if (transitioned) ++h.transitions;
    }
    h.reason = state == HealthState::kHealthy ? "" : reason;
    metrics_->GetGauge("health." + component)->Set(static_cast<int64_t>(state));
  }
  if (!transitioned) return;
  if (state == HealthState::kHealthy) {
    LOG_INFO << "health: " << component << " recovered ("
             << HealthStateName(previous) << " -> healthy)";
  } else {
    LOG_WARN << "health: " << component << " " << HealthStateName(previous)
             << " -> " << HealthStateName(state)
             << (reason.empty() ? "" : ": " + reason);
  }
}

HealthState HealthRegistry::state(const std::string& component) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = components_.find(component);
  return it == components_.end() ? HealthState::kHealthy : it->second.state;
}

std::string HealthRegistry::reason(const std::string& component) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = components_.find(component);
  return it == components_.end() ? "" : it->second.reason;
}

std::vector<ComponentHealth> HealthRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ComponentHealth> out;
  out.reserve(components_.size());
  for (const auto& [_, health] : components_) out.push_back(health);
  return out;
}

bool HealthRegistry::AllHealthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [_, health] : components_) {
    if (health.state != HealthState::kHealthy) return false;
  }
  return true;
}

std::string HealthRegistry::ToString() const {
  std::string out;
  for (const auto& health : Snapshot()) {
    out += health.component;
    out += ' ';
    out += HealthStateName(health.state);
    if (!health.reason.empty()) {
      out += ' ';
      out += health.reason;
    }
    out += '\n';
  }
  return out;
}

bool HealthRegistry::Remove(const std::string& component) {
  std::lock_guard<std::mutex> lock(mu_);
  if (components_.erase(component) == 0) return false;
  metrics_->Unregister("health." + component);
  return true;
}

}  // namespace i2mr
