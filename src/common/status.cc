#include "common/status.h"

namespace i2mr {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NOT_FOUND";
    case Status::Code::kCorruption: return "CORRUPTION";
    case Status::Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::Code::kIOError: return "IO_ERROR";
    case Status::Code::kAborted: return "ABORTED";
    case Status::Code::kAlreadyExists: return "ALREADY_EXISTS";
    case Status::Code::kFailedPrecondition: return "FAILED_PRECONDITION";
    case Status::Code::kInternal: return "INTERNAL";
    case Status::Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::Code::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace i2mr
