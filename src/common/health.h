// Process-wide component health: pipelines, the coordinated router, replica
// shippers and the metrics exporter report kHealthy/kDegraded/kFailed with a
// reason. States mirror into the MetricsRegistry as `health.<component>`
// gauges (0/1/2) so the existing MetricsExporter publishes them for free.
#ifndef I2MR_COMMON_HEALTH_H_
#define I2MR_COMMON_HEALTH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace i2mr {

enum class HealthState : int {
  kHealthy = 0,
  kDegraded = 1,  // reduced service (e.g. read-only), self-recovery expected
  kFailed = 2,    // not serving its function; operator action likely needed
};

const char* HealthStateName(HealthState state);

struct ComponentHealth {
  std::string component;
  HealthState state = HealthState::kHealthy;
  std::string reason;       // empty when healthy
  int64_t since_ns = 0;     // wall time of the last state transition
  uint64_t transitions = 0; // state changes since the component first reported
};

class HealthRegistry {
 public:
  /// Mirrors states into `metrics` (MetricsRegistry::Default() if null).
  explicit HealthRegistry(MetricsRegistry* metrics = nullptr);

  static HealthRegistry* Default();

  /// Idempotent: re-reporting the current state only refreshes the reason.
  /// Transitions are logged (WARN on degrade, INFO on recovery).
  void Report(const std::string& component, HealthState state,
              const std::string& reason = "");

  /// kHealthy for components that never reported.
  HealthState state(const std::string& component) const;
  std::string reason(const std::string& component) const;

  std::vector<ComponentHealth> Snapshot() const;
  bool AllHealthy() const;

  /// One line per component: "<component> <state> [<reason>]".
  std::string ToString() const;

  /// Forget a component (and retire its gauge). Returns true if it existed.
  bool Remove(const std::string& component);

 private:
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  std::map<std::string, ComponentHealth> components_;
};

}  // namespace i2mr

#endif  // I2MR_COMMON_HEALTH_H_
