#include "data/matrix_gen.h"

#include <cstdio>
#include <map>

#include "common/codec.h"
#include "common/logging.h"
#include "common/random.h"
#include "data/points_gen.h"  // JoinVector

namespace i2mr {
namespace {

// Sample the triples of one block; column sums tracked globally for
// normalization.
std::vector<MatrixTriple> SampleBlockTriples(const MatrixGenOptions& o,
                                             Rng* rng) {
  std::vector<MatrixTriple> triples;
  int nnz_target = static_cast<int>(o.density * o.block_size * o.block_size);
  std::map<std::pair<int, int>, double> cells;
  for (int k = 0; k < nnz_target; ++k) {
    int i = static_cast<int>(rng->Uniform(o.block_size));
    int j = static_cast<int>(rng->Uniform(o.block_size));
    cells[{i, j}] = 0.1 + rng->NextDouble();
  }
  triples.reserve(cells.size());
  for (const auto& [ij, v] : cells) {
    triples.push_back(MatrixTriple{ij.first, ij.second, v});
  }
  return triples;
}

// Normalize columns across a full block-column so iterated multiplication
// contracts (spectral radius < 1).
void NormalizeColumns(const MatrixGenOptions& o, std::vector<KV>* blocks) {
  if (!o.column_normalize) return;
  int n = o.num_blocks * o.block_size;
  std::vector<double> col_sums(n, 0.0);
  std::vector<std::vector<MatrixTriple>> parsed(blocks->size());
  for (size_t b = 0; b < blocks->size(); ++b) {
    auto [br, bc] = ParseBlockKey((*blocks)[b].key);
    (void)br;
    parsed[b] = ParseBlock((*blocks)[b].value);
    for (const auto& t : parsed[b]) {
      col_sums[bc * o.block_size + t.j] += t.val;
    }
  }
  for (size_t b = 0; b < blocks->size(); ++b) {
    auto [br, bc] = ParseBlockKey((*blocks)[b].key);
    (void)br;
    for (auto& t : parsed[b]) {
      double s = col_sums[bc * o.block_size + t.j];
      if (s > 0) t.val = t.val / s * o.column_scale;
    }
    (*blocks)[b].value = JoinBlock(parsed[b]);
  }
}

}  // namespace

std::vector<KV> GenBlockMatrix(const MatrixGenOptions& options) {
  Rng rng(options.seed);
  std::vector<KV> blocks;
  for (int r = 0; r < options.num_blocks; ++r) {
    for (int c = 0; c < options.num_blocks; ++c) {
      auto triples = SampleBlockTriples(options, &rng);
      if (triples.empty()) continue;
      blocks.push_back(KV{BlockKey(r, c), JoinBlock(triples)});
    }
  }
  NormalizeColumns(options, &blocks);
  return blocks;
}

std::vector<KV> GenVectorBlocks(const MatrixGenOptions& options, double value) {
  std::vector<KV> out;
  std::vector<double> v(options.block_size, value);
  for (int b = 0; b < options.num_blocks; ++b) {
    out.push_back(KV{PaddedNum(b, 6), JoinVector(v)});
  }
  return out;
}

std::vector<DeltaKV> GenMatrixDelta(const MatrixGenOptions& gen,
                                    double update_fraction, uint64_t seed,
                                    std::vector<KV>* blocks) {
  Rng rng(seed);
  std::vector<DeltaKV> out;
  size_t num_updates = static_cast<size_t>(update_fraction * blocks->size());
  for (size_t u = 0; u < num_updates; ++u) {
    size_t b = rng.Uniform(blocks->size());
    KV& rec = (*blocks)[b];
    auto triples = SampleBlockTriples(gen, &rng);
    // Scale entries down like the normalized originals.
    for (auto& t : triples) t.val *= gen.column_scale / gen.block_size;
    std::string nv = JoinBlock(triples);
    out.push_back(DeltaKV{DeltaOp::kDelete, rec.key, rec.value});
    out.push_back(DeltaKV{DeltaOp::kInsert, rec.key, nv});
    rec.value = std::move(nv);
  }
  return out;
}

std::vector<MatrixTriple> ParseBlock(const std::string& sv) {
  std::vector<MatrixTriple> out;
  size_t i = 0;
  while (i < sv.size()) {
    size_t j = sv.find(' ', i);
    if (j == std::string::npos) j = sv.size();
    std::string tok = sv.substr(i, j - i);
    size_t c1 = tok.find(':');
    size_t c2 = tok.find(':', c1 + 1);
    I2MR_CHECK(c1 != std::string::npos && c2 != std::string::npos)
        << "bad matrix triple: " << tok;
    MatrixTriple t;
    t.i = static_cast<int>(*ParseNum(tok.substr(0, c1)));
    t.j = static_cast<int>(*ParseNum(tok.substr(c1 + 1, c2 - c1 - 1)));
    auto val = ParseDouble(tok.substr(c2 + 1));
    I2MR_CHECK(val.ok());
    t.val = *val;
    out.push_back(t);
    i = j + 1;
  }
  return out;
}

std::string JoinBlock(const std::vector<MatrixTriple>& triples) {
  std::string out;
  for (size_t k = 0; k < triples.size(); ++k) {
    if (k > 0) out.push_back(' ');
    out += std::to_string(triples[k].i);
    out.push_back(':');
    out += std::to_string(triples[k].j);
    out.push_back(':');
    out += FormatDouble(triples[k].val);
  }
  return out;
}

std::string BlockKey(int r, int c) {
  return PaddedNum(r, 6) + "," + PaddedNum(c, 6);
}

std::pair<int, int> ParseBlockKey(const std::string& sk) {
  size_t comma = sk.find(',');
  I2MR_CHECK(comma != std::string::npos) << "bad block key: " << sk;
  return {static_cast<int>(*ParseNum(sk.substr(0, comma))),
          static_cast<int>(*ParseNum(sk.substr(comma + 1)))};
}

}  // namespace i2mr
