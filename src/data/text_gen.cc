#include "data/text_gen.h"

#include "common/codec.h"
#include "common/random.h"

namespace i2mr {
namespace {

std::string SampleDoc(const TextGenOptions& o, const ZipfSampler& zipf,
                      Rng* rng) {
  std::string out;
  for (int w = 0; w < o.words_per_doc; ++w) {
    if (w > 0) out.push_back(' ');
    out += "w" + std::to_string(zipf.Sample(rng));
  }
  return out;
}

}  // namespace

std::vector<KV> GenDocs(const TextGenOptions& options) {
  Rng rng(options.seed);
  ZipfSampler zipf(options.vocab_size, options.zipf_skew);
  std::vector<KV> out;
  out.reserve(options.num_docs);
  for (uint64_t i = 0; i < options.num_docs; ++i) {
    out.push_back(
        KV{PaddedNum(options.first_doc_id + i), SampleDoc(options, zipf, &rng)});
  }
  return out;
}

std::vector<DeltaKV> GenDocsDelta(const TextGenOptions& gen, double fraction,
                                  uint64_t seed, std::vector<KV>* docs) {
  Rng rng(seed);
  ZipfSampler zipf(gen.vocab_size, gen.zipf_skew);
  uint64_t next_id = 0;
  for (const auto& kv : *docs) {
    auto id = ParseNum(kv.key);
    if (id.ok() && *id >= next_id) next_id = *id + 1;
  }
  auto count = static_cast<uint64_t>(fraction * gen.num_docs);
  std::vector<DeltaKV> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = PaddedNum(next_id++);
    std::string val = SampleDoc(gen, zipf, &rng);
    out.push_back(DeltaKV{DeltaOp::kInsert, key, val});
    docs->push_back(KV{key, val});
  }
  return out;
}

}  // namespace i2mr
