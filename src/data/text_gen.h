// Synthetic tweet generator (Twitter-crawl stand-in for APriori): documents
// of Zipf-distributed words over a fixed vocabulary.
//
// Encoding: K1 = padded tweet id, V1 = "w<id> w<id> ...".
#ifndef I2MR_DATA_TEXT_GEN_H_
#define I2MR_DATA_TEXT_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/kv.h"

namespace i2mr {

struct TextGenOptions {
  uint64_t num_docs = 1000;
  uint64_t vocab_size = 500;
  int words_per_doc = 12;
  double zipf_skew = 1.0;
  uint64_t seed = 46;
  uint64_t first_doc_id = 0;
};

std::vector<KV> GenDocs(const TextGenOptions& options);

/// Insertion-only delta: `fraction * num_docs` new documents (the last
/// week's tweets in §8.1.5 — accumulator Reduce requires insert-only).
std::vector<DeltaKV> GenDocsDelta(const TextGenOptions& gen, double fraction,
                                  uint64_t seed, std::vector<KV>* docs);

}  // namespace i2mr

#endif  // I2MR_DATA_TEXT_GEN_H_
