// Gaussian-mixture point generator (BigCross stand-in for Kmeans), plus
// point delta generation.
//
// Point encoding: SK = padded point id, SV = "x1,x2,...,xd".
#ifndef I2MR_DATA_POINTS_GEN_H_
#define I2MR_DATA_POINTS_GEN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/kv.h"

namespace i2mr {

struct PointsGenOptions {
  uint64_t num_points = 1000;
  int dims = 4;
  int num_clusters = 8;    // latent generating clusters
  double cluster_stddev = 0.5;
  double center_range = 10.0;  // cluster centers uniform in [-range, range]^d
  uint64_t seed = 44;
};

std::vector<KV> GenPoints(const PointsGenOptions& options);

/// Delta: re-sample a fraction of points (delete+insert) and insert new ones.
std::vector<DeltaKV> GenPointsDelta(const PointsGenOptions& gen,
                                    double update_fraction,
                                    double insert_fraction, uint64_t seed,
                                    std::vector<KV>* points);

// Vector codecs shared with the Kmeans app.
std::vector<double> ParseVector(std::string_view s);
std::string JoinVector(const std::vector<double>& v);

}  // namespace i2mr

#endif  // I2MR_DATA_POINTS_GEN_H_
