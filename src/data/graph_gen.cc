#include "data/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/codec.h"
#include "common/logging.h"
#include "common/random.h"

namespace i2mr {
namespace {

// Sample a vertex's out-edges: degree ~ geometric-ish around avg, targets
// Zipf-distributed (popular pages get many in-links).
std::string AppendPayload(std::string sv, const GraphGenOptions& options,
                          Rng* rng) {
  if (options.payload_bytes <= 0) return sv;
  sv.push_back('#');
  for (int i = 0; i < options.payload_bytes; ++i) {
    sv.push_back(static_cast<char>('a' + rng->Uniform(26)));
  }
  return sv;
}

std::string SampleAdjacency(uint64_t self, const GraphGenOptions& options,
                            const ZipfSampler& zipf, Rng* rng) {
  // Degree: 0.5x..1.5x the average, at least 0.
  double jitter = 0.5 + rng->NextDouble();
  int degree = static_cast<int>(options.avg_degree * jitter);
  std::set<uint64_t> dests;
  int attempts = 0;
  while (static_cast<int>(dests.size()) < degree &&
         attempts < degree * 4 + 16) {
    ++attempts;
    uint64_t d = zipf.Sample(rng);
    if (d == self) continue;
    dests.insert(d);
  }
  if (!options.weighted) {
    std::vector<std::string> padded;
    padded.reserve(dests.size());
    for (uint64_t d : dests) padded.push_back(PaddedNum(d, options.id_width));
    return AppendPayload(JoinAdjacency(padded), options, rng);
  }
  std::vector<std::pair<std::string, double>> edges;
  edges.reserve(dests.size());
  for (uint64_t d : dests) {
    double w = std::abs(rng->Gaussian(options.weight_mean,
                                      options.weight_stddev)) + 0.1;
    edges.emplace_back(PaddedNum(d, options.id_width), w);
  }
  return AppendPayload(JoinWeightedAdjacency(edges), options, rng);
}

}  // namespace

std::vector<KV> GenGraph(const GraphGenOptions& options) {
  Rng rng(options.seed);
  ZipfSampler zipf(options.num_vertices, options.dest_skew);
  std::vector<KV> out;
  out.reserve(options.num_vertices);
  for (uint64_t v = 0; v < options.num_vertices; ++v) {
    out.push_back(KV{PaddedNum(v, options.id_width),
                     SampleAdjacency(v, options, zipf, &rng)});
  }
  return out;
}

std::vector<DeltaKV> GenGraphDelta(const GraphGenOptions& gen,
                                   const GraphDeltaOptions& delta,
                                   std::vector<KV>* graph) {
  Rng rng(delta.seed);
  ZipfSampler zipf(gen.num_vertices, gen.dest_skew);
  std::vector<DeltaKV> out;

  const size_t n = graph->size();
  auto num_updates = static_cast<size_t>(delta.update_fraction * n);
  auto num_deletes = static_cast<size_t>(delta.delete_fraction * n);
  auto num_inserts = static_cast<size_t>(delta.insert_fraction * n);

  // Choose distinct victim indices for updates + deletes.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = n; i > 1; --i) {  // Fisher-Yates
    std::swap(indices[i - 1], indices[rng.Uniform(i)]);
  }

  std::set<size_t> doomed;  // indices removed from *graph afterwards
  size_t cursor = 0;

  // Updates: delete old record, insert re-sampled record (paper §3.3: "an
  // update is represented as a deletion followed by an insertion").
  for (size_t u = 0; u < num_updates && cursor < n; ++u, ++cursor) {
    KV& rec = (*graph)[indices[cursor]];
    auto vid = ParseNum(rec.key);
    I2MR_CHECK(vid.ok());
    std::string new_sv = SampleAdjacency(*vid, gen, zipf, &rng);
    out.push_back(DeltaKV{DeltaOp::kDelete, rec.key, rec.value});
    out.push_back(DeltaKV{DeltaOp::kInsert, rec.key, new_sv});
    rec.value = std::move(new_sv);
  }

  // Deletions.
  for (size_t d = 0; d < num_deletes && cursor < n; ++d, ++cursor) {
    const KV& rec = (*graph)[indices[cursor]];
    out.push_back(DeltaKV{DeltaOp::kDelete, rec.key, rec.value});
    doomed.insert(indices[cursor]);
  }

  // Insertions: brand-new vertex ids beyond the current id space.
  uint64_t next_id = gen.num_vertices;
  for (const auto& kv : *graph) {
    auto vid = ParseNum(kv.key);
    if (vid.ok() && *vid >= next_id) next_id = *vid + 1;
  }
  for (size_t i = 0; i < num_inserts; ++i) {
    uint64_t vid = next_id++;
    std::string sv = SampleAdjacency(vid, gen, zipf, &rng);
    out.push_back(DeltaKV{DeltaOp::kInsert, PaddedNum(vid, gen.id_width), sv});
    graph->push_back(KV{PaddedNum(vid, gen.id_width), sv});
  }

  if (!doomed.empty()) {
    std::vector<KV> kept;
    kept.reserve(graph->size() - doomed.size());
    for (size_t i = 0; i < graph->size(); ++i) {
      if (doomed.count(i) == 0) kept.push_back(std::move((*graph)[i]));
    }
    *graph = std::move(kept);
  }
  return out;
}

std::vector<std::string> ParseAdjacency(const std::string& sv) {
  std::vector<std::string> out;
  size_t end = sv.find('#');  // strip opaque payload
  if (end == std::string::npos) end = sv.size();
  size_t i = 0;
  while (i < end) {
    size_t j = sv.find(' ', i);
    if (j == std::string::npos || j > end) j = end;
    if (j > i) out.push_back(sv.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

std::vector<std::pair<std::string, double>> ParseWeightedAdjacency(
    const std::string& sv) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& tok : ParseAdjacency(sv)) {
    size_t c = tok.find(':');
    I2MR_CHECK(c != std::string::npos) << "bad weighted edge: " << tok;
    auto w = ParseDouble(tok.substr(c + 1));
    I2MR_CHECK(w.ok());
    out.emplace_back(tok.substr(0, c), *w);
  }
  return out;
}

std::string JoinAdjacency(const std::vector<std::string>& dests) {
  std::string out;
  for (size_t i = 0; i < dests.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += dests[i];
  }
  return out;
}

std::string JoinWeightedAdjacency(
    const std::vector<std::pair<std::string, double>>& edges) {
  std::string out;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += edges[i].first;
    out.push_back(':');
    out += FormatDouble(edges[i].second);
  }
  return out;
}

}  // namespace i2mr
