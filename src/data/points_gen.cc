#include "data/points_gen.h"

#include <algorithm>

#include "common/codec.h"
#include "common/logging.h"
#include "common/random.h"

namespace i2mr {
namespace {

std::vector<std::vector<double>> SampleCenters(const PointsGenOptions& o,
                                               Rng* rng) {
  std::vector<std::vector<double>> centers(o.num_clusters);
  for (auto& c : centers) {
    c.resize(o.dims);
    for (auto& x : c) x = (rng->NextDouble() * 2 - 1) * o.center_range;
  }
  return centers;
}

std::string SamplePoint(const PointsGenOptions& o,
                        const std::vector<std::vector<double>>& centers,
                        Rng* rng) {
  const auto& c = centers[rng->Uniform(centers.size())];
  std::vector<double> x(o.dims);
  for (int d = 0; d < o.dims; ++d) {
    x[d] = c[d] + rng->Gaussian(0, o.cluster_stddev);
  }
  return JoinVector(x);
}

}  // namespace

std::vector<KV> GenPoints(const PointsGenOptions& options) {
  Rng rng(options.seed);
  auto centers = SampleCenters(options, &rng);
  std::vector<KV> out;
  out.reserve(options.num_points);
  for (uint64_t i = 0; i < options.num_points; ++i) {
    out.push_back(KV{PaddedNum(i), SamplePoint(options, centers, &rng)});
  }
  return out;
}

std::vector<DeltaKV> GenPointsDelta(const PointsGenOptions& gen,
                                    double update_fraction,
                                    double insert_fraction, uint64_t seed,
                                    std::vector<KV>* points) {
  Rng rng(seed);
  auto centers = SampleCenters(gen, &rng);  // same layout family
  std::vector<DeltaKV> out;
  size_t n = points->size();
  auto num_updates = static_cast<size_t>(update_fraction * n);
  auto num_inserts = static_cast<size_t>(insert_fraction * n);
  for (size_t u = 0; u < num_updates; ++u) {
    size_t i = rng.Uniform(n);
    KV& rec = (*points)[i];
    std::string nv = SamplePoint(gen, centers, &rng);
    out.push_back(DeltaKV{DeltaOp::kDelete, rec.key, rec.value});
    out.push_back(DeltaKV{DeltaOp::kInsert, rec.key, nv});
    rec.value = std::move(nv);
  }
  uint64_t next_id = n;
  for (const auto& kv : *points) {
    auto pid = ParseNum(kv.key);
    if (pid.ok() && *pid >= next_id) next_id = *pid + 1;
  }
  for (size_t i = 0; i < num_inserts; ++i) {
    std::string key = PaddedNum(next_id++);
    std::string val = SamplePoint(gen, centers, &rng);
    out.push_back(DeltaKV{DeltaOp::kInsert, key, val});
    points->push_back(KV{key, val});
  }
  return out;
}

std::vector<double> ParseVector(std::string_view s) {
  std::vector<double> out;
  size_t i = 0;
  while (i <= s.size() && !s.empty()) {
    size_t j = s.find(',', i);
    if (j == std::string::npos) j = s.size();
    auto d = ParseDouble(s.substr(i, j - i));
    I2MR_CHECK(d.ok()) << "bad vector component in: " << s;
    out.push_back(*d);
    if (j == s.size()) break;
    i = j + 1;
  }
  return out;
}

std::string JoinVector(const std::vector<double>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += FormatDouble(v[i]);
  }
  return out;
}

}  // namespace i2mr
