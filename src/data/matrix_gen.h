// Sparse block-matrix generator (WikiTalk stand-in for GIM-V iterated
// matrix-vector multiplication).
//
// Encoding:
//   matrix block: SK = "<r>,<c>" (padded block row/col), SV = sparse triples
//                 "i:j:val i:j:val ..." with 0 <= i,j < block_size
//   vector block: DK = padded block id, DV = "x0,x1,...,x_{b-1}"
#ifndef I2MR_DATA_MATRIX_GEN_H_
#define I2MR_DATA_MATRIX_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/kv.h"

namespace i2mr {

struct MatrixGenOptions {
  int num_blocks = 8;      // matrix is (num_blocks*block_size)^2
  int block_size = 16;
  double density = 0.05;   // fraction of nonzero entries
  uint64_t seed = 45;
  /// Normalize columns to sum <= damping (keeps iterated multiply stable).
  bool column_normalize = true;
  double column_scale = 0.85;
};

/// Generate non-empty matrix blocks.
std::vector<KV> GenBlockMatrix(const MatrixGenOptions& options);

/// Initial vector blocks (all components = value).
std::vector<KV> GenVectorBlocks(const MatrixGenOptions& options, double value);

/// Delta: re-sample a fraction of the blocks (delete + insert).
std::vector<DeltaKV> GenMatrixDelta(const MatrixGenOptions& gen,
                                    double update_fraction, uint64_t seed,
                                    std::vector<KV>* blocks);

// Codecs shared with the GIM-V app.
struct MatrixTriple {
  int i = 0, j = 0;
  double val = 0;
};
std::vector<MatrixTriple> ParseBlock(const std::string& sv);
std::string JoinBlock(const std::vector<MatrixTriple>& triples);
std::string BlockKey(int r, int c);
/// Parse "<r>,<c>" -> (r, c).
std::pair<int, int> ParseBlockKey(const std::string& sk);

}  // namespace i2mr

#endif  // I2MR_DATA_MATRIX_GEN_H_
