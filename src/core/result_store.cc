#include "core/result_store.h"

#include "common/codec.h"
#include "io/env.h"

namespace i2mr {

StatusOr<ResultStore> ResultStore::Open(const std::string& path) {
  ResultStore store(path);
  if (!FileExists(path)) return store;
  auto data = ReadFileToString(path);
  if (!data.ok()) return data.status();
  Decoder dec(*data);
  uint64_t n_results, n_inst;
  if (!dec.GetFixed64(&n_results)) return Status::Corruption("bad result store");
  for (uint64_t i = 0; i < n_results; ++i) {
    std::string k, v;
    if (!dec.GetLengthPrefixed(&k) || !dec.GetLengthPrefixed(&v)) {
      return Status::Corruption("bad result entry");
    }
    store.results_[std::move(k)] = std::move(v);
  }
  if (!dec.GetFixed64(&n_inst)) return Status::Corruption("bad result store");
  for (uint64_t i = 0; i < n_inst; ++i) {
    std::string k2;
    uint32_t m;
    if (!dec.GetLengthPrefixed(&k2) || !dec.GetFixed32(&m)) {
      return Status::Corruption("bad instance entry");
    }
    std::vector<std::string> k3s(m);
    for (uint32_t j = 0; j < m; ++j) {
      if (!dec.GetLengthPrefixed(&k3s[j])) {
        return Status::Corruption("bad instance k3");
      }
    }
    store.by_inst_[std::move(k2)] = std::move(k3s);
  }
  return store;
}

void ResultStore::SetInstanceOutputs(const std::string& k2,
                                     const std::vector<KV>& outputs) {
  EraseInstance(k2);
  std::vector<std::string> k3s;
  k3s.reserve(outputs.size());
  for (const auto& kv : outputs) {
    results_[kv.key] = kv.value;
    k3s.push_back(kv.key);
  }
  by_inst_[k2] = std::move(k3s);
}

void ResultStore::EraseInstance(const std::string& k2) {
  auto it = by_inst_.find(k2);
  if (it == by_inst_.end()) return;
  for (const auto& k3 : it->second) results_.erase(k3);
  by_inst_.erase(it);
}

void ResultStore::Put(const std::string& k3, const std::string& v3) {
  results_[k3] = v3;
}

const std::string* ResultStore::Get(const std::string& k3) const {
  auto it = results_.find(k3);
  return it == results_.end() ? nullptr : &it->second;
}

std::vector<KV> ResultStore::Snapshot() const {
  std::vector<KV> out;
  out.reserve(results_.size());
  for (const auto& [k, v] : results_) out.push_back(KV{k, v});
  return out;
}

void ResultStore::VisitRange(const std::string& begin, const std::string& end,
                             const std::function<bool(const KV&)>& fn) const {
  auto it = results_.lower_bound(begin);
  auto stop = end.empty() ? results_.end() : results_.lower_bound(end);
  for (; it != stop; ++it) {
    if (!fn(KV{it->first, it->second})) return;
  }
}

Status ResultStore::SaveAs(const std::string& path) const {
  std::string buf;
  PutFixed64(&buf, results_.size());
  for (const auto& [k, v] : results_) {
    PutLengthPrefixed(&buf, k);
    PutLengthPrefixed(&buf, v);
  }
  PutFixed64(&buf, by_inst_.size());
  for (const auto& [k2, k3s] : by_inst_) {
    PutLengthPrefixed(&buf, k2);
    PutFixed32(&buf, static_cast<uint32_t>(k3s.size()));
    for (const auto& k3 : k3s) PutLengthPrefixed(&buf, k3);
  }
  std::string tmp = path + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(tmp, buf));
  return RenameFile(tmp, path);
}

}  // namespace i2mr
