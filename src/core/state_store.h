// StateStore: the loop-variant state kv-pairs <DK, DV> of one partition,
// kept sorted by DK (matching the structure file's project(SK) order so the
// prime Map can merge-join them in one pass) and persisted to a local state
// file between iterations / jobs.
#ifndef I2MR_CORE_STATE_STORE_H_
#define I2MR_CORE_STATE_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"

namespace i2mr {

class StateStore {
 public:
  explicit StateStore(std::string path) : path_(std::move(path)) {}

  /// Load from the backing file if it exists (replaces current contents).
  Status Load();

  void Put(const std::string& dk, const std::string& dv) { map_[dk] = dv; }
  const std::string* Get(const std::string& dk) const {
    auto it = map_.find(dk);
    return it == map_.end() ? nullptr : &it->second;
  }
  void Erase(const std::string& dk) { map_.erase(dk); }
  void Clear() { map_.clear(); }

  size_t size() const { return map_.size(); }
  const std::map<std::string, std::string>& items() const { return map_; }

  std::vector<KV> Snapshot() const;

  Status Save() const;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::string, std::string> map_;
};

}  // namespace i2mr

#endif  // I2MR_CORE_STATE_STORE_H_
