#include "core/projector.h"

namespace i2mr {

const char* DepTypeName(DepType type) {
  switch (type) {
    case DepType::kOneToOne: return "one-to-one";
    case DepType::kManyToOne: return "many-to-one";
    case DepType::kAllToOne: return "all-to-one";
  }
  return "?";
}

}  // namespace i2mr
