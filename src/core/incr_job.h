// Fine-grain incremental processing engine for one-step MapReduce
// computation (paper §3). A job is run once over the full input
// (RunInitial, preserving the MRBGraph and the Reduce outputs), then
// refreshed with delta inputs (RunIncremental): only Map instances of
// changed records and Reduce instances of affected K2s are re-executed.
//
// The accumulator-Reduce fast path (§3.5) is selected by setting
// `accumulate` in the spec: the MRBGraph is not maintained at all; deltas
// (which must be insertion-only) are folded directly into the preserved
// <K3, V3> results.
#ifndef I2MR_CORE_INCR_JOB_H_
#define I2MR_CORE_INCR_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/metrics.h"
#include "common/status.h"
#include "mr/cluster.h"
#include "mrbg/mrbg_store.h"

namespace i2mr {

/// Binary accumulator '⊕' for accumulator Reduce: f(D ∪ ∆D) = f(D) ⊕ f(∆D).
using AccumulateFn =
    std::function<std::string(const std::string& current, const std::string& delta)>;

struct IncrJobSpec {
  std::string name = "incr";
  MapperFactory mapper;
  /// Reduce function; unused (may be null) in accumulator mode.
  ReducerFactory reducer;
  /// If set, enables accumulator-Reduce mode (§3.5).
  AccumulateFn accumulate;
  std::shared_ptr<Partitioner> partitioner;
  int num_reduce_tasks = 4;
  MRBGStoreOptions store_options;
  /// See shuffle.h; kInMemory skips the spill round-trip, identical charges.
  ShuffleMode shuffle_mode = ShuffleMode::kInMemory;
  size_t shuffle_memory_bytes = kDefaultShuffleMemoryBytes;
};

/// Statistics of one initial or incremental run.
struct IncrRunStats {
  std::shared_ptr<StageMetrics> metrics;
  double wall_ms = 0;
  int64_t map_instances = 0;      // Map function invocations
  int64_t reduce_instances = 0;   // Reduce instances (re)computed
  double merge_ms = 0;            // time merging delta vs preserved MRBGraph
  uint64_t store_io_reads = 0;    // MRBG-Store I/O reads
  uint64_t store_bytes_read = 0;  // MRBG-Store bytes read
};

class IncrementalOneStepJob {
 public:
  IncrementalOneStepJob(LocalCluster* cluster, IncrJobSpec spec);

  /// Initial full run over plain KV input parts. Preserves fine-grain state.
  StatusOr<IncrRunStats> RunInitial(const std::vector<std::string>& input_parts);

  /// Incremental refresh over delta input parts ('+'/'-' records).
  StatusOr<IncrRunStats> RunIncremental(
      const std::vector<std::string>& delta_parts);

  /// Current results, merged across partitions, sorted by key.
  StatusOr<std::vector<KV>> Results() const;

  bool accumulator_mode() const { return static_cast<bool>(spec_.accumulate); }

 private:
  std::string PartitionDir(int r) const;

  Status RunMapPhase(const std::vector<std::string>& parts, bool delta,
                     const std::string& job_dir, ShuffleExchange* exchange,
                     StageMetrics* metrics);
  Status RunReducePhaseInitial(const std::string& job_dir, int num_maps,
                               const ShuffleExchange* exchange,
                               StageMetrics* metrics, IncrRunStats* stats);
  Status RunReducePhaseIncremental(const std::string& job_dir, int num_maps,
                                   const ShuffleExchange* exchange,
                                   StageMetrics* metrics, IncrRunStats* stats);

  LocalCluster* cluster_;
  IncrJobSpec spec_;
  std::atomic<int64_t> map_instances_{0};
};

}  // namespace i2mr

#endif  // I2MR_CORE_INCR_JOB_H_
