// General-purpose iterative MapReduce engine (paper §4). Implements the
// enhanced Map API map(SK, SV, DK, DV), the Project-based dependency-aware
// co-partitioning, the structure/state separation with local structure
// caching, loop-alive jobs (one startup per job, not per iteration), and
// prime-Reduce/prime-Map co-location (reduce partition r writes state
// partition r directly, no backward transfer).
//
// Run() performs full re-computation every iteration: this is the "iterMR"
// configuration of the paper's experiments. The incremental engine (§5)
// derives from this class.
#ifndef I2MR_CORE_ITER_ENGINE_H_
#define I2MR_CORE_ITER_ENGINE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/projector.h"
#include "core/state_store.h"
#include "mr/cluster.h"
#include "mr/shuffle.h"

namespace i2mr {

/// Enhanced Map API: map(SK, SV, DK, DV) -> [<K2, V2>] (paper §4.2).
class IterMapper {
 public:
  virtual ~IterMapper() = default;
  virtual void Setup(MapContext* /*ctx*/) {}
  virtual void Map(const std::string& sk, const std::string& sv,
                   const std::string& dk, const std::string& dv,
                   MapContext* ctx) = 0;
  virtual void Flush(MapContext* /*ctx*/) {}
};

/// Prime Reduce: combines the grouped intermediate values of one DK into the
/// updated state value. `prev_dv` is the previous iteration's state value
/// (nullptr if absent) — needed e.g. by GIM-V's assign(v_i, v'_i). Values
/// are views into the shuffle's flat-KV arenas (or the merged MRBGraph
/// chunk), valid only for the duration of the call.
class IterReducer {
 public:
  virtual ~IterReducer() = default;
  virtual std::string Reduce(const std::string& dk,
                             const std::vector<std::string_view>& values,
                             const std::string* prev_dv) = 0;
};

using IterMapperFactory = std::function<std::unique_ptr<IterMapper>()>;
using IterReducerFactory = std::function<std::unique_ptr<IterReducer>()>;

/// difference(DV_curr, DV_prev) -> scalar change magnitude (paper Table 2).
/// `prev` is the empty string when there is no previous value.
using DifferenceFn =
    std::function<double(const std::string& curr, const std::string& prev)>;

struct IterJobSpec {
  std::string name = "iter";
  int num_partitions = 4;
  std::shared_ptr<Projector> projector;
  IterMapperFactory mapper;
  IterReducerFactory reducer;
  DifferenceFn difference;
  /// Initial state value for a DK that has no entry yet (init(DK) -> DV).
  std::function<std::string(const std::string& dk)> init_state;
  int max_iterations = 50;
  /// Converged when the sum of |difference| over reduced keys <= epsilon.
  double convergence_epsilon = 1e-9;
  /// Also run the reducer (with an empty value list) for state keys that
  /// received no intermediate values this iteration. Needed by PageRank
  /// (vertices without in-links still re-score to 1-d).
  bool reduce_untouched_keys = false;

  /// Keep the parsed structure records in memory across iterations (the
  /// iterMR optimization: jobs stay alive, so loop-invariant structure data
  /// is read and parsed once instead of per iteration).
  bool cache_parsed_structure = true;

  /// How map output reaches the prime Reduce (see shuffle.h). kInMemory
  /// hands sorted flat-KV runs to a per-iteration ShuffleExchange instead
  /// of round-tripping part-<r>.dat spills through disk; simulated network
  /// charges and StageMetrics are identical. Overridden to kDisk by
  /// I2MR_FORCE_DISK_SHUFFLE=1.
  ShuffleMode shuffle_mode = ShuffleMode::kInMemory;

  /// In-memory exchange budget per iteration; runs above it spill to disk.
  size_t shuffle_memory_bytes = kDefaultShuffleMemoryBytes;

  /// Sharded deployments (serving/CrossShardExchange): when set, this
  /// engine owns only the keys for which owns_key(key) is true; the rest
  /// of the key space lives on sibling engines (other shards). Map
  /// emissions to non-owned keys never enter the local shuffle — they
  /// would otherwise reduce locally as phantom keys that shadow the owning
  /// shard's result. Full iterations drop them (the complete set is
  /// re-derivable from a full re-map); the incremental engine captures
  /// them as boundary edges for the exchange to route to the owner.
  /// Requires a partition-by-key dependency (not all-to-one).
  std::function<bool(std::string_view key)> owns_key;
};

/// Per-iteration statistics (Fig. 9 / Fig. 11 quantities).
struct IterationStats {
  int iteration = 0;
  double wall_ms = 0;
  double map_ms = 0, shuffle_ms = 0, sort_ms = 0, reduce_ms = 0;
  int64_t map_instances = 0;    // Map function invocations
  int64_t shuffle_bytes = 0;
  int64_t reduced_keys = 0;     // reduce instances executed
  int64_t propagated_pairs = 0; // state kv-pairs emitted to the next iteration
  double total_diff = 0;
  double merge_ms = 0;          // MRBG merge time (incremental engine only)
};

class IterativeEngine {
 public:
  IterativeEngine(LocalCluster* cluster, IterJobSpec spec);
  virtual ~IterativeEngine() = default;

  /// Dependency-aware partitioning pre-step (§4.3): distribute structure
  /// kv-pairs by hash(project(SK)) and state kv-pairs by hash(DK) (all-to-one
  /// apps: structure by hash(SK), state replicated), write per-partition
  /// structure files sorted in project(SK) order, initialize state stores.
  Status Prepare(const std::vector<KV>& structure,
                 const std::vector<KV>& initial_state);

  /// Reload previously prepared partition state from disk. (Virtual: the
  /// incremental engine also reloads its cross-shard remote-edge inbox.)
  virtual Status LoadExisting();

  /// Run full iterations to convergence (iterMR). One job startup charge.
  StatusOr<std::vector<IterationStats>> Run();

  /// Current state across partitions, sorted by DK.
  StatusOr<std::vector<KV>> StateSnapshot() const;

  std::string PartitionDir(int p) const;
  std::string StructurePath(int p) const;
  std::string StatePath(int p) const;
  const IterJobSpec& spec() const { return spec_; }
  StateStore* state(int p) { return states_[p].get(); }

 protected:
  /// One full-recomputation iteration over all structure records.
  StatusOr<IterationStats> RunFullIteration(int iter);

  /// Map-side join of one partition's structure file with its state store,
  /// invoking `fn(sk, sv, dk, dv)` per structure record. Reads the local
  /// structure file sequentially (structure caching: local FS, no DFS read,
  /// no shuffle of structure data).
  Status ForEachStructureRecord(
      int p, const std::function<Status(const std::string& sk,
                                        const std::string& sv,
                                        const std::string& dk,
                                        const std::string& dv)>& fn) const;

  /// After an all-to-one reduce, copy updated state to every partition.
  Status ReplicateStateAllToOne();

  uint32_t PartitionOf(const std::string& key) const;
  bool all_to_one() const {
    return spec_.projector->dep_type() == DepType::kAllToOne;
  }
  Status SaveStates();

  /// Drop cached parsed structure (call after rewriting structure files).
  void InvalidateStructureCache();

  /// Resolve the state value for dk in partition p (store value or
  /// init_state fallback).
  StatusOr<std::string> StateValue(int p, const std::string& dk) const;

  /// Cross-shard exchange hooks (spec_.owns_key deployments). Reduce input
  /// for a DK is the union of its local intermediate values and the values
  /// remote shards routed in; the incremental engine overrides these with
  /// its remote-edge inbox. Views appended by AppendRemoteValues must stay
  /// valid for the rest of the refresh (the inbox is immutable while one
  /// runs).
  virtual void AppendRemoteValues(int /*r*/, std::string_view /*dk*/,
                                  std::vector<std::string_view>* /*values*/)
      const {}
  /// DKs in partition r that hold remote contributions — their reduce must
  /// run even when no local map emission targets them this iteration.
  /// Returned sorted.
  virtual std::vector<std::string> RemoteOnlyKeys(int /*r*/) const {
    return {};
  }

  LocalCluster* cluster_;
  IterJobSpec spec_;
  std::vector<std::unique_ptr<StateStore>> states_;
  bool prepared_ = false;

 private:
  /// Lazily filled per-partition parsed structure cache (see
  /// IterJobSpec::cache_parsed_structure). Guarded by cache_mu_ only during
  /// the fill; reads happen after the fill completes.
  mutable std::vector<std::shared_ptr<const std::vector<KV>>> structure_cache_;
  mutable std::mutex cache_mu_;
};

}  // namespace i2mr

#endif  // I2MR_CORE_ITER_ENGINE_H_
