#include "core/state_store.h"

#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {

Status StateStore::Load() {
  map_.clear();
  if (!FileExists(path_)) return Status::OK();
  auto recs = ReadRecords(path_);
  if (!recs.ok()) return recs.status();
  for (auto& kv : *recs) map_[std::move(kv.key)] = std::move(kv.value);
  return Status::OK();
}

std::vector<KV> StateStore::Snapshot() const {
  std::vector<KV> out;
  out.reserve(map_.size());
  for (const auto& [k, v] : map_) out.push_back(KV{k, v});
  return out;
}

Status StateStore::Save() const {
  std::string tmp = path_ + ".tmp";
  auto w = RecordWriter::Create(tmp);
  if (!w.ok()) return w.status();
  for (const auto& [k, v] : map_) {
    I2MR_RETURN_IF_ERROR(w.value()->Add(k, v));
  }
  I2MR_RETURN_IF_ERROR(w.value()->Close());
  return RenameFile(tmp, path_);
}

}  // namespace i2mr
