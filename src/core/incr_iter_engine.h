// Incremental iterative processing engine (paper §5 + §6). A sequence of
// jobs A1, A2, ... refreshes an iterative mining result as the structure
// data evolves:
//
//  * RunInitial: full iterative computation (via IterativeEngine), then a
//    preservation pass that materializes the converged MRBGraph into the
//    per-partition MRBG-Stores (§5.1: only the last iteration's state needs
//    saving).
//  * RunIncremental: starts from the previous converged state; iteration 1
//    consumes the delta structure input, iterations j>=2 consume the delta
//    state data; only affected Map/Reduce instances re-execute, merging
//    against the preserved MRBGraph (multi-batch MRBG files, §5.2).
//
// Includes change propagation control (§5.3) with accumulated-change
// filtering, automatic MRBGraph turn-off when P∆ exceeds a threshold
// (§5.2), per-iteration checkpointing to the Dfs and prime-task failure
// recovery (§6.1).
#ifndef I2MR_CORE_INCR_ITER_ENGINE_H_
#define I2MR_CORE_INCR_ITER_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/iter_engine.h"
#include "mr/job.h"
#include "mrbg/mrbg_store.h"

namespace i2mr {

/// Engine-default MRBG store options: the appended-tail cache is on, so
/// iteration j+1's merge reads the chunks iteration j just appended from
/// memory instead of the file tail, and the store is log-structured with
/// background compaction so merge cost stays flat in epoch-history length
/// (superseded chunk versions are reclaimed concurrently with refreshes).
/// Raw MRBGStore users (and the paper's read-strategy / Table-4 parity
/// experiments) default to the raw layout with tail_cache_bytes = 0.
inline MRBGStoreOptions DefaultIncrStoreOptions() {
  MRBGStoreOptions o;
  o.tail_cache_bytes = 4u << 20;
  o.log_structured = true;
  o.background_compaction = true;
  return o;
}

struct IncrIterOptions {
  /// Change propagation control (§5.3). >= 0: a reduced state kv-pair is
  /// emitted to the next iteration only when its accumulated change since
  /// the last emission exceeds this threshold (0 = propagate any non-zero
  /// change, SSSP-style exact filtering). < 0: CPC disabled — every reduced
  /// key propagates ("i2MR w/o CPC").
  double filter_threshold = 0.0;

  /// Maintain the fine-grain MRBGraph (turn off manually for apps like
  /// Kmeans where any change triggers global re-computation, §5.2).
  bool maintain_mrbg = true;

  /// Auto turn-off threshold for P∆ = |∆D| / |D| (§5.2; paper default 50%).
  double mrbg_auto_off_ratio = 0.5;

  MRBGStoreOptions store_options = DefaultIncrStoreOptions();

  /// Checkpoint state + MRBGraph to the Dfs every iteration (§6.1).
  bool checkpoint_each_iteration = false;

  /// Charge the CostModel's job startup at the head of every RunIncremental
  /// (the paper's model: each refresh Ai is a separately submitted job; the
  /// batch experiments keep this on). The pipeline turns it off: its engine
  /// is resident and the refresh job is submitted once at bootstrap, then
  /// stays loop-alive across epochs — §4.2's "one startup per job, not per
  /// iteration", applied at the refresh-job level.
  bool charge_job_startup_per_refresh = true;

  /// Failure injection for fault-tolerance experiments: return true to
  /// crash the given prime task once at the start of the given iteration.
  std::function<bool(int iteration, TaskId::Kind kind, int partition)> fail_hook;
};

/// One recovered task failure (Fig. 13 data points).
struct RecoveryEvent {
  int iteration = 0;
  TaskId::Kind kind = TaskId::Kind::kMap;
  int partition = 0;
  double recovery_ms = 0;
};

struct IncrIterRunStats {
  std::vector<IterationStats> iterations;
  double wall_ms = 0;
  double preserve_ms = 0;  // MRBGraph preservation pass time
  bool mrbg_turned_off = false;
  double max_p_delta = 0;
  std::vector<RecoveryEvent> recoveries;
  /// Aggregated MRBG-Store statistics across partitions and iterations.
  uint64_t store_io_reads = 0;
  uint64_t store_bytes_read = 0;
  double total_ms() const {
    double t = 0;
    for (const auto& it : iterations) t += it.wall_ms;
    return t;
  }
};

class IncrementalIterativeEngine : public IterativeEngine {
 public:
  IncrementalIterativeEngine(LocalCluster* cluster, IterJobSpec spec,
                             IncrIterOptions options);

  /// Job A1: full computation + state/MRBGraph preservation.
  StatusOr<IncrIterRunStats> RunInitial(const std::vector<KV>& structure,
                                        const std::vector<KV>& initial_state);

  /// Job Ai (i >= 2): incremental refresh with a delta structure input.
  StatusOr<IncrIterRunStats> RunIncremental(
      const std::vector<DeltaKV>& delta_structure);

  std::string MrbgDir(int r) const;
  const IncrIterOptions& options() const { return options_; }

  /// Also reloads the cross-shard remote-edge inbox (remote.dat).
  Status LoadExisting() override;

  // -- Cross-shard exchange (spec.owns_key engines) --------------------------
  //
  // A sharded computation's map emissions to keys another shard owns are
  // captured here as boundary edges — (K2, MK, V2) with the MRBGraph's
  // replace/delete-by-(K2, MK) semantics — instead of reducing locally as
  // phantom keys. The serving layer's CrossShardExchange routes them to the
  // owning engine, which folds them into a durable per-partition inbox
  // (remote.dat, snapshotted and restored with the engine state) whose
  // values join every subsequent reduce of the affected DKs.

  /// Fold routed-in edges from sibling shards into the remote inbox.
  /// Upserts/deletes by (K2, MK); DKs whose folded value set actually
  /// changed are forced into the next RunIncremental's first-iteration
  /// reduce. Returns how many edges changed the inbox (0 = no-op round).
  StatusOr<size_t> ApplyRemoteEdges(const std::vector<DeltaEdge>& edges);

  /// Drain the boundary emissions captured since the last call: the latest
  /// edge per (K2, MK) — re-executed map instances replace their earlier
  /// capture — including deletions from removed structure records.
  std::vector<DeltaEdge> TakeBoundaryExports();

  /// Remote-inbox DKs already folded but not yet re-reduced (a refresh
  /// that failed after the fold); the next RunIncremental absorbs them.
  bool HasPendingRemoteKeys() const { return !pending_remote_dks_.empty(); }

  /// Off-line MRBGraph reconstruction (paper §3.4: "The MRBGraph file is
  /// reconstructed off-line when the worker is idle"): rewrite every
  /// partition's store with only live chunks, in key order, as a single
  /// sorted batch. Run between refresh jobs; reclaims the space of
  /// obsolete chunk versions and collapses the multi-batch layout.
  Status CompactMRBGraph();

  /// Total MRBGraph bytes across partitions (on-disk footprint).
  StatusOr<uint64_t> MrbgFileBytes() const;

  /// Hard-link a self-consistent image of partition p's MRBG store into
  /// `dst_dir` (the pipeline's epoch-commit path). Uses the open resident
  /// store when there is one — safe concurrently with its background
  /// compactor — and falls back to linking the closed on-disk file set.
  /// No-op (and no dst_dir created) when the partition has no store files.
  Status SnapshotMrbgPartition(int p, const std::string& dst_dir,
                               std::vector<std::string>* files);

 private:
  /// Per-refresh, per-partition in-memory context.
  struct PartitionCtx {
    std::vector<KV> structure;  // sorted by (project(SK), SK)
    /// DK -> [begin, end) range of structure records with project(SK)==DK.
    /// (The re-map loop probes with a reused std::string buffer, so the
    /// O(1) hash lookup costs no per-delta allocation.)
    std::unordered_map<std::string, std::pair<size_t, size_t>> dk_ranges;
    /// CPC: last state value emitted to the next iteration, per DK.
    std::unordered_map<std::string, std::string> last_emitted;
    /// Delta state produced by this partition's prime Reduce (input to the
    /// next iteration's prime Map), as one flat arena run instead of a
    /// vector of string pairs.
    FlatKVRun delta_state;
    /// DKs introduced by inserted structure records that have no state yet:
    /// their reduce instance is forced in iteration 1 so the new state
    /// kv-pair is computed even when it receives no intermediate values.
    std::vector<std::string> forced_dks;
  };

  Status LoadStructures(std::vector<PartitionCtx>* ctxs) const;
  void BuildRanges(PartitionCtx* ctx) const;
  Status ApplyStructureDelta(const std::vector<std::vector<DeltaKV>>& per_part,
                             std::vector<PartitionCtx>* ctxs);

  /// Rebuild the MRBGraph from the converged state with one extra map pass
  /// (then the store holds exactly one sorted batch).
  Status PreserveMRBGraph(double* elapsed_ms);

  /// Idempotent: stores stay resident across refreshes so the background
  /// compactor genuinely overlaps epoch commits.
  Status OpenStores();
  Status CloseStores(IncrIterRunStats* stats);
  /// Per-refresh stat harvest for resident stores: fold the read counters
  /// into `stats`, persist the index/manifest, reset the counters — but
  /// keep the stores (and their compactors) open.
  Status CollectStoreStats(IncrIterRunStats* stats);

  Status Checkpoint(int iteration);
  Status RestorePartition(int iteration, int partition);

  /// One incremental iteration. `struct_delta` is non-null only for
  /// iteration 1 (delta structure input); later iterations consume
  /// ctxs[p].delta_state.
  StatusOr<IterationStats> RunIncrIteration(
      int iter, std::vector<PartitionCtx>* ctxs,
      const std::vector<std::vector<DeltaKV>>* struct_delta,
      IncrIterRunStats* run_stats);

  /// Check the failure hook, at most once per (iter, kind, partition).
  bool ShouldFail(int iter, TaskId::Kind kind, int p);

  // -- Cross-shard internals -------------------------------------------------
  std::string RemotePath(int p) const;
  Status LoadRemoteInbox();
  Status SaveRemoteInbox(int p) const;
  /// Merge one map task's captured boundary emissions (latest per (k2, mk)).
  void MergeBoundaryExports(std::vector<DeltaEdge>&& edges);
  void AppendRemoteValues(int r, std::string_view dk,
                          std::vector<std::string_view>* values) const override;
  std::vector<std::string> RemoteOnlyKeys(int r) const override;

  IncrIterOptions options_;
  std::vector<std::unique_ptr<MRBGStore>> stores_;
  bool mrbg_consistent_ = false;
  std::set<std::string> failed_once_;
  std::mutex fail_mu_;

  /// Per state partition: DK -> (remote MK -> V2). Immutable during a
  /// refresh (ApplyRemoteEdges runs between refreshes), so the views
  /// AppendRemoteValues hands to reducers stay valid. std::less<> for
  /// string_view probes.
  std::vector<std::map<std::string, std::map<uint64_t, std::string>,
                       std::less<>>>
      remote_;
  /// Inbox DKs changed since the last refresh (forced into iteration 1).
  std::set<std::string> pending_remote_dks_;
  /// Captured boundary emissions awaiting TakeBoundaryExports, keyed
  /// (K2, MK) so a re-executed instance replaces its earlier capture.
  std::map<std::pair<std::string, uint64_t>, DeltaEdge> pending_exports_;
  std::mutex exports_mu_;  // map tasks merge concurrently
};

}  // namespace i2mr

#endif  // I2MR_CORE_INCR_ITER_ENGINE_H_
