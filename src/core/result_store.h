// ResultStore: the preserved Reduce outputs <K3, V3> of one reduce
// partition. Incremental runs patch only the changed outputs; the
// accumulator-Reduce fast path (§3.5) folds deltas into it directly.
// Also records, per reduce instance K2, which K3s it emitted, so that
// re-reducing an instance replaces exactly its previous outputs.
#ifndef I2MR_CORE_RESULT_STORE_H_
#define I2MR_CORE_RESULT_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"

namespace i2mr {

class ResultStore {
 public:
  /// Open a store backed by `path` (loads existing contents if present).
  static StatusOr<ResultStore> Open(const std::string& path);

  /// Replace the outputs of reduce instance `k2` with `outputs`.
  void SetInstanceOutputs(const std::string& k2, const std::vector<KV>& outputs);

  /// Remove all outputs of reduce instance `k2` (instance disappeared).
  void EraseInstance(const std::string& k2);

  /// Direct access for the accumulator path (K3 keyed, no instance map).
  void Put(const std::string& k3, const std::string& v3);
  const std::string* Get(const std::string& k3) const;

  /// All current results, sorted by K3.
  std::vector<KV> Snapshot() const;

  /// Visit results with begin <= K3 < end in key order, without copying
  /// the store (the sharded serving layer's per-shard scan primitive).
  /// Empty `end` means unbounded. Return false from `fn` to stop early.
  void VisitRange(const std::string& begin, const std::string& end,
                  const std::function<bool(const KV&)>& fn) const;

  size_t size() const { return results_.size(); }

  Status Save() const { return SaveAs(path_); }

  /// Persist to an explicit path (atomic write-temp + rename). Lets a
  /// caller snapshot the store somewhere other than its serving path.
  Status SaveAs(const std::string& path) const;

 private:
  explicit ResultStore(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::map<std::string, std::string> results_;              // K3 -> V3
  std::map<std::string, std::vector<std::string>> by_inst_;  // K2 -> [K3]
};

}  // namespace i2mr

#endif  // I2MR_CORE_RESULT_STORE_H_
