// Intermediate-value encoding for incremental processing: every shuffled
// intermediate record carries the globally unique Map-instance key MK and
// an op marker alongside V2 (paper §3.2: "i2MapReduce will preserve
// (K2, MK, V2) for each MRBGraph edge"; deletions are shuffled as
// <K2, MK, '-'>).
//
// Encoded layout: [u64 mk][u8 op][v2 bytes], where op 0x00 = deletion and
// 0x01 = insertion/upsert. With lexicographic value ordering this makes a
// deletion of (K2, MK) sort before an insertion of the same (K2, MK), so a
// delete-then-reinsert pair applies in the correct order.
#ifndef I2MR_CORE_DELTA_H_
#define I2MR_CORE_DELTA_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "mrbg/chunk.h"

namespace i2mr {

/// Serialize an MRBGraph edge change for the shuffle.
std::string EncodeEdgeValue(uint64_t mk, bool deleted, std::string_view v2);

/// Parse an encoded edge value into a DeltaEdge (k2 supplied by the caller).
Status DecodeEdgeValue(std::string_view data, DeltaEdge* edge);

}  // namespace i2mr

#endif  // I2MR_CORE_DELTA_H_
