#include "core/incr_iter_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/delta.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

std::string SpillFileName(int r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
  return buf;
}

std::string MapTaskDir(const std::string& job_dir, int m) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "map-%05d", m);
  return JoinPath(job_dir, buf);
}

// MapContext tagging emissions with (MK, op) for MRBGraph maintenance.
// In a sharded deployment (spec.owns_key set), emissions to keys another
// shard owns are captured into `boundary` as DeltaEdges — the same
// replace/delete-by-(K2, MK) units the MRBGraph merge applies — instead of
// entering the local shuffle, so the exchange can route them to the owner.
class TaggingMapContext : public MapContext {
 public:
  TaggingMapContext(MapContext* inner,
                    const std::function<bool(std::string_view)>* owns,
                    std::vector<DeltaEdge>* boundary)
      : inner_(inner), owns_(owns), boundary_(boundary) {}
  void Begin(uint64_t mk, bool deleted) {
    mk_ = mk;
    deleted_ = deleted;
  }
  void Emit(std::string_view key, std::string_view value) override {
    if (owns_ != nullptr && *owns_ && !(*owns_)(key)) {
      DeltaEdge e;
      e.k2.assign(key);
      e.mk = mk_;
      e.deleted = deleted_;
      if (!deleted_) e.v2.assign(value);
      boundary_->push_back(std::move(e));
      return;
    }
    inner_->Emit(key, EncodeEdgeValue(mk_, deleted_,
                                      deleted_ ? std::string_view() : value));
  }

 private:
  MapContext* inner_;
  const std::function<bool(std::string_view)>* owns_;
  std::vector<DeltaEdge>* boundary_;
  uint64_t mk_ = 0;
  bool deleted_ = false;
};

}  // namespace

IncrementalIterativeEngine::IncrementalIterativeEngine(LocalCluster* cluster,
                                                       IterJobSpec spec,
                                                       IncrIterOptions options)
    : IterativeEngine(cluster, std::move(spec)), options_(std::move(options)) {}

std::string IncrementalIterativeEngine::MrbgDir(int r) const {
  return JoinPath(PartitionDir(r), "mrbg");
}

bool IncrementalIterativeEngine::ShouldFail(int iter, TaskId::Kind kind,
                                            int p) {
  if (!options_.fail_hook) return false;
  std::string key = std::to_string(iter) + ":" +
                    (kind == TaskId::Kind::kMap ? "m" : "r") + ":" +
                    std::to_string(p);
  std::lock_guard<std::mutex> lock(fail_mu_);
  if (failed_once_.count(key) > 0) return false;
  if (!options_.fail_hook(iter, kind, p)) return false;
  failed_once_.insert(key);
  return true;
}

// ---------------------------------------------------------------------------
// Structure maintenance
// ---------------------------------------------------------------------------

Status IncrementalIterativeEngine::LoadStructures(
    std::vector<PartitionCtx>* ctxs) const {
  ctxs->clear();
  ctxs->resize(spec_.num_partitions);
  for (int p = 0; p < spec_.num_partitions; ++p) {
    auto recs = ReadRecords(StructurePath(p));
    if (!recs.ok()) return recs.status();
    (*ctxs)[p].structure = std::move(*recs);
    BuildRanges(&(*ctxs)[p]);
  }
  return Status::OK();
}

void IncrementalIterativeEngine::BuildRanges(PartitionCtx* ctx) const {
  ctx->dk_ranges.clear();
  const auto& recs = ctx->structure;
  size_t i = 0;
  while (i < recs.size()) {
    std::string dk = spec_.projector->Project(recs[i].key);
    size_t j = i + 1;
    while (j < recs.size() && spec_.projector->Project(recs[j].key) == dk) ++j;
    ctx->dk_ranges[dk] = {i, j};
    i = j;
  }
}

Status IncrementalIterativeEngine::ApplyStructureDelta(
    const std::vector<std::vector<DeltaKV>>& per_part,
    std::vector<PartitionCtx>* ctxs) {
  for (int p = 0; p < spec_.num_partitions; ++p) {
    auto& ctx = (*ctxs)[p];
    bool dirty = false;
    for (const auto& d : per_part[p]) {
      if (d.op == DeltaOp::kDelete) {
        auto it = std::find(ctx.structure.begin(), ctx.structure.end(),
                            KV{d.key, d.value});
        if (it != ctx.structure.end()) {
          ctx.structure.erase(it);
          dirty = true;
        } else {
          LOG_WARN << "delta deletes unknown structure record sk=" << d.key;
        }
      } else {
        ctx.structure.push_back(KV{d.key, d.value});
        dirty = true;
      }
    }
    if (dirty) {
      std::sort(ctx.structure.begin(), ctx.structure.end(),
                [&](const KV& a, const KV& b) {
                  std::string pa = spec_.projector->Project(a.key);
                  std::string pb = spec_.projector->Project(b.key);
                  if (pa != pb) return pa < pb;
                  return a < b;
                });
      I2MR_RETURN_IF_ERROR(WriteRecords(StructurePath(p), ctx.structure));
      BuildRanges(&ctx);
    }
  }
  InvalidateStructureCache();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MRBGraph preservation / store lifecycle
// ---------------------------------------------------------------------------

Status IncrementalIterativeEngine::OpenStores() {
  if (!stores_.empty()) return Status::OK();  // resident across refreshes
  stores_.resize(spec_.num_partitions);
  for (int r = 0; r < spec_.num_partitions; ++r) {
    auto s = MRBGStore::Open(MrbgDir(r), options_.store_options);
    if (!s.ok()) return s.status();
    stores_[r] = std::move(s.value());
  }
  return Status::OK();
}

Status IncrementalIterativeEngine::CloseStores(IncrIterRunStats* stats) {
  for (auto& s : stores_) {
    if (s == nullptr) continue;
    if (stats != nullptr) {
      MRBGStoreStats ss = s->stats();
      stats->store_io_reads += ss.io_reads;
      stats->store_bytes_read += ss.bytes_read;
    }
    I2MR_RETURN_IF_ERROR(s->PersistIndex());
    I2MR_RETURN_IF_ERROR(s->Close());
  }
  stores_.clear();
  return Status::OK();
}

Status IncrementalIterativeEngine::CollectStoreStats(IncrIterRunStats* stats) {
  for (auto& s : stores_) {
    if (s == nullptr) continue;
    MRBGStoreStats ss = s->stats();
    if (stats != nullptr) {
      stats->store_io_reads += ss.io_reads;
      stats->store_bytes_read += ss.bytes_read;
    }
    s->ResetStats();
    I2MR_RETURN_IF_ERROR(s->PersistIndex());
  }
  return Status::OK();
}

Status IncrementalIterativeEngine::CompactMRBGraph() {
  const bool were_open = !stores_.empty();
  if (!were_open) I2MR_RETURN_IF_ERROR(OpenStores());
  std::vector<Status> statuses(spec_.num_partitions);
  ParallelFor(cluster_->pool(), spec_.num_partitions, [&](int r) {
    statuses[r] = stores_[r] != nullptr ? stores_[r]->Compact() : Status::OK();
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  if (!were_open) I2MR_RETURN_IF_ERROR(CloseStores(nullptr));
  return Status::OK();
}

StatusOr<uint64_t> IncrementalIterativeEngine::MrbgFileBytes() const {
  uint64_t total = 0;
  for (int r = 0; r < spec_.num_partitions; ++r) {
    if (static_cast<size_t>(r) < stores_.size() && stores_[r] != nullptr) {
      total += stores_[r]->file_bytes();
      continue;
    }
    auto files = MRBGStore::ListStoreFiles(MrbgDir(r));
    if (!files.ok()) return files.status();
    for (const auto& path : *files) {
      // Data footprint only: skip the MANIFEST / mrbg.idx metadata.
      if ((path.size() >= 4 && path.compare(path.size() - 4, 4, ".idx") == 0) ||
          (path.size() >= 8 &&
           path.compare(path.size() - 8, 8, "MANIFEST") == 0)) {
        continue;
      }
      if (!FileExists(path)) continue;
      auto sz = FileSize(path);
      if (!sz.ok()) return sz.status();
      total += *sz;
    }
  }
  return total;
}

Status IncrementalIterativeEngine::SnapshotMrbgPartition(
    int p, const std::string& dst_dir, std::vector<std::string>* files) {
  if (static_cast<size_t>(p) < stores_.size() && stores_[p] != nullptr) {
    return stores_[p]->SnapshotInto(dst_dir, files);
  }
  auto src = MRBGStore::ListStoreFiles(MrbgDir(p));
  if (!src.ok()) return src.status();
  if (src->empty()) return Status::OK();
  I2MR_RETURN_IF_ERROR(CreateDirs(dst_dir));
  for (const auto& path : *src) {
    size_t slash = path.find_last_of('/');
    std::string dst = JoinPath(
        dst_dir, slash == std::string::npos ? path : path.substr(slash + 1));
    I2MR_RETURN_IF_ERROR(LinkOrCopyFile(path, dst));
    if (files != nullptr) files->push_back(dst);
  }
  return Status::OK();
}

Status IncrementalIterativeEngine::PreserveMRBGraph(double* elapsed_ms) {
  TRACE_SPAN("engine.preserve", "job=%s", spec_.name.c_str());
  WallTimer timer;
  const int n = spec_.num_partitions;
  std::string job_dir = cluster_->NewJobDir(spec_.name + "-preserve");
  StageMetrics metrics;
  Partitioner hash_partitioner;
  std::unique_ptr<ShuffleExchange> exchange;
  if (EffectiveShuffleMode(spec_.shuffle_mode) == ShuffleMode::kInMemory) {
    exchange = std::make_unique<ShuffleExchange>(n, spec_.shuffle_memory_bytes);
  }

  std::vector<Status> map_status(n);
  ParallelFor(cluster_->pool(), n, [&](int p) {
    map_status[p] = [&]() -> Status {
      auto mapper = spec_.mapper();
      ShuffleWriter writer(n, &hash_partitioner, MapTaskDir(job_dir, p),
                           exchange.get());
      // The preservation pass re-maps every live structure record, so the
      // captured boundary set is the complete current export of this shard
      // (merged keep-latest into the pending exports; deletions captured by
      // earlier incremental iterations are preserved for removed MKs).
      std::vector<DeltaEdge> boundary;
      TaggingMapContext ctx(&writer, &spec_.owns_key, &boundary);
      ctx.Begin(Hash64("__setup__"), false);
      mapper->Setup(&ctx);
      I2MR_RETURN_IF_ERROR(ForEachStructureRecord(
          p, [&](const std::string& sk, const std::string& sv,
                 const std::string& dk, const std::string& dv) {
            ctx.Begin(MapInstanceKey(sk, sv), false);
            mapper->Map(sk, sv, dk, dv, &ctx);
            return Status::OK();
          }));
      ctx.Begin(Hash64("__flush__"), false);
      mapper->Flush(&ctx);
      MergeBoundaryExports(std::move(boundary));
      return writer.Finish(nullptr, &metrics);
    }();
  });
  for (const auto& st : map_status) I2MR_RETURN_IF_ERROR(st);

  std::vector<Status> reduce_status(n);
  ParallelFor(cluster_->pool(), n, [&](int r) {
    reduce_status[r] = [&]() -> Status {
      I2MR_RETURN_IF_ERROR(ResetDir(MrbgDir(r)));
      auto store = MRBGStore::Open(MrbgDir(r), options_.store_options);
      if (!store.ok()) return store.status();
      ShuffleReader::Source source;
      source.exchange = exchange.get();
      source.partition = r;
      for (int m = 0; m < n; ++m) {
        source.spill_files.push_back(
            JoinPath(MapTaskDir(job_dir, m), SpillFileName(r)));
      }
      auto reader = ShuffleReader::Open(source, cluster_->cost(), &metrics);
      if (!reader.ok()) return reader.status();
      std::string_view key;
      std::vector<std::string_view> values;
      while (reader.value()->NextGroup(&key, &values)) {
        Chunk chunk;
        chunk.key.assign(key);
        chunk.entries.reserve(values.size());
        for (const auto& enc : values) {
          DeltaEdge e;
          I2MR_RETURN_IF_ERROR(DecodeEdgeValue(enc, &e));
          chunk.entries.push_back(ChunkEntry{e.mk, std::move(e.v2)});
        }
        I2MR_RETURN_IF_ERROR(store.value()->AppendChunk(chunk));
      }
      I2MR_RETURN_IF_ERROR(store.value()->FinishBatch());
      return store.value()->Close();
    }();
  });
  for (const auto& st : reduce_status) I2MR_RETURN_IF_ERROR(st);

  I2MR_RETURN_IF_ERROR(RemoveAll(job_dir));
  mrbg_consistent_ = true;
  if (elapsed_ms != nullptr) *elapsed_ms = timer.ElapsedMillis();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Checkpointing and recovery (§6.1)
// ---------------------------------------------------------------------------

Status IncrementalIterativeEngine::Checkpoint(int iteration) {
  I2MR_RETURN_IF_ERROR(SaveStates());
  Dfs* dfs = cluster_->dfs();
  std::string base = spec_.name + "/it" + std::to_string(iteration);
  for (int p = 0; p < spec_.num_partitions; ++p) {
    std::string tag = "-p" + std::to_string(p);
    I2MR_RETURN_IF_ERROR(
        dfs->CheckpointIn(StatePath(p), base + "/state" + tag));
    if (stores_.size() > static_cast<size_t>(p) && stores_[p] != nullptr) {
      // Flush pending appends so the on-disk files are complete.
      I2MR_RETURN_IF_ERROR(stores_[p]->FinishBatch());
      if (stores_[p]->log_structured()) {
        // Cut a frozen hard-link image (the segment set can change under a
        // background compaction pass) and checkpoint its files, plus a
        // small list naming them so the restore knows the file set.
        std::string tmp = MrbgDir(p) + ".ckpt";
        I2MR_RETURN_IF_ERROR(ResetDir(tmp));
        std::vector<std::string> files;
        I2MR_RETURN_IF_ERROR(stores_[p]->SnapshotInto(tmp, &files));
        std::string list;
        for (const auto& f : files) {
          size_t slash = f.find_last_of('/');
          std::string name =
              slash == std::string::npos ? f : f.substr(slash + 1);
          list += name + "\n";
          I2MR_RETURN_IF_ERROR(
              dfs->CheckpointIn(f, base + "/mrbg-" + name + tag));
        }
        std::string list_path = JoinPath(tmp, "mrbg.list");
        I2MR_RETURN_IF_ERROR(WriteStringToFile(list_path, list));
        I2MR_RETURN_IF_ERROR(
            dfs->CheckpointIn(list_path, base + "/mrbg.list" + tag));
        I2MR_RETURN_IF_ERROR(RemoveAll(tmp));
      } else {
        I2MR_RETURN_IF_ERROR(dfs->CheckpointIn(stores_[p]->data_path(),
                                               base + "/mrbg.dat" + tag));
        I2MR_RETURN_IF_ERROR(dfs->CheckpointIn(stores_[p]->index_path(),
                                               base + "/mrbg.idx" + tag));
      }
    }
  }
  return Status::OK();
}

Status IncrementalIterativeEngine::RestorePartition(int iteration,
                                                    int partition) {
  Dfs* dfs = cluster_->dfs();
  std::string base = spec_.name + "/it" + std::to_string(iteration);
  std::string tag = "-p" + std::to_string(partition);
  if (!dfs->CheckpointExists(base + "/state" + tag)) {
    return Status::NotFound("no checkpoint for iteration " +
                            std::to_string(iteration));
  }
  I2MR_RETURN_IF_ERROR(
      dfs->CheckpointOut(base + "/state" + tag, StatePath(partition)));
  I2MR_RETURN_IF_ERROR(states_[partition]->Load());
  bool have_store = stores_.size() > static_cast<size_t>(partition) &&
                    stores_[partition] != nullptr;
  if (have_store && dfs->CheckpointExists(base + "/mrbg.list" + tag)) {
    // Log-structured checkpoint: wipe the partition's store directory and
    // repopulate it with the checkpointed file set (the list names them).
    std::string dir = MrbgDir(partition);
    I2MR_RETURN_IF_ERROR(stores_[partition]->Close());
    stores_[partition].reset();
    I2MR_RETURN_IF_ERROR(ResetDir(dir));
    std::string list_path = JoinPath(dir, "mrbg.list");
    I2MR_RETURN_IF_ERROR(
        dfs->CheckpointOut(base + "/mrbg.list" + tag, list_path));
    auto list = ReadFileToString(list_path);
    if (!list.ok()) return list.status();
    size_t pos = 0;
    while (pos < list->size()) {
      size_t nl = list->find('\n', pos);
      if (nl == std::string::npos) nl = list->size();
      std::string name = list->substr(pos, nl - pos);
      pos = nl + 1;
      if (name.empty()) continue;
      I2MR_RETURN_IF_ERROR(dfs->CheckpointOut(base + "/mrbg-" + name + tag,
                                              JoinPath(dir, name)));
    }
    I2MR_RETURN_IF_ERROR(RemoveAll(list_path));
    auto s = MRBGStore::Open(dir, options_.store_options);
    if (!s.ok()) return s.status();
    stores_[partition] = std::move(s.value());
  } else if (have_store && dfs->CheckpointExists(base + "/mrbg.dat" + tag)) {
    std::string data_path = stores_[partition]->data_path();
    std::string index_path = stores_[partition]->index_path();
    I2MR_RETURN_IF_ERROR(stores_[partition]->Close());
    stores_[partition].reset();
    I2MR_RETURN_IF_ERROR(dfs->CheckpointOut(base + "/mrbg.dat" + tag, data_path));
    I2MR_RETURN_IF_ERROR(dfs->CheckpointOut(base + "/mrbg.idx" + tag, index_path));
    auto s = MRBGStore::Open(MrbgDir(partition), options_.store_options);
    if (!s.ok()) return s.status();
    stores_[partition] = std::move(s.value());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Incremental iterations
// ---------------------------------------------------------------------------

StatusOr<IterationStats> IncrementalIterativeEngine::RunIncrIteration(
    int iter, std::vector<PartitionCtx>* ctxs,
    const std::vector<std::vector<DeltaKV>>* struct_delta,
    IncrIterRunStats* run_stats) {
  const int n = spec_.num_partitions;
  TRACE_SPAN("engine.iteration", "job=%s iter=%d", spec_.name.c_str(), iter);
  IterationStats stats;
  stats.iteration = iter;
  StageMetrics metrics;
  WallTimer wall;
  std::string job_dir =
      cluster_->NewJobDir(spec_.name + "-incr-it" + std::to_string(iter));
  Partitioner hash_partitioner;
  std::unique_ptr<ShuffleExchange> exchange;
  if (EffectiveShuffleMode(spec_.shuffle_mode) == ShuffleMode::kInMemory) {
    exchange = std::make_unique<ShuffleExchange>(n, spec_.shuffle_memory_bytes);
  }

  // Take this iteration's delta-state inputs out of the contexts (the
  // reduce phase below refills them for the next iteration).
  std::vector<FlatKVRun> cur_delta(n);
  FlatKVRun shared_delta;  // all-to-one broadcast
  if (struct_delta == nullptr) {
    for (int p = 0; p < n; ++p) {
      cur_delta[p] = std::move((*ctxs)[p].delta_state);
      (*ctxs)[p].delta_state = FlatKVRun();
    }
    if (all_to_one()) {
      for (const auto& d : cur_delta) shared_delta.AppendRun(d);
    }
  }

  std::mutex recovery_mu;
  auto run_with_recovery = [&](TaskId::Kind kind, int p,
                               const std::function<Status()>& task) -> Status {
    if (ShouldFail(iter, kind, p)) {
      WallTimer rt;
      Status rst = RestorePartition(iter, p);
      if (!rst.ok() && !rst.IsNotFound()) return rst;
      std::lock_guard<std::mutex> lock(recovery_mu);
      run_stats->recoveries.push_back(
          RecoveryEvent{iter, kind, p, rt.ElapsedMillis()});
    }
    return task();
  };

  // -- Incremental prime Map ------------------------------------------------
  std::atomic<int64_t> map_instances{0};
  std::vector<Status> map_status(n);
  trace::ScopedSpan map_stage_span("stage.map", "iter=%d", iter);
  ParallelFor(cluster_->pool(), n, [&](int p) {
    map_status[p] = run_with_recovery(TaskId::Kind::kMap, p, [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      auto mapper = spec_.mapper();
      ShuffleWriter writer(n, &hash_partitioner, MapTaskDir(job_dir, p),
                           exchange.get());
      std::vector<DeltaEdge> boundary;
      TaggingMapContext ctx(&writer, &spec_.owns_key, &boundary);
      int64_t count = 0;
      TRACE_SPAN("task.map", "part=%d iter=%d", p, iter);
      ScopedTimer t(&metrics.map_ns);
      ctx.Begin(Hash64("__setup__"), false);
      mapper->Setup(&ctx);

      if (struct_delta != nullptr) {
        // Iteration 1: the delta input is the delta structure data (§5.1).
        for (const auto& d : (*struct_delta)[p]) {
          std::string dk = spec_.projector->Project(d.key);
          auto dv = StateValue(p, dk);
          if (!dv.ok()) return dv.status();
          ctx.Begin(MapInstanceKey(d.key, d.value), d.op == DeltaOp::kDelete);
          mapper->Map(d.key, d.value, dk, *dv, &ctx);
          ++count;
        }
      } else {
        // Iteration j >= 2: the delta input is the delta state data. Re-run
        // the Map instances of every structure kv-pair interdependent with a
        // changed state kv-pair. The deltas live in a flat arena; the probe
        // key is one reused buffer (assign, not construct — no per-delta
        // allocation in steady state) and dv materializes only on a hit.
        const FlatKVRun& deltas = all_to_one() ? shared_delta : cur_delta[p];
        const auto& ctxp = (*ctxs)[p];
        std::string dk, dv;
        for (size_t di = 0; di < deltas.size(); ++di) {
          dk.assign(deltas.key(di));
          auto range = ctxp.dk_ranges.find(dk);
          if (range == ctxp.dk_ranges.end()) continue;
          dv.assign(deltas.value(di));
          for (size_t i = range->second.first; i < range->second.second; ++i) {
            const KV& rec = ctxp.structure[i];
            ctx.Begin(MapInstanceKey(rec.key, rec.value), false);
            mapper->Map(rec.key, rec.value, dk, dv, &ctx);
            ++count;
          }
        }
      }
      ctx.Begin(Hash64("__flush__"), false);
      mapper->Flush(&ctx);
      MergeBoundaryExports(std::move(boundary));
      map_instances.fetch_add(count);
      metrics.map_input_records += count;
      return writer.Finish(nullptr, &metrics);
    });
  });
  map_stage_span.End();
  for (const auto& st : map_status) I2MR_RETURN_IF_ERROR(st);

  // -- Incremental prime Reduce (merge against preserved MRBGraph) ----------
  std::vector<Status> reduce_status(n);
  std::atomic<int64_t> reduced_keys{0};
  std::atomic<int64_t> merge_ns{0};
  std::mutex diff_mu;
  double total_diff = 0;
  trace::ScopedSpan reduce_stage_span("stage.reduce", "iter=%d", iter);
  ParallelFor(cluster_->pool(), n, [&](int r) {
    reduce_status[r] = run_with_recovery(TaskId::Kind::kReduce, r,
                                         [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      TRACE_SPAN("task.reduce", "part=%d iter=%d", r, iter);
      ShuffleReader::Source source;
      source.exchange = exchange.get();
      source.partition = r;
      for (int m = 0; m < n; ++m) {
        source.spill_files.push_back(
            JoinPath(MapTaskDir(job_dir, m), SpillFileName(r)));
      }
      auto reader = ShuffleReader::Open(source, cluster_->cost(), &metrics);
      if (!reader.ok()) return reader.status();

      // Group the delta MRBGraph.
      std::vector<std::pair<std::string, std::vector<DeltaEdge>>> groups;
      {
        std::string_view key;
        std::vector<std::string_view> values;
        while (reader.value()->NextGroup(&key, &values)) {
          std::vector<DeltaEdge> edges;
          edges.reserve(values.size());
          for (const auto& enc : values) {
            DeltaEdge e;
            I2MR_RETURN_IF_ERROR(DecodeEdgeValue(enc, &e));
            e.k2.assign(key);
            edges.push_back(std::move(e));
          }
          groups.emplace_back(std::string(key), std::move(edges));
        }
      }
      // Iteration 1: force reduce instances of brand-new DKs (inserted
      // structure records whose state kv-pair does not exist yet). The
      // groups from the shuffle are already sorted; the forced stragglers
      // are sorted on their own and folded in with one stable merge
      // instead of hashing into a std::set and re-sorting everything.
      if (struct_delta != nullptr && !(*ctxs)[r].forced_dks.empty()) {
        std::unordered_set<std::string_view> present;
        present.reserve(groups.size());
        for (const auto& [k, _] : groups) present.insert(k);
        std::vector<std::string> missing;
        for (const auto& dk : (*ctxs)[r].forced_dks) {
          if (present.count(dk) == 0) missing.push_back(dk);
        }
        if (!missing.empty()) {
          std::sort(missing.begin(), missing.end());
          missing.erase(std::unique(missing.begin(), missing.end()),
                        missing.end());
          size_t mid = groups.size();
          groups.reserve(groups.size() + missing.size());
          for (auto& dk : missing) {
            groups.emplace_back(std::move(dk), std::vector<DeltaEdge>());
          }
          std::inplace_merge(
              groups.begin(), groups.begin() + mid, groups.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
        }
        (*ctxs)[r].forced_dks.clear();
      }

      MRBGStore* store = stores_[r].get();
      std::vector<std::string> keys;
      keys.reserve(groups.size());
      for (const auto& [k, _] : groups) keys.push_back(k);
      {
        TRACE_SPAN("task.mrbg_load", "part=%d groups=%zu", r, groups.size());
        I2MR_RETURN_IF_ERROR(store->PrepareQueries(keys));
      }

      auto reducer = spec_.reducer();
      auto& ctxr = (*ctxs)[r];
      double local_diff = 0;
      {
        ScopedTimer t(&metrics.reduce_ns);
        std::vector<std::string_view> values;
        for (const auto& [dk, edges] : groups) {
          Chunk merged;
          {
            ScopedTimer mt(&merge_ns);
            I2MR_RETURN_IF_ERROR(store->MergeGroup(dk, edges, &merged));
          }
          values.clear();
          values.reserve(merged.entries.size());
          for (const auto& e : merged.entries) values.push_back(e.v2);
          // Cross-shard: the reduce input is the union of the preserved
          // local MRBGraph values and the routed-in remote edges.
          AppendRemoteValues(r, dk, &values);

          const std::string* prev = states_[r]->Get(dk);
          std::string prev_str = prev != nullptr ? *prev
                                : spec_.init_state ? spec_.init_state(dk)
                                                   : std::string();
          std::string next =
              reducer->Reduce(dk, values, prev != nullptr ? prev : nullptr);
          local_diff += spec_.difference(next, prev_str);

          // Change propagation control (§5.3): accumulate changes since the
          // last emission; emit only when above the filter threshold.
          bool emit;
          if (options_.filter_threshold < 0) {
            emit = true;  // CPC disabled: always propagate
          } else {
            auto last_it = ctxr.last_emitted.find(dk);
            const std::string& last =
                last_it != ctxr.last_emitted.end() ? last_it->second : prev_str;
            double accumulated = spec_.difference(next, last);
            emit = accumulated > options_.filter_threshold;
          }
          if (emit) {
            ctxr.delta_state.Append(dk, next);
            ctxr.last_emitted[dk] = next;
          }
          states_[r]->Put(dk, std::move(next));
          reduced_keys.fetch_add(1);
        }
      }
      // Defer index persistence to the end of the refresh job (checkpoints
      // persist explicitly when enabled).
      I2MR_RETURN_IF_ERROR(store->FinishBatch(/*persist_index=*/false));
      {
        std::lock_guard<std::mutex> lock(diff_mu);
        total_diff += local_diff;
      }
      return Status::OK();
    });
  });
  reduce_stage_span.End();
  for (const auto& st : reduce_status) I2MR_RETURN_IF_ERROR(st);

  I2MR_RETURN_IF_ERROR(ReplicateStateAllToOne());
  I2MR_RETURN_IF_ERROR(RemoveAll(job_dir));

  int64_t propagated = 0;
  for (int p = 0; p < n; ++p) {
    propagated += static_cast<int64_t>((*ctxs)[p].delta_state.size());
  }

  stats.wall_ms = wall.ElapsedMillis();
  stats.map_ms = metrics.map_ms();
  stats.shuffle_ms = metrics.shuffle_ms();
  stats.sort_ms = metrics.sort_ms();
  stats.reduce_ms = metrics.reduce_ms();
  stats.map_instances = map_instances.load();
  stats.shuffle_bytes = metrics.shuffle_bytes.load();
  stats.reduced_keys = reduced_keys.load();
  stats.propagated_pairs = propagated;
  stats.total_diff = total_diff;
  stats.merge_ms = merge_ns.load() / 1e6;
  return stats;
}

// ---------------------------------------------------------------------------
// Cross-shard exchange: boundary exports + remote-edge inbox
// ---------------------------------------------------------------------------

Status IncrementalIterativeEngine::LoadExisting() {
  I2MR_RETURN_IF_ERROR(IterativeEngine::LoadExisting());
  // (Re)loading from disk supersedes anything captured in memory: exports
  // or forced DKs from a rolled-back refresh must not leak into the next
  // one (the pipeline also guarantees this by recreating the engine).
  pending_remote_dks_.clear();
  {
    std::lock_guard<std::mutex> lock(exports_mu_);
    pending_exports_.clear();
  }
  return LoadRemoteInbox();
}

std::string IncrementalIterativeEngine::RemotePath(int p) const {
  return JoinPath(PartitionDir(p), "remote.dat");
}

Status IncrementalIterativeEngine::LoadRemoteInbox() {
  remote_.clear();
  if (!spec_.owns_key) return Status::OK();
  remote_.resize(spec_.num_partitions);
  for (int p = 0; p < spec_.num_partitions; ++p) {
    if (!FileExists(RemotePath(p))) continue;
    auto recs = ReadRecords(RemotePath(p));
    if (!recs.ok()) return recs.status();
    for (const auto& kv : *recs) {
      DeltaEdge e;
      I2MR_RETURN_IF_ERROR(DecodeEdgeValue(kv.value, &e));
      remote_[p][kv.key][e.mk] = std::move(e.v2);
    }
  }
  return Status::OK();
}

Status IncrementalIterativeEngine::SaveRemoteInbox(int p) const {
  // Same (dk, encoded edge) records the shuffle moves around; the file is
  // rewritten whole (inboxes are boundary-sized, not state-sized) onto a
  // fresh inode, so hard-linked epoch snapshots of it never mutate.
  std::vector<KV> records;
  for (const auto& [dk, by_mk] : remote_[p]) {
    for (const auto& [mk, v2] : by_mk) {
      records.push_back(KV{dk, EncodeEdgeValue(mk, /*deleted=*/false, v2)});
    }
  }
  return WriteRecords(RemotePath(p), records);
}

StatusOr<size_t> IncrementalIterativeEngine::ApplyRemoteEdges(
    const std::vector<DeltaEdge>& edges) {
  if (!spec_.owns_key) {
    return Status::FailedPrecondition(
        "ApplyRemoteEdges on an engine without owns_key");
  }
  if (!prepared_) I2MR_RETURN_IF_ERROR(LoadExisting());
  if (remote_.empty()) remote_.resize(spec_.num_partitions);
  size_t changed = 0;
  std::set<int> dirty_parts;
  for (const auto& e : edges) {
    const int p = static_cast<int>(PartitionOf(e.k2));
    auto& part = remote_[p];
    if (e.deleted) {
      auto it = part.find(e.k2);
      if (it == part.end() || it->second.erase(e.mk) == 0) continue;
      if (it->second.empty()) part.erase(it);
    } else {
      auto& by_mk = part[e.k2];
      auto it = by_mk.find(e.mk);
      if (it != by_mk.end() && it->second == e.v2) continue;
      by_mk[e.mk] = e.v2;
    }
    ++changed;
    dirty_parts.insert(p);
    pending_remote_dks_.insert(e.k2);
  }
  for (int p : dirty_parts) I2MR_RETURN_IF_ERROR(SaveRemoteInbox(p));
  return changed;
}

void IncrementalIterativeEngine::MergeBoundaryExports(
    std::vector<DeltaEdge>&& edges) {
  if (edges.empty()) return;
  std::lock_guard<std::mutex> lock(exports_mu_);
  for (auto& e : edges) {
    auto key = std::make_pair(e.k2, e.mk);
    pending_exports_[std::move(key)] = std::move(e);
  }
}

std::vector<DeltaEdge> IncrementalIterativeEngine::TakeBoundaryExports() {
  std::lock_guard<std::mutex> lock(exports_mu_);
  std::vector<DeltaEdge> out;
  out.reserve(pending_exports_.size());
  for (auto& [key, edge] : pending_exports_) out.push_back(std::move(edge));
  pending_exports_.clear();
  return out;
}

void IncrementalIterativeEngine::AppendRemoteValues(
    int r, std::string_view dk, std::vector<std::string_view>* values) const {
  if (remote_.empty()) return;
  const auto& part = remote_[r];
  auto it = part.find(dk);
  if (it == part.end()) return;
  for (const auto& [mk, v2] : it->second) {
    (void)mk;
    values->push_back(v2);
  }
}

std::vector<std::string> IncrementalIterativeEngine::RemoteOnlyKeys(
    int r) const {
  std::vector<std::string> keys;
  if (remote_.empty()) return keys;
  keys.reserve(remote_[r].size());
  for (const auto& [dk, by_mk] : remote_[r]) {
    (void)by_mk;
    keys.push_back(dk);  // std::map iteration: already sorted
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Top-level jobs
// ---------------------------------------------------------------------------

StatusOr<IncrIterRunStats> IncrementalIterativeEngine::RunInitial(
    const std::vector<KV>& structure, const std::vector<KV>& initial_state) {
  IncrIterRunStats stats;
  WallTimer wall;
  TRACE_SPAN("engine.initial", "job=%s records=%zu", spec_.name.c_str(),
             structure.size());
  if (spec_.owns_key && !options_.maintain_mrbg) {
    // The exchange's export/fold machinery rides on the MRBGraph tagging
    // and merge; without it a sharded reduce would silently drop remote
    // contributions in the re-computation path.
    return Status::InvalidArgument(
        "owns_key (cross-shard exchange) requires maintain_mrbg");
  }
  // Fresh bootstrap: no remote contributions folded, nothing captured yet.
  remote_.clear();
  pending_remote_dks_.clear();
  {
    std::lock_guard<std::mutex> lock(exports_mu_);
    pending_exports_.clear();
  }
  I2MR_RETURN_IF_ERROR(Prepare(structure, initial_state));
  auto iterations = Run();
  if (!iterations.ok()) return iterations.status();
  stats.iterations = std::move(iterations.value());
  if (options_.maintain_mrbg) {
    I2MR_RETURN_IF_ERROR(PreserveMRBGraph(&stats.preserve_ms));
  }
  stats.wall_ms = wall.ElapsedMillis();
  return stats;
}

StatusOr<IncrIterRunStats> IncrementalIterativeEngine::RunIncremental(
    const std::vector<DeltaKV>& delta_structure) {
  IncrIterRunStats stats;
  WallTimer wall;
  TRACE_SPAN("engine.refresh", "job=%s deltas=%zu", spec_.name.c_str(),
             delta_structure.size());
  if (!prepared_) I2MR_RETURN_IF_ERROR(LoadExisting());
  if (options_.charge_job_startup_per_refresh) {
    cluster_->cost().ChargeJobStartup();
  }

  // Partition the delta structure input with partition function (2) (§4.3).
  std::vector<std::vector<DeltaKV>> per_part(spec_.num_partitions);
  for (const auto& d : delta_structure) {
    uint32_t p = all_to_one()
                     ? PartitionOf(d.key)
                     : PartitionOf(spec_.projector->Project(d.key));
    per_part[p].push_back(d);
  }

  std::vector<PartitionCtx> ctxs;
  I2MR_RETURN_IF_ERROR(LoadStructures(&ctxs));
  I2MR_RETURN_IF_ERROR(ApplyStructureDelta(per_part, &ctxs));

  // Collect new DKs whose state does not exist yet (inserted structure
  // records): their reduce instances are forced in iteration 1.
  if (!all_to_one()) {
    for (int p = 0; p < spec_.num_partitions; ++p) {
      std::unordered_set<std::string> seen;
      for (const auto& d : per_part[p]) {
        if (d.op != DeltaOp::kInsert) continue;
        std::string dk = spec_.projector->Project(d.key);
        if (states_[p]->Get(dk) == nullptr && seen.insert(dk).second) {
          ctxs[p].forced_dks.push_back(dk);
        }
      }
    }
  }

  // Cross-shard: inbox DKs whose remote contributions changed since the
  // last refresh re-reduce in iteration 1 even when no local delta (and
  // hence no local map emission) touches them — MergeGroup hands back the
  // preserved local chunk and AppendRemoteValues the routed-in values.
  for (const auto& dk : pending_remote_dks_) {
    ctxs[PartitionOf(dk)].forced_dks.push_back(dk);
  }
  pending_remote_dks_.clear();

  bool use_mrbg = options_.maintain_mrbg && mrbg_consistent_;
  if (options_.maintain_mrbg && !mrbg_consistent_) {
    // Stores exist on disk from a previous process/engine: trust them.
    use_mrbg = true;
  }

  if (!use_mrbg) {
    // MRBGraph maintenance off (e.g. Kmeans): re-compute iteratively from
    // the previous converged state (§5.2).
    stats.mrbg_turned_off = true;
    for (int iter = 1; iter <= spec_.max_iterations; ++iter) {
      auto it = RunFullIteration(iter);
      if (!it.ok()) return it.status();
      stats.iterations.push_back(std::move(it.value()));
      if (stats.iterations.back().total_diff <= spec_.convergence_epsilon) break;
    }
    I2MR_RETURN_IF_ERROR(SaveStates());
    stats.wall_ms = wall.ElapsedMillis();
    return stats;
  }

  I2MR_RETURN_IF_ERROR(OpenStores());
  bool auto_off = false;
  const size_t total_state = [&] {
    size_t s = 0;
    for (const auto& st : states_) s += st->size();
    return all_to_one() ? states_[0]->size() : s;
  }();

  for (int iter = 1; iter <= spec_.max_iterations; ++iter) {
    if (options_.checkpoint_each_iteration) {
      I2MR_RETURN_IF_ERROR(Checkpoint(iter));
    }
    auto it = RunIncrIteration(iter, &ctxs,
                               iter == 1 ? &per_part : nullptr, &stats);
    if (!it.ok()) return it.status();
    stats.iterations.push_back(std::move(it.value()));
    const auto& last = stats.iterations.back();

    // P∆ detection (§5.2): turn off MRBGraph maintenance when the delta
    // state covers most of the state data.
    double p_delta = total_state == 0
                         ? 0.0
                         : static_cast<double>(last.propagated_pairs) /
                               static_cast<double>(total_state);
    stats.max_p_delta = std::max(stats.max_p_delta, p_delta);
    if (p_delta > options_.mrbg_auto_off_ratio) {
      auto_off = true;
      break;
    }
    if (last.propagated_pairs == 0 ||
        last.total_diff <= spec_.convergence_epsilon) {
      break;
    }
  }

  if (auto_off) {
    LOG_INFO << spec_.name << ": P∆ above threshold, turning off MRBGraph "
             << "maintenance and re-computing iteratively";
    stats.mrbg_turned_off = true;
    mrbg_consistent_ = false;
    int base = static_cast<int>(stats.iterations.size());
    for (int iter = 1; iter <= spec_.max_iterations; ++iter) {
      auto it = RunFullIteration(base + iter);
      if (!it.ok()) return it.status();
      stats.iterations.push_back(std::move(it.value()));
      if (stats.iterations.back().total_diff <= spec_.convergence_epsilon) break;
    }
  }

  I2MR_RETURN_IF_ERROR(SaveStates());
  if (auto_off && options_.maintain_mrbg) {
    // Rebuild a consistent MRBGraph so the next refresh can be incremental.
    // The stores must be fully closed first: the preservation pass resets
    // each partition's store directory out from under them.
    I2MR_RETURN_IF_ERROR(CloseStores(&stats));
    I2MR_RETURN_IF_ERROR(PreserveMRBGraph(&stats.preserve_ms));
  } else {
    // Stores stay resident (their background compactors keep running
    // between refreshes); harvest this refresh's read counters.
    I2MR_RETURN_IF_ERROR(CollectStoreStats(&stats));
  }
  stats.wall_ms = wall.ElapsedMillis();
  return stats;
}

}  // namespace i2mr
