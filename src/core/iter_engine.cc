#include "core/iter_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "common/timer.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

std::string SpillFileName(int r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
  return buf;
}

std::string MapTaskDir(const std::string& job_dir, int m) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "map-%05d", m);
  return JoinPath(job_dir, buf);
}

// Sharded full iterations: emissions to keys another shard owns must not
// enter the local shuffle (they would reduce here as phantom keys shadowing
// the owner's result). Full re-computation re-derives the complete boundary
// set every iteration, so dropping — rather than capturing — is lossless;
// the incremental engine's tagged context does the capturing.
class OwnedKeyFilter : public MapContext {
 public:
  OwnedKeyFilter(MapContext* inner,
                 const std::function<bool(std::string_view)>* owns)
      : inner_(inner), owns_(owns) {}
  void Emit(std::string_view key, std::string_view value) override {
    if (!(*owns_)(key)) return;
    inner_->Emit(key, value);
  }

 private:
  MapContext* inner_;
  const std::function<bool(std::string_view)>* owns_;
};

}  // namespace

IterativeEngine::IterativeEngine(LocalCluster* cluster, IterJobSpec spec)
    : cluster_(cluster), spec_(std::move(spec)) {
  I2MR_CHECK(spec_.projector != nullptr);
  I2MR_CHECK(spec_.mapper != nullptr);
  I2MR_CHECK(spec_.reducer != nullptr);
  I2MR_CHECK(spec_.difference != nullptr);
  I2MR_CHECK(spec_.num_partitions > 0);
  // owns_key shards the computation by key; an all-to-one dependency has
  // global reduce state and cannot be split that way (route such apps to a
  // single shard instead).
  I2MR_CHECK(!spec_.owns_key ||
             spec_.projector->dep_type() != DepType::kAllToOne)
      << "owns_key is incompatible with all-to-one dependencies";
  states_.resize(spec_.num_partitions);
  for (int p = 0; p < spec_.num_partitions; ++p) {
    states_[p] = std::make_unique<StateStore>(StatePath(p));
  }
}

std::string IterativeEngine::PartitionDir(int p) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/part-%03d", p);
  return JoinPath(cluster_->root(), "state/" + spec_.name + buf);
}

std::string IterativeEngine::StructurePath(int p) const {
  return JoinPath(PartitionDir(p), "structure.dat");
}

std::string IterativeEngine::StatePath(int p) const {
  return JoinPath(PartitionDir(p), "state.dat");
}

uint32_t IterativeEngine::PartitionOf(const std::string& key) const {
  return static_cast<uint32_t>(Hash64(key) % spec_.num_partitions);
}

Status IterativeEngine::Prepare(const std::vector<KV>& structure,
                                const std::vector<KV>& initial_state) {
  const int n = spec_.num_partitions;
  // Partition structure kv-pairs.
  std::vector<std::vector<KV>> parts(n);
  for (const auto& kv : structure) {
    uint32_t p = all_to_one() ? PartitionOf(kv.key)
                              : PartitionOf(spec_.projector->Project(kv.key));
    parts[p].push_back(kv);
  }
  for (int p = 0; p < n; ++p) {
    I2MR_RETURN_IF_ERROR(ResetDir(PartitionDir(p)));
    // Sort in project(SK) order (then SK) so the prime Map can merge-join
    // with the DK-sorted state file in one pass.
    std::sort(parts[p].begin(), parts[p].end(),
              [&](const KV& a, const KV& b) {
                std::string pa = spec_.projector->Project(a.key);
                std::string pb = spec_.projector->Project(b.key);
                if (pa != pb) return pa < pb;
                return a < b;
              });
    I2MR_RETURN_IF_ERROR(WriteRecords(StructurePath(p), parts[p]));
  }
  // Partition (or replicate) state kv-pairs.
  for (int p = 0; p < n; ++p) states_[p]->Clear();
  for (const auto& kv : initial_state) {
    if (all_to_one()) {
      for (int p = 0; p < n; ++p) states_[p]->Put(kv.key, kv.value);
    } else {
      states_[PartitionOf(kv.key)]->Put(kv.key, kv.value);
    }
  }
  // Seed state entries for every structure-side DK so that state keys whose
  // reduce instance never receives values (e.g. vertices without in-links)
  // still exist and get rescored by reduce_untouched_keys.
  if (!all_to_one() && spec_.init_state) {
    for (int p = 0; p < n; ++p) {
      for (const auto& kv : parts[p]) {
        std::string dk = spec_.projector->Project(kv.key);
        if (states_[p]->Get(dk) == nullptr) {
          states_[p]->Put(dk, spec_.init_state(dk));
        }
      }
    }
  }
  I2MR_RETURN_IF_ERROR(SaveStates());
  InvalidateStructureCache();
  prepared_ = true;
  return Status::OK();
}

Status IterativeEngine::LoadExisting() {
  for (int p = 0; p < spec_.num_partitions; ++p) {
    if (!FileExists(StructurePath(p))) {
      return Status::NotFound("no structure file for partition " +
                              std::to_string(p));
    }
    I2MR_RETURN_IF_ERROR(states_[p]->Load());
  }
  InvalidateStructureCache();
  prepared_ = true;
  return Status::OK();
}

Status IterativeEngine::SaveStates() {
  for (auto& s : states_) I2MR_RETURN_IF_ERROR(s->Save());
  return Status::OK();
}

StatusOr<std::string> IterativeEngine::StateValue(int p,
                                                  const std::string& dk) const {
  const std::string* dv = states_[p]->Get(dk);
  if (dv != nullptr) return *dv;
  if (spec_.init_state) return spec_.init_state(dk);
  return Status::NotFound("no state for DK " + dk);
}

void IterativeEngine::InvalidateStructureCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  structure_cache_.clear();
}

Status IterativeEngine::ForEachStructureRecord(
    int p, const std::function<Status(const std::string&, const std::string&,
                                      const std::string&, const std::string&)>&
               fn) const {
  // Loop-invariant structure data is parsed once and kept in memory across
  // iterations when cache_parsed_structure is on (iterMR: long-lived jobs).
  std::shared_ptr<const std::vector<KV>> records;
  if (spec_.cache_parsed_structure) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (structure_cache_.size() != static_cast<size_t>(spec_.num_partitions)) {
      structure_cache_.assign(spec_.num_partitions, nullptr);
    }
    records = structure_cache_[p];
  }
  if (records == nullptr) {
    auto loaded = ReadRecords(StructurePath(p));
    if (!loaded.ok()) return loaded.status();
    records = std::make_shared<const std::vector<KV>>(std::move(*loaded));
    if (spec_.cache_parsed_structure) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      structure_cache_[p] = records;
    }
  }

  std::string cached_dk;
  std::string cached_dv;
  bool have_cached = false;
  for (const KV& kv : *records) {
    std::string dk = spec_.projector->Project(kv.key);
    // Records are sorted by project(SK): consecutive records usually share
    // the DK, so cache the last lookup (the single-pass merge-join of §4.3).
    if (!have_cached || dk != cached_dk) {
      auto dv = StateValue(p, dk);
      if (!dv.ok()) return dv.status();
      cached_dv = std::move(dv.value());
      cached_dk = dk;
      have_cached = true;
    }
    I2MR_RETURN_IF_ERROR(fn(kv.key, kv.value, dk, cached_dv));
  }
  return Status::OK();
}

Status IterativeEngine::ReplicateStateAllToOne() {
  if (!all_to_one()) return Status::OK();
  const int n = spec_.num_partitions;
  // Owner partition of each DK holds the authoritative post-reduce value.
  std::vector<KV> merged;
  std::set<std::string> seen;
  for (int p = 0; p < n; ++p) {
    for (const auto& [dk, dv] : states_[p]->items()) {
      if (!seen.insert(dk).second) continue;
      const std::string* owner_val =
          states_[PartitionOf(dk)]->Get(dk);
      merged.push_back(KV{dk, owner_val != nullptr ? *owner_val : dv});
    }
  }
  for (int p = 0; p < n; ++p) {
    for (const auto& kv : merged) states_[p]->Put(kv.key, kv.value);
  }
  return Status::OK();
}

StatusOr<IterationStats> IterativeEngine::RunFullIteration(int iter) {
  const int n = spec_.num_partitions;
  IterationStats stats;
  stats.iteration = iter;
  StageMetrics metrics;
  WallTimer wall;
  std::string job_dir =
      cluster_->NewJobDir(spec_.name + "-it" + std::to_string(iter));

  Partitioner hash_partitioner;
  // Per-iteration in-memory exchange (null = disk spills only).
  std::unique_ptr<ShuffleExchange> exchange;
  if (EffectiveShuffleMode(spec_.shuffle_mode) == ShuffleMode::kInMemory) {
    exchange = std::make_unique<ShuffleExchange>(n, spec_.shuffle_memory_bytes);
  }
  std::atomic<int64_t> map_instances{0};
  std::vector<Status> map_status(n);
  ParallelFor(cluster_->pool(), n, [&](int p) {
    map_status[p] = [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      auto mapper = spec_.mapper();
      ShuffleWriter writer(n, &hash_partitioner, MapTaskDir(job_dir, p),
                           exchange.get());
      OwnedKeyFilter filter(&writer, &spec_.owns_key);
      MapContext* ctx = spec_.owns_key ? static_cast<MapContext*>(&filter)
                                       : static_cast<MapContext*>(&writer);
      int64_t count = 0;
      {
        ScopedTimer t(&metrics.map_ns);
        mapper->Setup(ctx);
        I2MR_RETURN_IF_ERROR(ForEachStructureRecord(
            p, [&](const std::string& sk, const std::string& sv,
                   const std::string& dk, const std::string& dv) {
              mapper->Map(sk, sv, dk, dv, ctx);
              ++count;
              return Status::OK();
            }));
        mapper->Flush(ctx);
      }
      map_instances.fetch_add(count);
      metrics.map_input_records += count;
      return writer.Finish(nullptr, &metrics);
    }();
  });
  for (const auto& st : map_status) I2MR_RETURN_IF_ERROR(st);

  // Prime Reduce, co-located with the state partition: reduce task r owns
  // state partition r, so the updated state is written locally.
  std::vector<Status> reduce_status(n);
  std::atomic<int64_t> reduced_keys{0};
  std::mutex diff_mu;
  double total_diff = 0;
  ParallelFor(cluster_->pool(), n, [&](int r) {
    reduce_status[r] = [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      ShuffleReader::Source source;
      source.exchange = exchange.get();
      source.partition = r;
      for (int m = 0; m < n; ++m) {
        source.spill_files.push_back(
            JoinPath(MapTaskDir(job_dir, m), SpillFileName(r)));
      }
      auto reader = ShuffleReader::Open(source, cluster_->cost(), &metrics);
      if (!reader.ok()) return reader.status();
      auto reducer = spec_.reducer();
      double local_diff = 0;
      int64_t local_keys = 0;
      std::unordered_set<std::string> touched;
      // Cross-shard: DKs that hold routed-in remote values but may get no
      // local emission this iteration still need their reduce to run.
      std::vector<std::string> remote_only = RemoteOnlyKeys(r);
      std::unordered_set<std::string> remote_pending(remote_only.begin(),
                                                     remote_only.end());
      auto reduce_one = [&](const std::string& dk,
                            std::vector<std::string_view>* values) {
        AppendRemoteValues(r, dk, values);
        const std::string* prev = states_[r]->Get(dk);
        std::string prev_str = prev != nullptr ? *prev
                              : spec_.init_state ? spec_.init_state(dk)
                                                 : std::string();
        std::string next =
            reducer->Reduce(dk, *values, prev != nullptr ? prev : nullptr);
        local_diff += spec_.difference(next, prev_str);
        states_[r]->Put(dk, std::move(next));
        if (spec_.reduce_untouched_keys) touched.insert(dk);
        ++local_keys;
      };
      {
        ScopedTimer t(&metrics.reduce_ns);
        std::string_view dk_view;
        std::string dk;
        std::vector<std::string_view> values;
        while (reader.value()->NextGroup(&dk_view, &values)) {
          dk.assign(dk_view);
          remote_pending.erase(dk);
          reduce_one(dk, &values);
        }
        // Remote-only DKs, in the sorted order RemoteOnlyKeys returned.
        for (const auto& dk2 : remote_only) {
          if (remote_pending.count(dk2) == 0) continue;
          values.clear();
          reduce_one(dk2, &values);
        }
        if (spec_.reduce_untouched_keys) {
          std::vector<std::pair<std::string, std::string>> updates;
          for (const auto& [dk2, dv2] : states_[r]->items()) {
            if (touched.count(dk2) > 0) continue;
            std::string next = reducer->Reduce(dk2, {}, &dv2);
            local_diff += spec_.difference(next, dv2);
            updates.emplace_back(dk2, std::move(next));
            ++local_keys;
          }
          for (auto& [dk2, dv2] : updates) states_[r]->Put(dk2, std::move(dv2));
        }
      }
      reduced_keys.fetch_add(local_keys);
      {
        std::lock_guard<std::mutex> lock(diff_mu);
        total_diff += local_diff;
      }
      return Status::OK();
    }();
  });
  for (const auto& st : reduce_status) I2MR_RETURN_IF_ERROR(st);

  I2MR_RETURN_IF_ERROR(ReplicateStateAllToOne());
  I2MR_RETURN_IF_ERROR(RemoveAll(job_dir));

  stats.wall_ms = wall.ElapsedMillis();
  stats.map_ms = metrics.map_ms();
  stats.shuffle_ms = metrics.shuffle_ms();
  stats.sort_ms = metrics.sort_ms();
  stats.reduce_ms = metrics.reduce_ms();
  stats.map_instances = map_instances.load();
  stats.shuffle_bytes = metrics.shuffle_bytes.load();
  stats.reduced_keys = reduced_keys.load();
  stats.propagated_pairs = reduced_keys.load();
  stats.total_diff = total_diff;
  return stats;
}

StatusOr<std::vector<IterationStats>> IterativeEngine::Run() {
  if (!prepared_) return Status::FailedPrecondition("call Prepare() first");
  cluster_->cost().ChargeJobStartup();  // jobs stay alive across iterations
  std::vector<IterationStats> all;
  for (int iter = 1; iter <= spec_.max_iterations; ++iter) {
    auto stats = RunFullIteration(iter);
    if (!stats.ok()) return stats.status();
    all.push_back(std::move(stats.value()));
    if (all.back().total_diff <= spec_.convergence_epsilon) break;
  }
  I2MR_RETURN_IF_ERROR(SaveStates());
  return all;
}

StatusOr<std::vector<KV>> IterativeEngine::StateSnapshot() const {
  std::vector<KV> out;
  if (all_to_one()) {
    // Every partition holds a replica; partition 0 is representative.
    return states_[0]->Snapshot();
  }
  for (const auto& s : states_) {
    auto snap = s->Snapshot();
    out.insert(out.end(), snap.begin(), snap.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace i2mr
