// Project API (paper §4.2): specifies the interdependent state key DK for a
// structure key SK, plus the dependency type. i2MapReduce uses Project for
// dependency-aware co-partitioning:
//   structure partition = hash(project(SK)) mod n
//   state partition     = hash(DK) mod n
// so interdependent structure/state kv-pairs land in the same partition.
#ifndef I2MR_CORE_PROJECTOR_H_
#define I2MR_CORE_PROJECTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace i2mr {

/// Dependency type between structure and state kv-pairs (paper Fig. 5;
/// one-to-many / many-to-many convert to these by re-keying).
enum class DepType {
  kOneToOne,   // e.g. PageRank: vertex i ↔ rank R_i
  kManyToOne,  // e.g. GIM-V: matrix blocks (·,j) ↔ vector block v_j
  kAllToOne,   // e.g. Kmeans: every point ↔ the single centroid set
};

const char* DepTypeName(DepType type);

class Projector {
 public:
  virtual ~Projector() = default;

  /// The single interdependent state key of structure key `sk`.
  virtual std::string Project(const std::string& sk) const = 0;

  virtual DepType dep_type() const { return DepType::kOneToOne; }
};

/// project(SK) = SK (one-to-one, PageRank/SSSP).
class IdentityProjector : public Projector {
 public:
  std::string Project(const std::string& sk) const override { return sk; }
  DepType dep_type() const override { return DepType::kOneToOne; }
};

/// project(SK) = constant key (all-to-one, Kmeans).
class ConstProjector : public Projector {
 public:
  explicit ConstProjector(std::string key) : key_(std::move(key)) {}
  std::string Project(const std::string&) const override { return key_; }
  DepType dep_type() const override { return DepType::kAllToOne; }

 private:
  std::string key_;
};

/// Arbitrary projection function (many-to-one, GIM-V).
class FnProjector : public Projector {
 public:
  using Fn = std::function<std::string(const std::string&)>;
  FnProjector(Fn fn, DepType type) : fn_(std::move(fn)), type_(type) {}
  std::string Project(const std::string& sk) const override { return fn_(sk); }
  DepType dep_type() const override { return type_; }

 private:
  Fn fn_;
  DepType type_;
};

}  // namespace i2mr

#endif  // I2MR_CORE_PROJECTOR_H_
