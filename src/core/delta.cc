#include "core/delta.h"

#include "common/codec.h"

namespace i2mr {

std::string EncodeEdgeValue(uint64_t mk, bool deleted, std::string_view v2) {
  std::string out;
  out.reserve(9 + v2.size());
  PutFixed64(&out, mk);
  out.push_back(deleted ? '\x00' : '\x01');
  out.append(v2.data(), v2.size());
  return out;
}

Status DecodeEdgeValue(std::string_view data, DeltaEdge* edge) {
  if (data.size() < 9) return Status::Corruption("short edge value");
  edge->mk = DecodeFixed64(data.data());
  uint8_t op = static_cast<uint8_t>(data[8]);
  if (op > 1) return Status::Corruption("bad edge op");
  edge->deleted = (op == 0);
  edge->v2.assign(data.data() + 9, data.size() - 9);
  return Status::OK();
}

}  // namespace i2mr
