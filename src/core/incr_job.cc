#include "core/incr_job.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/timer.h"
#include "core/delta.h"
#include "core/result_store.h"
#include "io/env.h"
#include "io/record_file.h"
#include "mr/shuffle.h"

namespace i2mr {
namespace {

// MapContext that tags user emissions with (MK, op) for MRBGraph
// maintenance. The engine sets mk/deleted before each Map invocation.
class TaggingMapContext : public MapContext {
 public:
  explicit TaggingMapContext(MapContext* inner) : inner_(inner) {}

  void Begin(uint64_t mk, bool deleted) {
    mk_ = mk;
    deleted_ = deleted;
  }

  void Emit(std::string_view key, std::string_view value) override {
    // Deletions shuffle <K2, MK, '-'>: the payload is dropped (paper §3.3).
    inner_->Emit(key, EncodeEdgeValue(mk_, deleted_,
                                      deleted_ ? std::string_view() : value));
  }

 private:
  MapContext* inner_;
  uint64_t mk_ = 0;
  bool deleted_ = false;
};

// Collects reduce emissions into a vector of KVs.
class VectorReduceContext : public ReduceContext {
 public:
  void Emit(std::string_view key, std::string_view value) override {
    out_.push_back(KV{std::string(key), std::string(value)});
  }
  std::vector<KV> Take() { return std::move(out_); }

 private:
  std::vector<KV> out_;
};

std::string SpillFileName(int r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d.dat", r);
  return buf;
}

std::string MapTaskDir(const std::string& job_dir, int m) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "map-%05d", m);
  return JoinPath(job_dir, buf);
}

}  // namespace

IncrementalOneStepJob::IncrementalOneStepJob(LocalCluster* cluster,
                                             IncrJobSpec spec)
    : cluster_(cluster), spec_(std::move(spec)) {
  I2MR_CHECK(spec_.mapper != nullptr);
  I2MR_CHECK(spec_.accumulate || spec_.reducer) << "need reducer or accumulate";
  if (!spec_.partitioner) spec_.partitioner = std::make_shared<Partitioner>();
}

std::string IncrementalOneStepJob::PartitionDir(int r) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/part-%03d", r);
  return JoinPath(cluster_->root(), "state/" + spec_.name + buf);
}

// ---------------------------------------------------------------------------
// Map phase
// ---------------------------------------------------------------------------

Status IncrementalOneStepJob::RunMapPhase(const std::vector<std::string>& parts,
                                          bool delta,
                                          const std::string& job_dir,
                                          ShuffleExchange* exchange,
                                          StageMetrics* metrics) {
  const int num_maps = static_cast<int>(parts.size());
  std::vector<Status> statuses(num_maps);
  ParallelFor(cluster_->pool(), num_maps, [&](int m) {
    statuses[m] = [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      auto mapper = spec_.mapper();
      ShuffleWriter writer(spec_.num_reduce_tasks, spec_.partitioner.get(),
                           MapTaskDir(job_dir, m), exchange);
      int64_t instances = 0;

      if (accumulator_mode()) {
        // Plain emissions; validity: incremental deltas must be insert-only.
        ScopedTimer t(&metrics->map_ns);
        mapper->Setup(&writer);
        if (!delta) {
          auto reader = RecordReader::Open(parts[m]);
          if (!reader.ok()) return reader.status();
          KV kv;
          for (;;) {
            Status st = reader.value()->Next(&kv);
            if (st.IsNotFound()) break;
            I2MR_RETURN_IF_ERROR(st);
            mapper->Map(kv.key, kv.value, &writer);
            ++instances;
          }
        } else {
          auto reader = DeltaReader::Open(parts[m]);
          if (!reader.ok()) return reader.status();
          DeltaKV rec;
          for (;;) {
            Status st = reader.value()->Next(&rec);
            if (st.IsNotFound()) break;
            I2MR_RETURN_IF_ERROR(st);
            if (rec.op == DeltaOp::kDelete) {
              return Status::InvalidArgument(
                  "accumulator Reduce requires insertion-only deltas (§3.5)");
            }
            mapper->Map(rec.key, rec.value, &writer);
            ++instances;
          }
        }
        mapper->Flush(&writer);
      } else {
        // MRBGraph mode: tag emissions with (MK, op).
        TaggingMapContext ctx(&writer);
        ScopedTimer t(&metrics->map_ns);
        ctx.Begin(Hash64("__setup__" + parts[m]), false);
        mapper->Setup(&ctx);
        if (!delta) {
          auto reader = RecordReader::Open(parts[m]);
          if (!reader.ok()) return reader.status();
          KV kv;
          for (;;) {
            Status st = reader.value()->Next(&kv);
            if (st.IsNotFound()) break;
            I2MR_RETURN_IF_ERROR(st);
            ctx.Begin(MapInstanceKey(kv.key, kv.value), false);
            mapper->Map(kv.key, kv.value, &ctx);
            ++instances;
          }
        } else {
          auto reader = DeltaReader::Open(parts[m]);
          if (!reader.ok()) return reader.status();
          DeltaKV rec;
          for (;;) {
            Status st = reader.value()->Next(&rec);
            if (st.IsNotFound()) break;
            I2MR_RETURN_IF_ERROR(st);
            ctx.Begin(MapInstanceKey(rec.key, rec.value),
                      rec.op == DeltaOp::kDelete);
            mapper->Map(rec.key, rec.value, &ctx);
            ++instances;
          }
        }
        ctx.Begin(Hash64("__flush__" + parts[m]), false);
        mapper->Flush(&ctx);
      }

      metrics->map_input_records += instances;
      map_instances_.fetch_add(instances);
      std::unique_ptr<Reducer> combiner;
      if (accumulator_mode() && spec_.accumulate) {
        // Fold values map-side with the accumulator (legal by §3.5).
        AccumulateFn acc = spec_.accumulate;
        combiner = std::make_unique<FnReducer>(
            [acc](const std::string& k, const std::vector<std::string>& vs,
                  ReduceContext* ctx) {
              std::string folded = vs[0];
              for (size_t i = 1; i < vs.size(); ++i) folded = acc(folded, vs[i]);
              ctx->Emit(k, folded);
            });
      }
      return writer.Finish(combiner.get(), metrics);
    }();
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reduce phases
// ---------------------------------------------------------------------------

Status IncrementalOneStepJob::RunReducePhaseInitial(
    const std::string& job_dir, int num_maps, const ShuffleExchange* exchange,
    StageMetrics* metrics, IncrRunStats* stats) {
  const int R = spec_.num_reduce_tasks;
  std::vector<Status> statuses(R);
  std::atomic<int64_t> groups{0};
  // Reduce tasks run concurrently: accumulate per-store stats atomically
  // (the plain += on *stats raced).
  std::atomic<uint64_t> io_reads{0}, bytes_read{0};
  ParallelFor(cluster_->pool(), R, [&](int r) {
    statuses[r] = [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      I2MR_RETURN_IF_ERROR(ResetDir(PartitionDir(r)));

      ShuffleReader::Source source;
      source.exchange = exchange;
      source.partition = r;
      for (int m = 0; m < num_maps; ++m) {
        source.spill_files.push_back(
            JoinPath(MapTaskDir(job_dir, m), SpillFileName(r)));
      }
      auto reader = ShuffleReader::Open(source, cluster_->cost(), metrics);
      if (!reader.ok()) return reader.status();

      auto results = ResultStore::Open(JoinPath(PartitionDir(r), "results"));
      if (!results.ok()) return results.status();

      std::string key;
      std::vector<std::string> values;

      if (accumulator_mode()) {
        ScopedTimer t(&metrics->reduce_ns);
        while (reader.value()->NextGroup(&key, &values)) {
          std::string folded = values[0];
          for (size_t i = 1; i < values.size(); ++i) {
            folded = spec_.accumulate(folded, values[i]);
          }
          results->Put(key, folded);
          groups.fetch_add(1);
        }
        return results->Save();
      }

      auto store = MRBGStore::Open(JoinPath(PartitionDir(r), "mrbg"),
                                   spec_.store_options);
      if (!store.ok()) return store.status();
      auto reducer = spec_.reducer();
      {
        ScopedTimer t(&metrics->reduce_ns);
        std::string_view key_view;
        std::vector<std::string_view> value_views;
        while (reader.value()->NextGroup(&key_view, &value_views)) {
          Chunk chunk;
          chunk.key.assign(key_view);
          chunk.entries.reserve(value_views.size());
          std::vector<std::string> v2s;
          v2s.reserve(value_views.size());
          for (const auto& enc : value_views) {
            DeltaEdge e;
            I2MR_RETURN_IF_ERROR(DecodeEdgeValue(enc, &e));
            I2MR_CHECK(!e.deleted) << "deletion in initial run";
            v2s.push_back(e.v2);
            chunk.entries.push_back(ChunkEntry{e.mk, std::move(e.v2)});
          }
          I2MR_RETURN_IF_ERROR(store.value()->AppendChunk(chunk));
          VectorReduceContext ctx;
          reducer->Reduce(chunk.key, v2s, &ctx);
          results->SetInstanceOutputs(chunk.key, ctx.Take());
          groups.fetch_add(1);
        }
      }
      I2MR_RETURN_IF_ERROR(store.value()->FinishBatch());
      io_reads.fetch_add(store.value()->stats().io_reads);
      bytes_read.fetch_add(store.value()->stats().bytes_read);
      I2MR_RETURN_IF_ERROR(store.value()->Close());
      return results->Save();
    }();
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  metrics->reduce_groups += groups.load();
  stats->reduce_instances = groups.load();
  stats->store_io_reads += io_reads.load();
  stats->store_bytes_read += bytes_read.load();
  return Status::OK();
}

Status IncrementalOneStepJob::RunReducePhaseIncremental(
    const std::string& job_dir, int num_maps, const ShuffleExchange* exchange,
    StageMetrics* metrics, IncrRunStats* stats) {
  const int R = spec_.num_reduce_tasks;
  std::vector<Status> statuses(R);
  std::atomic<int64_t> groups{0};
  std::atomic<int64_t> merge_ns{0};
  std::atomic<uint64_t> io_reads{0}, bytes_read{0};

  ParallelFor(cluster_->pool(), R, [&](int r) {
    statuses[r] = [&]() -> Status {
      cluster_->cost().ChargeTaskStartup();
      ShuffleReader::Source source;
      source.exchange = exchange;
      source.partition = r;
      for (int m = 0; m < num_maps; ++m) {
        source.spill_files.push_back(
            JoinPath(MapTaskDir(job_dir, m), SpillFileName(r)));
      }
      auto reader = ShuffleReader::Open(source, cluster_->cost(), metrics);
      if (!reader.ok()) return reader.status();

      auto results = ResultStore::Open(JoinPath(PartitionDir(r), "results"));
      if (!results.ok()) return results.status();

      std::string key;
      std::vector<std::string> values;

      if (accumulator_mode()) {
        ScopedTimer t(&metrics->reduce_ns);
        while (reader.value()->NextGroup(&key, &values)) {
          std::string folded = values[0];
          for (size_t i = 1; i < values.size(); ++i) {
            folded = spec_.accumulate(folded, values[i]);
          }
          const std::string* old = results->Get(key);
          results->Put(key, old == nullptr ? folded
                                           : spec_.accumulate(*old, folded));
          groups.fetch_add(1);
        }
        return results->Save();
      }

      // MRBGraph mode: group the delta, then merge against preserved chunks.
      std::vector<std::pair<std::string, std::vector<DeltaEdge>>> delta_groups;
      std::string_view key_view;
      std::vector<std::string_view> value_views;
      while (reader.value()->NextGroup(&key_view, &value_views)) {
        std::vector<DeltaEdge> edges;
        edges.reserve(value_views.size());
        for (const auto& enc : value_views) {
          DeltaEdge e;
          I2MR_RETURN_IF_ERROR(DecodeEdgeValue(enc, &e));
          e.k2.assign(key_view);
          edges.push_back(std::move(e));
        }
        delta_groups.emplace_back(std::string(key_view), std::move(edges));
      }

      auto store = MRBGStore::Open(JoinPath(PartitionDir(r), "mrbg"),
                                   spec_.store_options);
      if (!store.ok()) return store.status();
      std::vector<std::string> keys;
      keys.reserve(delta_groups.size());
      for (const auto& [k, _] : delta_groups) keys.push_back(k);
      I2MR_RETURN_IF_ERROR(store.value()->PrepareQueries(keys));

      auto reducer = spec_.reducer();
      {
        ScopedTimer t(&metrics->reduce_ns);
        for (const auto& [k2, edges] : delta_groups) {
          Chunk merged;
          {
            ScopedTimer mt(&merge_ns);
            I2MR_RETURN_IF_ERROR(store.value()->MergeGroup(k2, edges, &merged));
          }
          if (merged.empty()) {
            results->EraseInstance(k2);
          } else {
            std::vector<std::string> v2s;
            v2s.reserve(merged.entries.size());
            for (const auto& e : merged.entries) v2s.push_back(e.v2);
            VectorReduceContext ctx;
            reducer->Reduce(k2, v2s, &ctx);
            results->SetInstanceOutputs(k2, ctx.Take());
          }
          groups.fetch_add(1);
        }
      }
      I2MR_RETURN_IF_ERROR(store.value()->FinishBatch());
      io_reads.fetch_add(store.value()->stats().io_reads);
      bytes_read.fetch_add(store.value()->stats().bytes_read);
      I2MR_RETURN_IF_ERROR(store.value()->Close());
      return results->Save();
    }();
  });
  for (const auto& st : statuses) I2MR_RETURN_IF_ERROR(st);
  metrics->reduce_groups += groups.load();
  stats->reduce_instances = groups.load();
  stats->merge_ms = merge_ns.load() / 1e6;
  stats->store_io_reads = io_reads.load();
  stats->store_bytes_read = bytes_read.load();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Top-level runs
// ---------------------------------------------------------------------------

StatusOr<IncrRunStats> IncrementalOneStepJob::RunInitial(
    const std::vector<std::string>& input_parts) {
  IncrRunStats stats;
  stats.metrics = std::make_shared<StageMetrics>();
  WallTimer wall;
  map_instances_ = 0;
  cluster_->cost().ChargeJobStartup();
  std::string job_dir = cluster_->NewJobDir(spec_.name + "-init");
  std::unique_ptr<ShuffleExchange> exchange;
  if (EffectiveShuffleMode(spec_.shuffle_mode) == ShuffleMode::kInMemory) {
    exchange = std::make_unique<ShuffleExchange>(spec_.num_reduce_tasks,
                                                 spec_.shuffle_memory_bytes);
  }
  I2MR_RETURN_IF_ERROR(RunMapPhase(input_parts, /*delta=*/false, job_dir,
                                   exchange.get(), stats.metrics.get()));
  I2MR_RETURN_IF_ERROR(
      RunReducePhaseInitial(job_dir, static_cast<int>(input_parts.size()),
                            exchange.get(), stats.metrics.get(), &stats));
  I2MR_RETURN_IF_ERROR(RemoveAll(job_dir));
  stats.map_instances = map_instances_.load();
  stats.wall_ms = wall.ElapsedMillis();
  return stats;
}

StatusOr<IncrRunStats> IncrementalOneStepJob::RunIncremental(
    const std::vector<std::string>& delta_parts) {
  IncrRunStats stats;
  stats.metrics = std::make_shared<StageMetrics>();
  WallTimer wall;
  map_instances_ = 0;
  cluster_->cost().ChargeJobStartup();
  std::string job_dir = cluster_->NewJobDir(spec_.name + "-incr");
  std::unique_ptr<ShuffleExchange> exchange;
  if (EffectiveShuffleMode(spec_.shuffle_mode) == ShuffleMode::kInMemory) {
    exchange = std::make_unique<ShuffleExchange>(spec_.num_reduce_tasks,
                                                 spec_.shuffle_memory_bytes);
  }
  I2MR_RETURN_IF_ERROR(RunMapPhase(delta_parts, /*delta=*/true, job_dir,
                                   exchange.get(), stats.metrics.get()));
  I2MR_RETURN_IF_ERROR(RunReducePhaseIncremental(
      job_dir, static_cast<int>(delta_parts.size()), exchange.get(),
      stats.metrics.get(), &stats));
  I2MR_RETURN_IF_ERROR(RemoveAll(job_dir));
  stats.map_instances = map_instances_.load();
  stats.wall_ms = wall.ElapsedMillis();
  return stats;
}

StatusOr<std::vector<KV>> IncrementalOneStepJob::Results() const {
  std::vector<KV> all;
  for (int r = 0; r < spec_.num_reduce_tasks; ++r) {
    auto results = ResultStore::Open(JoinPath(PartitionDir(r), "results"));
    if (!results.ok()) return results.status();
    auto snap = results->Snapshot();
    all.insert(all.end(), snap.begin(), snap.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace i2mr
