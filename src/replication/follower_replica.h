// FollowerReplica: one read-only vertical slice of a shard, fed by a
// ReplicaShipper. It owns its own root directory laid out exactly like a
// shard root (`<root>/pipeline/<name>/{epoch-*, CURRENT, log/}`), so the
// data a shipper lands here is byte-for-byte what the primary's recovery
// path reads — promotion is just "open a Pipeline over this root".
//
// Epoch application follows the A/B-slot discipline:
//
//   1. StageEpoch copies the primary's epoch dir into the staging slot
//      (`epoch-<E>.ship/`) and fully verifies it there: MANIFEST CRC,
//      record-file CRC scans of every partition's structure/state (and
//      remote inbox), and a parse of the serving snapshot.
//   2. PromoteStaged re-checks the manifest, renames the slot to its final
//      `epoch-<E>/` name, atomically flips the follower's own CURRENT, and
//      publishes the new serving store.
//
// A crash or kill at any point leaves either the old epoch serving or the
// new one — never a torn view — and Open() recovers from CURRENT the same
// way a pipeline does. The follower never decides on its own to serve an
// epoch: PromoteStaged takes the (epoch, watermark) the shipper saw the
// primary durably commit, so an epoch that was only staged on the primary
// (barrier in flight, or a primary that died mid-commit) is never served.
//
// Reads go through PinServing(): the same refcounted EpochPin the serving
// layer uses, so ReplicaSet drops follower pins into a ShardSnapshot
// unchanged. Pins keep the in-memory store alive across Close() and even
// across promotion (the on-disk dir of a superseded epoch may be collected
// once the promoted pipeline commits past it; the pinned store is not).
#ifndef I2MR_REPLICATION_FOLLOWER_REPLICA_H_
#define I2MR_REPLICATION_FOLLOWER_REPLICA_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "core/result_store.h"
#include "io/file.h"
#include "pipeline/pipeline.h"

namespace i2mr {

struct FollowerReplicaOptions {
  /// kPowerFailure additionally fsyncs shipped files and the CURRENT flip.
  DurabilityMode durability = DurabilityMode::kProcessCrash;

  /// Expected per-shard partition count; staged epochs missing a partition
  /// dir fail verification (0 = don't check).
  int num_partitions = 0;

  /// Counter registry (Default() when null) and the replica's series
  /// prefix, e.g. "serving.pr.shard0.replica1". The family is registered
  /// through a scoped handle: RetireMetrics() (or destruction) unregisters
  /// it, so a promoted/destroyed replica leaves no stale series behind.
  MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix;
};

class FollowerReplica {
 public:
  FollowerReplica(std::string root, std::string pipeline_name,
                  FollowerReplicaOptions options);
  ~FollowerReplica() = default;
  FollowerReplica(const FollowerReplica&) = delete;
  FollowerReplica& operator=(const FollowerReplica&) = delete;

  /// Attach (or create) the replica root: recover the applied epoch from
  /// CURRENT (verifying it), discard any interrupted staging slot, and
  /// start accepting shipments. Also the restart path after Close().
  Status Open();

  /// Simulate replica death / take it out of service: stops serving and
  /// accepting shipments. Outstanding pins keep their stores.
  void Close();

  bool open() const;
  /// True when an applied epoch is being served.
  bool serving() const;

  // -- Shipper-side ingestion (one shipper thread at a time) -----------------

  /// Stage + verify the primary epoch dir `src_dir` into the A/B staging
  /// slot. Adds the bytes copied to *shipped_bytes (may be null). Skips
  /// (OK) when the epoch is already applied or already staged.
  Status StageEpoch(uint64_t epoch, uint64_t watermark,
                    const std::string& src_dir, uint64_t* shipped_bytes);

  /// Flip the staged epoch live: re-verify the slot's manifest against the
  /// (epoch, watermark) the primary durably committed, rename it to its
  /// final name, swing CURRENT, publish the serving store, GC superseded
  /// epoch dirs. FailedPrecondition when the slot doesn't match.
  Status PromoteStaged(uint64_t epoch, uint64_t watermark);

  /// Drop a staged-but-never-committed slot (barrier abort on the primary,
  /// or promotion deciding the slot is not trustworthy).
  Status DiscardStaged();

  /// Bind the replica to the primary's partition-map generation. A reshard
  /// bumps the primary's generation and re-partitions every key, so state
  /// replicated under an older generation is unusable: on a mismatch the
  /// follower discards its staged slot, wipes its applied epochs and
  /// shipped log segments, durably records the new generation (GEN file in
  /// the pipeline dir), and re-syncs from scratch on the following ship
  /// passes. Shippers call this at the top of every pass, before any
  /// segment install (seq-based dedup would otherwise skip re-shipped
  /// spans). No-op when the generation already matches.
  Status EnsureGeneration(uint64_t generation);
  uint64_t generation() const;

  /// Copy one sealed/archived segment file into the replica's log dir
  /// (idempotent: already-present same-size files are skipped). A segment's
  /// identity is its first sequence number, not its filename: installing
  /// one form (raw `seg-X.dat` vs compressed `seg-X.lzd`) removes the
  /// other, so recovery over the root never sees the same seq span twice.
  /// Adds the bytes copied to *shipped_bytes (may be null).
  Status InstallSegment(const std::string& src_path, uint64_t* shipped_bytes);

  /// Basenames of segment files currently held in the replica's log dir.
  std::set<std::string> SegmentBasenames() const;

  /// First sequence numbers of the held segment files — the dedup key a
  /// shipper must use (the primary re-encodes raw segments as compressed
  /// archives; both forms cover the same records).
  std::set<uint64_t> SegmentFirstSeqs() const;

  /// Compact retained history: durably advance the replica's PURGE mark to
  /// `watermark` and delete shipped segments that are fully below it (the
  /// records a promoted pipeline would drop at recovery anyway).
  Status PurgeShippedBelow(uint64_t watermark);

  // -- Read side -------------------------------------------------------------

  /// Pin the applied epoch for versioned reads (invalid pin when not
  /// serving). Unlike a Pipeline pin, only the in-memory store — not the
  /// on-disk dir — is guaranteed to survive a later promotion.
  EpochPin PinServing() const;

  /// Full verification of the applied epoch dir (promotion-time A/B
  /// check): manifest CRC + record-file scans + serving-store parse.
  Status VerifyCurrent() const;

  uint64_t applied_epoch() const;
  uint64_t applied_watermark() const;
  uint64_t staged_epoch() const;

  /// Publish the shipper-observed lag (primary committed epoch − applied
  /// epoch) into the replica's lag_epochs gauge.
  void SetLagEpochs(uint64_t lag);

  /// Unregister this replica's counter family (promotion/teardown — the
  /// fix for deregistered replicas leaking stale series).
  void RetireMetrics();

  Counter* reads_served() const { return reads_served_; }
  Counter* shipped_bytes() const { return shipped_bytes_; }
  Counter* applied_epochs() const { return applied_epochs_; }

  const std::string& root() const { return root_; }
  const std::string& name() const { return name_; }
  /// `<root>/pipeline/<name>` — the dir a promoted Pipeline opens.
  std::string PipelineDir() const;
  std::string LogDir() const;

 private:
  std::string EpochDir(uint64_t epoch) const;
  std::string StageDir(uint64_t epoch) const;
  /// Best-effort removal of an abandoned .ship slot (failure logged: a
  /// leftover slot only wastes disk until the next staging overwrites it).
  void DropSlot(const std::string& slot);
  std::string CurrentPath() const;
  std::string GenPath() const;
  /// Manifest + per-partition record files + serving snapshot.
  Status VerifyEpochDir(const std::string& dir, uint64_t expected_epoch,
                        uint64_t expected_watermark) const;
  /// Remove superseded, unpinned epoch dirs (caller holds mu_).
  void CollectOldEpochsLocked();
  void Unpin(uint64_t epoch) const;

  const std::string root_;
  const std::string name_;
  FollowerReplicaOptions options_;

  ScopedMetricPrefix metric_scope_;
  Counter* shipped_bytes_ = nullptr;
  Counter* applied_epochs_ = nullptr;
  Gauge* lag_epochs_ = nullptr;
  Counter* reads_served_ = nullptr;

  mutable std::mutex mu_;
  bool open_ = false;
  uint64_t open_gen_ = 0;  // bumped by Open(): invalidates in-flight stages
  uint64_t generation_ = 0;  // partition-map generation (GEN file)
  uint64_t applied_epoch_ = 0;
  uint64_t applied_watermark_ = 0;
  bool staged_valid_ = false;       // a verified slot is waiting
  uint64_t staged_epoch_ = 0;
  uint64_t staged_watermark_ = 0;
  uint64_t purge_mark_ = 0;
  std::shared_ptr<const ResultStore> store_;

  mutable std::mutex pin_mu_;
  mutable std::map<uint64_t, int> pins_;
};

}  // namespace i2mr

#endif  // I2MR_REPLICATION_FOLLOWER_REPLICA_H_
