#include "replication/replica_shipper.h"

#include <chrono>
#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "common/trace.h"
#include "io/env.h"
#include "pipeline/delta_log.h"

namespace i2mr {

ReplicaShipper::ReplicaShipper(Pipeline* primary,
                               std::vector<FollowerReplica*> followers,
                               ReplicaShipperOptions options)
    : primary_(primary),
      followers_(std::move(followers)),
      options_(options),
      enabled_(followers_.size(), true) {}

ReplicaShipper::~ReplicaShipper() { Stop(); }

void ReplicaShipper::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    stop_ = false;
    dirty_ = true;  // ship whatever already exists
  }
  Pipeline::EpochListener listener;
  listener.on_staged = [this](uint64_t epoch, const std::string& dir) {
    std::lock_guard<std::mutex> lock(mu_);
    staged_hint_epoch_ = epoch;
    staged_hint_dir_ = dir;
    dirty_ = true;
    cv_.notify_all();
  };
  listener.on_committed = [this](uint64_t, const std::string&, uint64_t) {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ = true;
    cv_.notify_all();
  };
  primary_->SetEpochListener(std::move(listener));
  primary_->log()->SetSealListener([this](const std::string&, uint64_t) {
    std::lock_guard<std::mutex> lock(mu_);
    dirty_ = true;
    cv_.notify_all();
  });
  thread_ = std::thread([this] { ThreadMain(); });
}

void ReplicaShipper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  // Detach first: both setters block until an in-flight notification
  // drains, so after they return no callback can touch this object.
  primary_->SetEpochListener({});
  primary_->log()->SetSealListener(nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void ReplicaShipper::ThreadMain() {
  trace::TraceCollector::SetThreadName("replica-shipper");
  HealthRegistry* health = options_.health != nullptr
                               ? options_.health
                               : HealthRegistry::Default();
  const bool report = !options_.health_component.empty();
  // Jitter decorrelates the per-shard shippers of a ReplicaSet: without
  // it they all fail on the same sick disk and all retry on the same
  // beat. Seeded off `this` — determinism across runs doesn't matter
  // here, only spread across instances.
  Rng jitter(0x5eed0000ULL ^ reinterpret_cast<uintptr_t>(this));
  int failures = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (failures == 0) {
        cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                     [this] { return stop_ || dirty_; });
      } else {
        // Failure backoff: poll_ms, 2*poll_ms, ... capped, +-25% jitter.
        // Dirty notifications are deliberately ignored (every commit/seal
        // on the primary raises one; honoring them would retry the sick
        // follower at commit rate) — only stop_ cuts the wait short.
        int64_t base = std::min<int64_t>(
            options_.max_backoff_ms,
            static_cast<int64_t>(options_.poll_ms)
                << std::min(failures - 1, 16));
        int64_t wait_ms =
            base - base / 4 + static_cast<int64_t>(jitter.Uniform(
                                  static_cast<uint64_t>(base / 2 + 1)));
        cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                     [this] { return stop_; });
      }
      if (stop_) return;
      dirty_ = false;
    }
    Status st = ShipPass();
    if (!st.ok()) {
      ++failures;
      LOG_WARN << "replica shipper pass failed (attempt " << failures
               << ", will retry with backoff): " << st.ToString();
      if (report) {
        health->Report(options_.health_component, HealthState::kDegraded,
                       st.ToString());
      }
    } else {
      if (failures > 0 && report) {
        health->Report(options_.health_component, HealthState::kHealthy);
      }
      failures = 0;
    }
  }
}

Status ReplicaShipper::SyncNow() {
  return ShipPass();
}

Status ReplicaShipper::ShipPass() {
  std::lock_guard<std::mutex> pass_lock(pass_mu_);
  // Pinning the committed epoch keeps its dir on disk for the whole pass,
  // so staging can never race the primary's post-commit GC.
  EpochPin pin = primary_->PinServing();
  if (!pin.valid()) return Status::OK();  // not bootstrapped yet

  std::vector<std::string> segments = primary_->log()->SealedSegmentPaths();
  auto archived = ListFiles(JoinPath(primary_->log()->dir(), "archive"));
  if (archived.ok()) {
    for (const auto& path : *archived) {
      if (IsDeltaLogSegmentFile(path)) segments.push_back(path);
    }
  }

  Status first_error = Status::OK();
  const uint64_t generation = primary_->generation();
  for (size_t i = 0; i < followers_.size(); ++i) {
    if (!follower_enabled(i)) continue;
    FollowerReplica* f = followers_[i];
    if (!f->open()) continue;
    // Generation binding comes FIRST: after a reshard bumped the primary's
    // partition-map generation, the follower wipes its old-generation
    // state here — before any segment install, whose first-seq dedup
    // would otherwise skip re-shipped spans as "already held".
    Status st = f->EnsureGeneration(generation);
    if (st.ok()) st = ShipToFollower(f, pin, segments);
    if (!st.ok() && first_error.ok()) first_error = st;
    uint64_t committed = primary_->committed_epoch();
    uint64_t applied = f->applied_epoch();
    f->SetLagEpochs(committed > applied ? committed - applied : 0);
  }
  return first_error;
}

Status ReplicaShipper::ShipToFollower(FollowerReplica* f, const EpochPin& pin,
                                      const std::vector<std::string>& segments) {
  TRACE_SPAN("replica.ship", "epoch=%llu follower=%s",
             static_cast<unsigned long long>(pin.epoch()), f->root().c_str());
  // 1. Log shipping: land every sealed/archived segment the follower
  // doesn't hold. A segment can be retired (renamed into archive/, or
  // re-encoded as .lzd) between listing and copy — that install fails,
  // and the next pass ships its archived form instead. Dedup is by first
  // sequence number, not filename: the primary re-encodes a raw sealed
  // `seg-X.dat` as `archive/seg-X.lzd` once it's consumed, and a follower
  // that kept the earlier raw copy already holds those records — shipping
  // the compressed twin too would make a later promotion's recovery scan
  // see the same seq span twice and fail as a sequence regression.
  std::set<uint64_t> have = f->SegmentFirstSeqs();
  for (const auto& seg : segments) {
    if (have.count(DeltaLogSegmentFirstSeq(seg)) > 0) continue;
    if (!FileExists(seg)) continue;
    Status st = f->InstallSegment(seg, nullptr);
    if (st.ok()) {
      have.insert(DeltaLogSegmentFirstSeq(seg));
    } else {
      LOG_WARN << "segment ship " << seg << " -> " << f->root()
               << " failed (will retry): " << st.ToString();
    }
  }

  // 2. Epoch shipping: only the primary's durably committed epoch is ever
  // promoted at the follower.
  if (!f->serving() || pin.epoch() > f->applied_epoch()) {
    I2MR_RETURN_IF_ERROR(
        f->StageEpoch(pin.epoch(), pin.watermark(), pin.dir(), nullptr));
    I2MR_RETURN_IF_ERROR(f->PromoteStaged(pin.epoch(), pin.watermark()));
  }

  // 3. Trim shipped history the follower's applied epoch has consumed.
  I2MR_RETURN_IF_ERROR(f->PurgeShippedBelow(f->applied_watermark()));

  // 4. Pre-stage a newer staged-but-uncommitted epoch so the eventual
  // commit is promoted with a rename instead of a copy. Best-effort: a
  // barrier abort removes the staged dir, and the stale slot is simply
  // discarded by the next real promotion.
  uint64_t hint_epoch = 0;
  std::string hint_dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hint_epoch = staged_hint_epoch_;
    hint_dir = staged_hint_dir_;
  }
  if (hint_epoch > pin.epoch() && FileExists(hint_dir)) {
    uint64_t e = 0, w = 0;
    if (Pipeline::ReadEpochManifest(hint_dir, &e, &w).ok() && e == hint_epoch) {
      if (Status st = f->StageEpoch(e, w, hint_dir, nullptr); !st.ok()) {
        LOG_DEBUG << "pre-stage hint for epoch " << e
                  << " not taken: " << st.ToString();
      }
    }
  }
  return Status::OK();
}

void ReplicaShipper::SetFollowerEnabled(size_t i, bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_[i] = enabled;
  dirty_ = true;
  cv_.notify_all();
}

bool ReplicaShipper::follower_enabled(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_[i];
}

uint64_t ReplicaShipper::lag_epochs(size_t i) const {
  uint64_t committed = primary_->committed_epoch();
  uint64_t applied = followers_[i]->applied_epoch();
  return committed > applied ? committed - applied : 0;
}

bool ReplicaShipper::IsStale(size_t i) const {
  if (!follower_enabled(i)) return true;
  FollowerReplica* f = followers_[i];
  if (!f->open() || !f->serving()) return true;
  return lag_epochs(i) > options_.max_replica_lag_epochs;
}

bool ReplicaShipper::IsCaughtUp(size_t i) const {
  return !IsStale(i) && lag_epochs(i) == 0;
}

}  // namespace i2mr
