// ReplicaShipper: tails one primary pipeline's delta log and epoch commits
// and ships them to that shard's follower replicas.
//
// The shipper is event-driven with a poll fallback: it registers the
// pipeline's EpochListener (staged dirs may be pre-staged at followers;
// committed epochs may be served) and the delta log's seal listener (a
// rotated segment is immutable and shippable), and each notification wakes
// the ship thread for a pass. A pass, per enabled follower:
//
//   1. installs sealed/archived segments the follower doesn't hold yet
//      (compressed `.lzd` archives ship as-is — the follower's recovery
//      scan reads them transparently),
//   2. stages + promotes the primary's committed epoch when the follower
//      is behind (never past the committed epoch: a staged-only epoch is
//      at most pre-staged, so a follower cannot serve data the primary
//      hasn't durably committed),
//   3. advances the follower's purge mark to its own applied watermark,
//      trimming segments a promotion would not need, and
//   4. publishes the follower's lag gauge.
//
// Passes are idempotent: every step re-derives what is missing from disk
// state, so a crashed/raced pass is healed by the next one. Staleness
// (lag > max_replica_lag_epochs, or disabled/closed) is the routing
// signal ReplicaSet uses to skip a follower.
#ifndef I2MR_REPLICATION_REPLICA_SHIPPER_H_
#define I2MR_REPLICATION_REPLICA_SHIPPER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/health.h"
#include "common/status.h"
#include "pipeline/pipeline.h"
#include "replication/follower_replica.h"

namespace i2mr {

struct ReplicaShipperOptions {
  /// Poll fallback interval; commit/seal notifications wake the thread
  /// sooner.
  int poll_ms = 20;

  /// A follower whose applied epoch trails the primary's committed epoch
  /// by more than this reports stale and is skipped by routing until it
  /// catches up.
  uint64_t max_replica_lag_epochs = 4;

  /// Cap on the ship thread's failure backoff. Consecutive failed passes
  /// back off exponentially (poll_ms, 2*poll_ms, ... max_backoff_ms) with
  /// jitter, ignoring dirty notifications meanwhile — a follower on a
  /// sick disk must not be retried at commit rate. Any successful pass
  /// resets the backoff.
  int max_backoff_ms = 1000;

  /// When health_component is non-empty the shipper reports it into
  /// `health` (Default() when null): kDegraded while passes are failing,
  /// kHealthy once a pass fully succeeds again. ReplicaSet wires
  /// "replication.<name>.shard<i>" here.
  HealthRegistry* health = nullptr;
  std::string health_component;
};

class ReplicaShipper {
 public:
  /// Ships from `primary` to `followers` (borrowed; must outlive the
  /// shipper or its Stop()). Followers must be Open().
  ReplicaShipper(Pipeline* primary, std::vector<FollowerReplica*> followers,
                 ReplicaShipperOptions options = {});
  ~ReplicaShipper();
  ReplicaShipper(const ReplicaShipper&) = delete;
  ReplicaShipper& operator=(const ReplicaShipper&) = delete;

  /// Register the pipeline/log listeners and start the ship thread.
  void Start();
  /// Detach the listeners (waiting out in-flight notifications) and join
  /// the thread. Safe to call twice; called by the destructor.
  void Stop();

  /// Run one ship pass inline and return its status (tests and promotion
  /// use this to reach a known-shipped state without sleeping).
  Status SyncNow();

  /// Enable/disable shipping to follower `i` (a disabled follower is
  /// stale by definition). Used to simulate a dead replica.
  void SetFollowerEnabled(size_t i, bool enabled);
  bool follower_enabled(size_t i) const;

  /// Lag in epochs of follower `i` behind the primary's committed epoch.
  uint64_t lag_epochs(size_t i) const;
  /// Disabled, closed, not yet serving, or lagging beyond the max.
  bool IsStale(size_t i) const;
  /// Serving the primary's exact committed epoch.
  bool IsCaughtUp(size_t i) const;

  size_t num_followers() const { return followers_.size(); }
  FollowerReplica* follower(size_t i) const { return followers_[i]; }
  Pipeline* primary() const { return primary_; }

 private:
  void ThreadMain();
  /// One full pass over all enabled followers. Serialized by pass_mu_
  /// (ship thread vs SyncNow); takes no other shipper lock while calling
  /// into the pipeline/log/followers.
  Status ShipPass();
  Status ShipToFollower(FollowerReplica* f, const EpochPin& pin,
                        const std::vector<std::string>& segments);

  Pipeline* const primary_;
  const std::vector<FollowerReplica*> followers_;
  const ReplicaShipperOptions options_;

  /// Wakeup + enable flags (leaf lock: never held across ship work).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool dirty_ = false;
  bool stop_ = false;
  bool started_ = false;
  std::vector<bool> enabled_;
  /// Freshest staged-but-uncommitted epoch observed (0 = none): passes
  /// pre-stage it at followers so the commit-time promote is a rename.
  uint64_t staged_hint_epoch_ = 0;
  std::string staged_hint_dir_;

  /// Serializes passes.
  std::mutex pass_mu_;
  std::thread thread_;
};

}  // namespace i2mr

#endif  // I2MR_REPLICATION_REPLICA_SHIPPER_H_
