#include "replication/replica_set.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "io/env.h"

namespace i2mr {

ReplicaSet::ReplicaSet(ShardRouter* router, std::string replicas_root,
                       ReplicaSetOptions options)
    : router_(router),
      replicas_root_(std::move(replicas_root)),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : router->metrics()),
      scatter_pool_(options.scatter_threads > 0
                        ? options.scatter_threads
                        : std::min(router->num_shards(), 8)) {}

ReplicaSet::~ReplicaSet() {
  for (auto& st : shards_) {
    if (st->shipper != nullptr) st->shipper->Stop();
    if (st->promoted_manager != nullptr) st->promoted_manager->Stop();
  }
}

std::string ReplicaSet::MetricsPrefix(int shard) const {
  return bound_map_.ShardMetricsPrefix(router_->name(), shard);
}

StatusOr<std::unique_ptr<ReplicaSet>> ReplicaSet::Open(
    ShardRouter* router, const std::string& replicas_root,
    ReplicaSetOptions options) {
  if (options.replicas_per_shard < 0) {
    return Status::InvalidArgument("replicas_per_shard must be >= 0");
  }
  std::unique_ptr<ReplicaSet> set(
      new ReplicaSet(router, replicas_root, options));
  set->bound_map_ = router->partition_map();
  I2MR_RETURN_IF_ERROR(set->BindShards());
  set->snapshots_pinned_ = set->metrics_->Get(
      "serving." + router->name() + ".replicaset.snapshots_pinned");
  set->failovers_ = set->metrics_->Get("serving." + router->name() +
                                       ".replicaset.failovers");
  return set;
}

Status ReplicaSet::BindShards() {
  const PartitionMap& map = bound_map_;
  for (int s = 0; s < map.num_shards; ++s) {
    auto st = std::make_unique<ShardState>();
    st->primary = router_->shard(s);
    st->slots.push_back(std::make_unique<Slot>());
    st->slots[0]->reads =
        metrics_->Get(MetricsPrefix(s) + ".primary.reads_served");
    for (int i = 0; i < options_.replicas_per_shard; ++i) {
      std::string root =
          JoinPath(JoinPath(replicas_root_, map.ShardDirName(s)),
                   "replica-" + std::to_string(i));
      if (options_.reset) I2MR_RETURN_IF_ERROR(RemoveAll(root));
      FollowerReplicaOptions fo;
      fo.durability = options_.durability;
      fo.num_partitions = router_->options().pipeline.spec.num_partitions;
      fo.metrics = metrics_;
      fo.metrics_prefix = MetricsPrefix(s) + ".replica" + std::to_string(i);
      auto f = std::make_unique<FollowerReplica>(root, router_->name(),
                                                 std::move(fo));
      I2MR_RETURN_IF_ERROR(f->Open());
      auto slot = std::make_unique<Slot>();
      slot->reads = f->reads_served();
      st->slots.push_back(std::move(slot));
      st->followers.push_back(std::move(f));
      st->enabled.push_back(true);
      st->shipper_idx.push_back(i);
    }
    StartShipper(*st, s);
    shards_.push_back(std::move(st));
  }
  return Status::OK();
}

Status ReplicaSet::CheckGenerationLocked() const {
  uint64_t live = router_->generation();
  if (live == bound_map_.generation) return Status::OK();
  return Status::FailedPrecondition(
      "replica set is bound to partition-map generation " +
      std::to_string(bound_map_.generation) + " but the router is at " +
      std::to_string(live) + "; call Rebind()");
}

uint64_t ReplicaSet::bound_generation() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return bound_map_.generation;
}

Status ReplicaSet::Rebind() {
  PartitionMap map = router_->partition_map();
  std::vector<std::unique_ptr<ShardState>> old;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (map.generation == bound_map_.generation) return Status::OK();
    for (const auto& st : shards_) {
      if (st->transitioning) {
        return Status::FailedPrecondition(
            "a failover is in flight; retry Rebind() after it settles");
      }
    }
    old = std::move(shards_);
    shards_.clear();
  }
  // Stops join threads — outside route_mu_. The old states are retired,
  // not destroyed: snapshot pins taken before the cutover hold unpin
  // callbacks into their FollowerReplica instances.
  for (auto& st : old) {
    if (st->shipper != nullptr) st->shipper->Stop();
    if (st->promoted_manager != nullptr) st->promoted_manager->Stop();
    for (auto& f : st->followers) f->RetireMetrics();
  }
  // One critical section for the map swap AND the rebuild: a reader must
  // never observe the new map with an empty/partial shard list. Follower
  // Open() is disk recovery — rebind is a rare admin step, blocking reads
  // for its duration is fine.
  std::lock_guard<std::mutex> lock(route_mu_);
  for (auto& st : old) retired_.push_back(std::move(st));
  bound_map_ = map;
  return BindShards();
}

void ReplicaSet::StartShipper(ShardState& st, int shard) {
  std::vector<FollowerReplica*> targets;
  std::vector<size_t> indices;  // follower index per shipper target
  for (size_t i = 0; i < st.followers.size(); ++i) {
    st.shipper_idx[i] = -1;
    if (static_cast<int>(i) == st.promoted_replica) continue;
    st.shipper_idx[i] = static_cast<int>(targets.size());
    targets.push_back(st.followers[i].get());
    indices.push_back(i);
  }
  ReplicaShipperOptions so;
  so.poll_ms = options_.ship_poll_ms;
  so.max_replica_lag_epochs = options_.max_replica_lag_epochs;
  // Per-shard health: "replication.<name>.shard<i>" goes kDegraded while
  // this shard's ship passes fail (backoff in effect), kHealthy again on
  // the first full success.
  so.health_component =
      "replication." + router_->name() + ".shard" + std::to_string(shard);
  st.shipper =
      std::make_unique<ReplicaShipper>(st.primary, std::move(targets), so);
  for (size_t t = 0; t < indices.size(); ++t) {
    st.shipper->SetFollowerEnabled(t, st.enabled[indices[t]]);
  }
  st.shipper->Start();
}

uint64_t ReplicaSet::PrimaryEpoch(const ShardState& st) const {
  return st.primary->committed_epoch();
}

bool ReplicaSet::StaleLocked(const ShardState& st, int i) const {
  if (!st.enabled[i]) return true;
  const FollowerReplica* f = st.followers[i].get();
  if (!f->open() || !f->serving()) return true;
  uint64_t committed = PrimaryEpoch(st);
  uint64_t applied = f->applied_epoch();
  uint64_t lag = committed > applied ? committed - applied : 0;
  return lag > options_.max_replica_lag_epochs;
}

int ReplicaSet::SelectSlotLocked(ShardState& st) const {
  std::vector<int> eligible;
  if (!st.dead && options_.read_from_primary) eligible.push_back(0);
  for (size_t i = 0; i < st.followers.size(); ++i) {
    if (!StaleLocked(st, static_cast<int>(i))) {
      eligible.push_back(1 + static_cast<int>(i));
    }
  }
  if (!eligible.empty()) {
    return eligible[st.rr.fetch_add(1) % eligible.size()];
  }
  // Degraded fallbacks: a live primary even when excluded from rotation,
  // else the freshest follower that can still serve at all.
  if (!st.dead) return 0;
  int best = -1;
  uint64_t best_epoch = 0;
  for (size_t i = 0; i < st.followers.size(); ++i) {
    const FollowerReplica* f = st.followers[i].get();
    if (!st.enabled[i] || !f->open() || !f->serving()) continue;
    if (best < 0 || f->applied_epoch() > best_epoch) {
      best = static_cast<int>(i);
      best_epoch = f->applied_epoch();
    }
  }
  return best < 0 ? -1 : 1 + best;
}

void ReplicaSet::ChargeService(Slot* slot) const {
  if (options_.read_service_ms <= 0) return;
  // One request at a time per backend: queueing delay emerges from the
  // mutex, so adding replicas adds real parallel service capacity.
  std::lock_guard<std::mutex> lock(slot->service_mu);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(options_.read_service_ms));
}

StatusOr<ShardSnapshot> ReplicaSet::PinSnapshot() const {
  ShardSnapshot snap;
  snap.router_ = router_;
  snap.pool_ = &scatter_pool_;
  std::lock_guard<std::mutex> lock(route_mu_);
  I2MR_RETURN_IF_ERROR(CheckGenerationLocked());
  snap.map_ = std::make_shared<const PartitionMap>(bound_map_);
  for (int s = 0; s < num_shards(); ++s) {
    ShardState& st = *shards_[s];
    int idx = SelectSlotLocked(st);
    EpochPin pin;
    if (idx == 0) {
      pin = st.primary->PinServing();
    } else if (idx > 0) {
      pin = st.followers[idx - 1]->PinServing();
    }
    if (!pin.valid()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) + " has no serving backend");
    }
    snap.shard_reads_.push_back(st.slots[idx]->reads);
    snap.epochs_.push_back(pin.epoch());
    snap.pins_.push_back(std::move(pin));
  }
  snapshots_pinned_->Increment();
  return snap;
}

StatusOr<std::string> ReplicaSet::Get(const std::string& key) const {
  EpochPin pin;
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    I2MR_RETURN_IF_ERROR(CheckGenerationLocked());
    int s = bound_map_.ShardOf(key);
    ShardState& st = *shards_[s];
    int idx = SelectSlotLocked(st);
    if (idx == 0) {
      pin = st.primary->PinServing();
    } else if (idx > 0) {
      pin = st.followers[idx - 1]->PinServing();
    }
    if (!pin.valid()) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) + " has no serving backend");
    }
    slot = st.slots[idx].get();
  }
  ChargeService(slot);
  slot->reads->Increment();
  return pin.Lookup(key);
}

StatusOr<uint64_t> ReplicaSet::Append(const DeltaKV& delta) {
  Pipeline* primary = nullptr;
  int s = 0;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    I2MR_RETURN_IF_ERROR(CheckGenerationLocked());
    s = bound_map_.ShardOf(delta.key);
    ShardState& st = *shards_[s];
    if (st.dead) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(s) +
          " primary is dead; promote a replica first");
    }
    primary = st.primary;
  }
  return primary->Append(delta);
}

Status ReplicaSet::AppendBatch(const std::vector<DeltaKV>& deltas) {
  for (const DeltaKV& d : deltas) {
    auto seq = Append(d);
    if (!seq.ok()) return seq.status();
  }
  return Status::OK();
}

Status ReplicaSet::DrainAll() {
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    I2MR_RETURN_IF_ERROR(CheckGenerationLocked());
  }
  for (int s = 0; s < num_shards(); ++s) {
    PipelineManager* manager = nullptr;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      ShardState& st = *shards_[s];
      if (st.dead) continue;
      manager = st.promoted_manager != nullptr ? st.promoted_manager.get()
                                               : router_->manager(s);
    }
    I2MR_RETURN_IF_ERROR(manager->DrainAll());
  }
  return Status::OK();
}

Status ReplicaSet::SyncAll() {
  Status first_error = Status::OK();
  for (int s = 0; s < num_shards(); ++s) {
    ReplicaShipper* shipper = nullptr;
    {
      std::lock_guard<std::mutex> lock(route_mu_);
      ShardState& st = *shards_[s];
      if (st.dead) continue;
      shipper = st.shipper.get();
    }
    Status st = shipper->SyncNow();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

Status ReplicaSet::KillReplica(int shard, int i) {
  FollowerReplica* f = nullptr;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    ShardState& st = *shards_[shard];
    st.enabled[i] = false;
    // Toggle while still holding route_mu_: Promote's StartShipper swaps
    // st.shipper, so a pointer captured here can dangle once the lock
    // drops. SetFollowerEnabled only flips a flag — no joins under lock.
    if (st.shipper != nullptr && st.shipper_idx[i] >= 0) {
      st.shipper->SetFollowerEnabled(st.shipper_idx[i], false);
    }
    f = st.followers[i].get();
  }
  f->Close();
  return Status::OK();
}

Status ReplicaSet::RestartReplica(int shard, int i) {
  FollowerReplica* f = nullptr;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    ShardState& st = *shards_[shard];
    if (static_cast<int>(i) == st.promoted_replica) {
      return Status::FailedPrecondition("replica was promoted to primary");
    }
    f = st.followers[i].get();
  }
  I2MR_RETURN_IF_ERROR(f->Open());  // disk recovery: not under route_mu_
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    ShardState& st = *shards_[shard];
    st.enabled[i] = true;
    // Re-read st.shipper under the lock: a concurrent Promote may have
    // replaced it (and the follower's index within it) since f->Open().
    if (st.shipper != nullptr && st.shipper_idx[i] >= 0) {
      st.shipper->SetFollowerEnabled(st.shipper_idx[i], true);
    }
  }
  return Status::OK();
}

Status ReplicaSet::KillPrimary(int shard) {
  if (router_->coordinated()) {
    return Status::FailedPrecondition(
        "per-shard failover requires an independent (non-coordinated) "
        "router");
  }
  ReplicaShipper* shipper = nullptr;
  PipelineManager* manager = nullptr;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    ShardState& st = *shards_[shard];
    if (st.dead) return Status::OK();
    if (st.transitioning) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) + " failover is in progress");
    }
    st.transitioning = true;
    st.dead = true;
    shipper = st.shipper.get();
    manager = st.promoted_manager != nullptr ? st.promoted_manager.get()
                                             : router_->manager(shard);
  }
  // Outside route_mu_: both stops join threads / wait out in-flight work.
  // The captured pointers stay valid: Promote (the only code that replaces
  // them) refuses to start while `transitioning` is held.
  shipper->Stop();
  manager->Stop();
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    shards_[shard]->transitioning = false;
  }
  return Status::OK();
}

bool ReplicaSet::primary_dead(int shard) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return shards_[shard]->dead;
}

Pipeline* ReplicaSet::primary(int shard) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return shards_[shard]->primary;
}

StatusOr<int> ReplicaSet::Promote(int shard) {
  ShardState& st = *shards_[shard];
  int best = -1;
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    if (!st.dead) {
      return Status::FailedPrecondition("shard primary is alive");
    }
    if (st.transitioning) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(shard) +
          " promotion is already in progress");
    }
    uint64_t best_epoch = 0;
    for (size_t i = 0; i < st.followers.size(); ++i) {
      const FollowerReplica* f = st.followers[i].get();
      if (!st.enabled[i] || !f->open() || !f->serving()) continue;
      if (best < 0 || f->applied_epoch() > best_epoch) {
        best = static_cast<int>(i);
        best_epoch = f->applied_epoch();
      }
    }
    if (best < 0) {
      return Status::FailedPrecondition(
          "no caught-up replica available to promote");
    }
    st.transitioning = true;
  }
  // Everything below runs unlocked (verification + recovery take seconds);
  // `transitioning` keeps a second Promote — or a racing KillPrimary —
  // from touching the same follower root or shipper until we finish. The
  // guard clears the flag on every exit path, success included: after the
  // cutover st.dead is false again, so a late second Promote fails the
  // liveness check instead.
  struct TransitionGuard {
    ReplicaSet* set;
    ShardState* st;
    ~TransitionGuard() {
      std::lock_guard<std::mutex> lock(set->route_mu_);
      st->transitioning = false;
    }
  } guard{this, &st};
  FollowerReplica* f = st.followers[best].get();

  // A/B promotion: drop any epoch the dead primary staged but never
  // committed, then re-verify the applied epoch end to end (manifest CRC,
  // record-file scans, serving-store parse) before trusting the root.
  I2MR_RETURN_IF_ERROR(f->DiscardStaged());
  I2MR_RETURN_IF_ERROR(f->VerifyCurrent());

  // Open the real pipeline over the follower's root. Its CURRENT names the
  // last epoch the primary durably committed; recovery restores the engine
  // from that snapshot and replays shipped log segments past its
  // watermark. The follower keeps serving reads until the cutover below.
  auto cluster = std::make_unique<LocalCluster>(
      f->root(), options_.promoted_workers, router_->options().cost,
      /*reset=*/false);
  PipelineManagerOptions mo = router_->options().manager;
  mo.metrics = metrics_;
  mo.metrics_prefix = MetricsPrefix(shard) + ".promoted";
  auto manager = std::make_unique<PipelineManager>(cluster.get(), mo);
  auto pipeline = manager->Register(router_->name(),
                                    router_->options().pipeline);
  if (!pipeline.ok()) return pipeline.status();
  if ((*pipeline)->committed_epoch() < f->applied_epoch()) {
    return Status::Corruption(
        "promoted pipeline recovered epoch " +
        std::to_string((*pipeline)->committed_epoch()) +
        " below the replica's applied epoch " +
        std::to_string(f->applied_epoch()));
  }
  manager->Start();

  // Cutover: the promoted pipeline becomes the shard's primary, the
  // follower leaves the read rotation (its pins keep their stores), and a
  // fresh shipper feeds the surviving followers from the new primary.
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    st.promoted_cluster = std::move(cluster);
    st.promoted_manager = std::move(manager);
    st.primary = *pipeline;
    st.promoted_replica = best;
    st.enabled[best] = false;
    st.dead = false;
  }
  f->Close();
  f->RetireMetrics();
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    StartShipper(st, shard);
  }
  failovers_->Increment();
  return best;
}

uint64_t ReplicaSet::ReplicaLag(int shard, int i) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  const ShardState& st = *shards_[shard];
  uint64_t committed = PrimaryEpoch(st);
  uint64_t applied = st.followers[i]->applied_epoch();
  return committed > applied ? committed - applied : 0;
}

bool ReplicaSet::IsReplicaStale(int shard, int i) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return StaleLocked(*shards_[shard], i);
}

}  // namespace i2mr
