#include "replication/follower_replica.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "common/logging.h"
#include "common/trace.h"
#include "io/env.h"
#include "io/record_file.h"
#include "pipeline/delta_log.h"

namespace i2mr {
namespace {

constexpr const char* kCurrentFile = "CURRENT";
constexpr const char* kShipSuffix = ".ship";

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Sorted subdirectories of `dir` (ListFiles covers regular files only).
StatusOr<std::vector<std::string>> ListSubdirs(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> out;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_directory(ec)) out.push_back(it->path().string());
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

/// Copy `src` into `dst` (created fresh), returning the bytes copied.
StatusOr<uint64_t> CopyTreeCounted(const std::string& src,
                                   const std::string& dst) {
  I2MR_RETURN_IF_ERROR(ResetDir(dst));
  uint64_t bytes = 0;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(src, ec), end;
  if (ec) return Status::IOError("iterate " + src + ": " + ec.message());
  for (; it != end; it.increment(ec)) {
    if (ec) return Status::IOError("iterate " + src + ": " + ec.message());
    std::filesystem::path rel =
        std::filesystem::relative(it->path(), src, ec);
    if (ec) return Status::IOError("relative " + src + ": " + ec.message());
    std::string to = JoinPath(dst, rel.string());
    if (it->is_directory()) {
      I2MR_RETURN_IF_ERROR(CreateDirs(to));
    } else if (it->is_regular_file()) {
      // A real byte copy, not a hard link: the replica must survive loss
      // of the primary's disk, so shipped files never share inodes with
      // the source (and "shipped bytes" means what it says).
      I2MR_RETURN_IF_ERROR(CopyFile(it->path().string(), to));
      auto sz = FileSize(to);
      if (!sz.ok()) return sz.status();
      bytes += *sz;
    }
  }
  return bytes;
}

}  // namespace

FollowerReplica::FollowerReplica(std::string root, std::string pipeline_name,
                                 FollowerReplicaOptions options)
    : root_(std::move(root)),
      name_(std::move(pipeline_name)),
      options_(std::move(options)) {
  if (options_.metrics == nullptr) options_.metrics = MetricsRegistry::Default();
  metric_scope_ = ScopedMetricPrefix(
      options_.metrics, options_.metrics_prefix.empty()
                            ? "replica." + name_
                            : options_.metrics_prefix);
  shipped_bytes_ = metric_scope_.Get("shipped_bytes");
  applied_epochs_ = metric_scope_.Get("applied_epochs");
  lag_epochs_ = metric_scope_.GetGauge("lag_epochs");
  reads_served_ = metric_scope_.Get("reads_served");
}

std::string FollowerReplica::PipelineDir() const {
  return JoinPath(root_, "pipeline/" + name_);
}

std::string FollowerReplica::LogDir() const {
  return JoinPath(PipelineDir(), "log");
}

std::string FollowerReplica::EpochDir(uint64_t epoch) const {
  return JoinPath(PipelineDir(), Pipeline::EpochDirName(epoch));
}

std::string FollowerReplica::StageDir(uint64_t epoch) const {
  return EpochDir(epoch) + kShipSuffix;
}

void FollowerReplica::DropSlot(const std::string& slot) {
  if (Status st = RemoveAll(slot); !st.ok()) {
    LOG_WARN << "replica " << PipelineDir()
             << ": abandoned stage slot not removed: " << st.ToString();
  }
}

std::string FollowerReplica::CurrentPath() const {
  return JoinPath(PipelineDir(), kCurrentFile);
}

std::string FollowerReplica::GenPath() const {
  return JoinPath(PipelineDir(), "GEN");
}

Status FollowerReplica::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  I2MR_RETURN_IF_ERROR(CreateDirs(PipelineDir()));
  I2MR_RETURN_IF_ERROR(CreateDirs(LogDir()));
  // An interrupted ship is never authoritative: the slot is re-staged from
  // the primary on the next pass.
  auto entries = ListSubdirs(PipelineDir());
  if (!entries.ok()) return entries.status();
  for (const auto& e : *entries) {
    std::string base = Basename(e);
    if (base.size() > 5 &&
        base.compare(base.size() - 5, 5, kShipSuffix) == 0) {
      I2MR_RETURN_IF_ERROR(RemoveAll(e));
    }
  }
  staged_valid_ = false;
  staged_epoch_ = 0;
  staged_watermark_ = 0;
  ++open_gen_;

  // Self-heal twin segment files (raw `seg-X.dat` alongside its compressed
  // `seg-X.lzd` re-encoding): both cover the same seq span, and a promoted
  // pipeline's recovery scan would reject the pair as a sequence
  // regression. Keep the compressed form — the primary's retained one.
  auto log_files = ListFiles(LogDir());
  if (!log_files.ok()) return log_files.status();
  std::set<uint64_t> compressed_seqs;
  for (const auto& e : *log_files) {
    if (IsDeltaLogSegmentFile(e) && IsCompressedDeltaLogSegmentFile(e)) {
      compressed_seqs.insert(DeltaLogSegmentFirstSeq(e));
    }
  }
  for (const auto& e : *log_files) {
    if (IsDeltaLogSegmentFile(e) && !IsCompressedDeltaLogSegmentFile(e) &&
        compressed_seqs.count(DeltaLogSegmentFirstSeq(e)) > 0) {
      I2MR_RETURN_IF_ERROR(RemoveAll(e));
    }
  }

  // Recover the generation binding (absent file = generation 0, the
  // pre-resharding layout).
  generation_ = 0;
  if (FileExists(GenPath())) {
    auto gen = ReadFileToString(GenPath());
    if (!gen.ok()) return gen.status();
    generation_ = std::strtoull(gen->c_str(), nullptr, 10);
  }

  if (FileExists(CurrentPath())) {
    auto current = ReadFileToString(CurrentPath());
    if (!current.ok()) return current.status();
    std::string dir = JoinPath(PipelineDir(), *current);
    uint64_t epoch = 0, watermark = 0;
    I2MR_RETURN_IF_ERROR(Pipeline::ReadEpochManifest(dir, &epoch, &watermark));
    I2MR_RETURN_IF_ERROR(VerifyEpochDir(dir, epoch, watermark));
    auto store = ResultStore::Open(JoinPath(dir, "serving.dat"));
    if (!store.ok()) return store.status();
    applied_epoch_ = epoch;
    applied_watermark_ = watermark;
    store_ = std::make_shared<const ResultStore>(std::move(store.value()));
  }
  open_ = true;
  return Status::OK();
}

void FollowerReplica::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  // store_ stays: outstanding pins share it, and a Reopen re-reads disk.
}

bool FollowerReplica::open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

bool FollowerReplica::serving() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_ && store_ != nullptr;
}

Status FollowerReplica::VerifyEpochDir(const std::string& dir,
                                       uint64_t expected_epoch,
                                       uint64_t expected_watermark) const {
  uint64_t epoch = 0, watermark = 0;
  I2MR_RETURN_IF_ERROR(Pipeline::ReadEpochManifest(dir, &epoch, &watermark));
  if (epoch != expected_epoch || watermark != expected_watermark) {
    return Status::FailedPrecondition(
        "epoch dir " + dir + " manifest mismatch: holds (" +
        std::to_string(epoch) + ", " + std::to_string(watermark) +
        "), expected (" + std::to_string(expected_epoch) + ", " +
        std::to_string(expected_watermark) + ")");
  }
  // Same checks the primary's own crash recovery runs before restoring a
  // snapshot: CRC-scan every partition's record files, parse the serving
  // store. (mrbg.dat is chunk-framed and validated lazily on first read,
  // exactly as on the primary.)
  int parts = 0;
  auto entries = ListSubdirs(dir);
  if (!entries.ok()) return entries.status();
  for (const auto& e : *entries) {
    if (Basename(e).rfind("part-", 0) != 0) continue;
    ++parts;
    auto structure_ok = ValidateRecordFile(JoinPath(e, "structure.dat"));
    if (!structure_ok.ok()) return structure_ok.status();
    auto state_ok = ValidateRecordFile(JoinPath(e, "state.dat"));
    if (!state_ok.ok()) return state_ok.status();
    if (FileExists(JoinPath(e, "remote.dat"))) {
      auto remote_ok = ValidateRecordFile(JoinPath(e, "remote.dat"));
      if (!remote_ok.ok()) return remote_ok.status();
    }
  }
  if (options_.num_partitions > 0 && parts != options_.num_partitions) {
    return Status::Corruption(
        "epoch dir " + dir + " has " + std::to_string(parts) +
        " partitions, expected " + std::to_string(options_.num_partitions));
  }
  auto store = ResultStore::Open(JoinPath(dir, "serving.dat"));
  if (!store.ok()) return store.status();
  return Status::OK();
}

Status FollowerReplica::StageEpoch(uint64_t epoch, uint64_t watermark,
                                   const std::string& src_dir,
                                   uint64_t* shipped_bytes) {
  TRACE_SPAN("replica.verify", "epoch=%llu",
             static_cast<unsigned long long>(epoch));
  // The tree copy + CRC scans below take seconds for a large epoch, and
  // PinServing (called by the routing layer under its own lock) waits on
  // mu_ — so the heavy work runs unlocked. Staging itself needs no mutual
  // exclusion: shipper-side calls are serialized by the shipper's pass
  // lock; mu_ only guards the bookkeeping reads and the final publish.
  uint64_t gen = 0;
  std::string stale_slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_) return Status::FailedPrecondition("replica closed");
    if (store_ != nullptr && epoch <= applied_epoch_) return Status::OK();
    if (staged_valid_ && staged_epoch_ == epoch &&
        staged_watermark_ == watermark) {
      return Status::OK();  // already staged and verified
    }
    if (staged_valid_) {
      stale_slot = StageDir(staged_epoch_);
      staged_valid_ = false;
      staged_epoch_ = 0;
      staged_watermark_ = 0;
    }
    gen = open_gen_;
  }
  // Drop a stale slot for a different (epoch, watermark).
  if (!stale_slot.empty()) I2MR_RETURN_IF_ERROR(RemoveAll(stale_slot));

  std::string slot = StageDir(epoch);
  auto bytes = CopyTreeCounted(src_dir, slot);
  if (!bytes.ok()) {
    DropSlot(slot);
    return bytes.status();
  }
  Status verified = VerifyEpochDir(slot, epoch, watermark);
  if (!verified.ok()) {
    DropSlot(slot);
    return verified;
  }
  if (options_.durability == DurabilityMode::kPowerFailure) {
    Status synced = SyncDir(PipelineDir());
    if (!synced.ok()) {
      DropSlot(slot);
      return synced;
    }
  }
  bool published = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A Close()/Open() cycle while the copy ran already wiped in-flight
    // .ship slots; don't resurrect bookkeeping for a dir Open() deleted.
    if (open_ && open_gen_ == gen) {
      staged_valid_ = true;
      staged_epoch_ = epoch;
      staged_watermark_ = watermark;
      published = true;
    }
  }
  if (!published) {
    DropSlot(slot);
    return Status::FailedPrecondition("replica closed during staging");
  }
  shipped_bytes_->Add(static_cast<int64_t>(*bytes));
  if (shipped_bytes != nullptr) *shipped_bytes += *bytes;
  return Status::OK();
}

Status FollowerReplica::PromoteStaged(uint64_t epoch, uint64_t watermark) {
  TRACE_SPAN("replica.apply", "epoch=%llu",
             static_cast<unsigned long long>(epoch));
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("replica closed");
  if (store_ != nullptr && epoch <= applied_epoch_) return Status::OK();
  if (!staged_valid_ || staged_epoch_ != epoch ||
      staged_watermark_ != watermark) {
    return Status::FailedPrecondition(
        "staged slot holds epoch " + std::to_string(staged_epoch_) +
        ", primary committed " + std::to_string(epoch));
  }
  const std::string slot = StageDir(epoch);
  const std::string final_dir = EpochDir(epoch);
  // A/B verify before the flip: the slot's manifest must still match what
  // the primary durably committed (defends against a barrier abort
  // recommitting the same epoch number with different contents).
  uint64_t got_epoch = 0, got_watermark = 0;
  I2MR_RETURN_IF_ERROR(
      Pipeline::ReadEpochManifest(slot, &got_epoch, &got_watermark));
  if (got_epoch != epoch || got_watermark != watermark) {
    return Status::FailedPrecondition("staged slot manifest mismatch");
  }
  if (FileExists(final_dir)) I2MR_RETURN_IF_ERROR(RemoveAll(final_dir));
  I2MR_RETURN_IF_ERROR(RenameFile(slot, final_dir));
  auto store = ResultStore::Open(JoinPath(final_dir, "serving.dat"));
  if (!store.ok()) return store.status();

  const bool sync = options_.durability == DurabilityMode::kPowerFailure;
  std::string current_tmp = CurrentPath() + ".tmp";
  I2MR_RETURN_IF_ERROR(WriteStringToFile(
      current_tmp, Pipeline::EpochDirName(epoch), sync));
  I2MR_RETURN_IF_ERROR(RenameFile(current_tmp, CurrentPath()));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(PipelineDir()));

  applied_epoch_ = epoch;
  applied_watermark_ = watermark;
  store_ = std::make_shared<const ResultStore>(std::move(store.value()));
  staged_valid_ = false;
  staged_epoch_ = 0;
  staged_watermark_ = 0;
  applied_epochs_->Increment();
  CollectOldEpochsLocked();
  return Status::OK();
}

Status FollowerReplica::DiscardStaged() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!staged_valid_) return Status::OK();
  Status st = RemoveAll(StageDir(staged_epoch_));
  staged_valid_ = false;
  staged_epoch_ = 0;
  staged_watermark_ = 0;
  return st;
}

Status FollowerReplica::EnsureGeneration(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("replica closed");
  if (generation_ == generation) return Status::OK();
  LOG_INFO << "replica " << PipelineDir() << ": primary moved from "
           << "generation " << generation_ << " to " << generation
           << "; discarding replicated state for re-sync";
  // Everything replicated under the old generation — applied epochs, the
  // staged slot, shipped log segments, CURRENT — was partitioned by a map
  // that no longer exists. Wipe the pipeline dir wholesale and restart
  // from nothing; the next ship passes re-seed segments and the epoch.
  // Pins taken before the bump keep their in-memory stores, as always.
  I2MR_RETURN_IF_ERROR(RemoveAll(PipelineDir()));
  I2MR_RETURN_IF_ERROR(CreateDirs(PipelineDir()));
  I2MR_RETURN_IF_ERROR(CreateDirs(LogDir()));
  staged_valid_ = false;
  staged_epoch_ = 0;
  staged_watermark_ = 0;
  applied_epoch_ = 0;
  applied_watermark_ = 0;
  purge_mark_ = 0;
  store_ = nullptr;
  ++open_gen_;  // invalidate any in-flight stage against the old layout
  const bool sync = options_.durability == DurabilityMode::kPowerFailure;
  std::string tmp = GenPath() + ".tmp";
  I2MR_RETURN_IF_ERROR(
      WriteStringToFile(tmp, std::to_string(generation), sync));
  I2MR_RETURN_IF_ERROR(RenameFile(tmp, GenPath()));
  if (sync) I2MR_RETURN_IF_ERROR(SyncDir(PipelineDir()));
  generation_ = generation;
  return Status::OK();
}

uint64_t FollowerReplica::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void FollowerReplica::CollectOldEpochsLocked() {
  auto entries = ListSubdirs(PipelineDir());
  if (!entries.ok()) return;
  for (const auto& e : *entries) {
    std::string base = Basename(e);
    if (base.rfind("epoch-", 0) != 0 || base.size() != 14) continue;
    uint64_t epoch = 0;
    if (std::sscanf(base.c_str(), "epoch-%08" PRIu64, &epoch) != 1) continue;
    if (epoch >= applied_epoch_) continue;
    {
      std::lock_guard<std::mutex> pin_lock(pin_mu_);
      if (pins_.count(epoch) > 0) continue;  // a reader still holds it
    }
    if (Status st = RemoveAll(e); !st.ok()) {
      LOG_WARN << "replica " << PipelineDir()
               << ": old epoch dir not reclaimed: " << st.ToString();
    }
  }
}

Status FollowerReplica::InstallSegment(const std::string& src_path,
                                       uint64_t* shipped_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_) return Status::FailedPrecondition("replica closed");
  }
  std::string dst = JoinPath(LogDir(), Basename(src_path));
  auto src_size = FileSize(src_path);
  if (!src_size.ok()) return src_size.status();
  if (FileExists(dst)) {
    auto dst_size = FileSize(dst);
    if (dst_size.ok() && *dst_size == *src_size) return Status::OK();
  }
  std::string tmp = dst + ".tmp";
  I2MR_RETURN_IF_ERROR(CopyFile(src_path, tmp));
  I2MR_RETURN_IF_ERROR(RenameFile(tmp, dst));
  // Drop any twin holding the same seq span under the other encoding (raw
  // .dat vs compressed .lzd): recovery over a promoted root scans every
  // segment file, and a duplicated span reads as a sequence regression.
  uint64_t first_seq = DeltaLogSegmentFirstSeq(dst);
  auto entries = ListFiles(LogDir());
  if (entries.ok()) {
    for (const auto& e : *entries) {
      if (Basename(e) == Basename(dst)) continue;
      if (IsDeltaLogSegmentFile(e) &&
          DeltaLogSegmentFirstSeq(e) == first_seq) {
        I2MR_RETURN_IF_ERROR(RemoveAll(e));
      }
    }
  }
  if (options_.durability == DurabilityMode::kPowerFailure) {
    I2MR_RETURN_IF_ERROR(SyncFile(dst));
    I2MR_RETURN_IF_ERROR(SyncDir(LogDir()));
  }
  shipped_bytes_->Add(static_cast<int64_t>(*src_size));
  if (shipped_bytes != nullptr) *shipped_bytes += *src_size;
  return Status::OK();
}

std::set<std::string> FollowerReplica::SegmentBasenames() const {
  std::set<std::string> out;
  auto entries = ListFiles(LogDir());
  if (!entries.ok()) return out;
  for (const auto& e : *entries) {
    if (IsDeltaLogSegmentFile(e)) out.insert(Basename(e));
  }
  return out;
}

std::set<uint64_t> FollowerReplica::SegmentFirstSeqs() const {
  std::set<uint64_t> out;
  auto entries = ListFiles(LogDir());
  if (!entries.ok()) return out;
  for (const auto& e : *entries) {
    if (IsDeltaLogSegmentFile(e)) out.insert(DeltaLogSegmentFirstSeq(e));
  }
  return out;
}

Status FollowerReplica::PurgeShippedBelow(uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || watermark == 0) return Status::OK();
  if (watermark <= purge_mark_) return Status::OK();
  // The mark must land before any file disappears (same ordering as the
  // primary's purge): a promoted pipeline's recovery uses it to drop
  // already-consumed records still present in retained segments.
  I2MR_RETURN_IF_ERROR(WriteDeltaLogPurgeMark(
      LogDir(), watermark,
      options_.durability == DurabilityMode::kPowerFailure));
  purge_mark_ = watermark;

  auto entries = ListFiles(LogDir());
  if (!entries.ok()) return entries.status();
  std::vector<std::string> segs;
  for (const auto& e : *entries) {
    if (IsDeltaLogSegmentFile(e)) segs.push_back(e);
  }
  // A segment holds records strictly below the next segment's first seq,
  // so seg i is fully consumed when first_seq(i+1) <= watermark + 1. The
  // last segment is always retained (its upper bound is unknown without a
  // scan, and recovery drops its consumed records anyway).
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    if (DeltaLogSegmentFirstSeq(segs[i + 1]) <= watermark + 1) {
      I2MR_RETURN_IF_ERROR(RemoveAll(segs[i]));
    }
  }
  return Status::OK();
}

EpochPin FollowerReplica::PinServing() const {
  auto state = std::make_shared<EpochPin::State>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_ || store_ == nullptr) return EpochPin();
    state->epoch = applied_epoch_;
    state->watermark = applied_watermark_;
    state->store = store_;
    state->dir = EpochDir(applied_epoch_);
    std::lock_guard<std::mutex> pin_lock(pin_mu_);
    ++pins_[state->epoch];
  }
  state->unpin = [this](uint64_t epoch) { Unpin(epoch); };
  return EpochPin(std::move(state));
}

void FollowerReplica::Unpin(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(pin_mu_);
  auto it = pins_.find(epoch);
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

Status FollowerReplica::VerifyCurrent() const {
  uint64_t epoch = 0, watermark = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (store_ == nullptr) {
      return Status::FailedPrecondition("replica has no applied epoch");
    }
    epoch = applied_epoch_;
    watermark = applied_watermark_;
  }
  return VerifyEpochDir(EpochDir(epoch), epoch, watermark);
}

uint64_t FollowerReplica::applied_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_epoch_;
}

uint64_t FollowerReplica::applied_watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_watermark_;
}

uint64_t FollowerReplica::staged_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_epoch_;
}

void FollowerReplica::SetLagEpochs(uint64_t lag) {
  lag_epochs_->Set(static_cast<int64_t>(lag));
}

void FollowerReplica::RetireMetrics() { metric_scope_.Reset(); }

}  // namespace i2mr
