// ReplicaSet: read-replica serving + failover over a ShardRouter.
//
// For every shard of a sharded computation, the set runs N FollowerReplica
// instances (roots under `<replicas_root>/shard-NNN/replica-<i>`), each fed
// by that shard's ReplicaShipper. Reads load-balance round-robin across the
// shard's primary and its caught-up followers; writes always go to the
// primary (followers are read-only). A follower that is disabled, closed,
// or lagging more than max_replica_lag_epochs behind the primary's
// committed epoch is skipped by routing until shipping catches it up.
//
// Snapshot reads reuse the serving layer unchanged: PinSnapshot() returns
// the same ShardSnapshot ShardGroup hands out, except each component pin
// may come from a follower instead of the primary — point gets, range
// scans and top-k all run against the selected backends' pinned epochs.
//
// Failover (independent mode): KillPrimary(s) stops the shard's manager;
// reads continue from followers. Promote(s) then picks the freshest
// caught-up follower and promotes it through the A/B flow — discard any
// uncommitted pre-staged slot, re-verify the applied epoch's manifest and
// record-file CRCs, and open a real Pipeline over the follower's root (its
// CURRENT names exactly the last epoch the dead primary durably committed;
// recovery replays shipped log segments past the manifest watermark). The
// promoted pipeline becomes the shard's primary — writes resume, a new
// shipper feeds the surviving followers — while pins taken before the
// promotion keep serving untouched.
//
// Each backend slot publishes under
// "serving.<name>.shard<s>.replica<i>.*" (shipped_bytes, applied_epochs,
// lag_epochs, reads_served); promotion retires the promoted follower's
// series via the registry's scoped-unregister support.
#ifndef I2MR_REPLICATION_REPLICA_SET_H_
#define I2MR_REPLICATION_REPLICA_SET_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "replication/follower_replica.h"
#include "replication/replica_shipper.h"
#include "serving/shard_group.h"

namespace i2mr {

struct ReplicaSetOptions {
  /// Followers per shard.
  int replicas_per_shard = 1;

  /// Staleness threshold for routing (see ReplicaShipper).
  uint64_t max_replica_lag_epochs = 4;

  /// Shipper poll fallback interval.
  int ship_poll_ms = 20;

  /// Wipe the replica roots on Open (fresh deployment) vs re-attach.
  bool reset = true;

  /// Follower durability (the primary's own durability is the router's).
  DurabilityMode durability = DurabilityMode::kProcessCrash;

  /// Workers for the cluster a promoted follower's pipeline runs on.
  int promoted_workers = 2;

  /// Simulated per-backend service time per point read, charged under the
  /// backend's slot mutex (the CostModel idiom: capacity is modeled by
  /// sleeping, so replica read scaling is measurable on any host). 0 = off.
  double read_service_ms = 0;

  /// Include the primary in the read rotation (false = reads only ever
  /// touch followers, primary takes writes + refreshes).
  bool read_from_primary = true;

  /// Scatter-gather threads for snapshot Range/TopK (0 = auto).
  int scatter_threads = 0;

  /// Counter registry (the router's when null).
  MetricsRegistry* metrics = nullptr;
};

class ReplicaSet {
 public:
  /// Build + Open() the followers, start the per-shard shippers. The
  /// router must outlive the set; the router should already be
  /// bootstrapped (shipping begins from its current committed state).
  static StatusOr<std::unique_ptr<ReplicaSet>> Open(ShardRouter* router,
                                                    const std::string& replicas_root,
                                                    ReplicaSetOptions options = {});
  ~ReplicaSet();
  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  // -- Reads -----------------------------------------------------------------

  /// Pin an epoch-consistent snapshot, each shard's pin taken from a
  /// round-robin-selected caught-up backend (primary or follower).
  StatusOr<ShardSnapshot> PinSnapshot() const;

  /// Load-balanced point read: selects a backend for the key's shard,
  /// charges its slot's service time, reads its committed epoch.
  StatusOr<std::string> Get(const std::string& key) const;

  // -- Writes (primary-only) -------------------------------------------------

  StatusOr<uint64_t> Append(const DeltaKV& delta);
  Status AppendBatch(const std::vector<DeltaKV>& deltas);

  /// Run epochs on every live primary until nothing is pending.
  Status DrainAll();

  /// One synchronous ship pass on every shard (tests: reach a known
  /// replicated state without sleeping on the poll loop).
  Status SyncAll();

  // -- Failure injection + failover ------------------------------------------

  /// Take follower (shard, i) out of service: shipping and routing skip it.
  Status KillReplica(int shard, int i);
  /// Reopen a killed follower; the shipper catches it back up.
  Status RestartReplica(int shard, int i);

  /// Kill shard `shard`'s primary: its manager stops scheduling, writes to
  /// the shard fail, reads continue from caught-up followers. Independent
  /// (non-coordinated) routers only — a barrier-committed fleet fails over
  /// as a fleet, not per shard.
  Status KillPrimary(int shard);
  bool primary_dead(int shard) const;

  /// Promote the freshest caught-up follower of a dead-primary shard to
  /// primary (A/B verify + pipeline open over its root). Returns the
  /// promoted follower's index. Writes to the shard succeed again after
  /// this returns.
  StatusOr<int> Promote(int shard);

  // -- Introspection ---------------------------------------------------------

  /// Re-bind the set to the router's current partition map after an
  /// elastic reshard bumped the generation: stop the old shippers, retire
  /// the old per-shard state (outstanding snapshot pins keep serving), and
  /// rebuild followers + shippers against the new generation's shards
  /// (replica roots under `<replicas_root>/<gen-shard-dir>/replica-<i>`).
  /// No-op when the generations already match. Reads and writes between
  /// the cutover and Rebind() fail with FailedPrecondition rather than
  /// routing by a stale map.
  Status Rebind();

  /// The partition-map generation this set's shard states were built for.
  uint64_t bound_generation() const;

  /// Lag of follower (shard, i) behind the shard's primary, in epochs.
  uint64_t ReplicaLag(int shard, int i) const;
  /// Skipped by routing: killed, closed, not serving, or lag beyond max.
  bool IsReplicaStale(int shard, int i) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int replicas_per_shard() const { return options_.replicas_per_shard; }
  FollowerReplica* replica(int shard, int i) const {
    return shards_[shard]->followers[i].get();
  }
  ReplicaShipper* shipper(int shard) const {
    return shards_[shard]->shipper.get();
  }
  /// The shard's current primary (the promoted pipeline after failover).
  Pipeline* primary(int shard) const;
  ShardRouter* router() const { return router_; }

 private:
  /// One read-serving slot: a backend plus its simulated service capacity.
  struct Slot {
    std::mutex service_mu;
    Counter* reads = nullptr;
  };

  struct ShardState {
    Pipeline* primary = nullptr;  // router's shard, or promoted_manager's
    bool dead = false;
    /// A KillPrimary/Promote transition is in flight (set/cleared under
    /// route_mu_). Serializes failover steps that must run outside the
    /// lock: concurrent promotions of one shard would both open a pipeline
    /// over the chosen follower's root, and a promotion racing KillPrimary
    /// could swap st.shipper out from under the Stop() in progress.
    bool transitioning = false;
    int promoted_replica = -1;
    std::vector<std::unique_ptr<FollowerReplica>> followers;
    std::vector<bool> enabled;
    std::unique_ptr<ReplicaShipper> shipper;
    /// Maps follower index -> index in the live shipper's follower list
    /// (-1 after that follower was promoted out).
    std::vector<int> shipper_idx;
    /// slots[0] = primary, slots[1 + i] = follower i.
    std::vector<std::unique_ptr<Slot>> slots;
    std::atomic<uint64_t> rr{0};
    /// Ownership of a promoted primary's runtime.
    std::unique_ptr<LocalCluster> promoted_cluster;
    std::unique_ptr<PipelineManager> promoted_manager;
  };

  ReplicaSet(ShardRouter* router, std::string replicas_root,
             ReplicaSetOptions options);

  /// Build shards_ (followers, slots, shippers) for bound_map_. Caller
  /// guarantees shards_ is empty and no reader is concurrent (Open/Rebind).
  Status BindShards();

  /// FailedPrecondition when the router's live generation moved past the
  /// one this set was built for (reshard cutover without Rebind()).
  Status CheckGenerationLocked() const;

  std::string MetricsPrefix(int shard) const;
  /// Committed epoch of the shard's primary (frozen while it is dead).
  uint64_t PrimaryEpoch(const ShardState& st) const;
  bool StaleLocked(const ShardState& st, int i) const;
  /// Round-robin pick of an eligible backend slot index (0 = primary,
  /// 1 + i = follower i); -1 when nothing can serve.
  int SelectSlotLocked(ShardState& st) const;
  void ChargeService(Slot* slot) const;
  void StartShipper(ShardState& st, int shard);

  ShardRouter* const router_;
  const std::string replicas_root_;
  ReplicaSetOptions options_;
  MetricsRegistry* metrics_ = nullptr;
  mutable ThreadPool scatter_pool_;
  Counter* snapshots_pinned_ = nullptr;
  Counter* failovers_ = nullptr;

  /// Guards shard state transitions (kill/restart/promote) against backend
  /// selection. Never held while sleeping in ChargeService or while a
  /// shipper pass runs.
  mutable std::mutex route_mu_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// The partition map shards_ was built against (guarded by route_mu_;
  /// replaced only by Rebind).
  PartitionMap bound_map_{0, 0};
  /// Previous generations' shard states, kept alive by Rebind: follower
  /// pins hand out unpin callbacks into their FollowerReplica, so a
  /// pre-cutover snapshot must outlive the rebind.
  std::vector<std::unique_ptr<ShardState>> retired_;
};

}  // namespace i2mr

#endif  // I2MR_REPLICATION_REPLICA_SET_H_
