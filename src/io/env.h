// Filesystem helpers (std::filesystem wrappers returning Status).
#ifndef I2MR_IO_ENV_H_
#define I2MR_IO_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace i2mr {

Status CreateDirs(const std::string& path);
Status RemoveAll(const std::string& path);
bool FileExists(const std::string& path);
StatusOr<uint64_t> FileSize(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status CopyFile(const std::string& from, const std::string& to);

/// Hard-link `from` at `to` (O(1), the epoch-snapshot fast path), falling
/// back to a byte copy when the filesystem refuses (cross-device link,
/// FAT-style no-hardlink filesystems). Any existing `to` is replaced.
Status LinkOrCopyFile(const std::string& from, const std::string& to);

/// fsync a directory: persists the directory entries (creations, renames,
/// unlinks) inside it. Required after a commit rename for power-failure
/// durability; a no-op level of safety on process-crash-only paths.
Status SyncDir(const std::string& dir);

/// fsync an already-written file by path (flushes its dirty pages). Used on
/// hard-linked snapshot files, whose bytes were appended through another
/// path's handle and may still sit in the page cache.
Status SyncFile(const std::string& path);

/// Sorted list of regular files directly under `dir` (full paths).
StatusOr<std::vector<std::string>> ListFiles(const std::string& dir);

/// Whole-file read/write. Writes always land on a fresh inode (hard-link
/// snapshot safety; see WritableFile::Create). With `sync` set the data is
/// fsync'd before close — the caller still owns SyncDir of the parent.
Status WriteStringToFile(const std::string& path, const std::string& data,
                         bool sync = false);
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Join path components with '/'.
std::string JoinPath(const std::string& a, const std::string& b);

/// Create a fresh (empty) directory, removing any previous contents.
Status ResetDir(const std::string& path);

}  // namespace i2mr

#endif  // I2MR_IO_ENV_H_
