// Filesystem helpers (std::filesystem wrappers returning Status).
#ifndef I2MR_IO_ENV_H_
#define I2MR_IO_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace i2mr {

Status CreateDirs(const std::string& path);
Status RemoveAll(const std::string& path);
bool FileExists(const std::string& path);
StatusOr<uint64_t> FileSize(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status CopyFile(const std::string& from, const std::string& to);

/// Sorted list of regular files directly under `dir` (full paths).
StatusOr<std::vector<std::string>> ListFiles(const std::string& dir);

/// Whole-file read/write.
Status WriteStringToFile(const std::string& path, const std::string& data);
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Join path components with '/'.
std::string JoinPath(const std::string& a, const std::string& b);

/// Create a fresh (empty) directory, removing any previous contents.
Status ResetDir(const std::string& path);

}  // namespace i2mr

#endif  // I2MR_IO_ENV_H_
