#include "io/fault_env.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/logging.h"

namespace i2mr {
namespace fault {

namespace {

constexpr size_t kMaxEvents = 8192;

struct OpNameEntry {
  const char* name;
  uint32_t mask;
};

// Spec tokens → op masks. Single-bit entries double as display names.
const OpNameEntry kOpNames[] = {
    {"append", kAppend},     {"sync", kSync},
    {"flush", kFlush},       {"create", kOpenWrite},
    {"open", kOpenRead},     {"read", kRead},
    {"rename", kRename},     {"link", kLink},
    {"syncdir", kSyncDir},   {"writefile", kWriteFile},
    {"remove", kRemove},     {"mkdir", kMkdir},
    {"crash", kCrashPoint},  {"io", kAllIO},
};

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

StatusOr<uint32_t> ParseOps(const std::string& value) {
  uint32_t mask = 0;
  for (const auto& tok : Split(value, '|')) {
    bool found = false;
    for (const auto& entry : kOpNames) {
      if (tok == entry.name) {
        mask |= entry.mask;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown fault op '" + tok + "'");
    }
  }
  if (mask == 0) return Status::InvalidArgument("empty fault op list");
  return mask;
}

StatusOr<FaultKind> ParseKind(const std::string& value) {
  if (value == "eio") return FaultKind::kEIO;
  if (value == "enospc") return FaultKind::kENOSPC;
  if (value == "torn") return FaultKind::kTorn;
  if (value == "latency") return FaultKind::kLatency;
  if (value == "crash" || value == "kill") return FaultKind::kCrash;
  return Status::InvalidArgument("unknown fault kind '" + value + "'");
}

StatusOr<double> ParseNum(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad numeric value for " + key + ": '" +
                                   value + "'");
  }
  return v;
}

void SleepMs(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

const char* FaultOpName(FaultOp op) {
  for (const auto& entry : kOpNames) {
    if (entry.mask == static_cast<uint32_t>(op)) return entry.name;
  }
  return "op";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEIO: return "eio";
    case FaultKind::kENOSPC: return "enospc";
    case FaultKind::kTorn: return "torn";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

// Arm the fast path at static-init when a spec is present in the
// environment: production binaries reach Instance() only through an armed
// Check, so a disarmed initial state would make I2MR_FAULTS a no-op. The
// first armed Check calls Instance(), which parses the spec and re-arms
// (or disarms again if the spec is malformed).
std::atomic<bool> FaultInjector::armed_{[] {
  const char* spec = std::getenv("I2MR_FAULTS");
  return spec != nullptr && spec[0] != '\0';
}()};

FaultInjector* FaultInjector::Instance() {
  static FaultInjector* instance = [] {
    auto* inj = new FaultInjector();
    const char* spec = std::getenv("I2MR_FAULTS");
    if (spec != nullptr && spec[0] != '\0') {
      Status st = inj->LoadSpec(spec);
      if (!st.ok()) {
        LOG_ERROR << "ignoring malformed I2MR_FAULTS: " << st.ToString();
        inj->Reset();  // drop the eager static-init arming
      } else {
        LOG_WARN << "fault injection armed from I2MR_FAULTS";
      }
    }
    return inj;
  }();
  return instance;
}

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rule.hits = 0;
  rule.fired = 0;
  if (rule.every == 0) rule.every = 1;
  // Crash rules only make sense against crash points; an explicit I/O mask
  // on one is almost certainly a spec typo, so pin it.
  if (rule.kind == FaultKind::kCrash) rule.ops = kCrashPoint;
  rules_.push_back(std::move(rule));
  RearmLocked();
}

Status FaultInjector::LoadSpec(const std::string& spec) {
  std::vector<FaultRule> parsed;
  bool start_chaos = false;
  ChaosOptions chaos;
  for (const auto& raw : Split(spec, ';')) {
    std::string rule_spec = Trim(raw);
    if (rule_spec.empty()) continue;
    auto fields = Split(rule_spec, ',');
    bool is_chaos = Trim(fields[0]) == "chaos";
    FaultRule rule;
    for (size_t i = is_chaos ? 1 : 0; i < fields.size(); ++i) {
      std::string field = Trim(fields[i]);
      if (field.empty()) continue;
      size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault spec field without '=': '" +
                                       field + "'");
      }
      std::string key = field.substr(0, eq);
      std::string value = field.substr(eq + 1);
      if (key == "path") {
        rule.path_substr = value;
        chaos.path_substr = value;
        continue;
      }
      if (key == "op") {
        auto ops = ParseOps(value);
        if (!ops.ok()) return ops.status();
        rule.ops = *ops;
        chaos.ops = *ops;
        continue;
      }
      if (is_chaos) {
        auto num = ParseNum(key, value);
        if (!num.ok()) return num.status();
        if (key == "seed") chaos.seed = static_cast<uint64_t>(*num);
        else if (key == "p_fail") chaos.p_fail = *num;
        else if (key == "p_enospc") chaos.p_enospc = *num;
        else if (key == "p_torn") chaos.p_torn = *num;
        else if (key == "p_latency") chaos.p_latency = *num;
        else if (key == "max_latency_ms") chaos.max_latency_ms = *num;
        else return Status::InvalidArgument("unknown chaos field '" + key + "'");
        continue;
      }
      if (key == "kind" || key == "mode") {
        auto kind = ParseKind(value);
        if (!kind.ok()) return kind.status();
        rule.kind = *kind;
        continue;
      }
      auto num = ParseNum(key, value);
      if (!num.ok()) return num.status();
      if (key == "after") rule.after = static_cast<uint64_t>(*num);
      else if (key == "times") rule.times = static_cast<int64_t>(*num);
      else if (key == "every") rule.every = std::max<uint64_t>(1, static_cast<uint64_t>(*num));
      else if (key == "latency_ms") rule.latency_ms = *num;
      else if (key == "torn") rule.torn_fraction = *num;
      else return Status::InvalidArgument("unknown fault field '" + key + "'");
    }
    if (is_chaos) {
      start_chaos = true;
    } else {
      parsed.push_back(std::move(rule));
    }
  }
  for (auto& rule : parsed) AddRule(std::move(rule));
  if (start_chaos) StartChaos(chaos);
  return Status::OK();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  chaos_on_ = false;
  injections_ = 0;
  events_.clear();
  RearmLocked();
}

void FaultInjector::StartChaos(const ChaosOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  chaos_ = options;
  chaos_rng_ = Rng(options.seed);
  chaos_on_ = true;
  RearmLocked();
}

void FaultInjector::StopChaos() {
  std::lock_guard<std::mutex> lock(mu_);
  chaos_on_ = false;
  RearmLocked();
}

bool FaultInjector::chaos_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chaos_on_;
}

std::string FaultInjector::ChaosSpec() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "chaos,seed=" << chaos_.seed << ",p_fail=" << chaos_.p_fail
      << ",p_enospc=" << chaos_.p_enospc << ",p_torn=" << chaos_.p_torn
      << ",p_latency=" << chaos_.p_latency
      << ",max_latency_ms=" << chaos_.max_latency_ms;
  if (!chaos_.path_substr.empty()) out << ",path=" << chaos_.path_substr;
  return out.str();
}

void FaultInjector::RearmLocked() {
  armed_.store(!rules_.empty() || chaos_on_, std::memory_order_relaxed);
}

bool FaultInjector::RuleFiresLocked(FaultRule* rule) {
  ++rule->hits;
  if (rule->hits <= rule->after) return false;
  uint64_t eligible = rule->hits - rule->after;  // 1-based
  if ((eligible - 1) % rule->every != 0) return false;
  if (rule->times >= 0 && rule->fired >= rule->times) return false;
  ++rule->fired;
  return true;
}

void FaultInjector::RecordLocked(FaultKind kind, FaultOp op,
                                 const std::string& path) {
  ++injections_;
  if (events_.size() >= kMaxEvents) events_.pop_front();
  events_.push_back(std::string(FaultKindName(kind)) + " " + FaultOpName(op) +
                    " " + path);
}

Status FaultInjector::MakeError(FaultKind kind, FaultOp op,
                                const std::string& path) {
  if (kind == FaultKind::kENOSPC) {
    return Status::IOError("injected ENOSPC on " +
                           std::string(FaultOpName(op)) + " " + path +
                           ": no space left on device");
  }
  return Status::IOError("injected EIO on " + std::string(FaultOpName(op)) +
                         " " + path + ": input/output error");
}

Status FaultInjector::MaybeFault(FaultOp op, const std::string& path) {
  WriteFaultResult r = MaybeWriteFault(op, path, 0);
  return r.status;
}

WriteFaultResult FaultInjector::MaybeWriteFault(FaultOp op,
                                                const std::string& path,
                                                size_t len) {
  WriteFaultResult result;
  double stall_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& rule : rules_) {
      if ((rule.ops & op) == 0 || rule.kind == FaultKind::kCrash) continue;
      if (!rule.path_substr.empty() &&
          path.find(rule.path_substr) == std::string::npos) {
        continue;
      }
      if (!RuleFiresLocked(&rule)) continue;
      if (rule.kind == FaultKind::kLatency) {
        stall_ms += rule.latency_ms;
        RecordLocked(rule.kind, op, path);
        continue;
      }
      if (rule.kind == FaultKind::kTorn && len > 0) {
        result.prefix_bytes = std::min(
            len - 1, static_cast<size_t>(static_cast<double>(len) *
                                         rule.torn_fraction));
      }
      result.status = MakeError(
          rule.kind == FaultKind::kTorn ? FaultKind::kEIO : rule.kind, op,
          path);
      RecordLocked(rule.kind, op, path);
      break;
    }
    if (result.status.ok() && chaos_on_ && (chaos_.ops & op) != 0 &&
        (chaos_.path_substr.empty() ||
         path.find(chaos_.path_substr) != std::string::npos)) {
      if (chaos_.p_latency > 0 && chaos_rng_.Bernoulli(chaos_.p_latency)) {
        stall_ms += chaos_rng_.NextDouble() * chaos_.max_latency_ms;
        RecordLocked(FaultKind::kLatency, op, path);
      }
      if (chaos_rng_.Bernoulli(chaos_.p_fail)) {
        FaultKind kind = chaos_rng_.Bernoulli(chaos_.p_enospc)
                             ? FaultKind::kENOSPC
                             : FaultKind::kEIO;
        if (len > 0 && chaos_rng_.Bernoulli(chaos_.p_torn)) {
          result.prefix_bytes =
              std::min(len - 1,
                       static_cast<size_t>(static_cast<double>(len) *
                                           chaos_rng_.NextDouble()));
          RecordLocked(FaultKind::kTorn, op, path);
        } else {
          RecordLocked(kind, op, path);
        }
        result.status = MakeError(kind, op, path);
      }
    }
  }
  SleepMs(stall_ms);
  return result;
}

bool FaultInjector::AtCrashPoint(const std::string& point) {
  if (!Armed()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& rule : rules_) {
    if (rule.kind != FaultKind::kCrash || (rule.ops & kCrashPoint) == 0) {
      continue;
    }
    if (!rule.path_substr.empty() &&
        point.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    if (!RuleFiresLocked(&rule)) continue;
    RecordLocked(FaultKind::kCrash, kCrashPoint, point);
    return true;
  }
  return false;
}

uint64_t FaultInjector::injections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injections_;
}

std::vector<std::string> FaultInjector::EventLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(events_.begin(), events_.end());
}

std::string FaultInjector::EventLogText() const {
  std::string out;
  for (const auto& event : EventLog()) {
    out += event;
    out += '\n';
  }
  return out;
}

}  // namespace fault
}  // namespace i2mr
