#include "io/file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/fault_env.h"

namespace i2mr {

// ---------------------------------------------------------------------------
// WritableFile
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<WritableFile>> WritableFile::Create(
    const std::string& path, bool append) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kOpenWrite, path));
  if (!append) {
    // Fresh-inode semantics: never truncate an existing inode in place —
    // a committed epoch snapshot may hard-link it.
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("unlink " + path + ": " + std::strerror(errno));
    }
  }
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  uint64_t offset = 0;
  if (append) {
    if (std::fseek(f, 0, SEEK_END) != 0) {
      std::fclose(f);
      return Status::IOError("seek " + path);
    }
    offset = static_cast<uint64_t>(std::ftell(f));
  }
  return std::unique_ptr<WritableFile>(new WritableFile(path, f, offset));
}

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WritableFile::Append(std::string_view data) {
  if (data.empty()) return Status::OK();
  if (fault::FaultInjector::Armed()) {
    auto injected = fault::FaultInjector::Instance()->MaybeWriteFault(
        fault::kAppend, path_, data.size());
    if (!injected.status.ok()) {
      // Torn write: a prefix of the payload reaches the OS before the
      // "device" fails — the bytes are really on disk (offset_ still points
      // at the pre-append position, so a rollback truncate removes them,
      // and a recovery scan must cope with the torn tail).
      if (injected.prefix_bytes > 0) {
        std::fwrite(data.data(), 1, injected.prefix_bytes, file_);
        std::fflush(file_);
      }
      return injected.status;
    }
  }
  size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  if (n != data.size()) return Status::IOError("append " + path_);
  offset_ += data.size();
  return Status::OK();
}

Status WritableFile::Flush() {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kFlush, path_));
  if (std::fflush(file_) != 0) return Status::IOError("flush " + path_);
  return Status::OK();
}

Status WritableFile::Sync() {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kSync, path_));
  I2MR_RETURN_IF_ERROR(Flush());
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("close " + path_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RandomAccessFile
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kOpenRead, path));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("stat " + path);
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(path, fd, static_cast<uint64_t>(st.st_size)));
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n, std::string* out) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kRead, path_));
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd_, out->data() + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  out->resize(got);
  ++num_reads_;
  bytes_read_ += got;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MmapFile
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kOpenRead, path));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("stat " + path + ": " + std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* base = nullptr;
  if (size > 0) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::IOError("mmap " + path + ": " + std::strerror(err));
    }
  }
  ::close(fd);  // the mapping keeps the pages, not the descriptor
  return std::unique_ptr<MmapFile>(new MmapFile(base, size));
}

MmapFile::~MmapFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

// ---------------------------------------------------------------------------
// SequentialFile
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<SequentialFile>> SequentialFile::Open(
    const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kOpenRead, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<SequentialFile>(new SequentialFile(path, f));
}

SequentialFile::~SequentialFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SequentialFile::ReadExact(size_t n, std::string* out) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kRead, path_));
  out->resize(n);
  size_t got = std::fread(out->data(), 1, n, file_);
  offset_ += got;
  if (got == 0 && n > 0) return Status::NotFound("eof " + path_);
  if (got != n) return Status::Corruption("short read " + path_);
  return Status::OK();
}

}  // namespace i2mr
