// File abstractions: buffered appends, counted positional reads, sequential
// buffered reads. The read counters feed the MRBG-Store statistics the paper
// reports in Table 4.
#ifndef I2MR_IO_FILE_H_
#define I2MR_IO_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace i2mr {

/// Append-only buffered file.
class WritableFile {
 public:
  static StatusOr<std::unique_ptr<WritableFile>> Create(
      const std::string& path, bool append = false);

  ~WritableFile();

  Status Append(std::string_view data);
  Status Flush();
  Status Close();

  /// Bytes appended so far (== file offset of next append).
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, std::FILE* f, uint64_t offset)
      : path_(std::move(path)), file_(f), offset_(offset) {}

  std::string path_;
  std::FILE* file_;
  uint64_t offset_;
};

/// Positional (pread) reader. Counts the number of read calls and bytes
/// read, exactly the Table-4 "# reads" / "rsize" quantities.
class RandomAccessFile {
 public:
  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(const std::string& path);

  ~RandomAccessFile();

  /// Read `n` bytes at `offset` into `*out` (resized to the bytes actually
  /// read; reading past EOF shortens the result).
  Status Read(uint64_t offset, size_t n, std::string* out);

  uint64_t size() const { return size_; }
  uint64_t num_reads() const { return num_reads_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetStats() { num_reads_ = 0; bytes_read_ = 0; }

 private:
  RandomAccessFile(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_;
  uint64_t size_;
  uint64_t num_reads_ = 0;
  uint64_t bytes_read_ = 0;
};

/// Buffered sequential reader over a whole file.
class SequentialFile {
 public:
  static StatusOr<std::unique_ptr<SequentialFile>> Open(const std::string& path);

  ~SequentialFile();

  /// Read exactly n bytes; returns NotFound at clean EOF (0 bytes),
  /// Corruption on a short read.
  Status ReadExact(size_t n, std::string* out);

  uint64_t offset() const { return offset_; }

 private:
  SequentialFile(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  std::string path_;
  std::FILE* file_;
  uint64_t offset_ = 0;
};

}  // namespace i2mr

#endif  // I2MR_IO_FILE_H_
