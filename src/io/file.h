// File abstractions: buffered appends, counted positional reads, sequential
// buffered reads. The read counters feed the MRBG-Store statistics the paper
// reports in Table 4.
#ifndef I2MR_IO_FILE_H_
#define I2MR_IO_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace i2mr {

/// How far a durable structure's writes must survive. The pipeline plumbs
/// this through the delta log, epoch MANIFEST and CURRENT swap.
enum class DurabilityMode {
  /// Writes reach the OS (surviving process death) but are not fsync'd:
  /// a kernel panic or power failure may lose acknowledged data.
  kProcessCrash,
  /// Acknowledged writes are fsync'd (file data + the directory entries
  /// that name them) before success is reported — the LSM/WAL guarantee.
  kPowerFailure,
};

/// Append-only buffered file. Create() with append=false always writes a
/// fresh inode (any existing file is unlinked first), so epoch snapshots
/// that hard-link a previously written file keep their bytes when the
/// original path is later rewritten.
class WritableFile {
 public:
  static StatusOr<std::unique_ptr<WritableFile>> Create(
      const std::string& path, bool append = false);

  ~WritableFile();

  Status Append(std::string_view data);
  Status Flush();
  /// Flush + fsync: the appended bytes survive power failure (the enclosing
  /// directory entry still needs SyncDir for a newly created file).
  Status Sync();
  Status Close();

  /// Bytes appended so far (== file offset of next append).
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, std::FILE* f, uint64_t offset)
      : path_(std::move(path)), file_(f), offset_(offset) {}

  std::string path_;
  std::FILE* file_;
  uint64_t offset_;
};

/// Positional (pread) reader. Counts the number of read calls and bytes
/// read, exactly the Table-4 "# reads" / "rsize" quantities.
class RandomAccessFile {
 public:
  static StatusOr<std::unique_ptr<RandomAccessFile>> Open(const std::string& path);

  ~RandomAccessFile();

  /// Read `n` bytes at `offset` into `*out` (resized to the bytes actually
  /// read; reading past EOF shortens the result).
  Status Read(uint64_t offset, size_t n, std::string* out);

  uint64_t size() const { return size_; }
  uint64_t num_reads() const { return num_reads_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetStats() { num_reads_ = 0; bytes_read_ = 0; }

 private:
  RandomAccessFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
  uint64_t num_reads_ = 0;
  uint64_t bytes_read_ = 0;
};

/// Read-only memory map of a whole (immutable) file. Used by replay-scale
/// scans — a follower catching up on a large shipped-segment backlog maps
/// each sealed segment instead of buffering it through read(2); the hot
/// append/stream path keeps the buffered readers. The view stays valid for
/// the object's lifetime; the underlying file must not be mutated while
/// mapped (sealed segments never are).
class MmapFile {
 public:
  static StatusOr<std::unique_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::string_view data() const {
    return std::string_view(static_cast<const char*>(base_), size_);
  }
  uint64_t size() const { return size_; }

 private:
  MmapFile(void* base, size_t size) : base_(base), size_(size) {}

  void* base_;  // nullptr for an empty file
  size_t size_;
};

/// Buffered sequential reader over a whole file.
class SequentialFile {
 public:
  static StatusOr<std::unique_ptr<SequentialFile>> Open(const std::string& path);

  ~SequentialFile();

  /// Read exactly n bytes; returns NotFound at clean EOF (0 bytes),
  /// Corruption on a short read.
  Status ReadExact(size_t n, std::string* out);

  uint64_t offset() const { return offset_; }

 private:
  SequentialFile(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  std::string path_;
  std::FILE* file_;
  uint64_t offset_ = 0;
};

}  // namespace i2mr

#endif  // I2MR_IO_FILE_H_
