#include "io/record_file.h"

#include "common/codec.h"
#include "io/env.h"

namespace i2mr {

// ---------------------------------------------------------------------------
// RecordWriter / RecordReader
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<RecordWriter>> RecordWriter::Create(
    const std::string& path) {
  auto f = WritableFile::Create(path);
  if (!f.ok()) return f.status();
  return std::unique_ptr<RecordWriter>(new RecordWriter(std::move(f.value())));
}

namespace {

// Writers enforce the same bound the readers do: a field that would be
// rejected as corrupt on read must not be accepted on write.
Status CheckFieldLengths(std::string_view key, std::string_view value) {
  if (key.size() > kMaxRecordFieldLen || value.size() > kMaxRecordFieldLen) {
    return Status::InvalidArgument("record field exceeds length limit");
  }
  return Status::OK();
}

}  // namespace

Status RecordWriter::Add(std::string_view key, std::string_view value) {
  I2MR_RETURN_IF_ERROR(CheckFieldLengths(key, value));
  scratch_.clear();
  PutLengthPrefixed(&scratch_, key);
  PutLengthPrefixed(&scratch_, value);
  I2MR_RETURN_IF_ERROR(file_->Append(scratch_));
  ++count_;
  return Status::OK();
}

Status RecordWriter::Close() { return file_->Close(); }

StatusOr<std::unique_ptr<RecordReader>> RecordReader::Open(
    const std::string& path, bool validate) {
  if (validate) {
    auto n = ValidateRecordFile(path);
    if (!n.ok()) return n.status();
  }
  auto f = SequentialFile::Open(path);
  if (!f.ok()) return f.status();
  return std::unique_ptr<RecordReader>(new RecordReader(std::move(f.value())));
}

namespace {

// Reads a [u32 len][bytes] field from a sequential file.
Status ReadLenPrefixed(SequentialFile* f, std::string* out, bool* at_eof) {
  std::string lenbuf;
  Status st = f->ReadExact(4, &lenbuf);
  if (st.IsNotFound()) {
    *at_eof = true;
    return st;
  }
  I2MR_RETURN_IF_ERROR(st);
  uint32_t n = DecodeFixed32(lenbuf.data());
  if (n > kMaxRecordFieldLen) {
    // A garbled length prefix: fail before attempting the allocation.
    return Status::Corruption("record field length " + std::to_string(n) +
                              " exceeds limit");
  }
  if (n == 0) {
    out->clear();
    return Status::OK();
  }
  Status body = f->ReadExact(n, out);
  if (body.IsNotFound()) {
    // EOF right after a complete length prefix: a truncated record, not a
    // clean end of file.
    return Status::Corruption("truncated record body");
  }
  return body;
}

}  // namespace

Status RecordReader::Next(KV* kv) {
  bool at_eof = false;
  Status st = ReadLenPrefixed(file_.get(), &kv->key, &at_eof);
  if (at_eof) return Status::NotFound("eof");
  I2MR_RETURN_IF_ERROR(st);
  st = ReadLenPrefixed(file_.get(), &kv->value, &at_eof);
  if (at_eof) return Status::Corruption("truncated record");
  return st;
}

// ---------------------------------------------------------------------------
// DeltaWriter / DeltaReader
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<DeltaWriter>> DeltaWriter::Create(
    const std::string& path) {
  auto f = WritableFile::Create(path);
  if (!f.ok()) return f.status();
  return std::unique_ptr<DeltaWriter>(new DeltaWriter(std::move(f.value())));
}

Status DeltaWriter::Add(const DeltaKV& rec) {
  I2MR_RETURN_IF_ERROR(CheckFieldLengths(rec.key, rec.value));
  scratch_.clear();
  scratch_.push_back(DeltaOpChar(rec.op));
  PutLengthPrefixed(&scratch_, rec.key);
  PutLengthPrefixed(&scratch_, rec.value);
  I2MR_RETURN_IF_ERROR(file_->Append(scratch_));
  ++count_;
  return Status::OK();
}

Status DeltaWriter::Close() { return file_->Close(); }

StatusOr<std::unique_ptr<DeltaReader>> DeltaReader::Open(
    const std::string& path, bool validate) {
  if (validate) {
    auto n = ValidateDeltaFile(path);
    if (!n.ok()) return n.status();
  }
  auto f = SequentialFile::Open(path);
  if (!f.ok()) return f.status();
  return std::unique_ptr<DeltaReader>(new DeltaReader(std::move(f.value())));
}

Status DeltaReader::Next(DeltaKV* rec) {
  std::string opbuf;
  Status st = file_->ReadExact(1, &opbuf);
  if (st.IsNotFound()) return st;
  I2MR_RETURN_IF_ERROR(st);
  char op = opbuf[0];
  if (op != '+' && op != '-') return Status::Corruption("bad delta op byte");
  rec->op = static_cast<DeltaOp>(op);
  bool at_eof = false;
  st = ReadLenPrefixed(file_.get(), &rec->key, &at_eof);
  if (at_eof) return Status::Corruption("truncated delta record");
  I2MR_RETURN_IF_ERROR(st);
  st = ReadLenPrefixed(file_.get(), &rec->value, &at_eof);
  if (at_eof) return Status::Corruption("truncated delta record");
  return st;
}

// ---------------------------------------------------------------------------
// Open-time validation
// ---------------------------------------------------------------------------

namespace {

// Shared scan loop over a reader's own Next(): the frame format lives only
// in the reader parse loops; the validators just drive them and locate the
// damage via the reader's byte offset.
template <typename Reader, typename Record>
StatusOr<uint64_t> ValidateWithReader(StatusOr<std::unique_ptr<Reader>> r) {
  if (!r.ok()) return r.status();
  uint64_t count = 0;
  Record rec;
  for (;;) {
    uint64_t record_start = (*r)->offset();
    Status st = (*r)->Next(&rec);
    if (st.IsNotFound()) return count;
    if (!st.ok()) {
      const std::string where = st.message() + " (record " +
                                std::to_string(count) + " at offset " +
                                std::to_string(record_start) + ")";
      // A failed device read says nothing about the bytes on disk: keep
      // the I/O code so callers retry instead of quarantining the file as
      // corrupt.
      if (st.code() == Status::Code::kIOError) return Status::IOError(where);
      return Status::Corruption(where);
    }
    ++count;
  }
}

}  // namespace

StatusOr<uint64_t> ValidateRecordFile(const std::string& path) {
  return ValidateWithReader<RecordReader, KV>(RecordReader::Open(path));
}

StatusOr<uint64_t> ValidateDeltaFile(const std::string& path) {
  return ValidateWithReader<DeltaReader, DeltaKV>(DeltaReader::Open(path));
}

// ---------------------------------------------------------------------------
// Whole-file conveniences
// ---------------------------------------------------------------------------

Status WriteRecords(const std::string& path, const std::vector<KV>& records) {
  auto w = RecordWriter::Create(path);
  if (!w.ok()) return w.status();
  for (const auto& kv : records) I2MR_RETURN_IF_ERROR(w.value()->Add(kv));
  return w.value()->Close();
}

StatusOr<std::vector<KV>> ReadRecords(const std::string& path) {
  auto r = RecordReader::Open(path);
  if (!r.ok()) return r.status();
  std::vector<KV> out;
  KV kv;
  for (;;) {
    Status st = r.value()->Next(&kv);
    if (st.IsNotFound()) break;
    if (!st.ok()) return st;
    out.push_back(kv);
  }
  return out;
}

StatusOr<FlatKVRun> ReadRecordsFlat(const std::string& path) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& buf = *bytes;
  std::vector<KVRef> refs;
  uint64_t payload = 0;
  size_t pos = 0;
  while (pos < buf.size()) {
    KVRef ref;
    // [u32 klen][key bytes][u32 vlen][value bytes]
    if (buf.size() - pos < 4) {
      return Status::Corruption("truncated record length in " + path);
    }
    uint32_t klen = DecodeFixed32(buf.data() + pos);
    pos += 4;
    if (klen > kMaxRecordFieldLen || buf.size() - pos < klen) {
      return Status::Corruption("bad record key in " + path);
    }
    ref.key_off = pos;
    ref.klen = klen;
    pos += klen;
    if (buf.size() - pos < 4) {
      return Status::Corruption("truncated record in " + path);
    }
    uint32_t vlen = DecodeFixed32(buf.data() + pos);
    pos += 4;
    if (vlen > kMaxRecordFieldLen || buf.size() - pos < vlen) {
      return Status::Corruption("bad record value in " + path);
    }
    ref.val_off = pos;
    ref.vlen = vlen;
    pos += vlen;
    payload += klen + vlen;
    refs.push_back(ref);
  }
  FlatKVRun run;
  run.Adopt(std::move(*bytes), std::move(refs), payload);
  return run;
}

Status WriteDeltaRecords(const std::string& path,
                         const std::vector<DeltaKV>& records) {
  auto w = DeltaWriter::Create(path);
  if (!w.ok()) return w.status();
  for (const auto& rec : records) I2MR_RETURN_IF_ERROR(w.value()->Add(rec));
  return w.value()->Close();
}

StatusOr<std::vector<DeltaKV>> ReadDeltaRecords(const std::string& path) {
  auto r = DeltaReader::Open(path);
  if (!r.ok()) return r.status();
  std::vector<DeltaKV> out;
  DeltaKV rec;
  for (;;) {
    Status st = r.value()->Next(&rec);
    if (st.IsNotFound()) break;
    if (!st.ok()) return st;
    out.push_back(rec);
  }
  return out;
}

}  // namespace i2mr
