// Self-contained LZ77-style codec for archived delta-log segments (and any
// other cold, immutable file). No external compression library is linked;
// the goal is "cheap-enough, safe" shrinkage of CRC-framed log text —
// highly repetitive key/value records compress 2-5x — not parity with zstd.
//
// Framing:
//
//   [u32 magic "ILZ1"][u64 raw_len][token stream]
//   token 0x00: [u32 len][len literal bytes]
//   token 0x01: [u32 distance][u32 len]   copy len bytes from `distance`
//                                         back in the decoded output
//
// Decompression is fully validated (magic, bounds, distances, final
// length), so a truncated or tampered archive surfaces as Corruption
// instead of garbage records.
#ifndef I2MR_IO_COMPRESS_H_
#define I2MR_IO_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace i2mr {

/// Compress `in`, appending the framed stream to *out.
void LzCompress(std::string_view in, std::string* out);

/// Decompress a framed stream produced by LzCompress, appending the raw
/// bytes to *out. Corruption on any malformed input.
Status LzDecompress(std::string_view in, std::string* out);

/// True when `data` starts with the LzCompress frame magic.
bool LzIsCompressed(std::string_view data);

}  // namespace i2mr

#endif  // I2MR_IO_COMPRESS_H_
