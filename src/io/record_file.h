// Record-file format: the on-disk representation of datasets and
// intermediate files. A record file is a sequence of
//   [u32 klen][key bytes][u32 vlen][value bytes]
// records; a delta record file prefixes each record with a one-byte op
// ('+' insert / '-' delete).
#ifndef I2MR_IO_RECORD_FILE_H_
#define I2MR_IO_RECORD_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"
#include "io/file.h"

namespace i2mr {

/// Streaming writer of plain KV records.
class RecordWriter {
 public:
  static StatusOr<std::unique_ptr<RecordWriter>> Create(const std::string& path);

  Status Add(const KV& kv) { return Add(kv.key, kv.value); }
  Status Add(std::string_view key, std::string_view value);
  Status Close();

  uint64_t num_records() const { return count_; }
  uint64_t bytes_written() const { return file_->offset(); }

 private:
  explicit RecordWriter(std::unique_ptr<WritableFile> f) : file_(std::move(f)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t count_ = 0;
  std::string scratch_;
};

/// Upper bound on a single key/value field. A corrupt length prefix in a
/// truncated or garbled file would otherwise drive a multi-GB allocation
/// before the short read is even detected.
inline constexpr uint32_t kMaxRecordFieldLen = 256u << 20;  // 256 MiB

/// Streaming reader of plain KV records.
class RecordReader {
 public:
  /// With `validate` set, scans the whole file first and fails with
  /// Corruption if it ends in a truncated or garbled record, so callers see
  /// the damage at open time instead of mid-stream.
  static StatusOr<std::unique_ptr<RecordReader>> Open(const std::string& path,
                                                      bool validate = false);

  /// Returns OK and fills *kv, NotFound at EOF, Corruption on a bad record.
  Status Next(KV* kv);

  /// Byte offset of the next unread record (== bytes consumed so far). The
  /// validators report damage locations through this, so the frame format
  /// lives only in the parse loop.
  uint64_t offset() const { return file_->offset(); }

 private:
  explicit RecordReader(std::unique_ptr<SequentialFile> f) : file_(std::move(f)) {}

  std::unique_ptr<SequentialFile> file_;
  std::string scratch_;
};

/// Streaming writer of delta records (op byte + KV).
class DeltaWriter {
 public:
  static StatusOr<std::unique_ptr<DeltaWriter>> Create(const std::string& path);

  Status Add(const DeltaKV& rec);
  Status Close();

  uint64_t num_records() const { return count_; }

 private:
  explicit DeltaWriter(std::unique_ptr<WritableFile> f) : file_(std::move(f)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t count_ = 0;
  std::string scratch_;
};

/// Streaming reader of delta records.
class DeltaReader {
 public:
  static StatusOr<std::unique_ptr<DeltaReader>> Open(const std::string& path,
                                                     bool validate = false);

  Status Next(DeltaKV* rec);

  /// Byte offset of the next unread record (see RecordReader::offset).
  uint64_t offset() const { return file_->offset(); }

 private:
  explicit DeltaReader(std::unique_ptr<SequentialFile> f) : file_(std::move(f)) {}

  std::unique_ptr<SequentialFile> file_;
};

/// Full-file scan: returns the number of complete records, or Corruption
/// (naming the byte offset of the damage) when the file ends in a truncated
/// or garbled record. Pipeline crash recovery validates the committed
/// snapshot's record files with this before restoring them.
StatusOr<uint64_t> ValidateRecordFile(const std::string& path);
StatusOr<uint64_t> ValidateDeltaFile(const std::string& path);

// Whole-file conveniences.
Status WriteRecords(const std::string& path, const std::vector<KV>& records);
StatusOr<std::vector<KV>> ReadRecords(const std::string& path);

/// Whole-file read into a FlatKVRun: the raw file bytes become the run's
/// arena and the refs point at the framed fields in place — no per-record
/// string allocations (the shuffle's spill-file decode path).
StatusOr<FlatKVRun> ReadRecordsFlat(const std::string& path);
Status WriteDeltaRecords(const std::string& path, const std::vector<DeltaKV>& records);
StatusOr<std::vector<DeltaKV>> ReadDeltaRecords(const std::string& path);

}  // namespace i2mr

#endif  // I2MR_IO_RECORD_FILE_H_
