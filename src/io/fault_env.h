// Fault-injection layer for the filesystem primitives in io/.
//
// Every Env/file operation consults the process-wide FaultInjector before
// touching the real filesystem. When no fault plan is loaded the check is a
// single relaxed atomic load — nil overhead on production paths. With a plan
// loaded, operations matching a rule fail with injected ENOSPC/EIO, write a
// torn prefix, stall for injected latency, or simulate a kill at a named
// crash point.
//
// Plans come from three places:
//   * programmatically: FaultInjector::Instance()->AddRule({...})
//   * the I2MR_FAULTS env var, parsed on first use (spec grammar below)
//   * a seeded random schedule for chaos runs: StartChaos({seed, ...})
//
// Spec grammar (I2MR_FAULTS or LoadSpec): rules separated by ';', fields by
// ',', `key=value` each. Example:
//
//   I2MR_FAULTS='op=append|sync,path=seg-,kind=enospc,after=3,times=1;
//                op=rename,kind=eio,every=5,times=-1'
//
// Fields:
//   op=<name>[|<name>...]  ops to match: append sync flush create open read
//                          rename link syncdir writefile remove mkdir crash
//                          io (= every I/O op, the default)
//   path=<substr>          only paths containing <substr> (default: all)
//   kind=<k>               eio (default) | enospc | torn | latency | crash
//   after=<N>              skip the first N matching ops
//   times=<N>              fire at most N times; -1 = unlimited (default 1)
//   every=<N>              fire on every Nth eligible match (default 1)
//   latency_ms=<F>         stall duration for kind=latency
//   torn=<F>               fraction of the payload written before failing
//                          for kind=torn (default 0.5)
//
// A chaos schedule is one rule starting with the bare token `chaos`:
//
//   I2MR_FAULTS='chaos,seed=42,p_fail=0.02,p_torn=0.25,p_latency=0.05,
//                max_latency_ms=2,path=/tmp/run'
//
// which draws per-op from a deterministic seeded RNG — the same spec string
// replays the same schedule against the same op sequence.
#ifndef I2MR_IO_FAULT_ENV_H_
#define I2MR_IO_FAULT_ENV_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace i2mr {
namespace fault {

/// Bitmask of injectable operations. kCrashPoint is special: it only
/// matches named crash points (AtCrashPoint), never real I/O calls.
enum FaultOp : uint32_t {
  kAppend = 1u << 0,     // WritableFile::Append
  kSync = 1u << 1,       // WritableFile::Sync, SyncFile
  kFlush = 1u << 2,      // WritableFile::Flush
  kOpenWrite = 1u << 3,  // WritableFile::Create
  kOpenRead = 1u << 4,   // RandomAccessFile/MmapFile/SequentialFile::Open
  kRead = 1u << 5,       // RandomAccessFile::Read, SequentialFile::ReadExact
  kRename = 1u << 6,     // RenameFile
  kLink = 1u << 7,       // LinkOrCopyFile, CopyFile
  kSyncDir = 1u << 8,    // SyncDir
  kWriteFile = 1u << 9,  // WriteStringToFile
  kRemove = 1u << 10,    // RemoveAll
  kMkdir = 1u << 11,     // CreateDirs
  kCrashPoint = 1u << 12,
  kAllIO = (1u << 12) - 1,  // every real I/O op; excludes kCrashPoint
};

const char* FaultOpName(FaultOp op);

enum class FaultKind {
  kEIO,      // operation fails with an injected I/O error
  kENOSPC,   // operation fails with an injected no-space error
  kTorn,     // write lands a prefix of the payload, then fails
  kLatency,  // operation stalls, then proceeds normally
  kCrash,    // a named crash point fires (simulated process death)
};

const char* FaultKindName(FaultKind kind);

/// One scriptable fault rule. Trigger semantics: the rule counts every
/// matching op; it fires once `hits > after`, on every `every`-th eligible
/// match, at most `times` times (-1 = unlimited).
struct FaultRule {
  uint32_t ops = kAllIO;
  std::string path_substr;  // empty = match every path
  FaultKind kind = FaultKind::kEIO;
  uint64_t after = 0;
  int64_t times = 1;  // -1 = unlimited
  uint64_t every = 1;
  double latency_ms = 0.0;    // kLatency
  double torn_fraction = 0.5; // kTorn: fraction of bytes written before fail
  // Trigger state (owned by the injector).
  uint64_t hits = 0;
  int64_t fired = 0;
};

/// Parameters of a seeded random fault schedule.
struct ChaosOptions {
  uint64_t seed = 1;
  double p_fail = 0.01;     // per-op probability of an injected failure
  double p_enospc = 0.5;    // of failures: fraction that are ENOSPC (vs EIO)
  double p_torn = 0.25;     // of failed writes: fraction that land torn
  double p_latency = 0.0;   // per-op probability of an injected stall
  double max_latency_ms = 2.0;
  std::string path_substr;  // scope the schedule, e.g. to one test dir
  uint32_t ops = kAllIO;
};

/// Outcome of a write-shaped injection check. `prefix_bytes` is how much of
/// the payload the caller should persist before returning `status` — only
/// nonzero for torn writes.
struct WriteFaultResult {
  Status status;
  size_t prefix_bytes = 0;
};

class FaultInjector {
 public:
  static FaultInjector* Instance();

  /// Fast-path guard: false ⇒ no plan loaded, skip all injection logic.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  void AddRule(FaultRule rule);
  /// Parse a spec string (grammar above) and add its rules.
  Status LoadSpec(const std::string& spec);
  /// Drop every rule, stop chaos, clear the event log. Disarms the
  /// fast-path guard.
  void Reset();

  void StartChaos(const ChaosOptions& options);
  void StopChaos();
  bool chaos_running() const;
  /// Canonical spec string reproducing the running chaos schedule —
  /// printable as `I2MR_FAULTS='...'` for local replay.
  std::string ChaosSpec() const;

  /// Consult the plan for a non-write op. OK ⇒ proceed (possibly after an
  /// injected stall); error ⇒ the caller returns it without touching disk.
  Status MaybeFault(FaultOp op, const std::string& path);
  /// Consult the plan for a write of `len` bytes (Append/WriteStringToFile).
  WriteFaultResult MaybeWriteFault(FaultOp op, const std::string& path,
                                   size_t len);
  /// True ⇒ a kill-at-point rule fired for this named crash point; the
  /// caller simulates process death exactly as its legacy crash_hook did.
  bool AtCrashPoint(const std::string& point);

  uint64_t injections() const;
  /// The most recent injected faults, oldest first ("<kind> <op> <path>").
  std::vector<std::string> EventLog() const;
  std::string EventLogText() const;

 private:
  FaultInjector() = default;

  void RearmLocked();
  bool RuleFiresLocked(FaultRule* rule);
  void RecordLocked(FaultKind kind, FaultOp op, const std::string& path);
  Status MakeError(FaultKind kind, FaultOp op, const std::string& path);

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  bool chaos_on_ = false;
  ChaosOptions chaos_;
  Rng chaos_rng_{1};
  uint64_t injections_ = 0;
  std::deque<std::string> events_;
};

/// Injection check for error-only ops; inline so the disarmed case costs
/// one relaxed load.
inline Status Check(FaultOp op, const std::string& path) {
  if (!FaultInjector::Armed()) return Status::OK();
  return FaultInjector::Instance()->MaybeFault(op, path);
}

}  // namespace fault
}  // namespace i2mr

#endif  // I2MR_IO_FAULT_ENV_H_
