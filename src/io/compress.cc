#include "io/compress.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/codec.h"

namespace i2mr {
namespace {

constexpr uint32_t kLzMagic = 0x315a4c49;  // "ILZ1"
constexpr size_t kHeader = 4 + 8;          // magic + raw_len
constexpr size_t kMinMatch = 16;           // below this a match token loses
constexpr size_t kWindow = 1u << 20;       // max match distance
constexpr int kHashBits = 16;
// Decoded payloads are segment files (a few MB); anything claiming more
// than this is a corrupt or hostile header, not a real archive.
constexpr uint64_t kMaxRawLen = 1ull << 32;

inline uint32_t HashAt(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return static_cast<uint32_t>((v * 0x9e3779b97f4a7c15ull) >>
                               (64 - kHashBits));
}

void EmitLiterals(std::string_view in, size_t from, size_t to,
                  std::string* out) {
  if (from >= to) return;
  out->push_back(0x00);
  PutFixed32(out, static_cast<uint32_t>(to - from));
  out->append(in.data() + from, to - from);
}

}  // namespace

void LzCompress(std::string_view in, std::string* out) {
  PutFixed32(out, kLzMagic);
  PutFixed64(out, in.size());
  if (in.empty()) return;
  // Greedy match finder: one last-seen-position slot per 8-byte-prefix
  // hash. Collisions are verified byte-for-byte, so a bad slot only costs
  // a missed match, never a wrong one.
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0xffffffffu);
  size_t pos = 0, lit_start = 0;
  while (pos + sizeof(uint64_t) <= in.size()) {
    uint32_t h = HashAt(in.data() + pos);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (cand != 0xffffffffu && pos - cand <= kWindow) {
      size_t len = 0;
      size_t max = in.size() - pos;
      while (len < max && in[cand + len] == in[pos + len]) ++len;
      if (len >= kMinMatch) {
        EmitLiterals(in, lit_start, pos, out);
        out->push_back(0x01);
        PutFixed32(out, static_cast<uint32_t>(pos - cand));
        PutFixed32(out, static_cast<uint32_t>(len));
        pos += len;
        lit_start = pos;
        continue;
      }
    }
    ++pos;
  }
  EmitLiterals(in, lit_start, in.size(), out);
}

bool LzIsCompressed(std::string_view data) {
  return data.size() >= 4 && DecodeFixed32(data.data()) == kLzMagic;
}

Status LzDecompress(std::string_view in, std::string* out) {
  if (in.size() < kHeader || DecodeFixed32(in.data()) != kLzMagic) {
    return Status::Corruption("bad compressed frame header");
  }
  uint64_t raw_len = DecodeFixed64(in.data() + 4);
  if (raw_len > kMaxRawLen) {
    return Status::Corruption("compressed frame claims implausible size");
  }
  const size_t base = out->size();
  // The declared size is unauthenticated: reserve only what this input
  // could plausibly need and let genuinely high-ratio (RLE-heavy) frames
  // grow as their tokens validate, so a single corrupt header can't
  // trigger a multi-GiB allocation during recovery or shipping.
  out->reserve(base + static_cast<size_t>(std::min<uint64_t>(
                          raw_len, in.size() * 4 + (64u << 10))));
  size_t pos = kHeader;
  while (pos < in.size()) {
    uint8_t token = static_cast<uint8_t>(in[pos++]);
    if (token == 0x00) {
      if (in.size() - pos < 4) return Status::Corruption("torn literal token");
      uint32_t len = DecodeFixed32(in.data() + pos);
      pos += 4;
      if (len == 0 || in.size() - pos < len) {
        return Status::Corruption("torn literal run");
      }
      if (out->size() - base + len > raw_len) {
        return Status::Corruption("compressed frame overruns declared size");
      }
      out->append(in.data() + pos, len);
      pos += len;
    } else if (token == 0x01) {
      if (in.size() - pos < 8) return Status::Corruption("torn match token");
      uint32_t dist = DecodeFixed32(in.data() + pos);
      uint32_t len = DecodeFixed32(in.data() + pos + 4);
      pos += 8;
      size_t have = out->size() - base;
      if (dist == 0 || len == 0 || dist > have) {
        return Status::Corruption("match outside decoded window");
      }
      // Overrun is checked before expanding (not after), so a corrupt
      // match length can't balloon the buffer past the declared size.
      if (out->size() - base + len > raw_len) {
        return Status::Corruption("compressed frame overruns declared size");
      }
      // Byte-at-a-time: a match may overlap its own output (RLE-style).
      size_t from = out->size() - dist;
      for (uint32_t i = 0; i < len; ++i) out->push_back((*out)[from + i]);
    } else {
      return Status::Corruption("unknown compression token");
    }
  }
  if (out->size() - base != raw_len) {
    return Status::Corruption("compressed frame shorter than declared");
  }
  return Status::OK();
}

}  // namespace i2mr
