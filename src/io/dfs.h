// Dfs: a directory-backed stand-in for HDFS. A dataset is a directory of
// part files (one map task per part, mirroring one-task-per-block in the
// paper's setup). Also provides the durable checkpoint area used by the
// fault-tolerance machinery (§6 of the paper).
#ifndef I2MR_IO_DFS_H_
#define I2MR_IO_DFS_H_

#include <string>
#include <vector>

#include "common/kv.h"
#include "common/status.h"

namespace i2mr {

class Dfs {
 public:
  explicit Dfs(std::string root) : root_(std::move(root)) {}

  const std::string& root() const { return root_; }

  /// Create (or reset) a dataset directory.
  Status CreateDataset(const std::string& name);

  /// Full path of part file `idx` of a dataset ("part-00042").
  std::string PartPath(const std::string& name, int idx) const;

  /// Dataset directory path.
  std::string DatasetPath(const std::string& name) const;

  /// Sorted part files of a dataset. NotFound if the dataset is missing.
  StatusOr<std::vector<std::string>> Parts(const std::string& name) const;

  bool DatasetExists(const std::string& name) const;

  /// Write a dataset from in-memory records, split round-robin into
  /// `num_parts` part files.
  Status WriteDataset(const std::string& name, const std::vector<KV>& records,
                      int num_parts);

  /// Read every record of every part (part order, record order).
  StatusOr<std::vector<KV>> ReadDataset(const std::string& name) const;

  /// Same for delta datasets.
  Status WriteDeltaDataset(const std::string& name,
                           const std::vector<DeltaKV>& records, int num_parts);
  StatusOr<std::vector<DeltaKV>> ReadDeltaDataset(const std::string& name) const;

  /// Durable checkpoint area: copy a local file into / out of the Dfs.
  Status CheckpointIn(const std::string& local_path, const std::string& name);
  Status CheckpointOut(const std::string& name, const std::string& local_path) const;
  bool CheckpointExists(const std::string& name) const;

 private:
  std::string root_;
};

}  // namespace i2mr

#endif  // I2MR_IO_DFS_H_
