#include "io/dfs.h"

#include <cstdio>

#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace {

std::string PartName(int idx) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d", idx);
  return buf;
}

}  // namespace

Status Dfs::CreateDataset(const std::string& name) {
  return ResetDir(DatasetPath(name));
}

std::string Dfs::DatasetPath(const std::string& name) const {
  return JoinPath(root_, "data/" + name);
}

std::string Dfs::PartPath(const std::string& name, int idx) const {
  return JoinPath(DatasetPath(name), PartName(idx));
}

StatusOr<std::vector<std::string>> Dfs::Parts(const std::string& name) const {
  if (!FileExists(DatasetPath(name))) {
    return Status::NotFound("dataset " + name);
  }
  return ListFiles(DatasetPath(name));
}

bool Dfs::DatasetExists(const std::string& name) const {
  return FileExists(DatasetPath(name));
}

Status Dfs::WriteDataset(const std::string& name,
                         const std::vector<KV>& records, int num_parts) {
  if (num_parts <= 0) return Status::InvalidArgument("num_parts must be > 0");
  I2MR_RETURN_IF_ERROR(CreateDataset(name));
  std::vector<std::unique_ptr<RecordWriter>> writers;
  for (int i = 0; i < num_parts; ++i) {
    auto w = RecordWriter::Create(PartPath(name, i));
    if (!w.ok()) return w.status();
    writers.push_back(std::move(w.value()));
  }
  for (size_t i = 0; i < records.size(); ++i) {
    I2MR_RETURN_IF_ERROR(writers[i % num_parts]->Add(records[i]));
  }
  for (auto& w : writers) I2MR_RETURN_IF_ERROR(w->Close());
  return Status::OK();
}

StatusOr<std::vector<KV>> Dfs::ReadDataset(const std::string& name) const {
  auto parts = Parts(name);
  if (!parts.ok()) return parts.status();
  std::vector<KV> out;
  for (const auto& p : *parts) {
    auto recs = ReadRecords(p);
    if (!recs.ok()) return recs.status();
    out.insert(out.end(), recs->begin(), recs->end());
  }
  return out;
}

Status Dfs::WriteDeltaDataset(const std::string& name,
                              const std::vector<DeltaKV>& records,
                              int num_parts) {
  if (num_parts <= 0) return Status::InvalidArgument("num_parts must be > 0");
  I2MR_RETURN_IF_ERROR(CreateDataset(name));
  std::vector<std::unique_ptr<DeltaWriter>> writers;
  for (int i = 0; i < num_parts; ++i) {
    auto w = DeltaWriter::Create(PartPath(name, i));
    if (!w.ok()) return w.status();
    writers.push_back(std::move(w.value()));
  }
  for (size_t i = 0; i < records.size(); ++i) {
    I2MR_RETURN_IF_ERROR(writers[i % num_parts]->Add(records[i]));
  }
  for (auto& w : writers) I2MR_RETURN_IF_ERROR(w->Close());
  return Status::OK();
}

StatusOr<std::vector<DeltaKV>> Dfs::ReadDeltaDataset(
    const std::string& name) const {
  auto parts = Parts(name);
  if (!parts.ok()) return parts.status();
  std::vector<DeltaKV> out;
  for (const auto& p : *parts) {
    auto recs = ReadDeltaRecords(p);
    if (!recs.ok()) return recs.status();
    out.insert(out.end(), recs->begin(), recs->end());
  }
  return out;
}

Status Dfs::CheckpointIn(const std::string& local_path,
                         const std::string& name) {
  std::string dst = JoinPath(root_, "checkpoints/" + name);
  // Ensure parent directory exists.
  auto slash = dst.find_last_of('/');
  I2MR_RETURN_IF_ERROR(CreateDirs(dst.substr(0, slash)));
  return CopyFile(local_path, dst);
}

Status Dfs::CheckpointOut(const std::string& name,
                          const std::string& local_path) const {
  std::string src = JoinPath(root_, "checkpoints/" + name);
  if (!FileExists(src)) return Status::NotFound("checkpoint " + name);
  return CopyFile(src, local_path);
}

bool Dfs::CheckpointExists(const std::string& name) const {
  return FileExists(JoinPath(root_, "checkpoints/" + name));
}

}  // namespace i2mr
