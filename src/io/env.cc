#include "io/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "io/fault_env.h"

namespace i2mr {

namespace fs = std::filesystem;

Status CreateDirs(const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kMkdir, path));
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kRemove, path));
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto sz = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return static_cast<uint64_t>(sz);
}

Status RenameFile(const std::string& from, const std::string& to) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kRename, to));
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) return Status::IOError("rename " + from + " -> " + to + ": " + ec.message());
  return Status::OK();
}

Status CopyFile(const std::string& from, const std::string& to) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kLink, to));
  std::error_code ec;
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec) return Status::IOError("copy " + from + " -> " + to + ": " + ec.message());
  return Status::OK();
}

Status LinkOrCopyFile(const std::string& from, const std::string& to) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kLink, to));
  std::error_code ec;
  fs::remove(to, ec);  // link(2) refuses to replace an existing target
  if (ec) return Status::IOError("remove " + to + ": " + ec.message());
  fs::create_hard_link(from, to, ec);
  if (!ec) return Status::OK();
  return CopyFile(from, to);
}

Status SyncFile(const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kSync, path));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kSyncDir, dir));
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir " + dir + ": " + std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> ListFiles(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> out;
  for (auto it = fs::directory_iterator(dir, ec); !ec && it != fs::end(it); it.increment(ec)) {
    if (it->is_regular_file(ec)) out.push_back(it->path().string());
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

Status WriteStringToFile(const std::string& path, const std::string& data,
                         bool sync) {
  size_t write_len = data.size();
  Status injected_error;  // surfaced after the torn prefix (if any) lands
  if (fault::FaultInjector::Armed()) {
    auto injected = fault::FaultInjector::Instance()->MaybeWriteFault(
        fault::kWriteFile, path, data.size());
    if (!injected.status.ok()) {
      if (injected.prefix_bytes == 0) return injected.status;
      write_len = injected.prefix_bytes;  // torn write: land a prefix, fail
      injected_error = injected.status;
    }
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink " + path + ": " + std::strerror(errno));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open for write: " + path);
  size_t n = write_len == 0 ? 0 : std::fwrite(data.data(), 1, write_len, f);
  bool synced = true;
  if (sync && n == write_len) {
    synced = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  int rc = std::fclose(f);
  if (!injected_error.ok()) return injected_error;
  if (n != write_len || rc != 0 || !synced) {
    return Status::IOError("write: " + path);
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  I2MR_RETURN_IF_ERROR(fault::Check(fault::kOpenRead, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("open for read: " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return Status::IOError("read: " + path);
  return out;
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (!a.empty() && a.back() == '/') return a + b;
  return a + "/" + b;
}

Status ResetDir(const std::string& path) {
  I2MR_RETURN_IF_ERROR(RemoveAll(path));
  return CreateDirs(path);
}

}  // namespace i2mr
