// Kmeans clustering (paper Algorithm 3): all-to-one correlation — every
// point's Map instance depends on the single state kv-pair holding all
// centroids.
//
//   Map:    <pid, pval | {centroids}>  ->  <"centroids", partial sums>
//           (map-side aggregation in Flush: per-centroid count + vector sum)
//   Reduce: <"centroids", {partials}>  ->  new centroid set
//
// Because any input change updates the single state value, incremental
// refresh triggers global re-computation; the engine's P∆ detection turns
// MRBGraph maintenance off (§5.2) and re-computes iteratively from the
// previous converged centroids.
#ifndef I2MR_APPS_KMEANS_H_
#define I2MR_APPS_KMEANS_H_

#include <string>
#include <vector>

#include "core/iter_engine.h"

namespace i2mr {
namespace kmeans {

/// The single state key.
inline constexpr const char* kStateKey = "centroids";

/// Centroid-set codec: "cid=x1,x2,...;cid2=..." sorted by cid.
std::string EncodeCentroids(const std::vector<std::vector<double>>& centroids);
std::vector<std::vector<double>> DecodeCentroids(const std::string& dv);

/// Iterative spec. Point encoding: SK = padded pid, SV = "x1,x2,..."
/// (data/points_gen.h).
IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int max_iterations = 30, double epsilon = 1e-4);

/// Initial state: the first k points as centroids.
std::vector<KV> InitialState(const std::vector<KV>& points, int k);

/// Sequential Lloyd reference starting from the same initial centroids.
std::vector<std::vector<double>> Reference(
    const std::vector<KV>& points,
    std::vector<std::vector<double>> centroids, int max_iterations,
    double epsilon);

/// Max L2 distance between matching centroids of two sets.
double MaxCentroidDelta(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b);

/// Plain-MR Kmeans baseline: one MapReduce job per iteration, re-reading
/// the points dataset from the Dfs every time (paying the remote read and
/// the per-job startup that iterMR avoids). Centroids are broadcast to the
/// mappers (distributed-cache stand-in). Returns the final centroids.
StatusOr<std::vector<std::vector<double>>> RunPlainKmeansIterations(
    LocalCluster* cluster, const std::string& points_dataset,
    std::vector<std::vector<double>> centroids, int num_iterations,
    int num_reduce_tasks, double* wall_ms);

}  // namespace kmeans
}  // namespace i2mr

#endif  // I2MR_APPS_KMEANS_H_
