#include "apps/kmeans.h"

#include <cmath>
#include <map>
#include <memory>

#include "common/codec.h"
#include "common/logging.h"
#include "common/timer.h"
#include "data/points_gen.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace kmeans {
namespace {

double L2(const std::vector<double>& a, const std::vector<double>& b) {
  I2MR_CHECK(a.size() == b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

size_t NearestCentroid(const std::vector<double>& p,
                       const std::vector<std::vector<double>>& centroids) {
  size_t best = 0;
  double best_d = L2(p, centroids[0]);
  for (size_t c = 1; c < centroids.size(); ++c) {
    double d = L2(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

// Partial encoding: "cid:count:x1,x2,..." per assigned cluster.
struct Partial {
  int64_t count = 0;
  std::vector<double> sum;
};

std::string EncodePartials(const std::map<size_t, Partial>& partials) {
  std::string out;
  bool first = true;
  for (const auto& [cid, p] : partials) {
    if (!first) out.push_back(';');
    first = false;
    out += std::to_string(cid) + ":" + std::to_string(p.count) + ":" +
           JoinVector(p.sum);
  }
  return out;
}

void DecodePartialsInto(std::string_view s,
                        std::map<size_t, Partial>* partials) {
  size_t i = 0;
  while (i < s.size()) {
    size_t j = s.find(';', i);
    if (j == std::string_view::npos) j = s.size();
    std::string_view tok = s.substr(i, j - i);
    size_t c1 = tok.find(':');
    size_t c2 = tok.find(':', c1 + 1);
    I2MR_CHECK(c1 != std::string_view::npos && c2 != std::string_view::npos);
    size_t cid = *ParseNum(tok.substr(0, c1));
    int64_t count =
        static_cast<int64_t>(*ParseNum(tok.substr(c1 + 1, c2 - c1 - 1)));
    std::vector<double> sum = ParseVector(tok.substr(c2 + 1));
    auto& p = (*partials)[cid];
    if (p.sum.empty()) p.sum.resize(sum.size(), 0.0);
    p.count += count;
    for (size_t d = 0; d < sum.size(); ++d) p.sum[d] += sum[d];
    i = j + 1;
  }
}

// Map with map-side aggregation (paper Algorithm 3 + the local-count
// pattern): assignments are accumulated locally and emitted once in Flush.
class KmeansMapper : public IterMapper {
 public:
  void Map(const std::string& /*sk*/, const std::string& sv,
           const std::string& /*dk*/, const std::string& dv,
           MapContext* /*ctx*/) override {
    if (dv != cached_dv_) {
      centroids_ = DecodeCentroids(dv);
      cached_dv_ = dv;
    }
    I2MR_CHECK(!centroids_.empty()) << "no centroids in state";
    std::vector<double> p = ParseVector(sv);
    size_t cid = NearestCentroid(p, centroids_);
    auto& partial = partials_[cid];
    if (partial.sum.empty()) partial.sum.resize(p.size(), 0.0);
    partial.count += 1;
    for (size_t d = 0; d < p.size(); ++d) partial.sum[d] += p[d];
  }

  void Flush(MapContext* ctx) override {
    if (partials_.empty()) return;
    ctx->Emit(kStateKey, EncodePartials(partials_));
    partials_.clear();
  }

 private:
  std::string cached_dv_;
  std::vector<std::vector<double>> centroids_;
  std::map<size_t, Partial> partials_;
};

class KmeansReducer : public IterReducer {
 public:
  std::string Reduce(const std::string& /*dk*/,
                     const std::vector<std::string_view>& values,
                     const std::string* prev_dv) override {
    I2MR_CHECK(prev_dv != nullptr) << "kmeans reduce needs previous centroids";
    auto centroids = DecodeCentroids(*prev_dv);
    std::map<size_t, Partial> partials;
    for (const auto& v : values) DecodePartialsInto(v, &partials);
    for (const auto& [cid, p] : partials) {
      if (cid >= centroids.size() || p.count == 0) continue;
      auto& c = centroids[cid];
      for (size_t d = 0; d < c.size(); ++d) {
        c[d] = p.sum[d] / static_cast<double>(p.count);
      }
    }
    return EncodeCentroids(centroids);
  }
};

}  // namespace

std::string EncodeCentroids(const std::vector<std::vector<double>>& centroids) {
  std::string out;
  for (size_t c = 0; c < centroids.size(); ++c) {
    if (c > 0) out.push_back(';');
    out += std::to_string(c) + "=" + JoinVector(centroids[c]);
  }
  return out;
}

std::vector<std::vector<double>> DecodeCentroids(const std::string& dv) {
  std::vector<std::vector<double>> out;
  size_t i = 0;
  while (i < dv.size()) {
    size_t j = dv.find(';', i);
    if (j == std::string::npos) j = dv.size();
    std::string tok = dv.substr(i, j - i);
    size_t eq = tok.find('=');
    I2MR_CHECK(eq != std::string::npos) << "bad centroid: " << tok;
    size_t cid = *ParseNum(tok.substr(0, eq));
    if (out.size() <= cid) out.resize(cid + 1);
    out[cid] = ParseVector(tok.substr(eq + 1));
    i = j + 1;
  }
  return out;
}

IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int max_iterations, double epsilon) {
  IterJobSpec spec;
  spec.name = name;
  spec.num_partitions = num_partitions;
  spec.projector = std::make_shared<ConstProjector>(kStateKey);
  spec.mapper = [] { return std::make_unique<KmeansMapper>(); };
  spec.reducer = [] { return std::make_unique<KmeansReducer>(); };
  spec.difference = [](const std::string& cur, const std::string& prev) {
    if (prev.empty()) return 1e9;
    return MaxCentroidDelta(DecodeCentroids(cur), DecodeCentroids(prev));
  };
  spec.max_iterations = max_iterations;
  spec.convergence_epsilon = epsilon;
  spec.reduce_untouched_keys = false;
  return spec;
}

std::vector<KV> InitialState(const std::vector<KV>& points, int k) {
  std::vector<std::vector<double>> centroids;
  for (int i = 0; i < k && i < static_cast<int>(points.size()); ++i) {
    centroids.push_back(ParseVector(points[i].value));
  }
  return {KV{kStateKey, EncodeCentroids(centroids)}};
}

std::vector<std::vector<double>> Reference(
    const std::vector<KV>& points, std::vector<std::vector<double>> centroids,
    int max_iterations, double epsilon) {
  std::vector<std::vector<double>> pts;
  pts.reserve(points.size());
  for (const auto& kv : points) pts.push_back(ParseVector(kv.value));
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<Partial> partials(centroids.size());
    for (const auto& p : pts) {
      size_t cid = NearestCentroid(p, centroids);
      auto& pa = partials[cid];
      if (pa.sum.empty()) pa.sum.resize(p.size(), 0.0);
      pa.count += 1;
      for (size_t d = 0; d < p.size(); ++d) pa.sum[d] += p[d];
    }
    auto next = centroids;
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (partials[c].count == 0) continue;
      for (size_t d = 0; d < next[c].size(); ++d) {
        next[c][d] = partials[c].sum[d] / static_cast<double>(partials[c].count);
      }
    }
    double delta = MaxCentroidDelta(next, centroids);
    centroids = std::move(next);
    if (delta <= epsilon) break;
  }
  return centroids;
}

namespace {

// Plain-MR Kmeans mapper: centroids broadcast at construction; assignments
// aggregated locally, partials emitted per cid in Flush.
class PlainKmeansMapper : public Mapper {
 public:
  explicit PlainKmeansMapper(std::vector<std::vector<double>> centroids)
      : centroids_(std::move(centroids)) {}

  void Map(const std::string& /*key*/, const std::string& value,
           MapContext* /*ctx*/) override {
    std::vector<double> p = ParseVector(value);
    size_t cid = NearestCentroid(p, centroids_);
    auto& partial = partials_[cid];
    if (partial.sum.empty()) partial.sum.resize(p.size(), 0.0);
    partial.count += 1;
    for (size_t d = 0; d < p.size(); ++d) partial.sum[d] += p[d];
  }

  void Flush(MapContext* ctx) override {
    for (const auto& [cid, p] : partials_) {
      std::string enc = std::to_string(p.count) + ":" + JoinVector(p.sum);
      ctx->Emit(std::to_string(cid), enc);
    }
    partials_.clear();
  }

 private:
  std::vector<std::vector<double>> centroids_;
  std::map<size_t, Partial> partials_;
};

class PlainKmeansReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    Partial total;
    for (const auto& v : values) {
      size_t colon = v.find(':');
      int64_t count = static_cast<int64_t>(*ParseNum(v.substr(0, colon)));
      auto sum = ParseVector(v.substr(colon + 1));
      if (total.sum.empty()) total.sum.resize(sum.size(), 0.0);
      total.count += count;
      for (size_t d = 0; d < sum.size(); ++d) total.sum[d] += sum[d];
    }
    if (total.count == 0) return;
    std::vector<double> c(total.sum.size());
    for (size_t d = 0; d < c.size(); ++d) {
      c[d] = total.sum[d] / static_cast<double>(total.count);
    }
    ctx->Emit(key, JoinVector(c));
  }
};

}  // namespace

StatusOr<std::vector<std::vector<double>>> RunPlainKmeansIterations(
    LocalCluster* cluster, const std::string& points_dataset,
    std::vector<std::vector<double>> centroids, int num_iterations,
    int num_reduce_tasks, double* wall_ms) {
  WallTimer wall;
  auto parts = cluster->dfs()->Parts(points_dataset);
  if (!parts.ok()) return parts.status();
  for (int it = 1; it <= num_iterations; ++it) {
    JobSpec job;
    job.name = "plain-kmeans-it" + std::to_string(it);
    job.input_parts = *parts;
    auto snapshot = centroids;
    job.mapper = [snapshot] {
      return std::make_unique<PlainKmeansMapper>(snapshot);
    };
    job.reducer = [] { return std::make_unique<PlainKmeansReducer>(); };
    job.num_reduce_tasks = num_reduce_tasks;
    job.output_dir = JoinPath(cluster->root(),
                              "out/plain-kmeans-it" + std::to_string(it));
    JobResult result = cluster->RunJob(job);
    if (!result.ok()) return result.status;
    for (const auto& part : result.output_parts) {
      if (!FileExists(part)) continue;
      auto recs = ReadRecords(part);
      if (!recs.ok()) return recs.status();
      for (const auto& kv : *recs) {
        size_t cid = *ParseNum(kv.key);
        if (cid < centroids.size()) centroids[cid] = ParseVector(kv.value);
      }
    }
  }
  if (wall_ms != nullptr) *wall_ms = wall.ElapsedMillis();
  return centroids;
}

double MaxCentroidDelta(const std::vector<std::vector<double>>& a,
                        const std::vector<std::vector<double>>& b) {
  double max_d = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t c = 0; c < n; ++c) {
    if (a[c].empty() || b[c].empty()) continue;
    max_d = std::max(max_d, L2(a[c], b[c]));
  }
  if (a.size() != b.size()) max_d = std::max(max_d, 1e9);
  return max_d;
}

}  // namespace kmeans
}  // namespace i2mr
