// APriori frequent word-pair mining (paper §8.1.3): a one-step algorithm
// with accumulator Reduce.
//
// A preprocessing job computes the frequent single words (support >=
// min_support); the counting job then loads the frequent-word list in every
// Map task, counts candidate pairs per tweet with local aggregation, and
// sums global pair frequencies with an integer-sum accumulator — so
// incremental refreshes with insertion-only deltas (new tweets) fold
// directly into the preserved counts (§3.5).
#ifndef I2MR_APPS_APRIORI_H_
#define I2MR_APPS_APRIORI_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/kv.h"
#include "core/incr_job.h"
#include "mr/cluster.h"

namespace i2mr {
namespace apriori {

/// Pass 1: frequent single words (count >= min_support), computed with a
/// WordCount MapReduce job on `cluster`.
StatusOr<std::set<std::string>> FrequentWords(LocalCluster* cluster,
                                              const std::string& docs_dataset,
                                              uint64_t min_support);

/// Counting-pass spec (accumulator mode). `frequent` is the candidate
/// vocabulary loaded by every Map task.
IncrJobSpec MakeSpec(const std::string& name, int num_reduce_tasks,
                     std::set<std::string> frequent);

/// Pair key "w1|w2" with w1 < w2.
std::string PairKey(const std::string& a, const std::string& b);

/// Sequential reference: pair -> count over all docs (only pairs of frequent
/// words, counted once per distinct pair per doc).
std::map<std::string, uint64_t> Reference(const std::vector<KV>& docs,
                                          const std::set<std::string>& frequent);

}  // namespace apriori
}  // namespace i2mr

#endif  // I2MR_APPS_APRIORI_H_
