#include "apps/apriori.h"

#include <algorithm>
#include <memory>

#include "common/codec.h"
#include "apps/wordcount.h"
#include "io/env.h"
#include "io/record_file.h"

namespace i2mr {
namespace apriori {
namespace {

// Counts candidate pairs with per-task local aggregation (the paper's
// "local count per pair"), emitting totals in Flush.
class PairCountMapper : public Mapper {
 public:
  explicit PairCountMapper(const std::set<std::string>* frequent)
      : frequent_(frequent) {}

  void Map(const std::string& /*key*/, const std::string& value,
           MapContext* /*ctx*/) override {
    std::vector<std::string> words;
    for (const auto& w : wordcount::Tokenize(value)) {
      if (frequent_->count(w) > 0) words.push_back(w);
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    for (size_t a = 0; a < words.size(); ++a) {
      for (size_t b = a + 1; b < words.size(); ++b) {
        local_counts_[PairKey(words[a], words[b])]++;
      }
    }
  }

  void Flush(MapContext* ctx) override {
    for (const auto& [pair, count] : local_counts_) {
      ctx->Emit(pair, std::to_string(count));
    }
    local_counts_.clear();
  }

 private:
  const std::set<std::string>* frequent_;
  std::map<std::string, uint64_t> local_counts_;
};

}  // namespace

StatusOr<std::set<std::string>> FrequentWords(LocalCluster* cluster,
                                              const std::string& docs_dataset,
                                              uint64_t min_support) {
  auto parts = cluster->dfs()->Parts(docs_dataset);
  if (!parts.ok()) return parts.status();

  JobSpec spec;
  spec.name = "apriori-pass1";
  spec.input_parts = *parts;
  spec.mapper = [] {
    return std::make_unique<FnMapper>(
        [](const std::string&, const std::string& value, MapContext* ctx) {
          for (const auto& w : wordcount::Tokenize(value)) ctx->Emit(w, "1");
        });
  };
  auto sum = [] {
    return std::make_unique<FnReducer>(
        [](const std::string& key, const std::vector<std::string>& values,
           ReduceContext* ctx) {
          uint64_t total = 0;
          for (const auto& v : values) total += *ParseNum(v);
          ctx->Emit(key, std::to_string(total));
        });
  };
  spec.reducer = sum;
  spec.combiner = sum;
  spec.num_reduce_tasks = cluster->num_workers();
  spec.output_dir = JoinPath(cluster->root(), "out/apriori-pass1");
  JobResult result = cluster->RunJob(spec);
  if (!result.ok()) return result.status;

  std::set<std::string> frequent;
  for (const auto& part : result.output_parts) {
    if (!FileExists(part)) continue;
    auto recs = ReadRecords(part);
    if (!recs.ok()) return recs.status();
    for (const auto& kv : *recs) {
      if (*ParseNum(kv.value) >= min_support) frequent.insert(kv.key);
    }
  }
  return frequent;
}

IncrJobSpec MakeSpec(const std::string& name, int num_reduce_tasks,
                     std::set<std::string> frequent) {
  IncrJobSpec spec;
  spec.name = name;
  spec.num_reduce_tasks = num_reduce_tasks;
  auto shared = std::make_shared<std::set<std::string>>(std::move(frequent));
  spec.mapper = [shared] { return std::make_unique<PairCountMapper>(shared.get()); };
  spec.accumulate = [](const std::string& cur, const std::string& delta) {
    return std::to_string(*ParseNum(cur) + *ParseNum(delta));
  };
  return spec;
}

std::string PairKey(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

std::map<std::string, uint64_t> Reference(
    const std::vector<KV>& docs, const std::set<std::string>& frequent) {
  std::map<std::string, uint64_t> counts;
  for (const auto& kv : docs) {
    std::vector<std::string> words;
    for (const auto& w : wordcount::Tokenize(kv.value)) {
      if (frequent.count(w) > 0) words.push_back(w);
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    for (size_t a = 0; a < words.size(); ++a) {
      for (size_t b = a + 1; b < words.size(); ++b) {
        counts[PairKey(words[a], words[b])]++;
      }
    }
  }
  return counts;
}

}  // namespace apriori
}  // namespace i2mr
