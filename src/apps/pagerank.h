// PageRank (paper Algorithm 2): one-to-one correlation between structure
// (vertex -> out-neighbor set) and state (vertex -> ranking score).
//
//   Map:    <i, Ni|Ri>  ->  <j, Ri/|Ni|> for each j in Ni
//   Reduce: <j, {Ri,j}> ->  Rj = d * sum + (1 - d)
//
// Provides the i2MapReduce iterative formulation, the plain-MapReduce
// formulation (mixed structure|state records re-shuffled every iteration),
// the HaLoop two-job formulation (Algorithm 5), and a sequential reference.
#ifndef I2MR_APPS_PAGERANK_H_
#define I2MR_APPS_PAGERANK_H_

#include <string>
#include <vector>

#include "core/iter_engine.h"
#include "mr/api.h"

namespace i2mr {
namespace pagerank {

inline constexpr double kDamping = 0.85;

/// Iterative job spec for IterativeEngine / IncrementalIterativeEngine.
/// Graph encoding: SK = padded vertex id, SV = "j1 j2 ..." (see
/// data/graph_gen.h); DV = decimal rank.
IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int max_iterations = 50, double epsilon = 1e-6);

/// Sequential reference: power iteration with the same semantics
/// (Rj = d * sum_i Ri/|Ni| + (1-d), every vertex rescored per iteration).
std::vector<KV> Reference(const std::vector<KV>& graph, int max_iterations,
                          double epsilon);

/// Mean relative error of `state` vs `reference` (Fig. 10b metric).
double MeanError(const std::vector<KV>& state, const std::vector<KV>& reference);

// -- Plain MapReduce formulation (Algorithm 2 on vanilla MapReduce) ----------

/// Mixed input record value "j1 j2|rank".
std::string MixedValue(const std::string& adj, double rank);

/// Mapper/reducer for one plain-MR PageRank iteration over mixed records.
MapperFactory PlainMapper();
ReducerFactory PlainReducer();

// -- HaLoop formulation (Algorithm 5: two jobs per iteration) ----------------
// Structure records: <i, "S" + adjacency>; state records: <i, "R" + rank>.

MapperFactory HaLoopIdentityMapper();
/// Job 1 reduce: join rank with out-edges, emit <j, contribution>.
ReducerFactory HaLoopJoinReducer();
/// Job 2 reduce: sum contributions, emit <j, "R" + new rank>.
ReducerFactory HaLoopSumReducer();

}  // namespace pagerank
}  // namespace i2mr

#endif  // I2MR_APPS_PAGERANK_H_
