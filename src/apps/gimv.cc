#include "apps/gimv.h"

#include <cmath>
#include <map>
#include <memory>

#include "common/codec.h"
#include "common/logging.h"
#include "data/matrix_gen.h"
#include "data/points_gen.h"  // vector codecs

namespace i2mr {
namespace gimv {
namespace {

// combine2: multiply a sparse block with a vector block.
std::vector<double> MultiplyBlock(const std::vector<MatrixTriple>& triples,
                                  const std::vector<double>& v,
                                  int block_size) {
  std::vector<double> mv(block_size, 0.0);
  for (const auto& t : triples) {
    I2MR_CHECK(t.i < block_size && t.j < static_cast<int>(v.size()))
        << "triple out of range";
    mv[t.i] += t.val * v[t.j];
  }
  return mv;
}

class GimvMapper : public IterMapper {
 public:
  explicit GimvMapper(int block_size) : block_size_(block_size) {}

  void Map(const std::string& sk, const std::string& sv,
           const std::string& /*dk*/, const std::string& dv,
           MapContext* ctx) override {
    auto [r, c] = ParseBlockKey(sk);
    (void)c;
    auto mv = MultiplyBlock(ParseBlock(sv), ParseVector(dv), block_size_);
    ctx->Emit(PaddedNum(r, 6), JoinVector(mv));
  }

 private:
  int block_size_;
};

class GimvReducer : public IterReducer {
 public:
  GimvReducer(int block_size, double bias)
      : block_size_(block_size), bias_(bias) {}

  std::string Reduce(const std::string& /*dk*/,
                     const std::vector<std::string_view>& values,
                     const std::string* /*prev_dv*/) override {
    // combineAll + assign: v'_i = Σ_j mv_ij + bias.
    std::vector<double> sum(block_size_, bias_);
    for (const auto& v : values) {
      auto mv = ParseVector(v);
      for (int d = 0; d < block_size_ && d < static_cast<int>(mv.size()); ++d) {
        sum[d] += mv[d];
      }
    }
    return JoinVector(sum);
  }

 private:
  int block_size_;
  double bias_;
};

double VecDelta(const std::string& a, const std::string& b) {
  auto va = ParseVector(a);
  auto vb = b.empty() ? std::vector<double>(va.size(), 0.0) : ParseVector(b);
  double d = 0;
  for (size_t i = 0; i < va.size() && i < vb.size(); ++i) {
    d += std::abs(va[i] - vb[i]);
  }
  return d;
}

}  // namespace

IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int block_size, double bias, int max_iterations,
                         double epsilon) {
  IterJobSpec spec;
  spec.name = name;
  spec.num_partitions = num_partitions;
  // Block (i, j) depends on vector block j: project("i,j") = "j".
  spec.projector = std::make_shared<FnProjector>(
      [](const std::string& sk) {
        return PaddedNum(ParseBlockKey(sk).second, 6);
      },
      DepType::kManyToOne);
  spec.mapper = [block_size] { return std::make_unique<GimvMapper>(block_size); };
  spec.reducer = [block_size, bias] {
    return std::make_unique<GimvReducer>(block_size, bias);
  };
  spec.difference = [](const std::string& cur, const std::string& prev) {
    return VecDelta(cur, prev);
  };
  spec.max_iterations = max_iterations;
  spec.convergence_epsilon = epsilon;
  spec.reduce_untouched_keys = true;  // rows without blocks settle to bias
  return spec;
}

std::vector<KV> Reference(const std::vector<KV>& blocks,
                          const std::vector<KV>& init_vector, int block_size,
                          double bias, int max_iterations, double epsilon) {
  std::map<std::string, std::vector<double>> vec;
  for (const auto& kv : init_vector) vec[kv.key] = ParseVector(kv.value);
  for (int it = 0; it < max_iterations; ++it) {
    std::map<std::string, std::vector<double>> next;
    for (const auto& [k, v] : vec) {
      next[k] = std::vector<double>(v.size(), bias);
    }
    for (const auto& kv : blocks) {
      auto [r, c] = ParseBlockKey(kv.key);
      auto vit = vec.find(PaddedNum(c, 6));
      if (vit == vec.end()) continue;
      auto mv = MultiplyBlock(ParseBlock(kv.value), vit->second, block_size);
      auto& dst = next[PaddedNum(r, 6)];
      if (dst.empty()) dst.resize(block_size, bias);
      for (int d = 0; d < block_size; ++d) dst[d] += mv[d];
    }
    double diff = 0;
    for (const auto& [k, v] : next) {
      diff += VecDelta(JoinVector(v), vec.count(k) ? JoinVector(vec[k]) : "");
    }
    vec = std::move(next);
    if (diff <= epsilon) break;
  }
  std::vector<KV> out;
  for (const auto& [k, v] : vec) out.push_back(KV{k, JoinVector(v)});
  return out;
}

double MaxDelta(const std::vector<KV>& a, const std::vector<KV>& b) {
  std::map<std::string, std::vector<double>> bm;
  for (const auto& kv : b) bm[kv.key] = ParseVector(kv.value);
  double max_d = 0;
  for (const auto& kv : a) {
    auto it = bm.find(kv.key);
    if (it == bm.end()) {
      max_d = std::max(max_d, 1e18);
      continue;
    }
    auto va = ParseVector(kv.value);
    for (size_t i = 0; i < va.size() && i < it->second.size(); ++i) {
      max_d = std::max(max_d, std::abs(va[i] - it->second[i]));
    }
  }
  return max_d;
}

// ---------------------------------------------------------------------------
// Plain / HaLoop two-job formulation (Algorithm 4)
// ---------------------------------------------------------------------------

namespace {

// Map Phase 1: matrix records pass through keyed by block; vector records
// are broadcast to every block row.
class GimvPhase1Mapper : public Mapper {
 public:
  explicit GimvPhase1Mapper(int num_blocks) : num_blocks_(num_blocks) {}

  void Map(const std::string& key, const std::string& value,
           MapContext* ctx) override {
    I2MR_CHECK(!value.empty());
    if (value[0] == 'M') {
      ctx->Emit(key, value);
    } else {
      I2MR_CHECK(value[0] == 'V') << "bad gimv record";
      auto j = ParseNum(key);
      I2MR_CHECK(j.ok());
      for (int i = 0; i < num_blocks_; ++i) {
        ctx->Emit(BlockKey(i, static_cast<int>(*j)), value);
      }
    }
  }

 private:
  int num_blocks_;
};

// Reduce Phase 1: combine2 — multiply the block with the vector; pass the
// vector through to its own row group for assign in phase 2.
class GimvPhase1Reducer : public Reducer {
 public:
  explicit GimvPhase1Reducer(int block_size) : block_size_(block_size) {}

  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    auto [r, c] = ParseBlockKey(key);
    const std::string* block = nullptr;
    const std::string* vec = nullptr;
    for (const auto& v : values) {
      if (v[0] == 'M') block = &v;
      if (v[0] == 'V') vec = &v;
    }
    if (vec == nullptr) return;  // column has no vector block
    ctx->Emit(PaddedNum(c, 6), *vec);  // <j, vj> pass-through
    if (block == nullptr) return;
    auto mv = MultiplyBlock(ParseBlock(block->substr(1)),
                            ParseVector(vec->substr(1)), block_size_);
    ctx->Emit(PaddedNum(r, 6), "P" + JoinVector(mv));
  }

 private:
  int block_size_;
};

class GimvIdentityMapper : public Mapper {
 public:
  void Map(const std::string& key, const std::string& value,
           MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

// Reduce Phase 2: combineAll + assign.
class GimvPhase2Reducer : public Reducer {
 public:
  explicit GimvPhase2Reducer(double bias) : bias_(bias) {}

  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    std::vector<double> sum;
    for (const auto& v : values) {
      if (v[0] != 'P') continue;
      auto mv = ParseVector(v.substr(1));
      if (sum.empty()) sum.resize(mv.size(), 0.0);
      for (size_t d = 0; d < mv.size(); ++d) sum[d] += mv[d];
    }
    if (sum.empty()) {
      // No contributions: recover the dimension from the pass-through.
      for (const auto& v : values) {
        if (v[0] == 'V') {
          sum.resize(ParseVector(v.substr(1)).size(), 0.0);
          break;
        }
      }
    }
    for (auto& x : sum) x += bias_;
    ctx->Emit(key, "V" + JoinVector(sum));
  }

 private:
  double bias_;
};

}  // namespace

MapperFactory Phase1Mapper(int num_blocks) {
  return [num_blocks] { return std::make_unique<GimvPhase1Mapper>(num_blocks); };
}

ReducerFactory Phase1Reducer(int block_size) {
  return [block_size] {
    return std::make_unique<GimvPhase1Reducer>(block_size);
  };
}

MapperFactory Phase2Mapper() {
  return [] { return std::make_unique<GimvIdentityMapper>(); };
}

ReducerFactory Phase2Reducer(double bias) {
  return [bias] { return std::make_unique<GimvPhase2Reducer>(bias); };
}

}  // namespace gimv
}  // namespace i2mr
