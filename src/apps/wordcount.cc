#include "apps/wordcount.h"

#include <memory>

#include "common/codec.h"
#include "common/logging.h"

namespace i2mr {
namespace wordcount {
namespace {

class WordCountMapper : public Mapper {
 public:
  void Map(const std::string& /*key*/, const std::string& value,
           MapContext* ctx) override {
    for (const auto& w : Tokenize(value)) ctx->Emit(w, "1");
  }
};

// MRBG-mode mapper: one emission per distinct word per document (an
// MRBGraph edge (K2, MK) is unique per Map instance, so per-word counts are
// pre-aggregated within the document).
class DocWordCountMapper : public Mapper {
 public:
  void Map(const std::string& /*key*/, const std::string& value,
           MapContext* ctx) override {
    std::map<std::string, uint64_t> local;
    for (const auto& w : Tokenize(value)) local[w]++;
    for (const auto& [w, c] : local) ctx->Emit(w, std::to_string(c));
  }
};

class SumReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    uint64_t total = 0;
    for (const auto& v : values) total += *ParseNum(v);
    ctx->Emit(key, std::to_string(total));
  }
};

}  // namespace

IncrJobSpec MakeSpec(const std::string& name, int num_reduce_tasks) {
  IncrJobSpec spec;
  spec.name = name;
  spec.num_reduce_tasks = num_reduce_tasks;
  spec.mapper = [] { return std::make_unique<WordCountMapper>(); };
  spec.accumulate = [](const std::string& cur, const std::string& delta) {
    return std::to_string(*ParseNum(cur) + *ParseNum(delta));
  };
  return spec;
}

IncrJobSpec MakeMrbgSpec(const std::string& name, int num_reduce_tasks) {
  IncrJobSpec spec;
  spec.name = name;
  spec.num_reduce_tasks = num_reduce_tasks;
  spec.mapper = [] { return std::make_unique<DocWordCountMapper>(); };
  spec.reducer = [] { return std::make_unique<SumReducer>(); };
  return spec;
}

std::map<std::string, uint64_t> Reference(const std::vector<KV>& docs) {
  std::map<std::string, uint64_t> counts;
  for (const auto& kv : docs) {
    for (const auto& w : Tokenize(kv.value)) counts[w]++;
  }
  return counts;
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    size_t j = text.find(' ', i);
    if (j == std::string::npos) j = text.size();
    if (j > i) out.push_back(text.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

}  // namespace wordcount
}  // namespace i2mr
