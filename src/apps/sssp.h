// Single-Source Shortest Path (one-to-one correlation): iterative distance
// relaxation over a weighted graph.
//
//   Map:    <i, edges|di>  ->  <j, di + w(i,j)> for each out-edge
//   Reduce: <j, {cand}>    ->  dj = min(cands, j == source ? 0 : inf)
//
// With filter threshold 0 the incremental refresh propagates only vertices
// whose distance actually changed, so results are exact (paper §8.2).
#ifndef I2MR_APPS_SSSP_H_
#define I2MR_APPS_SSSP_H_

#include <string>
#include <vector>

#include "core/iter_engine.h"

namespace i2mr {
namespace sssp {

/// "Infinite" distance sentinel (unreachable).
inline constexpr double kInf = 1e30;

/// Iterative spec. Graph encoding: SV = "j1:w1 j2:w2" (data/graph_gen.h
/// weighted form); DV = decimal distance.
IterJobSpec MakeIterSpec(const std::string& name, const std::string& source,
                         int num_partitions, int max_iterations = 100);

/// Sequential Dijkstra reference. Returns distances for every vertex
/// reachable from `source` plus all structure keys (unreachable = kInf).
std::vector<KV> Reference(const std::vector<KV>& graph,
                          const std::string& source);

/// Fraction of vertices whose engine distance differs from the reference by
/// more than `tol` (0 for an exact refresh).
double ErrorRate(const std::vector<KV>& state, const std::vector<KV>& reference,
                 double tol = 1e-9);

// -- Plain MapReduce formulation (mixed "edges|dist" records) ----------------

std::string MixedValue(const std::string& edges, double dist);
MapperFactory PlainMapper();
ReducerFactory PlainReducer(const std::string& source);

// -- HaLoop two-job formulation ----------------------------------------------
// Structure records: <i, "S" + edges>; state records: <i, "R" + dist>.

MapperFactory HaLoopIdentityMapper();
ReducerFactory HaLoopJoinReducer();
ReducerFactory HaLoopMinReducer(const std::string& source);

}  // namespace sssp
}  // namespace i2mr

#endif  // I2MR_APPS_SSSP_H_
