#include "apps/pagerank.h"

#include <cmath>
#include <map>
#include <memory>

#include "common/codec.h"
#include "common/logging.h"
#include "data/graph_gen.h"

namespace i2mr {
namespace pagerank {
namespace {

double ParseRank(std::string_view s) {
  if (s.empty()) return 0.0;
  auto d = ParseDouble(s);
  I2MR_CHECK(d.ok()) << "bad rank: " << s;
  return *d;
}

class PageRankMapper : public IterMapper {
 public:
  void Map(const std::string& /*sk*/, const std::string& sv,
           const std::string& /*dk*/, const std::string& dv,
           MapContext* ctx) override {
    auto dests = ParseAdjacency(sv);
    if (dests.empty()) return;
    double share = ParseRank(dv) / static_cast<double>(dests.size());
    std::string encoded = FormatDouble(share);
    for (const auto& j : dests) ctx->Emit(j, encoded);
  }
};

class PageRankReducer : public IterReducer {
 public:
  std::string Reduce(const std::string& /*dk*/,
                     const std::vector<std::string_view>& values,
                     const std::string* /*prev_dv*/) override {
    double sum = 0;
    for (const auto& v : values) sum += ParseRank(v);
    return FormatDouble(kDamping * sum + (1 - kDamping));
  }
};

}  // namespace

IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int max_iterations, double epsilon) {
  IterJobSpec spec;
  spec.name = name;
  spec.num_partitions = num_partitions;
  spec.projector = std::make_shared<IdentityProjector>();
  spec.mapper = [] { return std::make_unique<PageRankMapper>(); };
  spec.reducer = [] { return std::make_unique<PageRankReducer>(); };
  spec.difference = [](const std::string& cur, const std::string& prev) {
    return std::abs(ParseRank(cur) - ParseRank(prev));
  };
  spec.init_state = [](const std::string&) { return std::string("1"); };
  spec.max_iterations = max_iterations;
  spec.convergence_epsilon = epsilon;
  spec.reduce_untouched_keys = true;
  return spec;
}

std::vector<KV> Reference(const std::vector<KV>& graph, int max_iterations,
                          double epsilon) {
  std::map<std::string, std::vector<std::string>> adj;
  std::map<std::string, double> rank;
  for (const auto& kv : graph) {
    adj[kv.key] = ParseAdjacency(kv.value);
    rank[kv.key] = 1.0;
    for (const auto& j : adj[kv.key]) {
      if (rank.count(j) == 0) rank[j] = 1.0;
    }
  }
  for (int it = 0; it < max_iterations; ++it) {
    std::map<std::string, double> incoming;
    for (const auto& [k, _] : rank) incoming[k] = 0.0;
    for (const auto& [i, dests] : adj) {
      if (dests.empty()) continue;
      double share = rank[i] / static_cast<double>(dests.size());
      for (const auto& j : dests) incoming[j] += share;
    }
    double diff = 0;
    for (auto& [k, r] : rank) {
      double next = kDamping * incoming[k] + (1 - kDamping);
      diff += std::abs(next - r);
      r = next;
    }
    if (diff <= epsilon) break;
  }
  std::vector<KV> out;
  for (const auto& [k, r] : rank) out.push_back(KV{k, FormatDouble(r)});
  return out;
}

double MeanError(const std::vector<KV>& state,
                 const std::vector<KV>& reference) {
  std::map<std::string, double> ref;
  for (const auto& kv : reference) ref[kv.key] = ParseRank(kv.value);
  if (ref.empty()) return 0;
  double total = 0;
  size_t n = 0;
  for (const auto& kv : state) {
    auto it = ref.find(kv.key);
    if (it == ref.end()) continue;
    double denom = std::abs(it->second) > 1e-12 ? std::abs(it->second) : 1.0;
    total += std::abs(ParseRank(kv.value) - it->second) / denom;
    ++n;
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

// ---------------------------------------------------------------------------
// Plain MapReduce formulation
// ---------------------------------------------------------------------------

std::string MixedValue(const std::string& adj, double rank) {
  return adj + "|" + FormatDouble(rank);
}

namespace {

// Map phase of Algorithm 2: parse the mixed record, pass the structure
// through the shuffle ("S"-tagged) and send rank shares ("R"-tagged).
class PlainPageRankMapper : public Mapper {
 public:
  void Map(const std::string& key, const std::string& value,
           MapContext* ctx) override {
    size_t bar = value.rfind('|');
    I2MR_CHECK(bar != std::string::npos) << "bad mixed record: " << value;
    std::string adj = value.substr(0, bar);
    double rank = ParseRank(value.substr(bar + 1));
    ctx->Emit(key, "S" + adj);
    auto dests = ParseAdjacency(adj);
    if (dests.empty()) return;
    std::string share = FormatDouble(rank / static_cast<double>(dests.size()));
    for (const auto& j : dests) ctx->Emit(j, "R" + share);
  }
};

class PlainPageRankReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    std::string adj;
    double sum = 0;
    for (const auto& v : values) {
      I2MR_CHECK(!v.empty());
      if (v[0] == 'S') {
        adj = v.substr(1);
      } else {
        sum += ParseRank(v.substr(1));
      }
    }
    ctx->Emit(key, MixedValue(adj, kDamping * sum + (1 - kDamping)));
  }
};

class IdentityMapper : public Mapper {
 public:
  void Map(const std::string& key, const std::string& value,
           MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

// HaLoop job-1 reduce (Algorithm 5 Reduce Phase 1): joins <i, Ri> with
// <i, Ni> and emits rank shares; also emits a zero self-contribution so
// that vertices without in-links survive to job 2.
class HaLoopJoinReducerImpl : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    std::string adj;
    double rank = 1.0;
    for (const auto& v : values) {
      I2MR_CHECK(!v.empty());
      if (v[0] == 'S') {
        adj = v.substr(1);
      } else {
        rank = ParseRank(v.substr(1));
      }
    }
    ctx->Emit(key, "0");  // keep-alive zero contribution
    auto dests = ParseAdjacency(adj);
    if (dests.empty()) return;
    std::string share = FormatDouble(rank / static_cast<double>(dests.size()));
    for (const auto& j : dests) ctx->Emit(j, share);
  }
};

class HaLoopSumReducerImpl : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    double sum = 0;
    for (const auto& v : values) sum += ParseRank(v);
    ctx->Emit(key, "R" + FormatDouble(kDamping * sum + (1 - kDamping)));
  }
};

}  // namespace

MapperFactory PlainMapper() {
  return [] { return std::make_unique<PlainPageRankMapper>(); };
}

ReducerFactory PlainReducer() {
  return [] { return std::make_unique<PlainPageRankReducer>(); };
}

MapperFactory HaLoopIdentityMapper() {
  return [] { return std::make_unique<IdentityMapper>(); };
}

ReducerFactory HaLoopJoinReducer() {
  return [] { return std::make_unique<HaLoopJoinReducerImpl>(); };
}

ReducerFactory HaLoopSumReducer() {
  return [] { return std::make_unique<HaLoopSumReducerImpl>(); };
}

}  // namespace pagerank
}  // namespace i2mr
