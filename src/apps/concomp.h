// Connected Components via iterative label propagation (the paper cites
// connected components as one of the graph-mining operations expressible
// in the GIM-V family, §4.1). One-to-one correlation, like PageRank:
//
//   state:  DV = component label (the smallest vertex id seen so far)
//   Map:    <i, Ni | ci>  ->  <j, ci> for each neighbor j
//   Reduce: <j, {ci}>     ->  cj = min(cj_prev, min{ci})
//
// Labels only decrease, so an incremental refresh with edge/vertex
// *insertions* from the converged labels is exact with filter threshold 0
// (component merges propagate; unchanged components are untouched).
// Deletions can split components, which monotone propagation cannot undo —
// the engine's re-computation fallback (maintain_mrbg = false) covers that
// case; see README "implementation limits".
#ifndef I2MR_APPS_CONCOMP_H_
#define I2MR_APPS_CONCOMP_H_

#include <string>
#include <vector>

#include "core/iter_engine.h"

namespace i2mr {
namespace concomp {

/// Iterative spec. Graph encoding as data/graph_gen.h (unweighted); run on
/// a symmetrized graph for true (undirected) connected components.
IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int max_iterations = 100);

/// Initial state: every vertex is its own component.
std::vector<KV> InitialState(const std::vector<KV>& graph);

/// Make the adjacency symmetric (adds the reverse of every edge).
std::vector<KV> Symmetrize(const std::vector<KV>& graph);

/// Union-find reference: vertex -> component label (smallest member id).
std::vector<KV> Reference(const std::vector<KV>& graph);

/// Fraction of vertices whose label differs from the reference.
double ErrorRate(const std::vector<KV>& state, const std::vector<KV>& reference);

}  // namespace concomp
}  // namespace i2mr

#endif  // I2MR_APPS_CONCOMP_H_
