// GIM-V: Generalized Iterated Matrix-Vector multiplication (paper §4.1,
// Algorithm 4), many-to-one correlation — matrix blocks (·, j) depend on
// vector block v_j. The concrete instantiation is damped iterated
// matrix-vector multiplication (as in the paper's evaluation):
//
//   combine2(m_ij, v_j) = m_ij × v_j
//   combineAll_i({mv})  = Σ_j mv_ij
//   assign(v_i, v'_i)   = v'_i + (1 - scale) * v0   (affine damping)
//
// With i2MapReduce's Project API this needs a single MapReduce phase per
// iteration instead of Algorithm 4's two jobs.
#ifndef I2MR_APPS_GIMV_H_
#define I2MR_APPS_GIMV_H_

#include <string>
#include <vector>

#include "core/iter_engine.h"
#include "mr/api.h"

namespace i2mr {
namespace gimv {

/// Iterative spec. Block encoding per data/matrix_gen.h. `bias` is the
/// constant term added to every component each iteration (keeps the
/// iteration affine and convergent for sub-stochastic matrices).
IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int block_size, double bias = 0.15,
                         int max_iterations = 50, double epsilon = 1e-9);

/// Sequential reference with identical semantics.
std::vector<KV> Reference(const std::vector<KV>& blocks,
                          const std::vector<KV>& init_vector, int block_size,
                          double bias, int max_iterations, double epsilon);

/// Max absolute component difference between two vector-block states.
double MaxDelta(const std::vector<KV>& a, const std::vector<KV>& b);

// -- Plain / HaLoop two-job formulation (Algorithm 4) -------------------------
// Job 1: matrix dataset <"(i,j)", "M"+block> plus vector dataset
// <j, "V"+vec> keyed by block column; reduce performs combine2.
// Job 2: groups mv_ij by row i with v_i; reduce performs combineAll+assign.

MapperFactory Phase1Mapper(int num_blocks);
ReducerFactory Phase1Reducer(int block_size);
MapperFactory Phase2Mapper();
ReducerFactory Phase2Reducer(double bias);

}  // namespace gimv
}  // namespace i2mr

#endif  // I2MR_APPS_GIMV_H_
