// WordCount: the canonical accumulator-Reduce example (paper §3.5 —
// "A well-known example is WordCount. The Reduce function ... uses an
// integer sum operation").
#ifndef I2MR_APPS_WORDCOUNT_H_
#define I2MR_APPS_WORDCOUNT_H_

#include <map>
#include <string>
#include <vector>

#include "common/kv.h"
#include "core/incr_job.h"

namespace i2mr {
namespace wordcount {

/// IncrJobSpec in accumulator mode (integer-sum '⊕').
IncrJobSpec MakeSpec(const std::string& name, int num_reduce_tasks);

/// IncrJobSpec in MRBGraph mode (same semantics, preserves fine-grain
/// state; supports deletions) — used to cross-check the two engines.
IncrJobSpec MakeMrbgSpec(const std::string& name, int num_reduce_tasks);

/// Sequential reference.
std::map<std::string, uint64_t> Reference(const std::vector<KV>& docs);

/// Tokenize on single spaces.
std::vector<std::string> Tokenize(const std::string& text);

}  // namespace wordcount
}  // namespace i2mr

#endif  // I2MR_APPS_WORDCOUNT_H_
