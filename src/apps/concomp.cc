#include "apps/concomp.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/logging.h"
#include "data/graph_gen.h"

namespace i2mr {
namespace concomp {
namespace {

class ConCompMapper : public IterMapper {
 public:
  void Map(const std::string& /*sk*/, const std::string& sv,
           const std::string& /*dk*/, const std::string& dv,
           MapContext* ctx) override {
    for (const auto& j : ParseAdjacency(sv)) ctx->Emit(j, dv);
  }
};

class ConCompReducer : public IterReducer {
 public:
  std::string Reduce(const std::string& dk,
                     const std::vector<std::string_view>& values,
                     const std::string* prev_dv) override {
    // Labels are padded decimal ids: lexicographic order == numeric order.
    std::string best = prev_dv != nullptr ? *prev_dv : dk;
    for (const auto& v : values) {
      if (v < best) best.assign(v);
    }
    return best;
  }
};

// Union-find with path compression.
class UnionFind {
 public:
  std::string Find(const std::string& x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    if (it->second == x) return x;
    std::string root = Find(it->second);
    parent_[x] = root;
    return root;
  }

  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra == rb) return;
    // Smaller id becomes the root so labels match the propagation fixpoint.
    if (rb < ra) std::swap(ra, rb);
    parent_[rb] = ra;
  }

  const std::map<std::string, std::string>& nodes() const { return parent_; }

 private:
  std::map<std::string, std::string> parent_;
};

}  // namespace

IterJobSpec MakeIterSpec(const std::string& name, int num_partitions,
                         int max_iterations) {
  IterJobSpec spec;
  spec.name = name;
  spec.num_partitions = num_partitions;
  spec.projector = std::make_shared<IdentityProjector>();
  spec.mapper = [] { return std::make_unique<ConCompMapper>(); };
  spec.reducer = [] { return std::make_unique<ConCompReducer>(); };
  spec.difference = [](const std::string& cur, const std::string& prev) {
    return cur == prev ? 0.0 : 1.0;
  };
  spec.init_state = [](const std::string& dk) { return dk; };
  spec.max_iterations = max_iterations;
  spec.convergence_epsilon = 0.0;  // exact fixpoint
  spec.reduce_untouched_keys = false;
  return spec;
}

std::vector<KV> InitialState(const std::vector<KV>& graph) {
  std::vector<KV> state;
  state.reserve(graph.size());
  for (const auto& kv : graph) state.push_back(KV{kv.key, kv.key});
  return state;
}

std::vector<KV> Symmetrize(const std::vector<KV>& graph) {
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& kv : graph) {
    auto& out = adj[kv.key];
    for (const auto& j : ParseAdjacency(kv.value)) {
      out.insert(j);
      adj[j].insert(kv.key);
    }
  }
  std::vector<KV> result;
  result.reserve(adj.size());
  for (const auto& [v, dests] : adj) {
    result.push_back(
        KV{v, JoinAdjacency(std::vector<std::string>(dests.begin(), dests.end()))});
  }
  return result;
}

std::vector<KV> Reference(const std::vector<KV>& graph) {
  UnionFind uf;
  for (const auto& kv : graph) {
    uf.Find(kv.key);
    for (const auto& j : ParseAdjacency(kv.value)) uf.Union(kv.key, j);
  }
  std::vector<KV> out;
  for (const auto& [v, _] : uf.nodes()) out.push_back(KV{v, uf.Find(v)});
  return out;
}

double ErrorRate(const std::vector<KV>& state,
                 const std::vector<KV>& reference) {
  std::map<std::string, std::string> got;
  for (const auto& kv : state) got[kv.key] = kv.value;
  if (reference.empty()) return 0;
  size_t wrong = 0;
  for (const auto& kv : reference) {
    auto it = got.find(kv.key);
    if (it == got.end() || it->second != kv.value) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(reference.size());
}

}  // namespace concomp
}  // namespace i2mr
