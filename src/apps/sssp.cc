#include "apps/sssp.h"

#include <cmath>
#include <map>
#include <memory>
#include <queue>

#include "common/codec.h"
#include "common/logging.h"
#include "data/graph_gen.h"

namespace i2mr {
namespace sssp {
namespace {

double ParseDist(std::string_view s) {
  if (s.empty()) return kInf;
  auto d = ParseDouble(s);
  I2MR_CHECK(d.ok()) << "bad distance: " << s;
  return *d;
}

class SsspMapper : public IterMapper {
 public:
  void Map(const std::string& /*sk*/, const std::string& sv,
           const std::string& /*dk*/, const std::string& dv,
           MapContext* ctx) override {
    double dist = ParseDist(dv);
    if (dist >= kInf) return;  // unreachable: nothing to relax
    for (const auto& [j, w] : ParseWeightedAdjacency(sv)) {
      ctx->Emit(j, FormatDouble(dist + w));
    }
  }
};

class SsspReducer : public IterReducer {
 public:
  explicit SsspReducer(std::string source) : source_(std::move(source)) {}

  std::string Reduce(const std::string& dk,
                     const std::vector<std::string_view>& values,
                     const std::string* /*prev_dv*/) override {
    double best = dk == source_ ? 0.0 : kInf;
    for (const auto& v : values) best = std::min(best, ParseDist(v));
    return FormatDouble(best);
  }

 private:
  std::string source_;
};

}  // namespace

IterJobSpec MakeIterSpec(const std::string& name, const std::string& source,
                         int num_partitions, int max_iterations) {
  IterJobSpec spec;
  spec.name = name;
  spec.num_partitions = num_partitions;
  spec.projector = std::make_shared<IdentityProjector>();
  spec.mapper = [] { return std::make_unique<SsspMapper>(); };
  spec.reducer = [source] { return std::make_unique<SsspReducer>(source); };
  spec.difference = [](const std::string& cur, const std::string& prev) {
    double c = ParseDist(cur), p = ParseDist(prev);
    if (c >= kInf && p >= kInf) return 0.0;
    if (c >= kInf || p >= kInf) return kInf;
    return std::abs(c - p);
  };
  spec.init_state = [source](const std::string& dk) {
    return FormatDouble(dk == source ? 0.0 : kInf);
  };
  spec.max_iterations = max_iterations;
  spec.convergence_epsilon = 0.0;  // exact fixpoint
  spec.reduce_untouched_keys = false;
  return spec;
}

std::vector<KV> Reference(const std::vector<KV>& graph,
                          const std::string& source) {
  std::map<std::string, std::vector<std::pair<std::string, double>>> adj;
  std::map<std::string, double> dist;
  for (const auto& kv : graph) {
    adj[kv.key] = ParseWeightedAdjacency(kv.value);
    dist.emplace(kv.key, kInf);
    for (const auto& [j, w] : adj[kv.key]) {
      (void)w;
      dist.emplace(j, kInf);
    }
  }
  using Item = std::pair<double, std::string>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  if (dist.count(source) > 0) {
    dist[source] = 0;
    pq.push({0, source});
  }
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (const auto& [v, w] : it->second) {
      if (d + w < dist[v]) {
        dist[v] = d + w;
        pq.push({dist[v], v});
      }
    }
  }
  std::vector<KV> out;
  for (const auto& [k, d] : dist) out.push_back(KV{k, FormatDouble(d)});
  return out;
}

// ---------------------------------------------------------------------------
// Plain / HaLoop formulations
// ---------------------------------------------------------------------------

std::string MixedValue(const std::string& edges, double dist) {
  return edges + "|" + FormatDouble(dist);
}

namespace {

class PlainSsspMapper : public Mapper {
 public:
  void Map(const std::string& key, const std::string& value,
           MapContext* ctx) override {
    size_t bar = value.rfind('|');
    I2MR_CHECK(bar != std::string::npos) << "bad mixed sssp record";
    std::string edges = value.substr(0, bar);
    double dist = ParseDist(value.substr(bar + 1));
    ctx->Emit(key, "S" + edges);
    if (dist >= kInf) return;
    for (const auto& [j, w] : ParseWeightedAdjacency(edges)) {
      ctx->Emit(j, "R" + FormatDouble(dist + w));
    }
  }
};

class PlainSsspReducer : public Reducer {
 public:
  explicit PlainSsspReducer(std::string source) : source_(std::move(source)) {}

  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    std::string edges;
    double best = key == source_ ? 0.0 : kInf;
    for (const auto& v : values) {
      if (v[0] == 'S') {
        edges = v.substr(1);
      } else {
        best = std::min(best, ParseDist(v.substr(1)));
      }
    }
    ctx->Emit(key, MixedValue(edges, best));
  }

 private:
  std::string source_;
};

class SsspIdentityMapper : public Mapper {
 public:
  void Map(const std::string& key, const std::string& value,
           MapContext* ctx) override {
    ctx->Emit(key, value);
  }
};

class HaLoopSsspJoinReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    std::string edges;
    double dist = kInf;
    for (const auto& v : values) {
      if (v[0] == 'S') {
        edges = v.substr(1);
      } else {
        dist = ParseDist(v.substr(1));
      }
    }
    ctx->Emit(key, "K");  // keep-alive so every vertex reaches job 2
    if (dist >= kInf) return;
    for (const auto& [j, w] : ParseWeightedAdjacency(edges)) {
      ctx->Emit(j, FormatDouble(dist + w));
    }
  }
};

class HaLoopSsspMinReducer : public Reducer {
 public:
  explicit HaLoopSsspMinReducer(std::string source)
      : source_(std::move(source)) {}

  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext* ctx) override {
    double best = key == source_ ? 0.0 : kInf;
    for (const auto& v : values) {
      if (v == "K") continue;
      best = std::min(best, ParseDist(v));
    }
    ctx->Emit(key, "R" + FormatDouble(best));
  }

 private:
  std::string source_;
};

}  // namespace

MapperFactory PlainMapper() {
  return [] { return std::make_unique<PlainSsspMapper>(); };
}

ReducerFactory PlainReducer(const std::string& source) {
  return [source] { return std::make_unique<PlainSsspReducer>(source); };
}

MapperFactory HaLoopIdentityMapper() {
  return [] { return std::make_unique<SsspIdentityMapper>(); };
}

ReducerFactory HaLoopJoinReducer() {
  return [] { return std::make_unique<HaLoopSsspJoinReducer>(); };
}

ReducerFactory HaLoopMinReducer(const std::string& source) {
  return [source] { return std::make_unique<HaLoopSsspMinReducer>(source); };
}

double ErrorRate(const std::vector<KV>& state, const std::vector<KV>& reference,
                 double tol) {
  std::map<std::string, double> ref;
  for (const auto& kv : reference) ref[kv.key] = ParseDist(kv.value);
  if (ref.empty()) return 0;
  std::map<std::string, double> got_map;
  for (const auto& kv : state) got_map[kv.key] = ParseDist(kv.value);
  size_t wrong = 0;
  for (const auto& [k, d] : ref) {
    auto it = got_map.find(k);
    double got = it == got_map.end() ? kInf : it->second;
    bool both_inf = got >= kInf && d >= kInf;
    if (!both_inf && std::abs(got - d) > tol) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(ref.size());
}

}  // namespace sssp
}  // namespace i2mr
