// LocalCluster: the MapReduce runtime. Emulates a JobTracker + N
// TaskTracker workers with a thread pool, per-worker local directories,
// a directory-backed Dfs, and a CostModel for cluster overheads.
#ifndef I2MR_MR_CLUSTER_H_
#define I2MR_MR_CLUSTER_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "io/dfs.h"
#include "mr/cost_model.h"
#include "mr/job.h"

namespace i2mr {

class LocalCluster {
 public:
  /// Creates the cluster working directory layout under `root`:
  ///   <root>/dfs/       durable "distributed" storage + checkpoints
  ///   <root>/workers/   per-worker local state (MRBG files, caches)
  ///   <root>/jobs/      per-job shuffle spill space
  /// With `reset` (the default) any previous contents of `root` are wiped;
  /// pass reset=false to re-attach to an existing root and keep durable
  /// state (pipeline logs, committed epochs, preserved MRBGraphs) across
  /// process restarts. Multiple LocalCluster instances may share one root
  /// within a process (the serving layer's shard clusters): job scratch
  /// dirs carry a per-instance token so they never collide, and only the
  /// first re-attach to a root clears stale jobs/ leftovers — later
  /// attachers must not clobber a sibling's in-flight shuffle spills.
  LocalCluster(std::string root, int num_workers, CostModel cost = {},
               bool reset = true);
  ~LocalCluster();

  /// Run a complete MapReduce job (blocking). Map tasks run in parallel on
  /// the worker pool, then reduce tasks.
  JobResult RunJob(const JobSpec& spec);

  Dfs* dfs() { return &dfs_; }
  ThreadPool* pool() { return &pool_; }
  const CostModel& cost() const { return cost_; }
  void set_cost(const CostModel& cost) { cost_ = cost; }
  int num_workers() const { return num_workers_; }
  const std::string& root() const { return root_; }

  /// Local directory of worker `w` (created on demand).
  std::string WorkerDir(int w) const;

  /// Fresh scratch directory for a job's shuffle spills.
  std::string NewJobDir(const std::string& name);

 private:
  std::string root_;
  int num_workers_;
  CostModel cost_;
  Dfs dfs_;
  ThreadPool pool_;
  int instance_;  // process-unique token namespacing this instance's job dirs
  std::atomic<int> job_seq_{0};
};

}  // namespace i2mr

#endif  // I2MR_MR_CLUSTER_H_
