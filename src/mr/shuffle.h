// Shuffle machinery shared by the plain job runner and the iterative /
// incremental engines: map-side partition+sort+combine into flat-KV arena
// runs, reduce-side fetch, k-way merge and group iteration.
//
// Two exchange paths move a sorted run from a map task to its reduce task:
//
//  * In-memory (default): the run is handed to the job's ShuffleExchange and
//    the reducer merges it in place — no part-<r>.dat write, read-back or
//    re-decode. Same-process clusters (LocalCluster) never need the disk
//    round-trip for correctness; the simulated network cost and
//    StageMetrics accounting are charged from the run's serialized size so
//    the paper's cost experiments are unchanged.
//  * Disk spill: the run is written to `<dir>/part-<r>.dat` and fetched by
//    the reducer. Used when the exchange's memory budget is exceeded (per
//    run spill-over), when a spec requests it, or when the
//    I2MR_FORCE_DISK_SHUFFLE=1 env toggle forces it (CI exercises both
//    modes; crash-recovery tests rely on spills surviving task retries).
#ifndef I2MR_MR_SHUFFLE_H_
#define I2MR_MR_SHUFFLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/metrics.h"
#include "common/status.h"
#include "mr/api.h"
#include "mr/cost_model.h"

namespace i2mr {

/// How map output travels to reduce tasks. kInMemory still spills runs that
/// would overflow the exchange's memory budget.
enum class ShuffleMode { kInMemory, kDisk };

/// Default exchange budget: plenty for laptop-scale runs, small enough that
/// a runaway job degrades to spills instead of OOM.
inline constexpr size_t kDefaultShuffleMemoryBytes = 256u << 20;

/// Spec preference combined with the I2MR_FORCE_DISK_SHUFFLE env toggle
/// (any value but "" / "0" forces kDisk).
ShuffleMode EffectiveShuffleMode(ShuffleMode requested);

/// In-memory shuffle exchange owned by one job / one iteration: map tasks
/// Offer() their sorted per-partition runs, reduce tasks Borrow() them
/// back. Offer is thread-safe (map tasks run concurrently); Borrow must
/// only run after the map phase completed (the runners' phase barrier).
/// Runs stay owned by the exchange until it is destroyed, so a retried
/// reduce attempt sees the same input a re-read spill file would provide.
class ShuffleExchange {
 public:
  ShuffleExchange(int num_partitions, size_t memory_budget_bytes);

  /// Publish one map task's sorted run for `partition`. `writer` names the
  /// producing map task (its spill dir — stable across retry attempts): a
  /// re-offer from a retried attempt REPLACES the earlier run instead of
  /// duplicating it, mirroring how a retried disk attempt overwrites its
  /// part-<r>.dat. Returns false — without taking the run — when it would
  /// exceed the memory budget; the caller spills that run to disk instead.
  bool Offer(int partition, const std::string& writer, FlatKVRun&& run);

  /// All runs published for `partition`. Views stay valid until the
  /// exchange is destroyed.
  std::vector<const FlatKVRun*> Borrow(int partition) const;

  uint64_t bytes_held() const;

 private:
  mutable std::mutex mu_;
  size_t budget_;
  uint64_t held_ = 0;
  // Per partition: (writer id, run). Writer-keyed so retried map attempts
  // replace their earlier offer.
  std::vector<std::vector<std::pair<std::string, FlatKVRun>>> runs_;
};

/// Map-side sink: buffers intermediate kv-pairs per reduce partition in
/// flat-KV arena runs, then sorts each partition (optionally running a
/// combiner) and hands it to the exchange — or spills it to
/// `<dir>/part-<r>.dat` (no exchange / over budget). Records sort time and
/// output volume in metrics.
class ShuffleWriter : public MapContext {
 public:
  ShuffleWriter(int num_partitions, const Partitioner* partitioner,
                std::string dir, ShuffleExchange* exchange = nullptr);

  void Emit(std::string_view key, std::string_view value) override;

  /// Sort, combine and publish/spill all partitions. After Finish() the
  /// writer is done; spill file r is `<dir>/part-<r>.dat` (absent if the
  /// partition was empty or went through the exchange).
  Status Finish(Reducer* combiner, StageMetrics* metrics);

  int64_t records_emitted() const { return records_; }

 private:
  int num_partitions_;
  const Partitioner* partitioner_;
  std::string dir_;
  ShuffleExchange* exchange_;
  std::vector<FlatKVRun> buffers_;
  int64_t records_ = 0;
  // An emitted field exceeded kMaxRecordFieldLen: Finish fails with the
  // same InvalidArgument the disk path's RecordWriter would raise.
  bool oversize_field_ = false;
};

/// Reduce-side: fetches one partition's sorted runs from the exchange
/// and/or the map tasks' spill files (the "shuffle" stage — pays the
/// simulated network cost either way), merges them (the "sort" stage), and
/// iterates groups of equal keys. Views handed out by NextGroup stay valid
/// until the reader (and, for exchange runs, the exchange) is destroyed.
class ShuffleReader {
 public:
  struct Source {
    /// The partition-r spill of every map task (missing files are skipped).
    std::vector<std::string> spill_files;
    /// In-memory runs for this partition (may be null: disk-only).
    const ShuffleExchange* exchange = nullptr;
    int partition = 0;
  };

  /// Fetch+merge happen in Open().
  static StatusOr<std::unique_ptr<ShuffleReader>> Open(
      const Source& source, const CostModel& cost, StageMetrics* metrics);

  /// Disk-only convenience (tests, external spill sets).
  static StatusOr<std::unique_ptr<ShuffleReader>> Open(
      const std::vector<std::string>& spill_files, const CostModel& cost,
      StageMetrics* metrics);

  /// Next group of values sharing one key, as views into the merged runs.
  /// Returns false at end.
  bool NextGroup(std::string_view* key, std::vector<std::string_view>* values);

  /// Copying overload for callers that need owned strings.
  bool NextGroup(std::string* key, std::vector<std::string>* values);

  /// Total records across all groups.
  size_t num_records() const { return merged_.size(); }

 private:
  // Identifies one record as (run, index within run).
  struct Ref {
    uint32_t run;
    uint32_t idx;
  };

  ShuffleReader() = default;

  std::string_view KeyOf(const Ref& r) const {
    return runs_[r.run]->key(r.idx);
  }
  std::string_view ValueOf(const Ref& r) const {
    return runs_[r.run]->value(r.idx);
  }

  std::vector<FlatKVRun> owned_runs_;       // decoded spill files
  std::vector<const FlatKVRun*> runs_;      // owned + exchange-borrowed
  std::vector<Ref> merged_;                 // sorted by (key, value)
  size_t pos_ = 0;
};

/// Sorts `run` by (key, value) and runs `combiner` over each group,
/// replacing `run` with the combined output (sorted). Used map-side by
/// ShuffleWriter. Fails with InvalidArgument if the combiner emits a field
/// over kMaxRecordFieldLen (matching what the disk path's RecordWriter
/// would raise when re-spilling the combined run).
Status SortAndCombine(FlatKVRun* run, Reducer* combiner);

}  // namespace i2mr

#endif  // I2MR_MR_SHUFFLE_H_
