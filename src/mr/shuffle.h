// Shuffle machinery shared by the plain job runner and the iterative /
// incremental engines: map-side partition+sort+spill, reduce-side fetch,
// k-way merge and group iteration.
#ifndef I2MR_MR_SHUFFLE_H_
#define I2MR_MR_SHUFFLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/kv.h"
#include "common/metrics.h"
#include "common/status.h"
#include "mr/api.h"
#include "mr/cost_model.h"

namespace i2mr {

/// Map-side sink: buffers intermediate kv-pairs per reduce partition, then
/// sorts each partition (optionally running a combiner) and spills it to
/// `<dir>/part-<r>.dat`. Records sort time and output volume in metrics.
class ShuffleWriter : public MapContext {
 public:
  ShuffleWriter(int num_partitions, const Partitioner* partitioner,
                std::string dir);

  void Emit(std::string_view key, std::string_view value) override;

  /// Sort, combine and spill all partitions. After Finish() the writer is
  /// done; spill file r is `<dir>/part-<r>.dat` (absent if empty).
  Status Finish(Reducer* combiner, StageMetrics* metrics);

  int64_t records_emitted() const { return records_; }

 private:
  int num_partitions_;
  const Partitioner* partitioner_;
  std::string dir_;
  std::vector<std::vector<KV>> buffers_;
  int64_t records_ = 0;
};

/// Reduce-side: fetches the spill files of one partition from all map tasks
/// (the "shuffle" stage — pays network cost), merges the sorted runs (the
/// "sort" stage), and iterates groups of equal keys.
class ShuffleReader {
 public:
  /// `spill_files`: the partition-r spill of every map task (missing files
  /// are skipped). Fetch+merge happen in Open().
  static StatusOr<std::unique_ptr<ShuffleReader>> Open(
      const std::vector<std::string>& spill_files, const CostModel& cost,
      StageMetrics* metrics);

  /// Next group of values sharing one key. Returns false at end.
  bool NextGroup(std::string* key, std::vector<std::string>* values);

  /// Total records across all groups.
  size_t num_records() const { return records_.size(); }

 private:
  ShuffleReader() = default;

  std::vector<KV> records_;  // merged, sorted by (key, value)
  size_t pos_ = 0;
};

/// Sorts `records` and runs `combiner` over each group, replacing `records`
/// with the combined output (sorted). Used map-side by ShuffleWriter.
void SortAndCombine(std::vector<KV>* records, Reducer* combiner);

}  // namespace i2mr

#endif  // I2MR_MR_SHUFFLE_H_
